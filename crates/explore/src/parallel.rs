//! The search engines behind [`crate::explore`] and
//! [`crate::explore_composed`] — one serial, one work-stealing parallel,
//! both driving the same expansion logic over the same fingerprinted
//! visited store.
//!
//! One engine pair serves both models through the [`SearchModel`] trait.
//! The design:
//!
//! * **Fingerprinted visited store** — states are never used as hash-map
//!   keys. Each state is encoded once ([`crate::codec::StateCodec`]) into a
//!   per-worker scratch buffer, fingerprinted, and interned in an
//!   open-addressing arena store ([`crate::visited`]); fingerprint hits are
//!   confirmed by exact byte comparison, so the search stays exhaustive.
//!   The parallel engine stripes the store across [`N_SHARDS`] mutexes
//!   selected by the top fingerprint bits; workers `try_lock` first and
//!   count the misses ([`SearchStats::shard_conflicts`]).
//! * **Parent-chain paths** — tasks carry no path vector. The store records,
//!   per state, the tree edge that first interned it; violations are held as
//!   entry references during the search and resolved to label paths once,
//!   at the end, by walking parent links.
//! * **Per-worker deques with stealing** — each parallel worker owns a LIFO
//!   `crossbeam::deque::Worker` (LIFO keeps the search depth-first-ish and
//!   the frontier small); idle workers steal the *oldest* task from peers or
//!   from the shared injector, which hands them the widest subtrees. The
//!   serial engine runs the same expansion over a plain LIFO stack.
//! * **Termination** — a global pending-task counter is incremented before
//!   every push and decremented after every task completes; when a worker
//!   finds every queue empty and the counter at zero, the frontier is
//!   exhausted everywhere.
//! * **Optional sleep-set POR** ([`crate::por`]) — when the model opts in,
//!   deliveries whose commuted order was already explored skip the
//!   encode/probe/queue work ([`SearchStats::sleep_skips`]). Successor
//!   *enumeration* and every invariant/closure check remain exhaustive, so
//!   all reported figures are identical with POR on or off.
//!
//! ## Determinism
//!
//! The visited store converges to a schedule-independent fixpoint: the
//! depth stored for a state only increases (and its sleep mask only
//! shrinks), a state is (re-)queued exactly when that metadata improves,
//! and the final values are properties of the graph, not of the schedule.
//! Hence, when the search is not truncated by `max_states`:
//!
//! * `states_visited` is deterministic and equal across the serial engine,
//!   the parallel engine at any thread count, and POR on/off;
//! * the set of states whose invariants are checked (every visited state,
//!   checked exactly once, on first insertion) is deterministic, so
//!   `clean()` and the deduplicated violation *messages* are deterministic;
//! * `deadlocks` counts *distinct* dead states — deterministic;
//! * `transitions` counts each state's out-degree exactly once, on its
//!   first expansion — deterministic and engine-independent.
//!
//! Only the *representative path* attached to each violation (whichever
//! worker reached the state first) and the figures in [`SearchStats`] are
//! schedule-dependent. When the search *is* truncated, the subset of states
//! visited before the budget tripped depends on expansion order, in both
//! engines.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use dinefd_sim::metrics::{Counter, MetricMap};
use dinefd_sim::pool::{self, WorkerFn};

use crate::codec::{fingerprint, StateCodec};
use crate::por::{child_sleep, DeliveryClass};
use crate::visited::{path_through, ProbeOutcome, ShardedVisitedStore, VisitedStore, NO_PARENT};

/// Number of lock stripes in the parallel visited store. Power of two;
/// generous relative to any plausible worker count so that
/// uniformly-fingerprinted states rarely collide on a stripe.
pub const N_SHARDS: usize = 64;

/// A state graph the engines can search. Implementations must be cheap to
/// share across threads (`&self` methods are called concurrently).
pub(crate) trait SearchModel: Sync {
    /// Model state. Identity is its [`StateCodec`] encoding; `PartialEq` is
    /// only used to debug-assert codec round-trips on fresh insertions.
    type State: Clone + Send + PartialEq + std::fmt::Debug + StateCodec;
    /// Transition label (small and copyable).
    type Label: Copy + Send + std::fmt::Debug;

    /// Appends all enabled transitions out of `s` (with their successors)
    /// to `out`. The engines clear and reuse `out` across expansions, so
    /// implementations must only push.
    fn successors_into(&self, s: &Self::State, out: &mut Vec<(Self::Label, Self::State)>);
    /// State-level invariant violations (core messages, no path suffix).
    fn state_violations(&self, s: &Self::State) -> Vec<String>;
    /// Transition-level violations for `s --label--> next`.
    fn step_violations(
        &self,
        s: &Self::State,
        label: Self::Label,
        next: &Self::State,
    ) -> Vec<String>;
    /// POR classification of `label`: which wire pool it consumes from, or
    /// `None` for everything that must never be slept. The default opts
    /// every label out.
    fn delivery_class(&self, _label: Self::Label) -> Option<DeliveryClass> {
        None
    }
    /// Whether sleep-set POR is enabled for this run (default off).
    fn por(&self) -> bool {
        false
    }
}

/// Which check produced a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A state-level invariant (the paper's safety lemmas) failed.
    StateInvariant,
    /// A transition-level check (Theorem-1 closure / emergent exclusion)
    /// failed.
    ClosureStep,
}

/// One violation with a replayable counterexample path.
#[derive(Clone, Debug)]
pub struct ViolationRecord<L> {
    /// Which checker flagged it.
    pub kind: ViolationKind,
    /// The core diagnostic, e.g. `"Lemma 4 violated: …"`.
    pub message: String,
    /// Transition labels from the initial state to the violating state (for
    /// [`ViolationKind::ClosureStep`], the last label is the violating
    /// step). Replaying these labels through the model's `successors`
    /// reproduces the violation.
    pub path: Vec<L>,
}

/// Throughput, contention, and codec figures of one search run, built on
/// the shared [`dinefd_sim::metrics`] primitives so the explorer reports
/// through the same observability layer as the simulator.
#[derive(Clone, Copy, Debug)]
pub struct SearchStats {
    /// Worker threads used (1 = the serial engine).
    pub threads: usize,
    /// Visited-store stripes (1 in the serial engine).
    pub shards: usize,
    /// Wall-clock duration of the search, in seconds.
    pub duration_secs: f64,
    /// Distinct states visited per wall-clock second.
    pub states_per_sec: f64,
    /// Tasks acquired from a non-local queue (peer deques + injector).
    pub steals: Counter,
    /// Visited-store `try_lock` misses that had to fall back to a blocking
    /// lock — the contention measure of the sharding.
    pub shard_conflicts: Counter,
    /// Fingerprint hits confirmed equal by exact byte comparison (every
    /// re-visit of a seen state costs exactly one).
    pub fp_confirms: Counter,
    /// Fingerprint hits whose interned bytes differed — true 64-bit
    /// collisions, resolved exactly by further probing (expected ≈ 0 at
    /// explorable state counts).
    pub fp_collisions: Counter,
    /// Successor edges skipped by sleep-set POR (0 unless the model opts
    /// in). Skips save probe work only; they never hide a state or a check.
    pub sleep_skips: Counter,
    /// Bytes of encoded state interned in the visited-store arena(s) — the
    /// resident footprint of the state set itself. Deterministic when the
    /// search is not truncated.
    pub arena_bytes: u64,
}

impl SearchStats {
    /// Flattens the schedule-dependent counters under `prefix` (the
    /// wall-clock figures are exported separately by the perf reports, as
    /// they are never rerun-stable).
    pub fn export(&self, prefix: &str, out: &mut MetricMap) {
        out.insert(format!("{prefix}.threads"), self.threads as u64);
        out.insert(format!("{prefix}.shards"), self.shards as u64);
        out.insert(format!("{prefix}.steals"), self.steals.get());
        out.insert(format!("{prefix}.shard_conflicts"), self.shard_conflicts.get());
        out.insert(format!("{prefix}.fp_confirms"), self.fp_confirms.get());
        out.insert(format!("{prefix}.fp_collisions"), self.fp_collisions.get());
        out.insert(format!("{prefix}.sleep_skips"), self.sleep_skips.get());
        out.insert(format!("{prefix}.arena_bytes"), self.arena_bytes);
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} thread(s), {:.0} states/s, {} steals, {} shard conflicts, \
             {} fp confirms, {} fp collisions, {} sleep skips, {} arena bytes",
            self.threads,
            self.states_per_sec,
            self.steals.get(),
            self.shard_conflicts.get(),
            self.fp_confirms.get(),
            self.fp_collisions.get(),
            self.sleep_skips.get(),
            self.arena_bytes
        )
    }
}

/// Everything the engines report back to the model-specific wrappers.
pub(crate) struct SearchOutcome<L> {
    pub states_visited: usize,
    pub transitions: u64,
    pub deadlocks: usize,
    pub truncated: bool,
    /// Deduplicated by `(kind, message)` and sorted — deterministic up to
    /// the representative paths.
    pub violations: Vec<ViolationRecord<L>>,
    pub stats: SearchStats,
}

/// A queued unit of work: the state itself (kept decoded so expansion never
/// re-decodes), its store entry reference (for parent links and the
/// expanded flag), and the depth/sleep metadata it was queued with.
struct Task<S> {
    state: S,
    entry: u64,
    remaining: u32,
    sleep: u32,
}

/// A violation captured mid-search: the path is reconstructed from `entry`'s
/// parent chain only once the search has finished.
struct PendingViolation<L> {
    kind: ViolationKind,
    message: String,
    entry: u64,
    extra: Option<L>,
}

/// Per-worker tallies, merged after the scope joins. The serial engine uses
/// a single one.
struct Tally<L> {
    transitions: u64,
    deadlocks: usize,
    steals: u64,
    sleep_skips: u64,
    pending: Vec<PendingViolation<L>>,
}

impl<L> Tally<L> {
    fn new() -> Self {
        Tally { transitions: 0, deadlocks: 0, steals: 0, sleep_skips: 0, pending: Vec::new() }
    }
}

/// Store operations the shared expansion logic needs, implemented by both
/// the single [`VisitedStore`] (serial) and the sharded wrapper (parallel).
/// Entry references are the packed `(shard, index)` form of
/// [`crate::visited::entry_ref`]; the serial store is shard 0.
trait StoreAccess<L: Copy> {
    fn probe(
        &mut self,
        fp: u64,
        bytes: &[u8],
        remaining: u32,
        sleep: u32,
        parent: u64,
        label: Option<L>,
    ) -> (ProbeOutcome, u64, u32, u32);
    fn mark_expanded(&mut self, entry: u64) -> bool;
}

impl<L: Copy> StoreAccess<L> for VisitedStore<L> {
    fn probe(
        &mut self,
        fp: u64,
        bytes: &[u8],
        remaining: u32,
        sleep: u32,
        parent: u64,
        label: Option<L>,
    ) -> (ProbeOutcome, u64, u32, u32) {
        let p = VisitedStore::probe(self, fp, bytes, remaining, sleep, parent, label);
        (p.outcome, crate::visited::entry_ref(0, p.index), p.remaining, p.sleep)
    }

    fn mark_expanded(&mut self, entry: u64) -> bool {
        VisitedStore::mark_expanded(self, entry as u32)
    }
}

impl<L: Copy> StoreAccess<L> for &ShardedVisitedStore<L> {
    fn probe(
        &mut self,
        fp: u64,
        bytes: &[u8],
        remaining: u32,
        sleep: u32,
        parent: u64,
        label: Option<L>,
    ) -> (ProbeOutcome, u64, u32, u32) {
        ShardedVisitedStore::probe(self, fp, bytes, remaining, sleep, parent, label)
    }

    fn mark_expanded(&mut self, entry: u64) -> bool {
        ShardedVisitedStore::mark_expanded(self, entry)
    }
}

/// Interns and checks the initial state, returning its root task. Shared by
/// both engines so the seed semantics cannot diverge.
fn seed_root<M: SearchModel>(
    model: &M,
    initial: M::State,
    max_depth: u32,
    store: &mut impl StoreAccess<M::Label>,
    buf: &mut Vec<u8>,
    tally: &mut Tally<M::Label>,
) -> Task<M::State> {
    buf.clear();
    initial.encode_into(buf);
    let (outcome, entry, _, _) = store.probe(fingerprint(buf), buf, max_depth, 0, NO_PARENT, None);
    debug_assert_eq!(outcome, ProbeOutcome::Fresh, "seeding into a non-empty store");
    for message in model.state_violations(&initial) {
        tally.pending.push(PendingViolation {
            kind: ViolationKind::StateInvariant,
            message,
            entry,
            extra: None,
        });
    }
    Task { state: initial, entry, remaining: max_depth, sleep: 0 }
}

/// Expands one task: enumerates successors into the reusable `succ` scratch,
/// runs the once-per-state checks, probes each child, and hands fresh or
/// upgraded children to `push(task, is_fresh)`. This single function defines
/// the expansion semantics of *both* engines — the once-per-state
/// `transitions`/`deadlocks` figures, the once-per-state closure checks, the
/// once-per-insertion invariant checks, and the POR skip rule.
fn expand_task<M: SearchModel>(
    model: &M,
    task: &Task<M::State>,
    store: &mut impl StoreAccess<M::Label>,
    succ: &mut Vec<(M::Label, M::State)>,
    buf: &mut Vec<u8>,
    tally: &mut Tally<M::Label>,
    mut push: impl FnMut(Task<M::State>, bool),
) {
    let first_expansion = store.mark_expanded(task.entry);
    succ.clear();
    model.successors_into(&task.state, succ);
    if succ.is_empty() {
        if first_expansion {
            tally.deadlocks += 1;
        }
        return;
    }
    if first_expansion {
        // Out-degree is counted in full even under POR — enumeration (and
        // with it every check below) is never reduced, only probe work is.
        tally.transitions += succ.len() as u64;
    }
    let remaining = task.remaining - 1;
    let por = model.por();
    // Sleep bits of delivery labels already probed at *this* expansion;
    // later independent siblings inherit them (the sleep-set recurrence).
    let mut earlier = 0u32;
    for (label, next) in succ.drain(..) {
        if first_expansion {
            for message in model.step_violations(&task.state, label, &next) {
                tally.pending.push(PendingViolation {
                    kind: ViolationKind::ClosureStep,
                    message,
                    entry: task.entry,
                    extra: Some(label),
                });
            }
        }
        let class = if por { model.delivery_class(label) } else { None };
        if let Some(c) = class {
            let bit = c.bit();
            if bit != 0 && task.sleep & bit != 0 {
                // A commuted order through an earlier-explored independent
                // delivery reaches the same child; skip the probe.
                tally.sleep_skips += 1;
                continue;
            }
        }
        buf.clear();
        next.encode_into(buf);
        let sleep = if por { child_sleep(task.sleep, earlier, class) } else { 0 };
        if let Some(c) = class {
            earlier |= c.bit();
        }
        let (outcome, entry, up_remaining, up_sleep) =
            store.probe(fingerprint(buf), buf, remaining, sleep, task.entry, Some(label));
        match outcome {
            ProbeOutcome::Pruned => {}
            ProbeOutcome::Fresh => {
                debug_assert_eq!(
                    M::State::decode(buf).as_ref(),
                    Some(&next),
                    "codec round-trip failed on a fresh insertion"
                );
                for message in model.state_violations(&next) {
                    tally.pending.push(PendingViolation {
                        kind: ViolationKind::StateInvariant,
                        message,
                        entry,
                        extra: None,
                    });
                }
                push(Task { state: next, entry, remaining: up_remaining, sleep: up_sleep }, true);
            }
            ProbeOutcome::Requeue => {
                push(Task { state: next, entry, remaining: up_remaining, sleep: up_sleep }, false);
            }
        }
    }
}

/// Depth-bounded exhaustive search, single-threaded: one visited store, one
/// LIFO stack, the shared [`expand_task`] semantics.
pub(crate) fn serial_search<M: SearchModel>(
    model: &M,
    initial: M::State,
    max_depth: u32,
    max_states: usize,
) -> SearchOutcome<M::Label> {
    let started = Instant::now();
    let mut store: VisitedStore<M::Label> = VisitedStore::new();
    let mut tally: Tally<M::Label> = Tally::new();
    let mut buf: Vec<u8> = Vec::with_capacity(64);
    let mut succ: Vec<(M::Label, M::State)> = Vec::new();
    let mut stack: Vec<Task<M::State>> = Vec::new();
    let mut truncated = false;

    stack.push(seed_root(model, initial, max_depth, &mut store, &mut buf, &mut tally));
    while let Some(task) = stack.pop() {
        // Budget semantics shared with the parallel engine: tested when a
        // state comes up for expansion, so the store may overshoot
        // `max_states` by at most one expansion's successors.
        if store.len() >= max_states {
            truncated = true;
            break;
        }
        if task.remaining == 0 {
            continue;
        }
        expand_task(model, &task, &mut store, &mut succ, &mut buf, &mut tally, |t, _| {
            stack.push(t)
        });
    }

    let states_visited = store.len();
    let duration_secs = started.elapsed().as_secs_f64();
    let store_stats = store.stats();
    let violations = merge_violations(tally.pending.drain(..).map(|p| ViolationRecord {
        kind: p.kind,
        message: p.message,
        path: path_through(p.entry, p.extra, |_| &store),
    }));
    SearchOutcome {
        states_visited,
        transitions: tally.transitions,
        deadlocks: tally.deadlocks,
        truncated,
        violations,
        stats: SearchStats {
            threads: 1,
            shards: 1,
            duration_secs,
            states_per_sec: if duration_secs > 0.0 {
                states_visited as f64 / duration_secs
            } else {
                0.0
            },
            steals: Counter::new(),
            shard_conflicts: Counter::new(),
            fp_confirms: Counter::from(store_stats.confirms),
            fp_collisions: Counter::from(store_stats.collisions),
            sleep_skips: Counter::from(tally.sleep_skips),
            arena_bytes: store.arena_bytes() as u64,
        },
    }
}

/// Runs the work-stealing search. `threads` must be ≥ 2 (the callers route
/// `threads <= 1` to [`serial_search`]).
pub(crate) fn parallel_search<M: SearchModel>(
    model: &M,
    initial: M::State,
    max_depth: u32,
    max_states: usize,
    threads: usize,
) -> SearchOutcome<M::Label> {
    debug_assert!(threads >= 2, "serial searches bypass the engine");
    let started = Instant::now();

    let visited: ShardedVisitedStore<M::Label> = ShardedVisitedStore::new();
    let injector: Injector<Task<M::State>> = Injector::new();
    let locals: Vec<Worker<Task<M::State>>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Task<M::State>>> = locals.iter().map(Worker::stealer).collect();

    // Tasks queued but not yet fully processed; 0 ⇒ the frontier is drained.
    let pending = AtomicUsize::new(0);
    let fresh_states = AtomicUsize::new(0);
    let truncated = AtomicBool::new(false);

    // Seed: the initial state is interned and checked up front, through the
    // same path the serial engine uses.
    let mut seed_tally: Tally<M::Label> = Tally::new();
    {
        let mut buf = Vec::with_capacity(64);
        let root = seed_root(model, initial, max_depth, &mut (&visited), &mut buf, &mut seed_tally);
        fresh_states.store(1, Ordering::Relaxed);
        pending.store(1, Ordering::SeqCst);
        injector.push(root);
    }

    // Each worker move-captures its own deque and returns its tally; the
    // shared pool joins them all and re-raises the first worker panic.
    let workers: Vec<WorkerFn<'_, Tally<M::Label>>> = locals
        .into_iter()
        .map(|local| {
            let (visited, injector, stealers) = (&visited, &injector, &stealers);
            let (pending, fresh_states, truncated) = (&pending, &fresh_states, &truncated);
            Box::new(move || {
                let mut tally: Tally<M::Label> = Tally::new();
                let mut buf: Vec<u8> = Vec::with_capacity(64);
                let mut succ: Vec<(M::Label, M::State)> = Vec::new();
                loop {
                    let task = local
                        .pop()
                        .or_else(|| steal_task(injector, stealers).inspect(|_| tally.steals += 1));
                    match task {
                        Some(task) => {
                            process_task(
                                model,
                                task,
                                visited,
                                &local,
                                pending,
                                fresh_states,
                                truncated,
                                max_states,
                                &mut buf,
                                &mut succ,
                                &mut tally,
                            );
                            pending.fetch_sub(1, Ordering::SeqCst);
                        }
                        None => {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                tally
            }) as WorkerFn<'_, Tally<M::Label>>
        })
        .collect();
    let mut tallies = pool::run_each(workers);
    tallies.push(seed_tally);
    let states_visited = visited.len();
    let duration_secs = started.elapsed().as_secs_f64();
    let (transitions, deadlocks, steals, sleep_skips) =
        tallies.iter().fold((0u64, 0usize, 0u64, 0u64), |(t, d, s, z), w| {
            (t + w.transitions, d + w.deadlocks, s + w.steals, z + w.sleep_skips)
        });
    let store_stats = visited.stats();
    let violations =
        merge_violations(tallies.into_iter().flat_map(|t| t.pending).map(|p| ViolationRecord {
            kind: p.kind,
            message: p.message,
            path: visited.path_to(p.entry, p.extra),
        }));
    SearchOutcome {
        states_visited,
        transitions,
        deadlocks,
        truncated: truncated.load(Ordering::SeqCst),
        violations,
        stats: SearchStats {
            threads,
            shards: N_SHARDS,
            duration_secs,
            states_per_sec: if duration_secs > 0.0 {
                states_visited as f64 / duration_secs
            } else {
                0.0
            },
            steals: Counter::from(steals),
            shard_conflicts: Counter::from(visited.conflicts()),
            fp_confirms: Counter::from(store_stats.confirms),
            fp_collisions: Counter::from(store_stats.collisions),
            sleep_skips: Counter::from(sleep_skips),
            arena_bytes: visited.arena_bytes() as u64,
        },
    }
}

/// Steals one task: the shared injector first (widest subtrees), then peers.
fn steal_task<S>(injector: &Injector<Task<S>>, stealers: &[Stealer<Task<S>>]) -> Option<Task<S>> {
    loop {
        let mut retry = false;
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for s in stealers {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
        std::hint::spin_loop();
    }
}

#[allow(clippy::too_many_arguments)] // engine internals, bundled by role
fn process_task<M: SearchModel>(
    model: &M,
    task: Task<M::State>,
    visited: &ShardedVisitedStore<M::Label>,
    local: &Worker<Task<M::State>>,
    pending: &AtomicUsize,
    fresh_states: &AtomicUsize,
    truncated: &AtomicBool,
    max_states: usize,
    buf: &mut Vec<u8>,
    succ: &mut Vec<(M::Label, M::State)>,
    tally: &mut Tally<M::Label>,
) {
    // Budget semantics shared with the serial engine: tested when a state
    // comes up for expansion, so the store may overshoot `max_states` by at
    // most one expansion's successors per worker.
    if truncated.load(Ordering::Relaxed) {
        return; // drain mode: complete outstanding tasks without expanding
    }
    if fresh_states.load(Ordering::Relaxed) >= max_states {
        truncated.store(true, Ordering::SeqCst);
        return;
    }
    if task.remaining == 0 {
        return;
    }
    expand_task(model, &task, &mut (&*visited), succ, buf, tally, |t, is_fresh| {
        if is_fresh {
            fresh_states.fetch_add(1, Ordering::Relaxed);
        }
        pending.fetch_add(1, Ordering::SeqCst);
        local.push(t);
    });
}

/// Dedups by `(kind, message)` keeping one representative path, and sorts —
/// the resulting *set* is schedule-independent.
fn merge_violations<L>(
    records: impl Iterator<Item = ViolationRecord<L>>,
) -> Vec<ViolationRecord<L>> {
    let mut by_key: std::collections::BTreeMap<(ViolationKind, String), ViolationRecord<L>> =
        std::collections::BTreeMap::new();
    for r in records {
        match by_key.entry((r.kind, r.message.clone())) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(r);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                // Prefer the shortest representative path — nicer
                // counterexamples (the choice among equals stays
                // schedule-dependent; only the (kind, message) set is
                // guaranteed deterministic).
                if r.path.len() < e.get().path.len() {
                    e.insert(r);
                }
            }
        }
    }
    by_key.into_values().collect()
}
