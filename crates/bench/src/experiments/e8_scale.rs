//! E8 — engineering cost of the reduction at scale (not a paper table; the
//! paper is proof-only). All-ordered-pairs monitoring over `n` processes:
//! message/step cost and convergence latency as `n` grows.

use std::time::Instant;

use dinefd_core::{run_extraction, BlackBox, OracleSpec, Scenario};
use dinefd_explore::{explore, ExploreConfig};
use dinefd_sim::{CrashPlan, MetricMap, ProcessId, Summary, Time};

use crate::table::{Report, Table};
use crate::{parallel_map, ExperimentConfig};

/// Sizes from which the scale sweep switches to the streaming pipeline
/// (online history sink + envelope batching): beyond here a full trace
/// would dominate memory, which is exactly what the pipeline removes.
const STREAM_FROM: usize = 32;

/// The sharded scale frontier: `(n, horizon)` rows. Horizons shrink as n²
/// pair machinery grows so every row stays inside the sweep's time box;
/// the per-tick cost curves are what the frontier measures, not
/// convergence (which the main table already certifies at smaller n).
/// Debug builds (the test suites) run miniature rows — the committed
/// baselines and the CI `e8.n128`–`e8.n1024` keys are release-generated.
fn frontier_sizes() -> &'static [(usize, u64)] {
    if cfg!(debug_assertions) {
        &[(8, 256), (16, 128)]
    } else {
        &[(128, 512), (256, 256), (512, 128), (1024, 64)]
    }
}

/// The parallel frontier: the subset of [`frontier_sizes`] each thread
/// count re-runs. Dropping the smallest release row keeps the sweep's
/// wall-clock sane (4 thread counts × every row).
fn par_frontier_sizes() -> &'static [(usize, u64)] {
    if cfg!(debug_assertions) {
        &[(8, 256), (16, 128)]
    } else {
        &[(256, 256), (512, 128), (1024, 64)]
    }
}

/// Runs E8 and returns the report.
pub fn run(cfg: &ExperimentConfig) -> Report {
    let sizes: &[usize] =
        if cfg.seeds <= 3 { &[2, 4, 8, 32, 64] } else { &[2, 4, 8, 12, 16, 32, 64] };
    let mut metrics = MetricMap::new();
    let table = scale_table(cfg, sizes, STREAM_FROM, &mut metrics);
    let sharded = frontier_table(frontier_sizes(), 4, &mut metrics);
    let parallel = parallel_frontier(par_frontier_sizes(), 4, &mut metrics);
    let explorer = explorer_scaling(cfg, &mut metrics);
    let frontier = depth_frontier(cfg, &mut metrics);

    Report {
        title: "E8 — cost of all-pairs extraction at scale".into(),
        preamble: "Engineering profile (the paper has no evaluation section): the \
                   reduction runs two dining instances per ordered pair, so n \
                   processes imply 2·n·(n-1) concurrent instances. Measured: \
                   per-pair message rate (≈ constant — each pair's machinery is \
                   independent), correctness at every size, convergence latency, \
                   peak resident extraction state, and wall-clock cost of the \
                   simulation. Rows at n ≥ 32 run the streaming pipeline \
                   (online history sink + envelope batching), so their resident \
                   state is O(pairs) history entries instead of a full trace. \
                   The frontier table pushes to n = 1024 on 4-way sharded \
                   worlds (timer-wheel queues, pid-partitioned nodes) and \
                   differentially re-runs every row post-hoc: the streaming \
                   history must match the trace-derived one byte for byte. \
                   The parallel-frontier table re-runs the sharded worlds on \
                   the shard-worker pool across thread counts; the fourth table \
                   sweeps the lemma explorer's work-stealing engine over thread \
                   counts on a fixed state space."
            .into(),
        tables: vec![table, sharded, parallel, explorer, frontier],
        notes: vec![
            "\"peak resident (entries)\" counts the extraction-side state the run \
             must hold: trace events for post-hoc rows, n² timelines + recorded \
             suspicion changes for streaming rows. \"env occ (mean)\" is \
             messages per wire envelope (streamed rows batch each step's sends \
             per destination under one delay draw); \"-\" = batching off."
                .into(),
            "Frontier rows run shorter horizons as n grows (512 ticks at n=128 \
             down to 64 at n=1024): the quantity under test is per-tick cost \
             and memory at scale, not convergence latency. \"bytes/pair\" is \
             the construction-time resident estimate of the reduction nodes' \
             pair state (SoA banks + boxed dining participants) — \
             layout-dependent, so it stays out of the deterministic metric \
             keys."
                .into(),
            "Parallel-frontier rows run the same sharded world on the shard-worker \
             pool at each thread count; every parallel row is asserted \
             byte-identical to its threads=1 reference in-process (steps, \
             messages, metric export, extracted history) before its throughput \
             is reported. \"barrier %\" is barrier-wait as a share of total \
             worker wall-clock — on a single-core host expect speedup < 1x and \
             a high barrier share; the determinism columns are the part that \
             must hold everywhere."
                .into(),
            "Explorer speedup is relative to the serial (threads=1) mean and is \
             bounded by the machine's core count — on a single-core host extra \
             workers only add coordination overhead (expect < 1x), and the sweep \
             degenerates into a determinism check: states and verdict must stay \
             identical at every thread count."
                .into(),
            "The depth frontier sweeps the serial engine to increasing bounds; \
             \"arena KiB\" is the resident footprint of the entire visited state \
             set under the compact codec (the figure that used to be a cloned \
             struct per HashMap key)."
                .into(),
        ],
        metrics,
    }
}

/// Everything one extraction run of the scale sweep reports back.
struct ScaleRun {
    accurate: bool,
    complete: bool,
    messages: u64,
    steps: u64,
    stabilized: Time,
    wall_ms: f64,
    /// Extraction-side resident state in logical entries: trace events for
    /// post-hoc runs, n² timelines + suspicion changes for streaming runs.
    peak_resident: u64,
    envelopes: u64,
    history_changes: u64,
}

/// The all-pairs extraction sweep over `sizes`; rows at `stream_from` and
/// beyond use the streaming pipeline (online sink + envelope batching) and
/// fewer seeds (they are per-run expensive but per-run deterministic).
fn scale_table(
    cfg: &ExperimentConfig,
    sizes: &[usize],
    stream_from: usize,
    metrics: &mut MetricMap,
) -> Table {
    let horizon = Time(10_000);
    let mut table = Table::new(
        "All-pairs extraction cost vs system size (horizon 10k ticks)",
        &[
            "n",
            "pairs",
            "runs",
            "mode",
            "accurate",
            "complete",
            "msgs/pair/ktick",
            "steps (mean)",
            "trust stabilized by (max)",
            "peak resident (entries)",
            "env occ (mean)",
            "wall ms/run",
        ],
    );
    for &n in sizes {
        let streaming = n >= stream_from;
        let seeds = if streaming { cfg.seeds.min(2) } else { cfg.seeds.min(4) };
        let results = parallel_map(0..seeds, move |seed| {
            let mut sc = Scenario::all_pairs(n, BlackBox::WfDx, 8_000 + seed);
            sc.oracle = OracleSpec::DiamondP {
                lag: 20,
                convergence: Time(1_500),
                max_mistakes: 2,
                max_len: 100,
            };
            sc.horizon = horizon;
            sc.crashes = CrashPlan::one(ProcessId::from_index(n - 1), Time(4_000));
            sc.streaming = streaming;
            sc.batch_envelopes = streaming;
            let crashes = sc.crashes.clone();
            let start = Instant::now();
            let res = run_extraction(sc);
            let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
            let acc = res.history.eventual_strong_accuracy(&crashes);
            let complete = res.history.strong_completeness(&crashes).is_ok();
            let stabilized = acc
                .as_ref()
                .ok()
                .and_then(|rows| rows.iter().map(|r| r.trusted_from).max())
                .unwrap_or(Time::INFINITY);
            let peak_resident = if res.streaming {
                (res.n * res.n) as u64 + res.history_changes
            } else {
                res.trace.len() as u64
            };
            ScaleRun {
                accurate: acc.is_ok(),
                complete,
                messages: res.messages_sent,
                steps: res.steps,
                stabilized,
                wall_ms,
                peak_resident,
                envelopes: res.metrics.get("envelopes_sent").copied().unwrap_or(0),
                history_changes: res.history_changes,
            }
        });
        let pairs = n * (n - 1);
        let acc = results.iter().filter(|r| r.accurate).count();
        let comp = results.iter().filter(|r| r.complete).count();
        let runs = results.len() as f64;
        let msgs = results.iter().map(|r| r.messages as f64).sum::<f64>() / runs;
        let steps = results.iter().map(|r| r.steps as f64).sum::<f64>() / runs;
        // n=2 with one crash has no correct-correct pair: no trust datum.
        let stab = results
            .iter()
            .map(|r| r.stabilized)
            .filter(|&t| t != Time::INFINITY)
            .map(|t| t.ticks())
            .max();
        let wall = results.iter().map(|r| r.wall_ms).sum::<f64>() / runs;
        let peak = results.iter().map(|r| r.peak_resident).max().unwrap_or(0);
        let envelopes: u64 = results.iter().map(|r| r.envelopes).sum();
        let messages: u64 = results.iter().map(|r| r.messages).sum();
        metrics.insert(format!("n{n}.messages_sent_total"), messages);
        metrics.insert(format!("n{n}.sim_steps_total"), results.iter().map(|r| r.steps).sum());
        metrics.insert(
            format!("n{n}.history_changes_total"),
            results.iter().map(|r| r.history_changes).sum(),
        );
        metrics.insert(format!("n{n}.envelopes_sent_total"), envelopes);
        metrics.insert(format!("n{n}.peak_resident_entries_max"), peak);
        metrics.insert(format!("n{n}.streaming"), streaming as u64);
        table.row(vec![
            n.to_string(),
            pairs.to_string(),
            results.len().to_string(),
            if streaming { "streaming+batch".into() } else { "post-hoc".to_string() },
            format!("{acc}/{}", results.len()),
            format!("{comp}/{}", results.len()),
            format!("{:.0}", msgs / pairs as f64 / (horizon.ticks() as f64 / 1_000.0)),
            format!("{steps:.0}"),
            stab.map_or("-".into(), |s| s.to_string()),
            peak.to_string(),
            if streaming && envelopes > 0 {
                format!("{:.1}", messages as f64 / envelopes as f64)
            } else {
                "-".to_string()
            },
            format!("{wall:.0}"),
        ]);
    }
    table
}

/// The n ≥ 128 sharded frontier. One seed per size (each run is expensive
/// but deterministic), streaming + envelope batching + `shards`-way
/// [`dinefd_sim::ShardedWorld`]s, and a full streaming-vs-post-hoc
/// differential at every size: both modes must agree on step and message
/// counts, the metric export, and the extracted history.
fn frontier_table(sizes: &[(usize, u64)], shards: usize, metrics: &mut MetricMap) -> Table {
    let mut table = Table::new(
        "Sharded scale frontier (4-way sharded worlds, timer-wheel queues)",
        &[
            "n",
            "pairs",
            "horizon",
            "steps",
            "msgs/pair",
            "ksteps/s",
            "bytes/pair",
            "peak resident (entries)",
            "stream≡post-hoc",
            "wall ms",
        ],
    );
    for &(n, horizon) in sizes {
        let build = |streaming: bool| {
            let mut sc = Scenario::all_pairs(n, BlackBox::WfDx, 8_000);
            sc.oracle = OracleSpec::DiamondP {
                lag: 20,
                convergence: Time(horizon / 2),
                max_mistakes: 1,
                max_len: 16,
            };
            sc.horizon = Time(horizon);
            sc.crashes = CrashPlan::one(ProcessId::from_index(n - 1), Time(horizon / 2));
            sc.streaming = streaming;
            sc.batch_envelopes = true;
            sc.shards = shards;
            sc
        };
        let start = Instant::now();
        let streamed = run_extraction(build(true));
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let posthoc = run_extraction(build(false));
        let differential_ok = streamed.steps == posthoc.steps
            && streamed.messages_sent == posthoc.messages_sent
            && streamed.metrics == posthoc.metrics
            && format!("{:?}", streamed.history) == format!("{:?}", posthoc.history);
        assert!(differential_ok, "n={n}: streaming and post-hoc sharded runs diverged");
        let pairs = (n * (n - 1)) as u64;
        let peak_resident = (n * n) as u64 + streamed.history_changes;
        let sim_secs = streamed.profiler.report().phase_secs("simulate");
        metrics.insert(format!("n{n}.sim_steps_total"), streamed.steps);
        metrics.insert(format!("n{n}.messages_sent_total"), streamed.messages_sent);
        metrics.insert(
            format!("n{n}.envelopes_sent_total"),
            streamed.metrics.get("envelopes_sent").copied().unwrap_or(0),
        );
        metrics.insert(format!("n{n}.history_changes_total"), streamed.history_changes);
        metrics.insert(format!("n{n}.peak_resident_entries_max"), peak_resident);
        metrics.insert(format!("n{n}.streaming"), 1);
        metrics.insert(format!("n{n}.shards"), shards as u64);
        metrics.insert(format!("n{n}.differential_ok"), differential_ok as u64);
        table.row(vec![
            n.to_string(),
            pairs.to_string(),
            horizon.to_string(),
            streamed.steps.to_string(),
            format!("{:.1}", streamed.messages_sent as f64 / pairs as f64),
            format!("{:.0}", streamed.steps as f64 / sim_secs / 1_000.0),
            format!("{:.0}", streamed.node_resident_bytes as f64 / pairs as f64),
            peak_resident.to_string(),
            if differential_ok { "yes".into() } else { "NO".to_string() },
            format!("{wall_ms:.0}"),
        ]);
    }
    table
}

/// Thread-scaling sweep of the parallel shard workers: the same sharded
/// extraction at each thread count, byte-identical results asserted
/// in-process, throughput/speedup/barrier-overhead per row. Deterministic
/// keys land once per size; per-thread throughput is wall-clock only.
fn parallel_frontier(sizes: &[(usize, u64)], shards: usize, metrics: &mut MetricMap) -> Table {
    let mut table = Table::new(
        "Parallel shard-worker frontier (4-way sharded worlds, thread-scaling)",
        &["n", "threads", "steps", "ksteps/s", "speedup", "barrier %", "identical"],
    );
    for &(n, horizon) in sizes {
        let run = |threads: usize| {
            let mut sc = Scenario::all_pairs(n, BlackBox::WfDx, 8_000);
            sc.oracle = OracleSpec::DiamondP {
                lag: 20,
                convergence: Time(horizon / 2),
                max_mistakes: 1,
                max_len: 16,
            };
            sc.horizon = Time(horizon);
            sc.crashes = CrashPlan::one(ProcessId::from_index(n - 1), Time(horizon / 2));
            sc.streaming = true;
            sc.batch_envelopes = true;
            sc.shards = shards;
            sc.threads = threads;
            run_extraction(sc)
        };
        let reference = run(1);
        metrics.insert(format!("par.n{n}.sim_steps_total"), reference.steps);
        metrics.insert(format!("par.n{n}.messages_sent_total"), reference.messages_sent);
        let ref_secs = reference.profiler.report().phase_secs("simulate");
        for threads in [1usize, 2, 4, 8] {
            let res = if threads == 1 { &reference } else { &run(threads) };
            let identical = res.steps == reference.steps
                && res.messages_sent == reference.messages_sent
                && res.metrics == reference.metrics
                && format!("{:?}", res.history) == format!("{:?}", reference.history);
            assert!(identical, "n={n} threads={threads}: parallel run diverged from sequential");
            metrics.insert(format!("par.t{threads}.n{n}.identical"), identical as u64);
            let sim_secs = res.profiler.report().phase_secs("simulate");
            let (busy, wait) = res.worker_stats.iter().fold((0u64, 0u64), |(b, w), s| {
                (b + s.busy_micros.sum(), w + s.barrier_wait_micros.sum())
            });
            let barrier_pct = if busy + wait > 0 {
                format!("{:.0}%", 100.0 * wait as f64 / (busy + wait) as f64)
            } else {
                "-".into()
            };
            table.row(vec![
                n.to_string(),
                threads.to_string(),
                res.steps.to_string(),
                format!("{:.0}", res.steps as f64 / sim_secs / 1_000.0),
                format!("{:.2}x", ref_secs / sim_secs),
                barrier_pct,
                if identical { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    table
}

/// Thread-scaling sweep of the parallel lemma explorer: same state space,
/// increasing worker counts, verdicts cross-checked against serial. The
/// seed-deterministic exploration counters land in `metrics`.
fn explorer_scaling(cfg: &ExperimentConfig, metrics: &mut MetricMap) -> Table {
    let depth: u32 = if cfg.seeds <= 3 { 40 } else { 60 };
    let repeats: usize = if cfg.seeds <= 3 { 3 } else { 5 };
    let mut table = Table::new(
        "Parallel lemma-explorer scaling (pair model, fixed depth)",
        &[
            "threads",
            "states",
            "kstates/s (mean)",
            "kstates/s (p95)",
            "speedup",
            "steals (mean)",
            "shard conflicts (mean)",
            "agree",
        ],
    );
    let base = ExploreConfig { max_depth: depth, ..Default::default() };
    let serial = explore(&base);
    metrics.insert("explorer.states".into(), serial.states_visited as u64);
    metrics.insert("explorer.transitions".into(), serial.transitions as u64);
    let mut serial_mean = 0.0;
    for &threads in &[1usize, 2, 4, 8] {
        let runs: Vec<_> =
            (0..repeats).map(|_| explore(&ExploreConfig { threads, ..base })).collect();
        let thrpt =
            Summary::of(&runs.iter().map(|r| r.stats.states_per_sec / 1_000.0).collect::<Vec<_>>())
                .expect("non-empty sample");
        let steals =
            Summary::of_u64(&runs.iter().map(|r| r.stats.steals.get()).collect::<Vec<_>>())
                .expect("non-empty sample");
        let conflicts = Summary::of_u64(
            &runs.iter().map(|r| r.stats.shard_conflicts.get()).collect::<Vec<_>>(),
        )
        .expect("non-empty sample");
        if threads == 1 {
            serial_mean = thrpt.mean;
        }
        let agree = runs.iter().all(|r| {
            r.states_visited == serial.states_visited
                && r.transitions == serial.transitions
                && r.clean() == serial.clean()
                && r.deadlocks == serial.deadlocks
        });
        table.row(vec![
            threads.to_string(),
            runs[0].states_visited.to_string(),
            format!("{:.0}", thrpt.mean),
            format!("{:.0}", thrpt.p95),
            format!("{:.2}x", thrpt.mean / serial_mean),
            format!("{:.0}", steals.mean),
            format!("{:.0}", conflicts.mean),
            if agree { "yes".into() } else { "NO".to_string() },
        ]);
    }
    table
}

/// Depth-frontier sweep: how deep the serial engine pushes the pair model
/// and what the visited set costs, row per depth bound. States, transitions,
/// and arena bytes are deterministic; throughput is wall-clock.
fn depth_frontier(cfg: &ExperimentConfig, metrics: &mut MetricMap) -> Table {
    let depths: &[u32] = if cfg.seeds <= 3 { &[32, 48, 56] } else { &[32, 48, 64, 80] };
    let mut table = Table::new(
        "Serial explorer depth frontier (pair model, fingerprinted store)",
        &["depth", "states", "transitions", "kstates/s", "arena KiB", "bytes/state"],
    );
    for &depth in depths {
        let r = explore(&ExploreConfig { max_depth: depth, ..Default::default() });
        assert!(r.clean(), "frontier row at depth {depth} found violations: {:?}", r.violations);
        metrics.insert(format!("frontier.d{depth}.states"), r.states_visited as u64);
        metrics.insert(format!("frontier.d{depth}.transitions"), r.transitions);
        metrics.insert(format!("frontier.d{depth}.arena_bytes"), r.stats.arena_bytes);
        table.row(vec![
            depth.to_string(),
            r.states_visited.to_string(),
            r.transitions.to_string(),
            format!("{:.0}", r.stats.states_per_sec / 1_000.0),
            format!("{:.1}", r.stats.arena_bytes as f64 / 1024.0),
            format!("{:.1}", r.stats.arena_bytes as f64 / r.states_visited as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::parse_frac;

    #[test]
    fn e8_small_sizes_correct() {
        // Exercise both pipeline modes at debug-friendly sizes: post-hoc
        // below the threshold, streaming+batching at and above it (the
        // release-profile sweep raises the threshold to n=32/64).
        let cfg = ExperimentConfig { seeds: 2 };
        let mut metrics = MetricMap::new();
        let table = scale_table(&cfg, &[2, 4, 8], 8, &mut metrics);
        for row in &table.rows {
            let (a, t) = parse_frac(&row[4]);
            assert_eq!(a, t, "accuracy failed at scale: {row:?}");
            let (c, t) = parse_frac(&row[5]);
            assert_eq!(c, t, "completeness failed at scale: {row:?}");
        }
        assert_eq!(table.rows[0][3], "post-hoc");
        assert_eq!(table.rows[2][3], "streaming+batch");
        assert!(metrics.keys().any(|k| k.ends_with(".sim_steps_total")));
        assert!(metrics.keys().any(|k| k.ends_with(".peak_resident_entries_max")));
        assert_eq!(metrics["n8.streaming"], 1);
        assert_eq!(metrics["n2.streaming"], 0);
        assert!(metrics["n8.envelopes_sent_total"] > 0);
        assert_eq!(metrics["n2.envelopes_sent_total"], metrics["n2.messages_sent_total"]);
    }

    #[test]
    fn e8_streaming_rows_hold_less_than_a_trace() {
        // At the same size, the streaming row's resident entries must be far
        // below the post-hoc row's trace length — the pipeline's whole point.
        let cfg = ExperimentConfig { seeds: 1 };
        let mut m_posthoc = MetricMap::new();
        let mut m_stream = MetricMap::new();
        let posthoc = scale_table(&cfg, &[8], 9, &mut m_posthoc);
        let streamed = scale_table(&cfg, &[8], 8, &mut m_stream);
        let peak = |t: &Table| t.rows[0][9].parse::<u64>().unwrap();
        assert!(
            peak(&streamed) * 10 < peak(&posthoc),
            "streaming {} vs post-hoc {} resident entries",
            peak(&streamed),
            peak(&posthoc)
        );
        // Streaming resident state is O(pairs + changes), not O(horizon).
        assert_eq!(
            m_stream["n8.peak_resident_entries_max"],
            64 + m_stream["n8.history_changes_total"]
        );
    }

    #[test]
    fn e8_parallel_frontier_is_identical_at_every_thread_count() {
        // Same machinery as the release-profile parallel frontier, at sizes
        // a debug test can afford. Every row asserts in-process that the
        // parallel run reproduces the sequential one byte for byte; here we
        // also pin the exported keyspace and the table shape.
        let mut metrics = MetricMap::new();
        let table = parallel_frontier(&[(8, 256)], 2, &mut metrics);
        assert_eq!(table.rows.len(), 4, "one row per thread count");
        for row in &table.rows {
            assert_eq!(row[6], "yes", "identical column: {row:?}");
        }
        assert!(metrics["par.n8.sim_steps_total"] > 0);
        for t in [1u64, 2, 4, 8] {
            assert_eq!(metrics[&format!("par.t{t}.n8.identical")], 1);
        }
    }

    #[test]
    fn e8_sharded_frontier_differential_holds_at_debug_sizes() {
        // Same machinery as the release-profile n≤1024 frontier, at sizes a
        // debug test can afford. The row asserts internally that streaming
        // and post-hoc sharded runs are byte-identical; here we also pin
        // the exported keyspace the CI baseline diff consumes.
        let mut metrics = MetricMap::new();
        let table = frontier_table(&[(8, 256), (12, 128)], 2, &mut metrics);
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert_eq!(row[8], "yes", "differential column: {row:?}");
        }
        for n in [8usize, 12] {
            assert_eq!(metrics[&format!("n{n}.differential_ok")], 1);
            assert_eq!(metrics[&format!("n{n}.shards")], 2);
            assert_eq!(metrics[&format!("n{n}.streaming")], 1);
            assert!(
                metrics[&format!("n{n}.peak_resident_entries_max")] >= (n * n) as u64,
                "peak resident must count the n² timelines"
            );
        }
    }

    #[test]
    fn e8_depth_frontier_grows_monotonically() {
        let mut metrics = MetricMap::new();
        let table = depth_frontier(&ExperimentConfig { seeds: 2 }, &mut metrics);
        assert_eq!(table.rows.len(), 3);
        let states: Vec<u64> = table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(states.windows(2).all(|w| w[0] < w[1]), "deeper must see more: {states:?}");
        assert!(metrics.keys().any(|k| k.ends_with(".arena_bytes")));
    }

    #[test]
    fn e8_explorer_sweep_is_deterministic_across_threads() {
        let table = explorer_scaling(&ExperimentConfig { seeds: 2 }, &mut MetricMap::new());
        assert_eq!(table.rows.len(), 4);
        let states = &table.rows[0][1];
        for row in &table.rows {
            assert_eq!(&row[1], states, "state count diverged: {row:?}");
            assert_eq!(row[7], "yes", "verdict diverged from serial: {row:?}");
        }
    }
}
