//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] tree as JSON text. Covers `to_string`,
//! `to_string_pretty`, and `from_str` — the only entry points this
//! workspace uses.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, x, d| write_value(o, x, indent, d),
            '[',
            ']',
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut each: impl FnMut(&mut String, I::Item, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        each(out, item, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                        }
                        other => return Err(Error(format!("unknown escape \\{}", other as char))),
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("bad UTF-8".into()))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at offset {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v: Vec<(u64, bool)> = vec![(0, true), (u64::MAX, false)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, format!("[[0,true],[{},false]]", u64::MAX));
        let back: Vec<(u64, bool)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_strings_with_escapes() {
        let s: String = from_str("\"a\\n\\\"b\\u0041\"").unwrap();
        assert_eq!(s, "a\n\"bA");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
    }
}
