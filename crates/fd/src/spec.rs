//! Trace-level checkers for failure-detector specifications.
//!
//! A finite recorded run cannot literally certify an "eventually permanently"
//! property; the standard finite-run reading used throughout this repository
//! is: *the property holds on the recorded suffix*, i.e. the suspicion signal
//! has stabilized to the required value by the end of the recording, and the
//! checkers report the stabilization instant plus how many violations (e.g.
//! wrongful-suspicion intervals) occurred before it. Experiments then show
//! these instants are insensitive to the horizon, which is the empirical
//! counterpart of "eventually".

use std::fmt;

use serde::{Deserialize, Serialize};

use dinefd_sim::{BoolTimeline, CrashPlan, ProcessId, Time};

use crate::class::OracleClass;

/// One change of a watcher's suspicion of a subject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdEvent {
    /// When the output changed.
    pub at: Time,
    /// The process whose local detector module changed.
    pub watcher: ProcessId,
    /// The process being monitored.
    pub subject: ProcessId,
    /// The new output: `true` = suspected.
    pub suspected: bool,
}

/// The complete suspicion history of a run: one boolean timeline per ordered
/// `(watcher, subject)` pair.
///
/// ```
/// use dinefd_fd::{OracleClass, SuspicionHistory};
/// use dinefd_sim::{CrashPlan, ProcessId, Time};
///
/// let (p0, p1) = (ProcessId(0), ProcessId(1));
/// let plan = CrashPlan::one(p1, Time(50));
/// let mut h = SuspicionHistory::new(2, true); // the reduction starts suspecting
/// h.record(Time(5), p0, p1, false);           // first trust
/// h.record(Time(20), p0, p1, true);           // a wrongful flap…
/// h.record(Time(25), p0, p1, false);          // …corrected
/// h.record(Time(60), p0, p1, true);           // the crash, detected forever
/// h.record(Time(5), p1, p0, false);
///
/// assert_eq!(h.mistake_intervals(p0, p1), 3); // initial + flap + (post-crash interval)
/// let det = h.strong_completeness(&plan).unwrap();
/// assert_eq!(det[0].detected_from, Time(60));
/// assert!(h.classify(&plan).contains(&OracleClass::EventuallyPerfect));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuspicionHistory {
    n: usize,
    timelines: Vec<BoolTimeline>,
    /// `monitored[w*n+s]`: whether the pair `(w, s)` is part of the detector
    /// under test. Checkers skip unmonitored pairs (a scenario may monitor a
    /// subset of ordered pairs).
    monitored: Vec<bool>,
}

/// A violation of a failure-detector specification found in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdViolation {
    /// A crashed subject is not permanently suspected by a correct watcher at
    /// the end of the recording (strong completeness fails).
    NotPermanentlySuspected {
        /// The correct watcher.
        watcher: ProcessId,
        /// The crashed subject.
        subject: ProcessId,
    },
    /// A correct subject is still suspected by a correct watcher at the end
    /// of the recording (eventual strong accuracy fails).
    StillSuspected {
        /// The correct watcher.
        watcher: ProcessId,
        /// The correct subject.
        subject: ProcessId,
    },
    /// A correct subject was suspected at some point (perpetual strong
    /// accuracy fails).
    EverSuspected {
        /// The watcher.
        watcher: ProcessId,
        /// The correct subject.
        subject: ProcessId,
        /// First wrongful-suspicion instant.
        at: Time,
    },
    /// A watcher stopped trusting a subject that had not crashed (trusting
    /// accuracy fails).
    UntrustedWhileLive {
        /// The watcher.
        watcher: ProcessId,
        /// The live subject.
        subject: ProcessId,
        /// The trust→suspect transition instant.
        at: Time,
    },
    /// No correct process is never-suspected (perpetual weak accuracy fails).
    NoImmuneProcess,
}

impl fmt::Display for FdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdViolation::NotPermanentlySuspected { watcher, subject } => {
                write!(f, "{watcher} does not permanently suspect crashed {subject}")
            }
            FdViolation::StillSuspected { watcher, subject } => {
                write!(f, "{watcher} still suspects correct {subject} at end of run")
            }
            FdViolation::EverSuspected { watcher, subject, at } => {
                write!(f, "{watcher} suspected correct {subject} at {at:?}")
            }
            FdViolation::UntrustedWhileLive { watcher, subject, at } => {
                write!(f, "{watcher} stopped trusting live {subject} at {at:?}")
            }
            FdViolation::NoImmuneProcess => {
                write!(f, "no correct process escapes suspicion by every live process")
            }
        }
    }
}

/// Per-pair accuracy data for a correct watcher/correct subject pair.
#[derive(Clone, Copy, Debug)]
pub struct PairAccuracy {
    /// The watcher.
    pub watcher: ProcessId,
    /// The subject.
    pub subject: ProcessId,
    /// Number of wrongful-suspicion intervals.
    pub mistakes: usize,
    /// Instant from which the subject is permanently trusted.
    pub trusted_from: Time,
}

/// Per-pair completeness data for a correct watcher/faulty subject pair.
#[derive(Clone, Copy, Debug)]
pub struct PairDetection {
    /// The watcher.
    pub watcher: ProcessId,
    /// The crashed subject.
    pub subject: ProcessId,
    /// Crash instant.
    pub crashed_at: Time,
    /// Instant from which the subject is permanently suspected.
    pub detected_from: Time,
}

impl SuspicionHistory {
    /// An empty history over `n` processes; every pair starts with the given
    /// initial output (`true` = suspected, matching the paper's reduction,
    /// which initializes `suspect_q` to true; heartbeat detectors start
    /// trusting instead).
    pub fn new(n: usize, initially_suspected: bool) -> Self {
        SuspicionHistory {
            n,
            timelines: (0..n * n).map(|_| BoolTimeline::new(initially_suspected)).collect(),
            monitored: vec![true; n * n],
        }
    }

    /// Restricts the checkers to the given ordered pairs; all other pairs
    /// are treated as out of scope.
    pub fn restrict_to(&mut self, pairs: &[(ProcessId, ProcessId)]) {
        self.monitored = vec![false; self.n * self.n];
        for &(w, s) in pairs {
            self.monitored[w.index() * self.n + s.index()] = true;
        }
    }

    /// Whether the checkers consider the ordered pair `(w, s)`.
    pub fn is_monitored(&self, w: ProcessId, s: ProcessId) -> bool {
        w != s && self.monitored[w.index() * self.n + s.index()]
    }

    /// Builds a history from a stream of output changes (chronological).
    pub fn from_events(
        n: usize,
        initially_suspected: bool,
        events: impl IntoIterator<Item = FdEvent>,
    ) -> Self {
        let mut h = SuspicionHistory::new(n, initially_suspected);
        for e in events {
            h.record(e.at, e.watcher, e.subject, e.suspected);
        }
        h
    }

    /// Records an output change.
    pub fn record(&mut self, at: Time, watcher: ProcessId, subject: ProcessId, suspected: bool) {
        self.timelines[watcher.index() * self.n + subject.index()].set(at, suspected);
    }

    /// Adopts the full timeline rows of the given watchers from `other`,
    /// replacing this history's rows wholesale (monitored flags are left
    /// untouched — they describe the query restriction, not the data).
    ///
    /// This is the deterministic merge for *partitioned* folds: when each
    /// partition has recorded exactly its own watchers' outputs (e.g. one
    /// `HistorySink` per simulation shard, where a watcher's observations
    /// all surface on its own shard), adopting each partition's watcher
    /// rows reassembles the sequential history row for row — rows a
    /// partition never recorded are still at their initial state on both
    /// sides, so wholesale replacement is exact.
    pub fn adopt_watcher_rows(
        &mut self,
        other: &SuspicionHistory,
        watchers: impl IntoIterator<Item = ProcessId>,
    ) {
        assert_eq!(self.n, other.n, "histories must agree on system size");
        for w in watchers {
            let base = w.index() * self.n;
            self.timelines[base..base + self.n]
                .clone_from_slice(&other.timelines[base..base + self.n]);
        }
    }

    /// System size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The suspicion timeline of an ordered pair.
    pub fn timeline(&self, watcher: ProcessId, subject: ProcessId) -> &BoolTimeline {
        &self.timelines[watcher.index() * self.n + subject.index()]
    }

    /// Total number of recorded output changes across all pairs.
    ///
    /// Together with `len()²` this is the history's logical resident size:
    /// a streamed extraction holds `O(n² + change_count)` timeline entries
    /// and nothing else, however long the run was.
    pub fn change_count(&self) -> u64 {
        self.timelines.iter().map(|tl| tl.changes().len() as u64).sum()
    }

    /// Number of wrongful-suspicion intervals of `watcher` about `subject`
    /// (every suspicion interval of a correct subject is wrongful).
    pub fn mistake_intervals(&self, watcher: ProcessId, subject: ProcessId) -> usize {
        // A suspicion interval is a maximal `true` interval; count the
        // rising edges, plus the initial interval if the signal starts true.
        let tl = self.timeline(watcher, subject);
        let mut count = 0;
        let mut cur = tl.initial();
        if cur {
            count += 1;
        }
        for &(_, v) in tl.changes() {
            if v && !cur {
                count += 1;
            }
            cur = v;
        }
        count
    }

    /// **Strong completeness**: every crashed process is (by the end of the
    /// recording) permanently suspected by every correct process.
    pub fn strong_completeness(
        &self,
        plan: &CrashPlan,
    ) -> Result<Vec<PairDetection>, Vec<FdViolation>> {
        let mut detections = Vec::new();
        let mut violations = Vec::new();
        for w in ProcessId::all(self.n) {
            if plan.is_faulty(w) {
                continue;
            }
            for s in ProcessId::all(self.n) {
                if !self.is_monitored(w, s) {
                    continue;
                }
                let Some(crashed_at) = plan.crash_time(s) else { continue };
                match self.timeline(w, s).true_from() {
                    Some(detected_from) => detections.push(PairDetection {
                        watcher: w,
                        subject: s,
                        crashed_at,
                        detected_from,
                    }),
                    None => violations
                        .push(FdViolation::NotPermanentlySuspected { watcher: w, subject: s }),
                }
            }
        }
        if violations.is_empty() {
            Ok(detections)
        } else {
            Err(violations)
        }
    }

    /// **Eventual strong accuracy**: there is a time after which no correct
    /// process is suspected by any correct process. Returns per-pair mistake
    /// counts and trust-stabilization instants.
    pub fn eventual_strong_accuracy(
        &self,
        plan: &CrashPlan,
    ) -> Result<Vec<PairAccuracy>, Vec<FdViolation>> {
        let mut pairs = Vec::new();
        let mut violations = Vec::new();
        for w in ProcessId::all(self.n) {
            if plan.is_faulty(w) {
                continue;
            }
            for s in ProcessId::all(self.n) {
                if !self.is_monitored(w, s) || plan.is_faulty(s) {
                    continue;
                }
                let tl = self.timeline(w, s);
                if tl.value_at_end() {
                    violations.push(FdViolation::StillSuspected { watcher: w, subject: s });
                } else {
                    let trusted_from = tl.changes().last().map_or(Time::ZERO, |&(t, _)| t);
                    pairs.push(PairAccuracy {
                        watcher: w,
                        subject: s,
                        mistakes: self.mistake_intervals(w, s),
                        trusted_from,
                    });
                }
            }
        }
        if violations.is_empty() {
            Ok(pairs)
        } else {
            Err(violations)
        }
    }

    /// **Perpetual strong accuracy** (the `P` accuracy): no process is
    /// suspected *before it crashes* (Chandra–Toueg: false positives are
    /// forbidden even about a process that later turns out to be faulty).
    pub fn perpetual_strong_accuracy(&self, plan: &CrashPlan) -> Result<(), Vec<FdViolation>> {
        let mut violations = Vec::new();
        for w in ProcessId::all(self.n) {
            for s in ProcessId::all(self.n) {
                if !self.is_monitored(w, s) {
                    continue;
                }
                let crash = plan.crash_time(s).unwrap_or(Time::INFINITY);
                let tl = self.timeline(w, s);
                if tl.initial() && crash > Time::ZERO {
                    violations.push(FdViolation::EverSuspected {
                        watcher: w,
                        subject: s,
                        at: Time::ZERO,
                    });
                } else if let Some(&(t, _)) = tl.changes().iter().find(|&&(t, v)| v && t < crash) {
                    violations.push(FdViolation::EverSuspected { watcher: w, subject: s, at: t });
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// **Perpetual weak accuracy** (the `S` accuracy): some correct process
    /// is never suspected by any live process. Returns such a process.
    pub fn perpetual_weak_accuracy(&self, plan: &CrashPlan) -> Result<ProcessId, FdViolation> {
        'candidate: for s in ProcessId::all(self.n) {
            if plan.is_faulty(s) {
                continue;
            }
            for w in ProcessId::all(self.n) {
                if !self.is_monitored(w, s) {
                    continue;
                }
                let w_crash = plan.crash_time(w).unwrap_or(Time::INFINITY);
                let tl = self.timeline(w, s);
                // Any suspicion interval beginning before the watcher's crash
                // counts as suspicion "by a live process".
                let suspected_while_live =
                    tl.initial() || tl.changes().iter().any(|&(t, v)| v && t < w_crash);
                if suspected_while_live {
                    continue 'candidate;
                }
            }
            return Ok(s);
        }
        Err(FdViolation::NoImmuneProcess)
    }

    /// **Eventual weak accuracy** (the ◇S accuracy): eventually some
    /// correct process is no longer suspected by any correct process — on a
    /// finite recording: some correct process whose timelines at all correct
    /// monitored watchers end in "trusted". Returns such a process.
    pub fn eventual_weak_accuracy(&self, plan: &CrashPlan) -> Result<ProcessId, FdViolation> {
        'candidate: for s in ProcessId::all(self.n) {
            if plan.is_faulty(s) {
                continue;
            }
            for w in ProcessId::all(self.n) {
                if !self.is_monitored(w, s) || plan.is_faulty(w) {
                    continue;
                }
                if self.timeline(w, s).value_at_end() {
                    continue 'candidate;
                }
            }
            return Ok(s);
        }
        Err(FdViolation::NoImmuneProcess)
    }

    /// **Trusting accuracy** (the `T` accuracy): (a) every correct process is
    /// eventually permanently trusted by every correct process; (b) whenever
    /// a watcher transitions from trusting to suspecting a subject, the
    /// subject has already crashed.
    pub fn trusting_accuracy(&self, plan: &CrashPlan) -> Result<(), Vec<FdViolation>> {
        let mut violations = Vec::new();
        // (a) is exactly eventual strong accuracy's end condition.
        if let Err(mut v) = self.eventual_strong_accuracy(plan) {
            violations.append(&mut v);
        }
        // (b) trust→suspect transitions only about already-crashed subjects.
        for w in ProcessId::all(self.n) {
            for s in ProcessId::all(self.n) {
                if !self.is_monitored(w, s) {
                    continue;
                }
                let crash = plan.crash_time(s).unwrap_or(Time::INFINITY);
                let tl = self.timeline(w, s);
                // A trust→suspect transition is a change to `true` whose
                // predecessor value was `false`; initial suspicion is not a
                // transition (the oracle never *trusted* yet).
                let mut prev = tl.initial();
                for &(t, v) in tl.changes() {
                    // A change at time zero establishes the detector's
                    // initial output; it is not a trust→suspect transition.
                    if v && !prev && t < crash && t > Time::ZERO {
                        violations.push(FdViolation::UntrustedWhileLive {
                            watcher: w,
                            subject: s,
                            at: t,
                        });
                    }
                    prev = v;
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Which oracle classes this recorded run is consistent with.
    pub fn classify(&self, plan: &CrashPlan) -> Vec<OracleClass> {
        let mut classes = Vec::new();
        let complete = self.strong_completeness(plan).is_ok();
        if !complete {
            return classes;
        }
        if self.perpetual_strong_accuracy(plan).is_ok() {
            classes.push(OracleClass::Perfect);
        }
        if self.eventual_strong_accuracy(plan).is_ok() {
            classes.push(OracleClass::EventuallyPerfect);
        }
        if self.perpetual_weak_accuracy(plan).is_ok() {
            classes.push(OracleClass::Strong);
        }
        if self.eventual_weak_accuracy(plan).is_ok() {
            classes.push(OracleClass::EventuallyStrong);
        }
        if self.trusting_accuracy(plan).is_ok() {
            classes.push(OracleClass::Trusting);
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// p0 watches p1 (faulty, crashes at 50): suspicion flaps twice, then
    /// permanent from t=60.
    fn completeness_history() -> (SuspicionHistory, CrashPlan) {
        let mut h = SuspicionHistory::new(2, true);
        h.record(Time(5), p(0), p(1), false);
        h.record(Time(10), p(0), p(1), true);
        h.record(Time(12), p(0), p(1), false);
        h.record(Time(60), p(0), p(1), true);
        (h, CrashPlan::one(p(1), Time(50)))
    }

    #[test]
    fn strong_completeness_detects_permanence() {
        let (h, plan) = completeness_history();
        let report = h.strong_completeness(&plan).unwrap();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].detected_from, Time(60));
        assert_eq!(report[0].crashed_at, Time(50));
    }

    #[test]
    fn strong_completeness_fails_if_trusting_at_end() {
        let mut h = SuspicionHistory::new(2, true);
        h.record(Time(70), p(0), p(1), false);
        let plan = CrashPlan::one(p(1), Time(50));
        let errs = h.strong_completeness(&plan).unwrap_err();
        assert_eq!(
            errs,
            vec![FdViolation::NotPermanentlySuspected { watcher: p(0), subject: p(1) }]
        );
    }

    #[test]
    fn eventual_strong_accuracy_counts_mistakes() {
        // Both correct; p0 wrongfully suspects p1 twice (initial + one flap).
        let mut h = SuspicionHistory::new(2, true);
        h.record(Time(5), p(0), p(1), false);
        h.record(Time(10), p(0), p(1), true);
        h.record(Time(20), p(0), p(1), false);
        h.record(Time(3), p(1), p(0), false);
        let plan = CrashPlan::none();
        let report = h.eventual_strong_accuracy(&plan).unwrap();
        let a01 = report.iter().find(|r| r.watcher == p(0)).unwrap();
        assert_eq!(a01.mistakes, 2);
        assert_eq!(a01.trusted_from, Time(20));
        let a10 = report.iter().find(|r| r.watcher == p(1)).unwrap();
        assert_eq!(a10.mistakes, 1); // just the initial suspicion
        assert_eq!(a10.trusted_from, Time(3));
    }

    #[test]
    fn eventual_strong_accuracy_fails_when_suspicion_persists() {
        let mut h = SuspicionHistory::new(2, true);
        h.record(Time(3), p(1), p(0), false);
        // p0 never stops suspecting p1.
        let errs = h.eventual_strong_accuracy(&CrashPlan::none()).unwrap_err();
        assert_eq!(errs, vec![FdViolation::StillSuspected { watcher: p(0), subject: p(1) }]);
    }

    #[test]
    fn perpetual_strong_accuracy_requires_zero_mistakes() {
        // Initially trusting, never suspects: P-accurate.
        let h = SuspicionHistory::new(2, false);
        assert!(h.perpetual_strong_accuracy(&CrashPlan::none()).is_ok());
        // One wrongful suspicion breaks it.
        let mut h = SuspicionHistory::new(2, false);
        h.record(Time(4), p(0), p(1), true);
        h.record(Time(6), p(0), p(1), false);
        let errs = h.perpetual_strong_accuracy(&CrashPlan::none()).unwrap_err();
        assert_eq!(
            errs,
            vec![FdViolation::EverSuspected { watcher: p(0), subject: p(1), at: Time(4) }]
        );
    }

    #[test]
    fn perpetual_strong_accuracy_allows_suspecting_faulty() {
        let mut h = SuspicionHistory::new(2, false);
        h.record(Time(60), p(0), p(1), true);
        let plan = CrashPlan::one(p(1), Time(50));
        assert!(h.perpetual_strong_accuracy(&plan).is_ok());
    }

    #[test]
    fn perpetual_strong_accuracy_rejects_suspicion_before_crash() {
        // Chandra–Toueg strong accuracy: no process is suspected BEFORE it
        // crashes — even a process that does crash later.
        let mut h = SuspicionHistory::new(2, false);
        h.record(Time(40), p(0), p(1), true);
        let plan = CrashPlan::one(p(1), Time(50));
        let errs = h.perpetual_strong_accuracy(&plan).unwrap_err();
        assert_eq!(
            errs,
            vec![FdViolation::EverSuspected { watcher: p(0), subject: p(1), at: Time(40) }]
        );
    }

    #[test]
    fn weak_accuracy_finds_immune_process() {
        // 3 processes, all correct; everyone suspects p1 once, nobody ever
        // suspects p2... but p0 is suspected by p1.
        let mut h = SuspicionHistory::new(3, false);
        h.record(Time(2), p(0), p(1), true);
        h.record(Time(4), p(1), p(0), true);
        assert_eq!(h.perpetual_weak_accuracy(&CrashPlan::none()).unwrap(), p(2));
    }

    #[test]
    fn weak_accuracy_fails_when_everyone_suspected() {
        let mut h = SuspicionHistory::new(2, false);
        h.record(Time(2), p(0), p(1), true);
        h.record(Time(4), p(1), p(0), true);
        assert_eq!(
            h.perpetual_weak_accuracy(&CrashPlan::none()),
            Err(FdViolation::NoImmuneProcess)
        );
    }

    #[test]
    fn trusting_accuracy_rejects_untrust_of_live_process() {
        // Trust then suspect a live process: T violation even if it later
        // re-trusts permanently.
        let mut h = SuspicionHistory::new(2, false);
        h.record(Time(5), p(0), p(1), true);
        h.record(Time(9), p(0), p(1), false);
        h.record(Time(2), p(1), p(0), false);
        let errs = h.trusting_accuracy(&CrashPlan::none()).unwrap_err();
        assert!(errs.contains(&FdViolation::UntrustedWhileLive {
            watcher: p(0),
            subject: p(1),
            at: Time(5)
        }));
    }

    #[test]
    fn trusting_accuracy_allows_untrust_after_crash() {
        let mut h = SuspicionHistory::new(2, false);
        h.record(Time(60), p(0), p(1), true);
        let plan = CrashPlan::one(p(1), Time(50));
        assert!(h.trusting_accuracy(&plan).is_ok());
    }

    #[test]
    fn trusting_accuracy_allows_initial_suspicion() {
        // Starting suspected and then trusting forever is T-consistent:
        // the initial suspicion is not a trust→suspect transition.
        let mut h = SuspicionHistory::new(2, true);
        h.record(Time(5), p(0), p(1), false);
        h.record(Time(5), p(1), p(0), false);
        assert!(h.trusting_accuracy(&CrashPlan::none()).is_ok());
    }

    #[test]
    fn classify_diamond_p_run() {
        // Finite mistakes then convergence, completeness on faulty process.
        let mut h = SuspicionHistory::new(3, true);
        let plan = CrashPlan::one(p(2), Time(40));
        // Correct pair (0,1): initial suspicion cleared, one flap.
        h.record(Time(5), p(0), p(1), false);
        h.record(Time(8), p(0), p(1), true);
        h.record(Time(11), p(0), p(1), false);
        h.record(Time(5), p(1), p(0), false);
        // Faulty subject p2: permanently suspected after crash.
        h.record(Time(6), p(0), p(2), false);
        h.record(Time(45), p(0), p(2), true);
        h.record(Time(6), p(1), p(2), false);
        h.record(Time(50), p(1), p(2), true);
        let classes = h.classify(&plan);
        assert!(classes.contains(&OracleClass::EventuallyPerfect));
        assert!(!classes.contains(&OracleClass::Perfect)); // flap at t=8
        assert!(!classes.contains(&OracleClass::Trusting)); // flap = untrust while live
    }

    #[test]
    fn classify_perfect_run() {
        let mut h = SuspicionHistory::new(2, false);
        let plan = CrashPlan::one(p(1), Time(40));
        h.record(Time(45), p(0), p(1), true);
        let classes = h.classify(&plan);
        assert!(classes.contains(&OracleClass::Perfect));
        assert!(classes.contains(&OracleClass::EventuallyPerfect));
        assert!(classes.contains(&OracleClass::Trusting));
        assert!(classes.contains(&OracleClass::Strong));
    }

    #[test]
    fn mistake_intervals_counts_initial_interval() {
        let mut h = SuspicionHistory::new(2, true);
        h.record(Time(5), p(0), p(1), false);
        assert_eq!(h.mistake_intervals(p(0), p(1)), 1);
        h.record(Time(7), p(0), p(1), true);
        h.record(Time(9), p(0), p(1), false);
        assert_eq!(h.mistake_intervals(p(0), p(1)), 2);
    }
}
