//! The paper's Section 2 motivation: duty-cycle scheduling in a wireless
//! sensor network.
//!
//! A grid of coverage cells; neighboring sensors share a cell and should not
//! be on duty simultaneously (redundant coverage wastes energy, but harms
//! only performance — the recoverable-mistake setting ◇WX models). Sensors
//! die as batteries deplete; wait-freedom guarantees a live volunteer always
//! eventually gets on duty, so coverage survives crashes.
//!
//! ```sh
//! cargo run --example wsn_duty_cycle
//! ```

use std::rc::Rc;

use dinefd::dining::driver::{collect_history, DiningDriverNode, Workload};
use dinefd::dining::wfdx::WfDxDining;
use dinefd::prelude::*;
use dinefd::sim::SplitMix64;

fn main() {
    // 3×4 sensor field; edges are shared coverage cells.
    let graph = ConflictGraph::grid(3, 4);
    let n = graph.len();
    println!("sensor field: 3×4 grid, {n} sensors, {} shared cells", graph.edge_count());

    // Batteries: three sensors deplete during the mission.
    let crashes = CrashPlan::one(ProcessId(1), Time(6_000))
        .and(ProcessId(6), Time(14_000))
        .and(ProcessId(10), Time(22_000));

    // The underlying ◇P for the duty scheduler: converges at t=2500.
    let mut rng = SplitMix64::new(7);
    let oracle = InjectedOracle::diamond_p(n, crashes.clone(), 60, Time(2_500), 3, 200, &mut rng);
    let fd: Rc<dyn FdQuery> = Rc::new(oracle);

    // "On duty" = eating; volunteers cycle duty shifts continuously.
    let duty = Workload { think_lo: 10, think_hi: 60, eat_lo: 40, eat_hi: 120, meals: None };
    let nodes: Vec<DiningDriverNode> = ProcessId::all(n)
        .map(|p| {
            DiningDriverNode::new(
                Box::new(WfDxDining::new(p, graph.neighbors(p))),
                Rc::clone(&fd),
                duty,
            )
        })
        .collect();
    let horizon = Time(40_000);
    let cfg = WorldConfig::new(7).crashes(crashes.clone()).delays(DelayModel::harsh());
    let mut world = World::new(nodes, cfg);
    world.run_until(horizon);
    let mut history = collect_history(n, world.trace(), 0);
    history.set_horizon(horizon);

    // Redundant coverage = neighbors on duty simultaneously (a ◇WX mistake:
    // energy wasted, correctness unharmed).
    let overlaps = history.exclusion_violations(&graph, &crashes);
    let wasted: u64 = overlaps.iter().map(|v| v.to - v.from).sum();
    let last = history.wx_converged_from(&graph, &crashes);
    println!(
        "redundant-coverage episodes: {} (total {} sensor-ticks wasted), none after t={}",
        overlaps.len(),
        wasted,
        last
    );

    // Coverage liveness: every surviving volunteer keeps getting duty shifts.
    match history.wait_freedom(&crashes, 5_000) {
        Ok(()) => println!("wait-freedom holds: no live volunteer was ever locked out"),
        Err(starved) => println!("COVERAGE GAP: {starved:?}"),
    }
    for p in crashes.correct(n) {
        let shifts = history.session_count(p);
        assert!(shifts > 20, "{p} served only {shifts} shifts");
    }
    let total: usize = crashes.correct(n).iter().map(|&p| history.session_count(p)).sum();
    println!(
        "duty shifts served by the {} surviving sensors: {} (battery deaths at t=6k, 14k, 22k)",
        crashes.correct(n).len(),
        total
    );
    println!("⇒ scheduling mistakes were finite and only cost energy; coverage never failed.");
}
