//! Regenerates every experiment table in `EXPERIMENTS.md`.
//!
//! Usage: `tables [--quick] [--json] [e1 e2 …]` — no ids = run everything;
//! `--json` emits one JSON document with every report instead of markdown.

use dinefd_bench::experiments::{run_by_id, ALL};
use dinefd_bench::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let ids: Vec<&str> = if ids.is_empty() { ALL.to_vec() } else { ids };
    if !json {
        println!(
            "# dinefd experiment tables ({} profile, {} seeds/config)\n",
            if quick { "quick" } else { "full" },
            cfg.seeds
        );
    }
    let mut reports = Vec::new();
    for id in ids {
        let started = std::time::Instant::now();
        match run_by_id(id, &cfg) {
            Some(report) => {
                if json {
                    reports.push((id, report));
                } else {
                    println!("{report}");
                }
                eprintln!("[{id} done in {:.1?}]", started.elapsed());
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    if json {
        let doc: std::collections::BTreeMap<&str, _> = reports.into_iter().collect();
        println!("{}", serde_json::to_string_pretty(&doc).expect("serializable"));
    }
}
