//! Ready-made scenario assembly: pick a black box, an underlying oracle, a
//! fault/delay environment — get back the extracted detector's history.
//!
//! This is the API the examples, integration tests, and the experiment
//! harness (`dinefd-bench`) all drive.

use std::rc::Rc;
use std::sync::{Arc, Mutex};

use dinefd_dining::abstract_dining::AbstractDining;
use dinefd_dining::delayed::DelayedConvergenceDining;
use dinefd_dining::ftme::FtmeDining;
use dinefd_dining::hygienic::HygienicDining;
use dinefd_dining::unfair::UnfairDining;
use dinefd_dining::wfdx::WfDxDining;
use dinefd_dining::DiningParticipant;
use dinefd_fd::SuspicionHistory as FdHistory;
use dinefd_fd::{FdQuery, InjectedOracle, SuspicionHistory};
use dinefd_sim::{
    CrashPlan, DelayModel, MetricMap, ObsSink, ProcessId, Profiler, QueueBackend, ShardedWorld,
    SplitMix64, Time, Trace, WorkerStats, World, WorldConfig,
};

use crate::detector::{suspicion_history, HistorySink, PairTimelines};
use crate::host::{DxEndpoint, RedMsg, RedObs, ReductionNode};

/// Which WF-◇WX (or WX) black box the reduction runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlackBox {
    /// The ◇P fork algorithm (\[12\]-style) — the canonical WF-◇WX solution.
    WfDx,
    /// Crash-oblivious Chandy–Misra (NOT wait-free; negative baselines).
    Hygienic,
    /// The Section 3 pathological-but-legal service; exclusivity starts only
    /// after `convergence` *and* after all pre-convergence eaters exit.
    Delayed {
        /// Modelled internal-◇P convergence instant.
        convergence: Time,
    },
    /// Spec-constrained adversarial service; exclusive from `convergence`.
    Abstract {
        /// Modelled internal-◇P convergence instant.
        convergence: Time,
    },
    /// Perpetual-WX (FTME) service — for the Section 9 T-extraction.
    Ftme,
    /// Legal service with escalating unfairness toward the watcher (the
    /// §5.1 remark; used by the single-instance ablation, E9).
    Unfair {
        /// Modelled internal-◇P convergence instant.
        convergence: Time,
    },
}

/// Which oracle the *black box* consumes (the reduction itself is
/// oracle-free).
#[derive(Clone, Copy, Debug)]
pub enum OracleSpec {
    /// Perfect detector with the given detection lag.
    Perfect {
        /// Ticks between a crash and its detection.
        lag: u64,
    },
    /// ◇P with random mistakes before `convergence`.
    DiamondP {
        /// Detection lag for real crashes.
        lag: u64,
        /// No wrongful suspicions at or after this instant.
        convergence: Time,
        /// Max wrongful-suspicion intervals per ordered pair.
        max_mistakes: u64,
        /// Max length of each interval.
        max_len: u64,
    },
    /// Trusting oracle: initial distrust ending by `trust_by`, then accurate.
    Trusting {
        /// Detection lag for real crashes.
        lag: u64,
        /// All initial distrust ends by this instant.
        trust_by: Time,
    },
}

impl OracleSpec {
    /// Materializes the oracle for a run.
    pub fn build(self, n: usize, crashes: CrashPlan, rng: &mut SplitMix64) -> InjectedOracle {
        match self {
            OracleSpec::Perfect { lag } => InjectedOracle::perfect(n, crashes, lag),
            OracleSpec::DiamondP { lag, convergence, max_mistakes, max_len } => {
                InjectedOracle::diamond_p(n, crashes, lag, convergence, max_mistakes, max_len, rng)
            }
            OracleSpec::Trusting { lag, trust_by } => {
                InjectedOracle::trusting(n, crashes, lag, trust_by, rng)
            }
        }
    }
}

/// Full description of one extraction run.
#[derive(Debug)]
pub struct Scenario {
    /// System size.
    pub n: usize,
    /// Ordered monitoring pairs; empty = all ordered pairs.
    pub pairs: Vec<(ProcessId, ProcessId)>,
    /// The black box under the reduction.
    pub black_box: BlackBox,
    /// The oracle consumed by the black box.
    pub oracle: OracleSpec,
    /// Root seed.
    pub seed: u64,
    /// Channel delays.
    pub delays: DelayModel,
    /// Crash schedule.
    pub crashes: CrashPlan,
    /// Run length.
    pub horizon: Time,
    /// Use the hardened (sequence-tagged) ping/ack variant.
    pub strict_seq: bool,
    /// Self-tick period of the reduction nodes (scheduling granularity).
    pub tick_every: u64,
    /// Fold the suspicion history online through a
    /// [`crate::detector::HistorySink`] instead of materializing
    /// observation events in the trace: `O(pairs + changes)` resident
    /// memory, but [`ExtractionResult::pair_timelines`] becomes empty.
    pub streaming: bool,
    /// Coalesce each step's per-destination sends into single wire
    /// envelopes (one delay draw per envelope; FIFO within). Off by
    /// default — it changes delay sampling, hence schedules, under
    /// stochastic delay models.
    pub batch_envelopes: bool,
    /// Run on a [`ShardedWorld`] partitioned into this many shards instead
    /// of a classic [`World`]. `0` (the default) means the classic world;
    /// any `k ≥ 1` selects the sharded family, whose schedules are
    /// shard-count invariant but differ from the classic world's (the
    /// sharded family draws per-sender delay streams). Requires a cloneable
    /// delay model (everything but `Scripted`).
    pub shards: usize,
    /// Event-queue backend of the classic world (ignored by the sharded
    /// family, which always runs per-shard timer wheels). Wheel and heap
    /// produce byte-identical runs; the knob exists for differential
    /// assertion.
    pub queue: QueueBackend,
    /// Worker threads for the sharded family: with `threads ≥ 2` and
    /// `shards ≥ 2` the run executes on the simulator's shard-worker pool
    /// behind its deterministic barrier merge (byte-identical results for
    /// any thread count), and streaming extraction folds one
    /// [`HistorySink`] per shard, merged deterministically at the end.
    /// Ignored by the classic world.
    pub threads: usize,
}

impl Scenario {
    /// A single-pair scenario (`p0` watches `p1`) with sensible defaults.
    pub fn pair(black_box: BlackBox, seed: u64) -> Self {
        Scenario {
            n: 2,
            pairs: vec![(ProcessId(0), ProcessId(1))],
            black_box,
            oracle: OracleSpec::DiamondP {
                lag: 20,
                convergence: Time(2_000),
                max_mistakes: 3,
                max_len: 150,
            },
            seed,
            delays: DelayModel::default_async(),
            crashes: CrashPlan::none(),
            horizon: Time(40_000),
            strict_seq: false,
            tick_every: 4,
            streaming: false,
            batch_envelopes: false,
            shards: 0,
            queue: QueueBackend::default(),
            threads: 1,
        }
    }

    /// An all-ordered-pairs scenario over `n` processes.
    pub fn all_pairs(n: usize, black_box: BlackBox, seed: u64) -> Self {
        let mut sc = Scenario::pair(black_box, seed);
        sc.n = n;
        sc.pairs = all_ordered_pairs(n);
        sc
    }

    /// Builds the extraction run a scenario-DSL document describes: the
    /// `[sim]` section supplies size, seed, horizon, delay model and crash
    /// plan; `[model]` contributes the `strict_seq` hardening knob (the
    /// other `[model]` keys parameterize the explorer/fuzzer engines, which
    /// read the same document through
    /// `dinefd_explore::ExploreConfig::from_scenario`).
    pub fn from_dsl(doc: &dinefd_sim::scenario_dsl::Scenario, black_box: BlackBox) -> Self {
        let mut sc = Scenario::all_pairs(doc.sim.n as usize, black_box, doc.sim.seed);
        sc.delays = doc.sim.delay_model();
        sc.crashes = doc.sim.crash_plan();
        sc.horizon = Time(doc.sim.horizon);
        sc.strict_seq = doc.model.strict_seq;
        sc.threads = doc.sim.threads as usize;
        sc
    }
}

/// All ordered pairs `(w, s)`, `w ≠ s`, over `n` processes.
pub fn all_ordered_pairs(n: usize) -> Vec<(ProcessId, ProcessId)> {
    let mut out = Vec::with_capacity(n * (n - 1));
    for w in ProcessId::all(n) {
        for s in ProcessId::all(n) {
            if w != s {
                out.push((w, s));
            }
        }
    }
    out
}

/// Everything measured in one extraction run.
#[derive(Debug)]
pub struct ExtractionResult {
    /// The extracted detector's suspicion history.
    pub history: SuspicionHistory,
    /// The raw trace. In post-hoc mode observations are always present; in
    /// streaming mode they are folded into `history` as they happen and the
    /// trace carries none (so [`ExtractionResult::pair_timelines`] is empty).
    pub trace: Trace<RedMsg, RedObs>,
    /// Whether the history was folded online (see [`Scenario::streaming`]).
    pub streaming: bool,
    /// Logical resident size of the extracted history in timeline entries
    /// ([`SuspicionHistory::change_count`]); with `n²` initial outputs this
    /// is the whole streaming-mode memory footprint of extraction.
    pub history_changes: u64,
    /// The run's crash plan (for the spec checkers).
    pub crashes: CrashPlan,
    /// System size.
    pub n: usize,
    /// Run length.
    pub horizon: Time,
    /// Total atomic steps executed.
    pub steps: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Estimated resident bytes of the reduction nodes' pair state at
    /// construction (summed [`ReductionNode::resident_bytes`]); divide by
    /// the pair count for the bytes/pair scaling curves. Layout-dependent,
    /// so report it outside any determinism-diffed section.
    pub node_resident_bytes: u64,
    /// Full simulator metric export for the run (counters, queue-depth
    /// high-water, delay histogram), key-sorted and seed-deterministic.
    pub metrics: MetricMap,
    /// Wall-clock profiler with `simulate` and `extract` phases recorded;
    /// callers may time further phases (e.g. spec checking) on it before
    /// calling [`Profiler::report`].
    pub profiler: Profiler,
    /// Per-worker busy/barrier-wait wall-clock from parallel sharded runs;
    /// empty for classic or single-threaded runs. Wall-clock is inherently
    /// nondeterministic — report it outside any determinism-diffed section.
    pub worker_stats: Vec<WorkerStats>,
}

impl ExtractionResult {
    /// Thread timelines of one pair (Fig. 1 material).
    pub fn pair_timelines(&self, watcher: ProcessId, subject: ProcessId) -> PairTimelines {
        PairTimelines::collect(&self.trace, watcher, subject, self.horizon)
    }
}

/// The dining-participant factory implementing a [`BlackBox`] choice.
pub fn factory_for(black_box: BlackBox) -> impl Fn(DxEndpoint) -> Box<dyn DiningParticipant> {
    move |ep: DxEndpoint| -> Box<dyn DiningParticipant> {
        match black_box {
            BlackBox::WfDx => Box::new(WfDxDining::new(ep.me, &[ep.peer])),
            BlackBox::Hygienic => Box::new(HygienicDining::new(ep.me, &[ep.peer])),
            // Coordinator at the watcher: the pair's output is only consumed
            // while the watcher lives, so a watcher-side coordinator keeps
            // every meaningful instance live.
            BlackBox::Delayed { convergence } => {
                Box::new(DelayedConvergenceDining::new(ep.me, ep.watcher, convergence))
            }
            BlackBox::Abstract { convergence } => {
                Box::new(AbstractDining::new(ep.me, ep.watcher, convergence))
            }
            BlackBox::Ftme => Box::new(FtmeDining::new(ep.me, &[ep.peer])),
            BlackBox::Unfair { convergence } => {
                Box::new(UnfairDining::new(ep.me, ep.watcher, convergence))
            }
        }
    }
}

/// Runs one extraction scenario to its horizon.
///
/// ```
/// use dinefd_core::{run_extraction, BlackBox, Scenario};
/// use dinefd_sim::{CrashPlan, ProcessId, Time};
///
/// let mut sc = Scenario::pair(BlackBox::WfDx, 7);
/// sc.crashes = CrashPlan::one(ProcessId(1), Time(8_000));
/// let crashes = sc.crashes.clone();
/// let res = run_extraction(sc);
/// // The extracted detector permanently suspects the crashed subject…
/// assert!(res.history.strong_completeness(&crashes).is_ok());
/// // …after finitely many mistakes while it was alive.
/// assert!(res.history.mistake_intervals(ProcessId(0), ProcessId(1)) >= 1);
/// ```
pub fn run_extraction(sc: Scenario) -> ExtractionResult {
    let Scenario {
        n,
        pairs,
        black_box,
        oracle,
        seed,
        delays,
        crashes,
        horizon,
        strict_seq,
        tick_every,
        streaming,
        batch_envelopes,
        shards,
        queue,
        threads,
    } = sc;
    let pairs = if pairs.is_empty() { all_ordered_pairs(n) } else { pairs };
    let mut rng = SplitMix64::new(seed ^ 0xD1CE_F00D);
    let oracle: Arc<dyn FdQuery + Send + Sync> =
        Arc::new(oracle.build(n, crashes.clone(), &mut rng));
    let factory = factory_for(black_box);
    // Pre-group the pair list once (O(P)) instead of letting every node
    // rescan it (O(n·P) ≈ O(n³) total for all-pairs systems — ruinous at
    // n ≥ 1024).
    let mut watch: Vec<Vec<ProcessId>> = vec![Vec::new(); n];
    let mut watched_by: Vec<Vec<ProcessId>> = vec![Vec::new(); n];
    for &(w, s) in &pairs {
        if w != s {
            if w.index() < n {
                watch[w.index()].push(s);
            }
            if s.index() < n {
                watched_by[s.index()].push(w);
            }
        }
    }
    let nodes: Vec<ReductionNode> = ProcessId::all(n)
        .map(|me| {
            let mut node = ReductionNode::from_groups(
                me,
                &watch[me.index()],
                &watched_by[me.index()],
                &factory,
                Arc::clone(&oracle),
                strict_seq,
            );
            node.set_tick_every(tick_every);
            node
        })
        .collect();
    let node_resident_bytes: u64 = nodes.iter().map(|nd| nd.resident_bytes() as u64).sum();
    let mut cfg = WorldConfig::new(seed)
        .delays(delays)
        .crashes(crashes.clone())
        .queue_backend(queue)
        .threads(threads);
    if batch_envelopes {
        cfg = cfg.batch_envelopes();
    }
    let mut profiler = Profiler::new();
    if streaming {
        // Fold observations into the history as the simulator routes them;
        // keep the trace free of observation events so the run's resident
        // footprint is O(pairs + suspicion changes), not O(run length).
        let cfg = cfg.observation_events_off();
        let (steps, messages_sent, metrics, trace, worker_stats, history) = if shards >= 2
            && threads >= 2
        {
            // Parallel sharded run: one sink per shard travels with its
            // worker thread and folds that shard's watcher rows; the
            // merge afterwards reassembles the sequential history row
            // for row (see `SuspicionHistory::adopt_watcher_rows`).
            let handles: Vec<Arc<Mutex<HistorySink>>> =
                (0..shards).map(|_| Arc::new(Mutex::new(HistorySink::new(n, &pairs)))).collect();
            let sinks: Vec<Box<dyn ObsSink<RedObs> + Send>> = handles
                .iter()
                .map(|h| Box::new(Arc::clone(h)) as Box<dyn ObsSink<RedObs> + Send>)
                .collect();
            let mut world = ShardedWorld::try_new_with_shard_sinks(nodes, cfg, shards, sinks)
                .unwrap_or_else(|e| panic!("{e}"));
            profiler.time("simulate", || world.run_until(horizon));
            let stats = world.worker_stats().to_vec();
            let (steps, sent, metrics, trace) =
                (world.steps(), world.messages_sent(), world.metrics_map(), world.into_trace());
            let history = profiler.time("extract", || {
                let mut merged = FdHistory::new(n, true);
                merged.restrict_to(&pairs);
                for (s, handle) in handles.into_iter().enumerate() {
                    let sink = Arc::try_unwrap(handle)
                        .expect("world dropped its sink handles")
                        .into_inner()
                        .expect("sink lock poisoned");
                    merged.adopt_watcher_rows(
                        &sink.finish(),
                        (s..n).step_by(shards).map(ProcessId::from_index),
                    );
                }
                merged
            });
            (steps, sent, metrics, trace, stats, history)
        } else {
            let sink = Rc::new(std::cell::RefCell::new(HistorySink::new(n, &pairs)));
            let handle = Rc::clone(&sink);
            let (steps, sent, metrics, trace) = if shards > 0 {
                let mut world = ShardedWorld::new_with_sink(nodes, cfg, shards, Box::new(handle));
                profiler.time("simulate", || world.run_until(horizon));
                (world.steps(), world.messages_sent(), world.metrics_map(), world.into_trace())
            } else {
                let mut world = World::new_with_sink(nodes, cfg, Box::new(handle));
                profiler.time("simulate", || world.run_until(horizon));
                (world.steps(), world.messages_sent(), world.metrics_map(), world.into_trace())
            };
            let history = profiler.time("extract", || {
                Rc::try_unwrap(sink).expect("world dropped its sink handle").into_inner().finish()
            });
            (steps, sent, metrics, trace, Vec::new(), history)
        };
        let history_changes = history.change_count();
        ExtractionResult {
            history,
            trace,
            streaming: true,
            history_changes,
            crashes,
            n,
            horizon,
            steps,
            messages_sent,
            node_resident_bytes,
            metrics,
            profiler,
            worker_stats,
        }
    } else {
        let (steps, messages_sent, metrics, trace, worker_stats) = if shards > 0 {
            let mut world = ShardedWorld::new(nodes, cfg, shards);
            profiler.time("simulate", || world.run_until(horizon));
            let stats = world.worker_stats().to_vec();
            (world.steps(), world.messages_sent(), world.metrics_map(), world.into_trace(), stats)
        } else {
            let mut world = World::new(nodes, cfg);
            profiler.time("simulate", || world.run_until(horizon));
            (
                world.steps(),
                world.messages_sent(),
                world.metrics_map(),
                world.into_trace(),
                Vec::new(),
            )
        };
        let history = profiler.time("extract", || suspicion_history(n, &trace, &pairs));
        let history_changes = history.change_count();
        ExtractionResult {
            history,
            trace,
            streaming: false,
            history_changes,
            crashes,
            n,
            horizon,
            steps,
            messages_sent,
            node_resident_bytes,
            metrics,
            profiler,
            worker_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinefd_fd::OracleClass;

    #[test]
    fn all_ordered_pairs_counts() {
        assert_eq!(all_ordered_pairs(2).len(), 2);
        assert_eq!(all_ordered_pairs(4).len(), 12);
    }

    #[test]
    fn extraction_over_wfdx_failure_free_converges_to_trust() {
        let sc = Scenario::pair(BlackBox::WfDx, 11);
        let crashes = sc.crashes.clone();
        let res = run_extraction(sc);
        let acc = res.history.eventual_strong_accuracy(&crashes);
        assert!(acc.is_ok(), "accuracy: {:?}", acc.err());
        let acc = acc.unwrap();
        let pair = acc.iter().find(|a| a.watcher == ProcessId(0)).unwrap();
        assert!(pair.trusted_from < res.horizon);
    }

    #[test]
    fn extraction_carries_metrics_and_profile() {
        let sc = Scenario::pair(BlackBox::WfDx, 19);
        let mut res = run_extraction(sc);
        assert_eq!(res.metrics["steps"], res.steps);
        assert_eq!(res.metrics["messages_sent"], res.messages_sent);
        assert!(res.metrics.keys().any(|k| k.starts_with("delay_ticks.")));
        // The caller can attribute its own checking phase, and the closed
        // profile's phases sum exactly to its total.
        res.profiler.time("check", || res.history.strong_completeness(&res.crashes).ok());
        let profile = res.profiler.report();
        assert!(profile.phase_nanos("simulate") > 0);
        assert_eq!(profile.phases.iter().map(|(_, ns)| *ns).sum::<u64>(), profile.total_nanos);
    }

    #[test]
    fn extraction_metrics_deterministic_across_reruns() {
        let run = |seed| {
            let mut sc = Scenario::pair(BlackBox::WfDx, seed);
            sc.crashes = CrashPlan::one(ProcessId(1), Time(8_000));
            run_extraction(sc).metrics
        };
        assert_eq!(run(31), run(31));
    }

    #[test]
    fn extraction_over_wfdx_detects_crash() {
        let mut sc = Scenario::pair(BlackBox::WfDx, 13);
        sc.crashes = CrashPlan::one(ProcessId(1), Time(8_000));
        let crashes = sc.crashes.clone();
        let res = run_extraction(sc);
        let det = res.history.strong_completeness(&crashes).unwrap();
        assert_eq!(det.len(), 1);
        assert!(det[0].detected_from > det[0].crashed_at);
    }

    #[test]
    fn sharded_extraction_is_shard_count_invariant() {
        // The sharded family's schedule must not depend on the shard count:
        // 1 shard is the family's reference, and every k must reproduce its
        // history, step/message counts, and metric export byte-for-byte.
        let run = |shards: usize| {
            let mut sc = Scenario::all_pairs(3, BlackBox::WfDx, 23);
            sc.horizon = Time(6_000);
            sc.crashes = CrashPlan::one(ProcessId(2), Time(3_000));
            sc.shards = shards;
            let res = run_extraction(sc);
            (res.steps, res.messages_sent, format!("{:?}", res.history), res.metrics)
        };
        let reference = run(1);
        for shards in [2, 4] {
            assert_eq!(run(shards), reference, "shards={shards}");
        }
    }

    #[test]
    fn sharded_streaming_matches_sharded_post_hoc() {
        // Streaming folds the same observation stream the post-hoc trace
        // carries, so the extracted histories must agree exactly — also on
        // sharded worlds.
        let run = |streaming: bool| {
            let mut sc = Scenario::all_pairs(3, BlackBox::WfDx, 29);
            sc.horizon = Time(6_000);
            sc.crashes = CrashPlan::one(ProcessId(1), Time(3_000));
            sc.shards = 2;
            sc.streaming = streaming;
            let res = run_extraction(sc);
            (res.steps, res.messages_sent, format!("{:?}", res.history))
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn parallel_extraction_is_byte_identical_to_sequential() {
        // The shard-worker pool's barrier merge must make thread count
        // unobservable end to end: history, counters, and the exported
        // metric map of a parallel extraction reproduce the sequential
        // sharded run byte-for-byte — on both extraction paths, including
        // the per-shard streaming sinks.
        for streaming in [false, true] {
            let run = |shards: usize, threads: usize| {
                let mut sc = Scenario::all_pairs(4, BlackBox::WfDx, 47);
                sc.horizon = Time(6_000);
                sc.crashes = CrashPlan::one(ProcessId(3), Time(3_000));
                sc.shards = shards;
                sc.threads = threads;
                sc.streaming = streaming;
                let res = run_extraction(sc);
                (res.steps, res.messages_sent, format!("{:?}", res.history), res.metrics)
            };
            for shards in [2, 4] {
                let reference = run(shards, 1);
                for threads in [2, 4] {
                    assert_eq!(
                        run(shards, threads),
                        reference,
                        "streaming={streaming} shards={shards} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_extraction_reports_worker_stats() {
        let run = |threads: usize| {
            let mut sc = Scenario::all_pairs(4, BlackBox::WfDx, 53);
            sc.horizon = Time(4_000);
            sc.shards = 4;
            sc.threads = threads;
            run_extraction(sc).worker_stats
        };
        assert!(run(1).is_empty(), "sequential runs carry no worker stats");
        let stats = run(4);
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|w| w.instants.get() > 0));
    }

    #[test]
    fn heap_queue_reproduces_wheel_runs() {
        // The classic world's two queue backends are drop-in replacements:
        // byte-identical histories and metric exports.
        let run = |queue: QueueBackend| {
            let mut sc = Scenario::pair(BlackBox::WfDx, 37);
            sc.horizon = Time(8_000);
            sc.queue = queue;
            let res = run_extraction(sc);
            (res.steps, res.messages_sent, format!("{:?}", res.history), res.metrics)
        };
        assert_eq!(run(QueueBackend::Wheel), run(QueueBackend::Heap));
    }

    #[test]
    fn extraction_reports_resident_bytes() {
        let small = run_extraction(Scenario::pair(BlackBox::WfDx, 41));
        let mut large_sc = Scenario::all_pairs(4, BlackBox::WfDx, 41);
        large_sc.horizon = Time(4_000);
        let large = run_extraction(large_sc);
        assert!(small.node_resident_bytes > 0);
        assert!(large.node_resident_bytes > small.node_resident_bytes);
    }

    #[test]
    fn extraction_over_abstract_box_is_diamond_p() {
        let mut sc = Scenario::all_pairs(3, BlackBox::Abstract { convergence: Time(3_000) }, 17);
        sc.crashes = CrashPlan::one(ProcessId(2), Time(6_000));
        sc.horizon = Time(60_000);
        let crashes = sc.crashes.clone();
        let res = run_extraction(sc);
        let classes = res.history.classify(&crashes);
        assert!(
            classes.contains(&OracleClass::EventuallyPerfect),
            "extracted classes: {classes:?}"
        );
    }
}
