//! Diner phases and legal transitions.

use std::fmt;

/// The four phases of a diner (the paper's Section 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DinerPhase {
    /// Executing independently; may stay here forever.
    Thinking,
    /// Requesting the shared resources.
    Hungry,
    /// In the critical section. Correct diners eat for finite time
    /// (the reduction's subject threads deliberately stretch this — see
    /// the paper's Section 8 discussion).
    Eating,
    /// Relinquishing the resources; always finite for correct diners.
    Exiting,
}

impl DinerPhase {
    /// Whether `self → next` is a legal phase transition.
    ///
    /// The legal cycle is thinking → hungry → eating → exiting → thinking.
    pub fn can_transition_to(self, next: DinerPhase) -> bool {
        use DinerPhase::*;
        matches!(
            (self, next),
            (Thinking, Hungry) | (Hungry, Eating) | (Eating, Exiting) | (Exiting, Thinking)
        )
    }

    /// Compact single-letter code (used by timeline renderers).
    pub fn code(self) -> char {
        match self {
            DinerPhase::Thinking => 't',
            DinerPhase::Hungry => 'h',
            DinerPhase::Eating => 'E',
            DinerPhase::Exiting => 'x',
        }
    }
}

impl fmt::Display for DinerPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DinerPhase::Thinking => "thinking",
            DinerPhase::Hungry => "hungry",
            DinerPhase::Eating => "eating",
            DinerPhase::Exiting => "exiting",
        };
        f.write_str(s)
    }
}

/// Observation recorded whenever a diner changes phase in some dining
/// instance. `instance` distinguishes the many concurrent dining instances a
/// single physical process participates in (the reduction runs two per
/// ordered monitoring pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiningObs {
    /// Which dining instance.
    pub instance: u32,
    /// The new phase.
    pub phase: DinerPhase,
}

#[cfg(test)]
mod tests {
    use super::*;
    use DinerPhase::*;

    #[test]
    fn legal_cycle() {
        assert!(Thinking.can_transition_to(Hungry));
        assert!(Hungry.can_transition_to(Eating));
        assert!(Eating.can_transition_to(Exiting));
        assert!(Exiting.can_transition_to(Thinking));
    }

    #[test]
    fn illegal_jumps_rejected() {
        assert!(!Thinking.can_transition_to(Eating));
        assert!(!Hungry.can_transition_to(Thinking));
        assert!(!Eating.can_transition_to(Hungry));
        assert!(!Exiting.can_transition_to(Eating));
        assert!(!Thinking.can_transition_to(Thinking));
    }

    #[test]
    fn codes_are_distinct() {
        let codes = [Thinking.code(), Hungry.code(), Eating.code(), Exiting.code()];
        let mut dedup = codes.to_vec();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Eating.to_string(), "eating");
        assert_eq!(Thinking.to_string(), "thinking");
    }
}
