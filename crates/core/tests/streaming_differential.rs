//! Differential guarantees of the streaming extraction pipeline.
//!
//! 1. **Streaming ≡ post-hoc**: folding observations online through a
//!    [`dinefd_core::HistorySink`] must produce a [`SuspicionHistory`]
//!    byte-identical (serde_json) to building it from the full trace after
//!    the run — across a seed × black-box × delay-model matrix and under
//!    random scenarios (proptest).
//! 2. **Envelope batching is an encoding, not a semantics change**: with a
//!    fixed delay model (the only regime where batching draws the same
//!    delays as unbatched sends), batching on/off yields identical per-pair
//!    observation sequences and identical extracted histories. Under
//!    stochastic models batching consumes fewer RNG draws, so schedules
//!    legitimately differ; the deterministic metrics still account for
//!    every message.

use dinefd_core::{run_extraction, BlackBox, RedObs, Scenario};
use dinefd_fd::SuspicionHistory;
use dinefd_sim::{CrashPlan, DelayModel, ProcessId, Time};
use proptest::prelude::*;

fn json(h: &SuspicionHistory) -> String {
    serde_json::to_string(h).expect("history serializes")
}

fn delay_model(kind: u8) -> DelayModel {
    match kind % 4 {
        0 => DelayModel::default_async(),
        1 => DelayModel::harsh(),
        2 => DelayModel::Fixed(3),
        _ => DelayModel::partially_synchronous(Time(5_000), 8),
    }
}

fn black_box(kind: u8) -> BlackBox {
    match kind % 3 {
        0 => BlackBox::WfDx,
        1 => BlackBox::Abstract { convergence: Time(2_500) },
        _ => BlackBox::Delayed { convergence: Time(2_500) },
    }
}

/// One scenario, built twice identically except for the toggles.
fn scenario(bb: u8, delays: u8, seed: u64, crash: bool, streaming: bool, batch: bool) -> Scenario {
    let mut sc = Scenario::pair(black_box(bb), seed);
    sc.delays = delay_model(delays);
    if crash {
        sc.crashes = CrashPlan::one(ProcessId(1), Time(9_000));
    }
    sc.horizon = Time(25_000);
    sc.streaming = streaming;
    sc.batch_envelopes = batch;
    sc
}

#[test]
fn streaming_matches_posthoc_across_matrix() {
    for bb in 0..3u8 {
        for delays in 0..4u8 {
            for (seed, crash) in [(11u64, false), (42, true)] {
                let posthoc = run_extraction(scenario(bb, delays, seed, crash, false, false));
                let streamed = run_extraction(scenario(bb, delays, seed, crash, true, false));
                assert_eq!(
                    json(&posthoc.history),
                    json(&streamed.history),
                    "bb={bb} delays={delays} seed={seed} crash={crash}"
                );
                // The sink must not perturb the schedule: every deterministic
                // metric agrees between the two modes.
                assert_eq!(posthoc.metrics, streamed.metrics);
                assert_eq!(posthoc.steps, streamed.steps);
                // Streaming really did skip trace materialization.
                assert!(streamed.streaming);
                assert_eq!(streamed.trace.observations().count(), 0);
                assert!(posthoc.trace.observations().count() > 0);
                assert_eq!(streamed.history_changes, posthoc.history.change_count());
            }
        }
    }
}

/// Per-pair observation sequences `(watcher, obs)` in routing order.
fn obs_sequences(res: &dinefd_core::ExtractionResult) -> Vec<(Time, ProcessId, RedObs)> {
    res.trace.observations().map(|(at, pid, obs)| (at, pid, *obs)).collect()
}

#[test]
fn envelope_batching_preserves_observation_sequences_under_fixed_delays() {
    for bb in 0..3u8 {
        for (seed, crash) in [(7u64, false), (23, true)] {
            let mut plain = scenario(bb, 2, seed, crash, false, false);
            let mut batched = scenario(bb, 2, seed, crash, false, true);
            assert!(matches!(plain.delays, DelayModel::Fixed(_)));
            plain.horizon = Time(20_000);
            batched.horizon = Time(20_000);
            let plain = run_extraction(plain);
            let batched = run_extraction(batched);
            assert_eq!(
                obs_sequences(&plain),
                obs_sequences(&batched),
                "bb={bb} seed={seed} crash={crash}"
            );
            assert_eq!(json(&plain.history), json(&batched.history));
            // Batching coalesced something (the reduction fans out to a peer
            // in bursts) and accounted for every message.
            assert!(batched.metrics["envelopes_sent"] <= batched.metrics["messages_sent"]);
            assert_eq!(
                batched.metrics["envelope_occupancy.count"],
                batched.metrics["envelopes_sent"]
            );
            assert_eq!(batched.metrics["messages_sent"], plain.metrics["messages_sent"]);
        }
    }
}

#[test]
fn envelope_batching_accounts_for_all_messages_under_stochastic_delays() {
    // Schedules differ under stochastic models (fewer delay draws), but the
    // envelope accounting invariants must still hold, and extraction must
    // still converge to a well-formed history.
    let res = run_extraction(scenario(0, 0, 99, false, true, true));
    assert!(res.metrics["envelopes_sent"] > 0);
    assert!(res.metrics["envelopes_sent"] <= res.metrics["messages_sent"]);
    assert_eq!(res.metrics["envelope_occupancy.count"], res.metrics["envelopes_sent"]);
    assert_eq!(res.metrics["envelope_occupancy.sum"], res.metrics["messages_sent"]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: `HistorySink` output equals `suspicion_history` on random
    /// scenarios.
    #[test]
    fn streaming_equals_posthoc_on_random_scenarios(
        bb in 0u8..3,
        delays in 0u8..4,
        seed in any::<u64>(),
        crash in any::<bool>(),
        strict in any::<bool>(),
    ) {
        let mut a = scenario(bb, delays, seed, crash, false, false);
        let mut b = scenario(bb, delays, seed, crash, true, false);
        a.strict_seq = strict;
        b.strict_seq = strict;
        a.horizon = Time(12_000);
        b.horizon = Time(12_000);
        let posthoc = run_extraction(a);
        let streamed = run_extraction(b);
        prop_assert_eq!(json(&posthoc.history), json(&streamed.history));
        prop_assert_eq!(posthoc.metrics, streamed.metrics);
    }

    /// Satellite: batching on/off yields identical per-pair observation
    /// sequences (fixed delays: same draws either way).
    #[test]
    fn batching_equivalence_on_random_fixed_delay_scenarios(
        bb in 0u8..3,
        seed in any::<u64>(),
        crash in any::<bool>(),
    ) {
        let mut a = scenario(bb, 2, seed, crash, false, false);
        let mut b = scenario(bb, 2, seed, crash, false, true);
        a.horizon = Time(12_000);
        b.horizon = Time(12_000);
        let plain = run_extraction(a);
        let batched = run_extraction(b);
        prop_assert_eq!(obs_sequences(&plain), obs_sequences(&batched));
        prop_assert_eq!(json(&plain.history), json(&batched.history));
    }
}
