//! Depth-bounded exhaustive search over the pair model.

use std::collections::HashMap;

use crate::pair_model::{ExploreConfig, PairState, TransitionLabel};

/// Outcome of one exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states_visited: usize,
    /// Transitions traversed.
    pub transitions: u64,
    /// Invariant violations found (empty = all lemmas hold in the explored
    /// region). Each entry carries a short trace prefix for diagnosis.
    pub violations: Vec<String>,
    /// States with no outgoing transition (there should be none).
    pub deadlocks: usize,
    /// Whether the search hit its state budget before exhausting the
    /// depth-bounded region.
    pub truncated: bool,
}

impl ExploreReport {
    /// True when every checked property held everywhere explored.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.deadlocks == 0
    }
}

/// Exhaustively explores all interleavings up to `cfg.max_depth`, checking
/// the paper's safety lemmas at every state and the Theorem-1 closure across
/// every transition.
///
/// The visited map remembers the largest remaining depth each state was
/// expanded with, so re-entering a state with less budget is pruned soundly.
///
/// ```
/// use dinefd_explore::{explore, ExploreConfig};
///
/// let report = explore(&ExploreConfig { max_depth: 12, ..Default::default() });
/// assert!(report.clean(), "lemma violations: {:?}", report.violations);
/// assert!(report.states_visited > 100);
/// ```
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    let initial = PairState::initial(cfg);
    let mut report = ExploreReport {
        states_visited: 0,
        transitions: 0,
        violations: Vec::new(),
        deadlocks: 0,
        truncated: false,
    };
    let mut visited: HashMap<PairState, u32> = HashMap::new();
    // Explicit stack: (state, remaining depth, path label for diagnostics).
    let mut stack: Vec<(PairState, u32, Vec<TransitionLabel>)> = Vec::new();

    if let Some(v) = check_state(&initial, &[]) {
        report.violations.push(v);
    }
    visited.insert(initial.clone(), cfg.max_depth);
    stack.push((initial, cfg.max_depth, Vec::new()));

    while let Some((state, depth, path)) = stack.pop() {
        report.states_visited = visited.len();
        if visited.len() >= cfg.max_states {
            report.truncated = true;
            break;
        }
        if depth == 0 {
            continue;
        }
        let succ = state.successors(cfg);
        if succ.is_empty() {
            report.deadlocks += 1;
            continue;
        }
        for (label, next) in succ {
            report.transitions += 1;
            if let Some(v) = state.check_closure_step(&next) {
                report.violations.push(format!("{v} (after {})", fmt_path(&path, Some(label))));
            }
            let remaining = depth - 1;
            let seen = visited.get(&next).copied();
            if seen.is_some_and(|d| d >= remaining) {
                continue;
            }
            if let Some(v) = check_state(&next, &path) {
                report.violations.push(v);
            }
            visited.insert(next.clone(), remaining);
            let mut next_path = path.clone();
            next_path.push(label);
            stack.push((next, remaining, next_path));
        }
    }
    report.states_visited = visited.len();
    report
}

fn check_state(state: &PairState, path: &[TransitionLabel]) -> Option<String> {
    let v = state.check_invariants();
    if v.is_empty() {
        None
    } else {
        Some(format!("{} (after {})", v.join("; "), fmt_path(path, None)))
    }
}

fn fmt_path(path: &[TransitionLabel], extra: Option<TransitionLabel>) -> String {
    let mut parts: Vec<String> = path.iter().map(|l| format!("{l:?}")).collect();
    if let Some(l) = extra {
        parts.push(format!("{l:?}"));
    }
    if parts.is_empty() {
        "initial state".to_string()
    } else {
        parts.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_exploration_is_clean_lenient() {
        let cfg = ExploreConfig { max_depth: 40, ..Default::default() };
        let report = explore(&cfg);
        assert!(report.clean(), "violations: {:#?}", report.violations);
        assert!(report.states_visited > 3_000, "only {} states", report.states_visited);
        assert!(!report.truncated);
    }

    #[test]
    fn shallow_exploration_is_clean_strict() {
        let cfg = ExploreConfig { max_depth: 40, strict_seq: true, ..Default::default() };
        let report = explore(&cfg);
        assert!(report.clean(), "violations: {:#?}", report.violations);
    }

    #[test]
    fn converged_start_is_clean() {
        let cfg = ExploreConfig {
            max_depth: 11,
            start_converged: true,
            allow_crash: true,
            ..Default::default()
        };
        let report = explore(&cfg);
        assert!(report.clean(), "violations: {:#?}", report.violations);
    }

    #[test]
    fn crash_free_exploration_is_clean_and_smaller() {
        let with = explore(&ExploreConfig { max_depth: 9, ..Default::default() });
        let without =
            explore(&ExploreConfig { max_depth: 9, allow_crash: false, ..Default::default() });
        assert!(with.clean() && without.clean());
        assert!(without.states_visited < with.states_visited);
    }

    #[test]
    fn state_budget_truncates_gracefully() {
        let cfg = ExploreConfig { max_depth: 200, max_states: 2_000, ..Default::default() };
        let report = explore(&cfg);
        assert!(report.truncated);
        assert!(report.violations.is_empty());
    }
}
