//! Sleep-set POR must be *invisible* in every reported figure.
//!
//! The explorers' partial-order reduction (`dinefd_explore::por`) only skips
//! the encode/probe/queue work of delivery successors whose commuted order
//! was already explored — successor enumeration and every invariant/closure
//! check still run in full. This suite is the executable form of that
//! soundness claim: for every seeded bug the mutation-testing matrix knows
//! (subject-machine mutations × wire mutations × both sequence-number
//! modes), a POR run and a full run must agree on the state count, the
//! once-per-state transition count, the deadlock count, and the exact
//! violation message set. Only *representative counterexample paths* may
//! differ (both remain replayable), so the comparison is over `(kind,
//! message)` sets, not rendered strings.
//!
//! The faithful pair model never has a ping and an ack in flight together
//! (its handshake is strictly sequential), so POR finds nothing to skip
//! there — but a subject that keeps pinging (`SkipPingDisable` floods the
//! wire, so pings and acks coexist) and the composed model's fork traffic
//! do give it work, and those are exactly the configurations this suite
//! sweeps.

use dinefd_explore::{
    explore, explore_composed, ComposedConfig, ExploreConfig, ModelMutation, SubjectMutation,
    ViolationKind, ViolationRecord,
};

/// The schedule-independent part of a violation list (paths are
/// representative, not canonical).
fn message_set<L>(records: &[ViolationRecord<L>]) -> Vec<(ViolationKind, &str)> {
    records.iter().map(|r| (r.kind, r.message.as_str())).collect()
}

#[test]
fn por_matches_full_exploration_across_the_mutation_matrix() {
    let subjects = [
        SubjectMutation::None,
        SubjectMutation::SkipPingDisable,
        SubjectMutation::IgnoreTriggerGuard,
        SubjectMutation::SkipTriggerUpdate,
    ];
    let models = [ModelMutation::None, ModelMutation::DropPingSend, ModelMutation::StaleAckReplay];
    let mut total_skips = 0u64;
    for subject_mutation in subjects {
        for model_mutation in models {
            for strict_seq in [false, true] {
                let base = ExploreConfig {
                    max_depth: 10,
                    strict_seq,
                    subject_mutation,
                    model_mutation,
                    ..Default::default()
                };
                let full = explore(&base);
                let por = explore(&ExploreConfig { por: true, ..base });
                let ctx = format!("{subject_mutation:?}/{model_mutation:?}/strict={strict_seq}");
                assert!(!full.truncated && !por.truncated, "{ctx}: truncated");
                assert_eq!(full.states_visited, por.states_visited, "{ctx}: states");
                assert_eq!(full.transitions, por.transitions, "{ctx}: transitions");
                assert_eq!(full.deadlocks, por.deadlocks, "{ctx}: deadlocks");
                assert_eq!(
                    message_set(&full.records),
                    message_set(&por.records),
                    "{ctx}: violation sets"
                );
                assert_eq!(full.stats.sleep_skips.get(), 0, "{ctx}: full run must not sleep");
                total_skips += por.stats.sleep_skips.get();
            }
        }
    }
    // The sweep as a whole must exercise the reduction — a subject that
    // never disables its ping keeps pings and acks in flight together,
    // giving the sleep sets real work even though the faithful wire never
    // does.
    assert!(total_skips > 0, "POR never fired anywhere in the mutation matrix");
}

#[test]
fn por_skips_on_a_flooding_subject_specifically() {
    // `SkipPingDisable` lets `s_i` ping repeatedly per eating session, so a
    // ping and an ack coexist in flight — the cross-class independence POR
    // exploits. The verdict must still match the full run exactly.
    let base = ExploreConfig {
        max_depth: 12,
        subject_mutation: SubjectMutation::SkipPingDisable,
        ..Default::default()
    };
    let full = explore(&base);
    let por = explore(&ExploreConfig { por: true, ..base });
    assert!(por.stats.sleep_skips.get() > 0, "flooded wire must give POR work");
    assert_eq!(full.states_visited, por.states_visited);
    assert_eq!(full.transitions, por.transitions);
    assert_eq!(message_set(&full.records), message_set(&por.records));
}

#[test]
fn composed_por_matches_full_exploration_across_service_modes() {
    let mut total_skips = 0u64;
    for allow_crash in [false, true] {
        for allow_mistakes in [false, true] {
            for strict_seq in [false, true] {
                let base = ComposedConfig {
                    max_depth: 8,
                    allow_crash,
                    allow_mistakes,
                    strict_seq,
                    ..Default::default()
                };
                let full = explore_composed(&base);
                let por = explore_composed(&ComposedConfig { por: true, ..base });
                let ctx =
                    format!("crash={allow_crash}/mistakes={allow_mistakes}/strict={strict_seq}");
                assert!(!full.truncated && !por.truncated, "{ctx}: truncated");
                assert_eq!(full.states_visited, por.states_visited, "{ctx}: states");
                assert_eq!(full.transitions, por.transitions, "{ctx}: transitions");
                assert_eq!(full.deadlocks, por.deadlocks, "{ctx}: deadlocks");
                assert_eq!(
                    message_set(&full.records),
                    message_set(&por.records),
                    "{ctx}: violation sets"
                );
                total_skips += por.stats.sleep_skips.get();
            }
        }
    }
    // The composed model's dining traffic coexists with pings/acks, so the
    // reduction must fire across the sweep.
    assert!(total_skips > 0, "POR never fired on the composed model");
}

#[test]
fn por_equivalence_holds_in_the_parallel_engine_too() {
    // POR metadata (sleep masks) converges by intersection in the shared
    // visited store; the claim must survive work-stealing schedules.
    let base = ComposedConfig { max_depth: 8, threads: 4, ..Default::default() };
    let full = explore_composed(&base);
    let por = explore_composed(&ComposedConfig { por: true, ..base });
    assert_eq!(full.states_visited, por.states_visited);
    assert_eq!(full.transitions, por.transitions);
    assert_eq!(full.deadlocks, por.deadlocks);
    assert_eq!(message_set(&full.records), message_set(&por.records));
}
