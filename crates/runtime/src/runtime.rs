//! The contract every transport backend implements.
//!
//! A runtime owns a set of [`Node`](crate::node::Node) instances, delivers
//! their messages and timers, and records the observations they emit. The
//! deterministic simulator (`dinefd-sim`) advances a virtual clock and
//! replays delay draws from a seed; the live cluster (`dinefd-live`) runs
//! one OS thread per process over loopback TCP and maps one virtual tick to
//! one millisecond of wall time. Code that only needs "run these nodes to a
//! horizon and give me the observation log" — the differential convergence
//! harness above all — is generic over this trait and cannot tell the two
//! apart except by timing.

use crate::id::ProcessId;
use crate::node::Node;
use crate::time::Time;

/// One timestamped observation emitted by a process.
///
/// `at` is the runtime's own notion of time — virtual ticks for the
/// simulator, milliseconds since cluster start for the live runtime. The
/// differential harness compares observation *sequences per process* and
/// final states, never raw timestamps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsRecord<O> {
    /// When the observation was recorded, in runtime-local ticks.
    pub at: Time,
    /// The process that emitted it.
    pub who: ProcessId,
    /// The observation payload.
    pub obs: O,
}

/// A substrate that can drive a set of nodes to a horizon.
pub trait Runtime<N: Node> {
    /// Runs every process from its `on_start` step until the runtime-local
    /// clock reaches `horizon`, returning all observations emitted, in a
    /// per-process causally ordered sequence (observations of one process
    /// appear in the order it emitted them; interleaving across processes
    /// is runtime-specific).
    fn run_to_horizon(&mut self, horizon: Time) -> Vec<ObsRecord<N::Obs>>;
}
