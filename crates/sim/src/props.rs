//! Temporal-property utilities over recorded runs.
//!
//! Almost every specification in the paper has the shape "there exists a time
//! after which …" (eventual weak exclusion, eventual strong accuracy,
//! eventual `k`-fairness). Over a *finite* recorded run, the honest checkable
//! version is: the property holds on a suffix of the recording, and the
//! violation count before the suffix is finite by construction. The helpers
//! here compute convergence instants and pre-suffix violation counts, which
//! the experiment tables report directly.

use serde::{Deserialize, Serialize};

use crate::time::Time;

/// A boolean signal over time, represented by its change points.
///
/// The signal starts at `initial` and flips at each recorded instant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoolTimeline {
    initial: bool,
    /// Change points `(time, new_value)`, chronological; redundant sets are
    /// dropped at insertion.
    changes: Vec<(Time, bool)>,
}

impl BoolTimeline {
    /// A signal with the given initial value and no changes yet.
    pub fn new(initial: bool) -> Self {
        BoolTimeline { initial, changes: Vec::new() }
    }

    /// Records the signal value at `at`. Non-changes are dropped.
    pub fn set(&mut self, at: Time, v: bool) {
        let cur = self.value_at_end();
        debug_assert!(
            self.changes.last().is_none_or(|&(t, _)| t <= at),
            "timeline updates must be chronological"
        );
        if v != cur {
            self.changes.push((at, v));
        }
    }

    /// The signal's value before any recorded change.
    pub fn initial(&self) -> bool {
        self.initial
    }

    /// The signal's value after all recorded changes.
    pub fn value_at_end(&self) -> bool {
        self.changes.last().map_or(self.initial, |&(_, v)| v)
    }

    /// The signal's value at instant `t` (just after any change at `t`).
    pub fn value_at(&self, t: Time) -> bool {
        match self.changes.iter().rev().find(|&&(ct, _)| ct <= t) {
            Some(&(_, v)) => v,
            None => self.initial,
        }
    }

    /// If the signal ends `true`, the instant from which it stayed `true`
    /// (i.e. the last `false→true` transition, or [`Time::ZERO`] if it was
    /// always true). `None` if it ends `false`.
    pub fn true_from(&self) -> Option<Time> {
        if !self.value_at_end() {
            return None;
        }
        match self.changes.last() {
            None => Some(Time::ZERO),
            Some(&(t, v)) => {
                debug_assert!(v);
                Some(t)
            }
        }
    }

    /// Number of maximal `false` intervals (the "mistake count" when the
    /// signal encodes "the spec holds right now").
    pub fn false_intervals(&self) -> usize {
        let mut count = 0;
        let mut cur = self.initial;
        if !cur {
            count += 1;
        }
        for &(_, v) in &self.changes {
            if !v && cur {
                count += 1;
            }
            cur = v;
        }
        count
    }

    /// All change points (for rendering timelines).
    pub fn changes(&self) -> &[(Time, bool)] {
        &self.changes
    }
}

/// The instant from which a recorded value sequence permanently equals
/// `target`: the earliest time `t` such that every sample at or after `t`
/// equals `target` and the final sample exists. `None` if the sequence is
/// empty or ends on a different value.
pub fn stabilization_time<T: PartialEq>(events: &[(Time, T)], target: &T) -> Option<Time> {
    let last = events.last()?;
    if last.1 != *target {
        return None;
    }
    let mut from = last.0;
    for (t, v) in events.iter().rev() {
        if v == target {
            from = *t;
        } else {
            break;
        }
    }
    Some(from)
}

/// Counts events at or after `t`.
pub fn count_at_or_after<T>(events: &[(Time, T)], t: Time) -> usize {
    events.iter().filter(|&&(et, _)| et >= t).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_tracks_value() {
        let mut tl = BoolTimeline::new(false);
        tl.set(Time(5), true);
        tl.set(Time(9), true); // no-op
        tl.set(Time(12), false);
        tl.set(Time(20), true);
        assert!(!tl.value_at(Time(0)));
        assert!(tl.value_at(Time(5)));
        assert!(tl.value_at(Time(11)));
        assert!(!tl.value_at(Time(12)));
        assert!(tl.value_at(Time(25)));
        assert_eq!(tl.true_from(), Some(Time(20)));
        assert_eq!(tl.false_intervals(), 2);
        assert_eq!(tl.changes().len(), 3);
    }

    #[test]
    fn always_true_signal_converges_at_zero() {
        let tl = BoolTimeline::new(true);
        assert_eq!(tl.true_from(), Some(Time::ZERO));
        assert_eq!(tl.false_intervals(), 0);
    }

    #[test]
    fn ending_false_never_converges() {
        let mut tl = BoolTimeline::new(true);
        tl.set(Time(3), false);
        assert_eq!(tl.true_from(), None);
        assert_eq!(tl.false_intervals(), 1);
    }

    #[test]
    fn stabilization_basic() {
        let evs = vec![(Time(1), 'a'), (Time(2), 'b'), (Time(3), 'b'), (Time(4), 'b')];
        assert_eq!(stabilization_time(&evs, &'b'), Some(Time(2)));
        assert_eq!(stabilization_time(&evs, &'a'), None);
        let empty: Vec<(Time, char)> = vec![];
        assert_eq!(stabilization_time(&empty, &'a'), None);
    }

    #[test]
    fn stabilization_of_constant_sequence_is_first_sample() {
        let evs = vec![(Time(7), 1u32), (Time(9), 1)];
        assert_eq!(stabilization_time(&evs, &1), Some(Time(7)));
    }

    #[test]
    fn count_after_counts_inclusive() {
        let evs = vec![(Time(1), ()), (Time(5), ()), (Time(5), ()), (Time(9), ())];
        assert_eq!(count_at_or_after(&evs, Time(5)), 3);
        assert_eq!(count_at_or_after(&evs, Time(10)), 0);
        assert_eq!(count_at_or_after(&evs, Time::ZERO), 4);
    }
}
