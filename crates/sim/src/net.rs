//! Channel delay models — where the model's asynchrony lives.
//!
//! The paper assumes reliable non-FIFO channels with *unbounded* (but finite)
//! message delay. A [`DelayModel`] decides, per send, how many ticks the
//! message spends in transit. Because consecutive sends on the same channel
//! may receive wildly different delays, channels are naturally non-FIFO; the
//! event queue guarantees every message is eventually delivered, so they are
//! reliable.
//!
//! The `PartialSync` model implements the classical *global stabilization
//! time* (GST) formulation of partial synchrony: before GST delays follow an
//! arbitrary (heavy-tailed) model; from GST on, delays are bounded by a
//! constant `bound`. This is the environment in which the heartbeat ◇P of
//! `dinefd-fd` is correct, matching the paper's remark that sensor-network
//! style environments "are often partially synchronous".

use std::collections::HashMap;

use crate::id::ProcessId;
use crate::rng::SplitMix64;
use crate::time::Time;

/// A scripted adversary choosing message delays.
///
/// Implementations can starve particular channels for long finite prefixes,
/// reorder aggressively, or correlate delays across channels — anything goes
/// as long as the returned delay is finite, which the trait cannot violate.
///
/// `Send` is a supertrait so that a [`DelayModel`] (which may box an
/// adversary) can move into the shard-worker threads of
/// [`crate::shard::ShardedWorld`]; adversaries are plain state machines, so
/// this costs implementations nothing.
pub trait Adversary: std::fmt::Debug + Send {
    /// Delay, in ticks, for a message sent `from → to` at time `now`.
    fn delay(&mut self, from: ProcessId, to: ProcessId, now: Time, rng: &mut SplitMix64) -> u64;
}

/// Per-message delivery-delay policy.
#[derive(Debug)]
pub enum DelayModel {
    /// Every message takes exactly `d` ticks (a synchronous network).
    Fixed(u64),
    /// Uniform over the inclusive range `[lo, hi]`.
    Uniform {
        /// Minimum delay in ticks.
        lo: u64,
        /// Maximum delay in ticks.
        hi: u64,
    },
    /// Mostly-uniform `[lo, hi]`, but with probability `spike_num/spike_den`
    /// the delay spikes uniformly into `[hi, spike_hi]` — a heavy tail that
    /// exercises non-FIFO reordering hard.
    HeavyTail {
        /// Minimum common-case delay.
        lo: u64,
        /// Maximum common-case delay.
        hi: u64,
        /// Spike probability numerator.
        spike_num: u64,
        /// Spike probability denominator.
        spike_den: u64,
        /// Maximum spiked delay.
        spike_hi: u64,
    },
    /// Arbitrary (heavy-tailed) before `gst`, bounded by `bound` after.
    PartialSync {
        /// The global stabilization time.
        gst: Time,
        /// Pre-GST behaviour.
        pre: Box<DelayModel>,
        /// Post-GST delay bound (delays are uniform in `[1, bound]`).
        bound: u64,
    },
    /// Fully scripted adversary.
    Scripted(Box<dyn Adversary>),
    /// Per-channel FIFO discipline on top of any inner model: a message
    /// never overtakes an earlier message on the same ordered channel.
    ///
    /// The paper's model is explicitly non-FIFO, and the reduction must not
    /// rely on ordering either way — experiments run under both disciplines
    /// to show it doesn't. (The hardened sequence-tagged ping/ack variant
    /// exists precisely because non-FIFO channels permit stale messages.)
    ///
    /// When the inner model is [`DelayModel::PartialSync`], the GST
    /// contract takes precedence over ordering: sends at or after GST are
    /// delivered within `bound` even if a pre-GST straggler is still in
    /// flight on the channel (see [`DelayModel::post_gst_bound`]).
    Fifo {
        /// The delay model whose samples are clamped to preserve order.
        inner: Box<DelayModel>,
        /// Latest scheduled delivery per ordered channel (internal state).
        floors: HashMap<(u32, u32), u64>,
    },
}

impl DelayModel {
    /// A convenient moderately-asynchronous default: uniform `\[1, 16\]`.
    pub fn default_async() -> DelayModel {
        DelayModel::Uniform { lo: 1, hi: 16 }
    }

    /// A harsh heavy-tail model: usually `\[1, 16\]`, 5% spikes up to 400.
    pub fn harsh() -> DelayModel {
        DelayModel::HeavyTail { lo: 1, hi: 16, spike_num: 1, spike_den: 20, spike_hi: 400 }
    }

    /// Partially synchronous: harsh until `gst`, then bounded by `bound`.
    pub fn partially_synchronous(gst: Time, bound: u64) -> DelayModel {
        DelayModel::PartialSync { gst, pre: Box::new(DelayModel::harsh()), bound }
    }

    /// Wraps a model with per-channel FIFO ordering.
    pub fn fifo(inner: DelayModel) -> DelayModel {
        DelayModel::Fifo { inner: Box::new(inner), floors: HashMap::new() }
    }

    /// Short variant label, used to tag metric exports (e.g. the delay
    /// histogram of a run). Wrappers expose the wrapped variant too.
    pub fn kind(&self) -> &'static str {
        match self {
            DelayModel::Fixed(_) => "fixed",
            DelayModel::Uniform { .. } => "uniform",
            DelayModel::HeavyTail { .. } => "heavy_tail",
            DelayModel::PartialSync { .. } => "partial_sync",
            DelayModel::Scripted(_) => "scripted",
            DelayModel::Fifo { inner, .. } => match inner.as_ref() {
                DelayModel::Fixed(_) => "fifo_fixed",
                DelayModel::Uniform { .. } => "fifo_uniform",
                DelayModel::HeavyTail { .. } => "fifo_heavy_tail",
                DelayModel::PartialSync { .. } => "fifo_partial_sync",
                DelayModel::Scripted(_) => "fifo_scripted",
                DelayModel::Fifo { .. } => "fifo_fifo",
            },
        }
    }

    /// The delivery bound this model guarantees for a message sent at
    /// `now`, if any: `Some(bound)` iff the model is (or wraps) a
    /// [`DelayModel::PartialSync`] whose GST has passed. Wrappers such as
    /// [`DelayModel::Fifo`] must not weaken this bound.
    pub fn post_gst_bound(&self, now: Time) -> Option<u64> {
        match self {
            DelayModel::PartialSync { gst, bound, .. } if now >= *gst => Some((*bound).max(1)),
            DelayModel::Fifo { inner, .. } => inner.post_gst_bound(now),
            _ => None,
        }
    }

    /// A fresh, state-independent copy of this model, or `None` for
    /// [`DelayModel::Scripted`] (a boxed adversary has no generic clone).
    ///
    /// "Fresh" matters for [`DelayModel::Fifo`]: the copy starts with empty
    /// per-channel floors, so it is only equivalent to the original *before
    /// any sample is drawn*. [`crate::shard::ShardedWorld`] clones the
    /// configured model once per process at construction — giving every
    /// sender its own delay state is what makes the schedule independent of
    /// the shard count.
    pub fn try_clone(&self) -> Option<DelayModel> {
        Some(match self {
            DelayModel::Fixed(d) => DelayModel::Fixed(*d),
            DelayModel::Uniform { lo, hi } => DelayModel::Uniform { lo: *lo, hi: *hi },
            DelayModel::HeavyTail { lo, hi, spike_num, spike_den, spike_hi } => {
                DelayModel::HeavyTail {
                    lo: *lo,
                    hi: *hi,
                    spike_num: *spike_num,
                    spike_den: *spike_den,
                    spike_hi: *spike_hi,
                }
            }
            DelayModel::PartialSync { gst, pre, bound } => DelayModel::PartialSync {
                gst: *gst,
                pre: Box::new(pre.try_clone()?),
                bound: *bound,
            },
            DelayModel::Scripted(_) => return None,
            DelayModel::Fifo { inner, .. } => {
                DelayModel::Fifo { inner: Box::new(inner.try_clone()?), floors: HashMap::new() }
            }
        })
    }

    /// Samples a delay for one message. Always at least 1 tick.
    pub fn sample(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: Time,
        rng: &mut SplitMix64,
    ) -> u64 {
        let d = match self {
            DelayModel::Fixed(d) => *d,
            DelayModel::Uniform { lo, hi } => rng.range(*lo, *hi),
            DelayModel::HeavyTail { lo, hi, spike_num, spike_den, spike_hi } => {
                if rng.chance(*spike_num, *spike_den) {
                    rng.range(*hi, *spike_hi)
                } else {
                    rng.range(*lo, *hi)
                }
            }
            DelayModel::PartialSync { gst, pre, bound } => {
                if now < *gst {
                    pre.sample(from, to, now, rng)
                } else {
                    rng.range(1, (*bound).max(1))
                }
            }
            DelayModel::Scripted(adv) => adv.delay(from, to, now, rng),
            DelayModel::Fifo { inner, floors } => {
                // Regression (ISSUE 2): the per-channel floor used to lift
                // *post-GST* deliveries arbitrarily — one pre-GST
                // heavy-tail spike raised the floor past `gst + bound`,
                // and every later send on that channel inherited it,
                // silently voiding the PartialSync contract ("messages
                // sent after GST are delivered within `bound`"). The GST
                // guarantee takes precedence over FIFO ordering: a
                // post-GST send is capped at `now + bound`, even if that
                // means overtaking a still-in-flight pre-GST straggler.
                // FIFO order among post-GST sends is preserved (up to
                // same-tick ties, which the event queue resolves in send
                // order).
                let cap = inner.post_gst_bound(now);
                let d = inner.sample(from, to, now, rng).max(1);
                let floor = floors.entry((from.0, to.0)).or_insert(0);
                let mut deliver_at = (now.ticks() + d).max(*floor + 1);
                if let Some(bound) = cap {
                    deliver_at = deliver_at.min(now.ticks() + bound);
                }
                *floor = (*floor).max(deliver_at);
                return deliver_at - now.ticks();
            }
        };
        d.max(1)
    }
}

/// An adversary that delays messages on selected ordered channels by a large
/// constant until a release time, and is benign elsewhere — handy for
/// constructing worst-case finite prefixes (e.g. making a failure detector
/// look bad for as long as the model permits).
#[derive(Debug)]
pub struct ChannelStaller {
    /// Ordered pairs whose messages are stalled.
    pub stalled: Vec<(ProcessId, ProcessId)>,
    /// Messages sent before this time on stalled channels are held until
    /// (roughly) this time.
    pub release_at: Time,
    /// Benign delay bound used otherwise.
    pub benign_hi: u64,
}

impl Adversary for ChannelStaller {
    fn delay(&mut self, from: ProcessId, to: ProcessId, now: Time, rng: &mut SplitMix64) -> u64 {
        if now < self.release_at && self.stalled.contains(&(from, to)) {
            // Hold until just past the release point, with jitter so that
            // simultaneously-stalled messages arrive in a scrambled order.
            self.release_at.since(now) + rng.range(1, 8)
        } else {
            rng.range(1, self.benign_hi.max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn fixed_is_fixed_and_at_least_one() {
        let mut m = DelayModel::Fixed(0);
        let mut rng = SplitMix64::new(1);
        assert_eq!(m.sample(p(0), p(1), Time(0), &mut rng), 1);
        let mut m = DelayModel::Fixed(9);
        assert_eq!(m.sample(p(0), p(1), Time(0), &mut rng), 9);
    }

    #[test]
    fn uniform_within_bounds() {
        let mut m = DelayModel::Uniform { lo: 3, hi: 9 };
        let mut rng = SplitMix64::new(2);
        for _ in 0..500 {
            let d = m.sample(p(0), p(1), Time(0), &mut rng);
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn heavy_tail_spikes_sometimes() {
        let mut m =
            DelayModel::HeavyTail { lo: 1, hi: 4, spike_num: 1, spike_den: 4, spike_hi: 100 };
        let mut rng = SplitMix64::new(3);
        let mut spiked = 0;
        for _ in 0..1000 {
            let d = m.sample(p(0), p(1), Time(0), &mut rng);
            assert!(d <= 100);
            if d > 4 {
                spiked += 1;
            }
        }
        assert!((100..500).contains(&spiked), "spiked {spiked} times");
    }

    #[test]
    fn partial_sync_bounds_after_gst() {
        let mut m = DelayModel::partially_synchronous(Time(1000), 5);
        let mut rng = SplitMix64::new(4);
        for _ in 0..500 {
            let d = m.sample(p(0), p(1), Time(2000), &mut rng);
            assert!((1..=5).contains(&d));
        }
        // Pre-GST delays may exceed the bound.
        let mut saw_big = false;
        for _ in 0..2000 {
            if m.sample(p(0), p(1), Time(0), &mut rng) > 5 {
                saw_big = true;
            }
        }
        assert!(saw_big);
    }

    #[test]
    fn fifo_wrapper_preserves_per_channel_order() {
        let mut m = DelayModel::fifo(DelayModel::HeavyTail {
            lo: 1,
            hi: 4,
            spike_num: 1,
            spike_den: 3,
            spike_hi: 200,
        });
        let mut rng = SplitMix64::new(6);
        // Successive sends at increasing times on one channel must be
        // delivered in strictly increasing order.
        let mut last_delivery = 0u64;
        for t in 0..200u64 {
            let now = Time(t * 2);
            let d = m.sample(p(0), p(1), now, &mut rng);
            let delivery = now.ticks() + d;
            assert!(delivery > last_delivery, "FIFO violated: {delivery} after {last_delivery}");
            last_delivery = delivery;
        }
        // Other channels are tracked independently.
        let d = m.sample(p(1), p(0), Time(0), &mut rng);
        assert!(d <= 200 + 1);
    }

    /// Regression (ISSUE 2): a pre-GST heavy-tail spike used to raise the
    /// FIFO floor so high that *post-GST* deliveries exceeded the
    /// `PartialSync` bound — the wrapper quietly weakened the GST
    /// guarantee the heartbeat ◇P depends on.
    #[test]
    fn fifo_floor_does_not_lift_post_gst_delays_above_bound() {
        let gst = Time(1_000);
        let bound = 5;
        // Scripted spike: every pre-GST message takes exactly 600 ticks.
        let mut m = DelayModel::fifo(DelayModel::PartialSync {
            gst,
            pre: Box::new(DelayModel::Fixed(600)),
            bound,
        });
        let mut rng = SplitMix64::new(7);
        // Spike just before GST: floor jumps to 990 + 600 = 1590 > gst+bound.
        let d = m.sample(p(0), p(1), Time(990), &mut rng);
        assert_eq!(d, 600);
        // Every post-GST send on the channel must meet the bound.
        let mut last_delivery = 0u64;
        for t in [1_100u64, 1_101, 1_120, 1_500] {
            let d = m.sample(p(0), p(1), Time(t), &mut rng);
            assert!(d >= 1 && d <= bound, "post-GST send at t={t} got delay {d} > bound {bound}");
            // FIFO among post-GST sends still holds (non-decreasing).
            let delivery = t + d;
            assert!(
                delivery >= last_delivery,
                "post-GST FIFO broken: {delivery} < {last_delivery}"
            );
            last_delivery = delivery;
        }
        // A fresh channel post-GST is bounded too.
        let d = m.sample(p(1), p(0), Time(2_000), &mut rng);
        assert!(d <= bound);
    }

    #[test]
    fn post_gst_bound_sees_through_fifo_wrapper() {
        let m = DelayModel::fifo(DelayModel::partially_synchronous(Time(100), 7));
        assert_eq!(m.post_gst_bound(Time(99)), None);
        assert_eq!(m.post_gst_bound(Time(100)), Some(7));
        assert_eq!(DelayModel::harsh().post_gst_bound(Time(0)), None);
    }

    #[test]
    fn kind_labels_variants_and_wrappers() {
        assert_eq!(DelayModel::Fixed(1).kind(), "fixed");
        assert_eq!(DelayModel::default_async().kind(), "uniform");
        assert_eq!(DelayModel::harsh().kind(), "heavy_tail");
        assert_eq!(DelayModel::partially_synchronous(Time(1), 1).kind(), "partial_sync");
        assert_eq!(DelayModel::fifo(DelayModel::harsh()).kind(), "fifo_heavy_tail");
    }

    #[test]
    fn try_clone_copies_everything_but_scripted() {
        let models = [
            DelayModel::Fixed(3),
            DelayModel::default_async(),
            DelayModel::harsh(),
            DelayModel::partially_synchronous(Time(100), 5),
            DelayModel::fifo(DelayModel::harsh()),
        ];
        for m in models {
            let mut clone = m.try_clone().expect("stateless models clone");
            assert_eq!(clone.kind(), m.kind());
            // A fresh clone samples identically to the original under the
            // same RNG stream (no hidden state carried over).
            let mut orig = m.try_clone().unwrap();
            let (mut r1, mut r2) = (SplitMix64::new(9), SplitMix64::new(9));
            for t in 0..200u64 {
                assert_eq!(
                    orig.sample(p(0), p(1), Time(t * 3), &mut r1),
                    clone.sample(p(0), p(1), Time(t * 3), &mut r2),
                    "{} clone diverged",
                    m.kind()
                );
            }
        }
        let staller = ChannelStaller { stalled: vec![], release_at: Time(1), benign_hi: 1 };
        assert!(DelayModel::Scripted(Box::new(staller)).try_clone().is_none());
    }

    #[test]
    fn staller_holds_selected_channel() {
        let mut adv =
            ChannelStaller { stalled: vec![(p(0), p(1))], release_at: Time(500), benign_hi: 4 };
        let mut rng = SplitMix64::new(5);
        let d = adv.delay(p(0), p(1), Time(10), &mut rng);
        assert!(d >= 490);
        let d = adv.delay(p(1), p(0), Time(10), &mut rng);
        assert!(d <= 4);
        let d = adv.delay(p(0), p(1), Time(600), &mut rng);
        assert!(d <= 4);
    }
}
