//! End-to-end tests of the paper's secondary results: the Section 3
//! separation, the Section 8 fairness corollary, and the Section 9
//! T-extraction.

use dinefd::core::fairness::run_fair_over_extraction;
use dinefd::dining::driver::Workload;
use dinefd::dining::ConflictGraph;
use dinefd::prelude::*;

// ---------------- Section 3 ----------------

#[test]
fn section3_flawed_reduction_is_not_black_box() {
    let bb = BlackBox::Delayed { convergence: Time(1_500) };
    // The flawed construction keeps flapping forever…
    let flawed = run_flawed_pair(bb, 41, CrashPlan::none(), Time(30_000));
    assert!(
        flawed.eventual_strong_accuracy(&CrashPlan::none()).is_err(),
        "the flawed extractor should NOT satisfy ◇P accuracy on this box"
    );
    // …while the paper's reduction converges on the very same box.
    let mut sc = Scenario::pair(bb, 41);
    sc.oracle = OracleSpec::Perfect { lag: 20 };
    sc.horizon = Time(30_000);
    let crashes = sc.crashes.clone();
    let ours = run_extraction(sc);
    assert!(ours.history.eventual_strong_accuracy(&crashes).is_ok());
}

#[test]
fn section3_flawed_reduction_is_fine_on_the_friendly_box() {
    // On the abstract box the straggler blocks the watcher instead, so [8]'s
    // construction happens to work — the point is non-universality, not
    // universal failure.
    let bb = BlackBox::Abstract { convergence: Time(1_500) };
    let h = run_flawed_pair(bb, 43, CrashPlan::none(), Time(30_000));
    assert!(h.eventual_strong_accuracy(&CrashPlan::none()).is_ok());
    let h = run_flawed_pair(bb, 43, CrashPlan::one(ProcessId(1), Time(5_000)), Time(30_000));
    assert!(h.strong_completeness(&CrashPlan::one(ProcessId(1), Time(5_000))).is_ok());
}

// ---------------- Section 8 ----------------

#[test]
fn section8_fairness_pipeline_on_a_clique() {
    let graph = ConflictGraph::clique(3);
    let res = run_fair_over_extraction(
        &graph,
        BlackBox::WfDx,
        OracleSpec::DiamondP { lag: 20, convergence: Time(1_500), max_mistakes: 2, max_len: 100 },
        47,
        DelayModel::default_async(),
        CrashPlan::none(),
        Time(50_000),
        Workload::relaxed(),
    );
    assert!(res.extracted.eventual_strong_accuracy(&res.crashes).is_ok());
    assert!(res.dining.wait_freedom(&res.crashes, 10_000).is_ok());
    let converged = res.dining.wx_converged_from(&graph, &res.crashes);
    let k = res.dining.max_overtaking(&graph, &res.crashes, converged.max(Time(12_000)));
    assert!(k <= 3, "suffix overtaking {k}");
    // On a clique, eventual k-fairness makes the schedule eventually
    // near-round-robin: session counts should be broadly balanced.
    let counts: Vec<usize> = (0..3).map(|i| res.dining.session_count(ProcessId(i))).collect();
    let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
    assert!(*min * 3 >= *max, "unbalanced sessions: {counts:?}");
}

// ---------------- Section 9 ----------------

#[test]
fn section9_perpetual_wx_extracts_trusting_oracle() {
    let mut sc = Scenario::pair(BlackBox::Ftme, 53);
    sc.oracle = OracleSpec::Perfect { lag: 20 };
    sc.crashes = CrashPlan::one(ProcessId(1), Time(9_000));
    sc.horizon = Time(50_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    assert!(
        res.history.trusting_accuracy(&crashes).is_ok(),
        "FTME extraction must satisfy T: {:?}",
        res.history.trusting_accuracy(&crashes).err()
    );
    assert!(res.history.strong_completeness(&crashes).is_ok());
    let classes = res.history.classify(&crashes);
    assert!(classes.contains(&OracleClass::Trusting), "classes: {classes:?}");
}

#[test]
fn section9_control_eventual_exclusion_does_not_give_t() {
    // Over a merely eventually-exclusive box, wrongful suspicions of the
    // live subject occur during the prefix, which violates T's trusting
    // accuracy (a trust→suspect of a live process) in typical runs.
    let mut violated = 0;
    for seed in [59u64, 60, 61, 62] {
        let mut sc = Scenario::pair(BlackBox::Abstract { convergence: Time(4_000) }, seed);
        sc.oracle = OracleSpec::Perfect { lag: 20 };
        sc.horizon = Time(40_000);
        let crashes = sc.crashes.clone();
        let res = run_extraction(sc);
        // Still ◇P…
        assert!(res.history.eventual_strong_accuracy(&crashes).is_ok());
        // …but usually not T.
        if res.history.trusting_accuracy(&crashes).is_err() {
            violated += 1;
        }
    }
    assert!(violated >= 2, "expected T violations on most seeds, got {violated}/4");
}

#[test]
fn section9_t_oracle_under_ftme_also_works() {
    // The black box itself driven by an injected *trusting* oracle whose
    // initial distrust ends before the crash.
    let mut sc = Scenario::pair(BlackBox::Ftme, 67);
    sc.oracle = OracleSpec::Trusting { lag: 20, trust_by: Time(800) };
    sc.crashes = CrashPlan::one(ProcessId(1), Time(9_000));
    sc.horizon = Time(50_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    assert!(res.history.trusting_accuracy(&crashes).is_ok());
    assert!(res.history.strong_completeness(&crashes).is_ok());
}
