//! `AbstractDining` — a spec-constrained "most adversarial legal" WF-◇WX
//! service.
//!
//! The necessity proof quantifies over *every* black box solving WF-◇WX, so
//! experiments should not only exercise concrete algorithms but also a
//! service that does nothing beyond what the specification forces: before
//! its (run-specific) convergence instant it grants every request
//! immediately — maximally violating exclusion, as ◇WX permits finitely
//! often — and from the convergence instant on it grants exclusively,
//! FIFO, waiting for *all* current eaters (including pre-convergence
//! stragglers) to leave.
//!
//! Note the contrast with [`crate::delayed::DelayedConvergenceDining`]: a
//! straggler that never exits makes this service block later requesters
//! forever. That is legal — wait-freedom is conditional on correct processes
//! eating for finite time — and it is the *other* failure mode a correct
//! reduction must tolerate (the flawed construction of reference \[8\]
//! happens to survive this one and break on the delayed-convergence one).

use dinefd_sim::{ProcessId, Time};

use crate::delayed::{CoordCore, DcMsg, GrantRegime};
use crate::participant::{DiningIo, DiningMsg, DiningParticipant};
use crate::state::DinerPhase;

/// Messages of the abstract service (coordinator protocol).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbMsg {
    /// "I am hungry" — participant → coordinator.
    Request,
    /// "You may eat" — coordinator → participant.
    Grant,
    /// "I have exited" — participant → coordinator.
    Release,
}

fn to_core(m: AbMsg) -> DcMsg {
    match m {
        AbMsg::Request => DcMsg::Request,
        AbMsg::Grant => DcMsg::Grant,
        AbMsg::Release => DcMsg::Release,
    }
}

fn wrap(m: DcMsg) -> DiningMsg {
    DiningMsg::Abstract(match m {
        DcMsg::Request => AbMsg::Request,
        DcMsg::Grant => AbMsg::Grant,
        DcMsg::Release => AbMsg::Release,
    })
}

/// The spec-constrained adversarial WF-◇WX service.
#[derive(Clone, Debug)]
pub struct AbstractDining {
    core: CoordCore,
}

impl AbstractDining {
    /// Endpoint for `me`; `coordinator` hosts the grant queue; `convergence`
    /// is the instant from which grants are exclusive.
    pub fn new(me: ProcessId, coordinator: ProcessId, convergence: Time) -> Self {
        AbstractDining {
            core: CoordCore::new(me, coordinator, convergence, GrantRegime::SwitchAtConvergence),
        }
    }

    /// Total grants issued so far (meaningful at the coordinator).
    pub fn grants_issued(&self) -> u64 {
        self.core.grants_issued
    }
}

impl DiningParticipant for AbstractDining {
    fn hungry(&mut self, io: &mut DiningIo<'_>) {
        self.core.hungry(io, wrap);
    }

    fn exit_eating(&mut self, io: &mut DiningIo<'_>) {
        self.core.exit_eating(io, wrap);
    }

    fn on_message(&mut self, io: &mut DiningIo<'_>, from: ProcessId, msg: DiningMsg) {
        let DiningMsg::Abstract(m) = msg else {
            debug_assert!(false, "foreign message {msg:?}");
            return;
        };
        self.core.on_message(io, from, to_core(m), wrap);
    }

    fn on_tick(&mut self, io: &mut DiningIo<'_>) {
        self.core.on_tick(io, wrap);
    }

    fn phase(&self) -> DinerPhase {
        self.core.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::NoOracle;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn pre_convergence_is_maximally_non_exclusive() {
        let fd = NoOracle(3);
        let mut coord = AbstractDining::new(p(0), p(0), Time(100));
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        coord.hungry(&mut io);
        assert_eq!(coord.phase(), DinerPhase::Eating);
        let mut io = DiningIo::new(p(0), Time(2), &fd);
        coord.on_message(&mut io, p(1), DiningMsg::Abstract(AbMsg::Request));
        assert_eq!(io.finish().sends.len(), 1);
        let mut io = DiningIo::new(p(0), Time(3), &fd);
        coord.on_message(&mut io, p(2), DiningMsg::Abstract(AbMsg::Request));
        assert_eq!(io.finish().sends.len(), 1);
        assert_eq!(coord.grants_issued(), 3);
    }

    #[test]
    fn straggler_blocks_post_convergence_requests() {
        let fd = NoOracle(2);
        let mut coord = AbstractDining::new(p(0), p(0), Time(10));
        // p1 granted pre-convergence, never releases.
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        coord.on_message(&mut io, p(1), DiningMsg::Abstract(AbMsg::Request));
        // Post-convergence the coordinator's own hunger must WAIT — unlike
        // the delayed-convergence service.
        let mut io = DiningIo::new(p(0), Time(50), &fd);
        coord.hungry(&mut io);
        assert_eq!(coord.phase(), DinerPhase::Hungry);
        // When the straggler finally releases, the grant arrives.
        let mut io = DiningIo::new(p(0), Time(60), &fd);
        coord.on_message(&mut io, p(1), DiningMsg::Abstract(AbMsg::Release));
        assert_eq!(coord.phase(), DinerPhase::Eating);
    }

    #[test]
    fn exclusive_fifo_after_convergence() {
        let fd = NoOracle(3);
        let mut coord = AbstractDining::new(p(0), p(0), Time(0));
        let mut io = DiningIo::new(p(0), Time(5), &fd);
        coord.on_message(&mut io, p(1), DiningMsg::Abstract(AbMsg::Request));
        assert_eq!(io.finish().sends.len(), 1, "first request granted");
        let mut io = DiningIo::new(p(0), Time(6), &fd);
        coord.on_message(&mut io, p(2), DiningMsg::Abstract(AbMsg::Request));
        assert!(io.finish().sends.is_empty(), "second request queued");
        let mut io = DiningIo::new(p(0), Time(7), &fd);
        coord.on_message(&mut io, p(1), DiningMsg::Abstract(AbMsg::Release));
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1);
        assert!(matches!(fx.sends[0], (pid, DiningMsg::Abstract(AbMsg::Grant)) if pid == p(2)));
    }
}
