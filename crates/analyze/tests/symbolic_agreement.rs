//! The symbolic engine's acceptance gate: at the default wire cap the SAT
//! pipeline must be **observationally identical** to the explicit
//! enumerator — same verdicts, same base-case results, same retained CTI
//! triples in the same order, same real/spurious classifications — across
//! the whole seeded-mutation matrix. Anything less and "k-induction says
//! PROVED" would mean something different from "enumeration says
//! INDUCTIVE".
//!
//! Also proves the bit-blasting itself round-trips: pinning an arbitrary
//! typed state into the CNF via assumptions and decoding the model yields
//! the state back, for every admissible wire cap (a proptest, since the
//! encode/decode pair touches every field packing in `cnf::SymState`).

use dinefd_analyze::induct::{run_induction, InductOptions};
use dinefd_analyze::ir::{AbsState, IrConfig, MAX_WIRE_CAP, MIN_WIRE_CAP};
use dinefd_analyze::kinduct::{agrees_with_explicit, run_kinduction, KinductOptions};
use dinefd_analyze::{cnf, sat};
use dinefd_core::machines::SubjectMutation;
use dinefd_dining::DinerPhase;
use dinefd_explore::ModelMutation;
use proptest::prelude::*;

/// Identical classification settings on both sides — the agreement check
/// compares `CtiClass` values, so the replay budgets must match.
fn explicit_opts() -> InductOptions {
    InductOptions { keep_ctis: 4, classify: 1, ..InductOptions::default() }
}

fn symbolic_opts() -> KinductOptions {
    KinductOptions { keep_ctis: 4, classify: explicit_opts(), ..KinductOptions::default() }
}

fn assert_engines_agree(cfg: IrConfig) {
    let exp = run_induction(&cfg, &explicit_opts());
    let sym = run_kinduction(&cfg, &symbolic_opts());
    if let Err(diff) = agrees_with_explicit(&sym, &exp) {
        panic!(
            "engines disagree on {cfg:?}:\n{diff}\n--- explicit ---\n{}\n--- symbolic ---\n{}",
            dinefd_analyze::induct::render_summary(&exp),
            dinefd_analyze::kinduct::render_kinduct_summary(&sym),
        );
    }
}

#[test]
fn engines_agree_on_the_faithful_configuration() {
    assert_engines_agree(IrConfig::faithful());
}

#[test]
fn engines_agree_on_the_strict_seq_configuration() {
    assert_engines_agree(IrConfig { strict_seq: true, ..IrConfig::faithful() });
}

#[test]
fn engines_agree_on_the_safety_silent_mutations() {
    // Both are inductive despite the seeded bug (liveness-only damage);
    // both engines must say so.
    assert_engines_agree(IrConfig {
        model_mutation: ModelMutation::DropPingSend,
        ..IrConfig::faithful()
    });
    assert_engines_agree(IrConfig {
        subject_mutation: SubjectMutation::SkipTriggerUpdate,
        ..IrConfig::faithful()
    });
}

#[test]
fn engines_agree_on_skip_ping_disable() {
    // Real CTIs on lemma3's cluster: the retained triples and their REAL
    // classifications must match, not just the FAILS verdict.
    assert_engines_agree(IrConfig {
        subject_mutation: SubjectMutation::SkipPingDisable,
        ..IrConfig::faithful()
    });
}

#[test]
fn engines_agree_on_ignore_trigger_guard() {
    assert_engines_agree(IrConfig {
        subject_mutation: SubjectMutation::IgnoreTriggerGuard,
        ..IrConfig::faithful()
    });
}

#[test]
fn engines_agree_on_stale_ack_replay() {
    assert_engines_agree(IrConfig {
        model_mutation: ModelMutation::StaleAckReplay,
        ..IrConfig::faithful()
    });
}

#[test]
fn symbolic_engine_proves_the_faithful_lemmas_at_every_cap() {
    // Beyond-enumeration territory: the whole point of the symbolic engine.
    for cap in [MIN_WIRE_CAP, 4, MAX_WIRE_CAP] {
        let cfg = IrConfig { wire_cap: cap, ..IrConfig::faithful() };
        let run = run_kinduction(&cfg, &KinductOptions::default());
        assert!(
            run.all_proved(),
            "cap {cap}:\n{}",
            dinefd_analyze::kinduct::render_kinduct_summary(&run)
        );
    }
}

fn phase_of(bits: u8) -> DinerPhase {
    match bits % 3 {
        0 => DinerPhase::Thinking,
        1 => DinerPhase::Hungry,
        _ => DinerPhase::Eating,
    }
}

fn arb_state_and_cap() -> impl Strategy<Value = (AbsState, u8)> {
    (
        (any::<u8>(), 0u8..2, any::<bool>(), any::<bool>(), any::<bool>()),
        (0u8..2, any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        (0u8..=MAX_WIRE_CAP, 0u8..=MAX_WIRE_CAP, 0u8..=MAX_WIRE_CAP, 0u8..=MAX_WIRE_CAP),
        MIN_WIRE_CAP..=MAX_WIRE_CAP,
    )
        .prop_map(
            |(
                (phases, switch, hp0, hp1, suspect),
                (trigger, pe0, pe1, converged, crashed),
                (p0, p1, a0, a1),
                cap,
            )| {
                let s = AbsState {
                    w_phase: [phase_of(phases), phase_of(phases / 3)],
                    s_phase: [phase_of(phases / 9), phase_of(phases / 27)],
                    switch,
                    haveping: [hp0, hp1],
                    suspect,
                    trigger,
                    ping_enabled: [pe0, pe1],
                    converged,
                    crashed,
                    pings: [p0.min(cap), p1.min(cap)],
                    acks: [a0.min(cap), a1.min(cap)],
                };
                (s, cap)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CNF encode/decode round-trip: pin any typed state via assumption
    /// literals, solve, decode the model — the state must come back intact
    /// at every admissible cap.
    #[test]
    fn cnf_encoding_round_trips_typed_states(sc in arb_state_and_cap()) {
        let (s, cap) = sc;
        let mut b = cnf::CnfBuilder::new();
        let sym = cnf::SymState::fresh(&mut b, cap);
        let mut assumptions = Vec::new();
        sym.assumptions_for(&s, &mut assumptions);
        prop_assert_eq!(b.solver.solve(&assumptions), sat::SolveOutcome::Sat);
        prop_assert_eq!(sym.decode(&b.solver), s);

        // And the packed fingerprint used by the CTI classification cache
        // is injective on what assumptions can express: decoding a state
        // with a different pack_key can never yield this state.
        let other = AbsState { suspect: !s.suspect, ..s };
        prop_assert!(other.pack_key() != s.pack_key());
    }
}
