//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps [`std::sync`] primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned lock — only possible if
//! a thread panicked while holding it — is treated as a panic here, where
//! parking_lot would simply not poison), and `try_lock()` returns an
//! `Option`. The real crate is smaller and faster; the semantics callers
//! see are the same.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned (a thread panicked while holding it)")
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(_)) => {
                panic!("mutex poisoned (a thread panicked while holding it)")
            }
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|_| panic!("mutex poisoned"))
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Blocks until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Acquires read access only if no writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    /// Acquires write access only if the lock is entirely free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_is_none_when_held() {
        let m = Mutex::new(0u8);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
