//! # `dinefd-analyze` — static analysis of the reduction
//!
//! The explorer (`dinefd-explore`) checks the paper's safety lemmas up to a
//! depth bound; this crate removes the bound. It re-expresses the whole
//! closed pair model as a **guarded-command IR** ([`ir`]) over a finite
//! abstract domain (machine bits + phases + a saturating-counter wire),
//! proves the IR equivalent to the executable machines by differential
//! property testing (`tests/ir_conformance.rs`), and then checks each lemma
//! **inductively** ([`induct`]): every action fired from every
//! invariant-satisfying typed state must land back inside the invariant.
//! What passes holds at *any* depth, for *any* schedule.
//!
//! Failures come back as concrete counterexamples-to-induction — (pre,
//! action, post) triples — classified *real* (pre-state reachable; the
//! seeded explorer replays it into a genuine violation) or *spurious*
//! (an abstraction artifact; a prompt to strengthen the invariant). The
//! seeded-mutation gate in `tests/induction.rs` keeps the checker honest in
//! both directions: safety-breaking mutations must produce real CTIs,
//! safety-silent ones must still pass induction.
//!
//! The explicit sweep scales as `(wire_cap + 1)⁴` and is practical only at
//! the default cap 2. The **symbolic engine** ([`kinduct`]) proves the same
//! obligations by SAT: [`cnf`] bit-blasts the typed domain and the guarded
//! transition relation (Tseitin encoding), [`sat`] is a self-contained
//! deterministic CDCL solver, and [`run_kinduction`] discharges base and
//! step cases as (un)satisfiability queries — at cap 2 byte-for-byte
//! agreeing with the enumerator (verdicts *and* retained CTI sets), at caps
//! up to 8 reaching domains the enumerator cannot. [`tla`] exports the same
//! IR as a deterministic TLA+ module for cross-validation with TLC.
//!
//! [`lints`] adds five cheap semantic audits of the IR and the machine
//! codecs (guard disjointness, dead guards, duplicate-delivery idempotence,
//! pack/unpack codomain completeness, guard/handler completeness).
//!
//! Entry points: [`run_induction`], [`run_kinduction`], [`run_lints`], and
//! [`tla::render_tla`]; the `dinefd analyze` CLI subcommand (`crates/apps`)
//! and bench experiments E11/E13 wrap them.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod cnf;
pub mod induct;
pub mod ir;
pub mod kinduct;
pub mod lints;
pub mod sat;
pub mod tla;

pub use induct::{
    clause_mask, run_induction, Clause, ClosureVerdict, Cti, CtiClass, CtiClassifier,
    InductOptions, InductionRun, LemmaSpec, LemmaVerdict, ALL_CLAUSES, LEMMA_SPECS,
};
pub use ir::{AbsState, Action, ActionId, Ir, IrConfig, MAX_WIRE_CAP, MIN_WIRE_CAP, WIRE_CAP};
pub use kinduct::{
    agrees_with_explicit, render_kinduct_summary, run_kinduction, KinductOptions, KinductRun,
    SymbolicLemmaVerdict,
};
pub use lints::{run_lints, LintReport};
pub use tla::render_tla;
