//! `UnfairDining` — a legal WF-◇WX service with **escalating unfairness**,
//! built to exercise the paper's Section 5.1 remark:
//!
//! > "WF-◇WX does not guarantee fairness insofar as it is possible for `p`
//! > to eat an unbounded number of times between each time `q` eats; this
//! > allows `p` to suspect `q` infinitely often."
//!
//! The service is a coordinator grant queue that is non-exclusive before its
//! convergence instant and exclusive afterwards — but in the exclusive
//! regime it serves the **coordinator's own requests** `k` consecutive times
//! before serving the remote peer once, with `k` escalating after every
//! remote grant. Every hungry process still eats after finitely many grants
//! (wait-freedom holds), and exclusivity holds from convergence (◇WX holds),
//! so the box is perfectly legal — yet between two consecutive meals of the
//! remote peer, the coordinator may eat unboundedly many times.
//!
//! Fed to a **single-instance** necessity reduction (see
//! `dinefd_core::single_dx`), this box produces infinitely many wrongful
//! suspicions: the witness's extra meals find no banked ping. The paper's
//! two-instance reduction is immune — its subject threads are *always
//! eating* in the exclusive suffix (Lemma 8), so no grant bias can slip the
//! witness in twice. Experiment E9 measures the separation.

use std::collections::VecDeque;

use dinefd_sim::{ProcessId, Time};

use crate::participant::{DiningIo, DiningMsg, DiningParticipant};
use crate::state::DinerPhase;

/// Messages of the unfair coordinator service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UfMsg {
    /// "I am hungry" — participant → coordinator.
    Request,
    /// "You may eat" — coordinator → participant.
    Grant,
    /// "I have exited" — participant → coordinator.
    Release,
}

/// One endpoint of the unfair dining service.
#[derive(Clone, Debug)]
pub struct UnfairDining {
    me: ProcessId,
    coordinator: ProcessId,
    convergence: Time,
    phase: DinerPhase,
    // Coordinator-only state.
    eating: Vec<ProcessId>,
    waiting: VecDeque<ProcessId>,
    /// How many consecutive self-grants the coordinator may take before it
    /// must serve the remote peer (escalates forever).
    bias_level: u64,
    /// Self-grants taken since the last remote grant.
    self_streak: u64,
}

impl UnfairDining {
    /// Endpoint for `me`; the coordinator hosts the (biased) grant queue.
    pub fn new(me: ProcessId, coordinator: ProcessId, convergence: Time) -> Self {
        UnfairDining {
            me,
            coordinator,
            convergence,
            phase: DinerPhase::Thinking,
            eating: Vec::new(),
            waiting: VecDeque::new(),
            bias_level: 1,
            self_streak: 0,
        }
    }

    /// The current unfairness level (coordinator only).
    pub fn bias_level(&self) -> u64 {
        self.bias_level
    }

    fn is_coord(&self) -> bool {
        self.me == self.coordinator
    }

    fn live_eaters(&self, io: &DiningIo<'_>) -> usize {
        self.eating.iter().filter(|&&q| q == self.me || !io.suspected(q)).count()
    }

    fn grant(&mut self, io: &mut DiningIo<'_>, q: ProcessId) {
        self.eating.push(q);
        if q == self.me {
            debug_assert_eq!(self.phase, DinerPhase::Hungry);
            self.phase = DinerPhase::Eating;
            self.self_streak += 1;
        } else {
            io.send(q, DiningMsg::Unfair(UfMsg::Grant));
            // Serving the remote resets the streak and escalates the bias.
            self.self_streak = 0;
            self.bias_level += 1;
        }
    }

    /// Grant pump with the escalating self-bias in the exclusive regime.
    fn pump(&mut self, io: &mut DiningIo<'_>) {
        if !self.is_coord() {
            return;
        }
        if io.now() < self.convergence {
            while let Some(q) = self.waiting.pop_front() {
                self.grant(io, q);
            }
            return;
        }
        while self.live_eaters(io) == 0 && !self.waiting.is_empty() {
            // Prefer self while the streak budget lasts; otherwise serve the
            // longest-waiting remote request.
            let me = self.me;
            let self_waiting = self.waiting.iter().position(|&q| q == me);
            let remote_waiting = self.waiting.iter().position(|&q| q != me);
            let pick = match (self_waiting, remote_waiting) {
                (Some(s), _) if self.self_streak < self.bias_level => s,
                (_, Some(r)) => r,
                (Some(s), None) => s,
                (None, None) => unreachable!("waiting nonempty"),
            };
            let q = self.waiting.remove(pick).expect("index valid");
            self.grant(io, q);
        }
    }
}

impl DiningParticipant for UnfairDining {
    fn hungry(&mut self, io: &mut DiningIo<'_>) {
        assert_eq!(self.phase, DinerPhase::Thinking, "hungry() while {}", self.phase);
        self.phase = DinerPhase::Hungry;
        if self.is_coord() {
            let me = self.me;
            self.waiting.push_back(me);
            self.pump(io);
        } else {
            io.send(self.coordinator, DiningMsg::Unfair(UfMsg::Request));
        }
    }

    fn exit_eating(&mut self, io: &mut DiningIo<'_>) {
        assert_eq!(self.phase, DinerPhase::Eating, "exit_eating() while {}", self.phase);
        self.phase = DinerPhase::Exiting;
        if self.is_coord() {
            let me = self.me;
            self.eating.retain(|&q| q != me);
            self.phase = DinerPhase::Thinking;
            // Deliberately NOT pumping here: the coordinator's next hungry()
            // (or the next tick, which bounds the delay and preserves
            // wait-freedom) runs the pump, letting an immediately re-hungry
            // coordinator contend — that is what makes the bias bite.
        } else {
            io.send(self.coordinator, DiningMsg::Unfair(UfMsg::Release));
            self.phase = DinerPhase::Thinking;
        }
    }

    fn on_message(&mut self, io: &mut DiningIo<'_>, from: ProcessId, msg: DiningMsg) {
        let DiningMsg::Unfair(m) = msg else {
            debug_assert!(false, "foreign message {msg:?}");
            return;
        };
        match m {
            UfMsg::Request => {
                debug_assert!(self.is_coord());
                self.waiting.push_back(from);
                self.pump(io);
            }
            UfMsg::Grant => {
                debug_assert!(!self.is_coord());
                if self.phase == DinerPhase::Hungry {
                    self.phase = DinerPhase::Eating;
                }
            }
            UfMsg::Release => {
                debug_assert!(self.is_coord());
                self.eating.retain(|&q| q != from);
                self.pump(io);
            }
        }
    }

    fn on_tick(&mut self, io: &mut DiningIo<'_>) {
        self.pump(io);
    }

    fn phase(&self) -> DinerPhase {
        self.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::NoOracle;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn exclusive_regime_prefers_coordinator_with_escalation() {
        let fd = NoOracle(2);
        let mut c = UnfairDining::new(p(0), p(0), Time(0));
        // Remote request queued first; coordinator becomes hungry.
        let mut io = DiningIo::new(p(0), Time(5), &fd);
        c.on_message(&mut io, p(1), DiningMsg::Unfair(UfMsg::Request));
        let fx = io.finish();
        // Queue was [p1], no self request: remote is served (bias escalates
        // to 2 afterwards).
        assert_eq!(fx.sends.len(), 1);
        assert_eq!(c.bias_level(), 2);
        let mut io = DiningIo::new(p(0), Time(6), &fd);
        c.on_message(&mut io, p(1), DiningMsg::Unfair(UfMsg::Release));
        // Both now compete: the coordinator becomes hungry first, then the
        // remote's request arrives; the coordinator jumps the queue
        // bias_level (= 2) times before the remote is served.
        let mut io = DiningIo::new(p(0), Time(8), &fd);
        c.hungry(&mut io);
        assert_eq!(c.phase(), DinerPhase::Eating, "self-grant jumps the queue");
        let mut io = DiningIo::new(p(0), Time(9), &fd);
        c.on_message(&mut io, p(1), DiningMsg::Unfair(UfMsg::Request));
        assert!(io.finish().sends.is_empty(), "remote queued while coordinator eats");
        let mut io = DiningIo::new(p(0), Time(10), &fd);
        c.exit_eating(&mut io);
        assert!(io.finish().sends.is_empty(), "exit does not pump");
        // Second self-grant within the streak.
        let mut io = DiningIo::new(p(0), Time(11), &fd);
        c.hungry(&mut io);
        assert_eq!(c.phase(), DinerPhase::Eating, "second self-grant within streak");
        let mut io = DiningIo::new(p(0), Time(12), &fd);
        c.exit_eating(&mut io);
        let _ = io.finish();
        // Streak exhausted: the pump triggered by the coordinator's own
        // hunger serves the REMOTE first, leaving the coordinator waiting.
        let mut io = DiningIo::new(p(0), Time(13), &fd);
        c.hungry(&mut io);
        assert_eq!(c.phase(), DinerPhase::Hungry, "bias exhausted: remote first");
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1, "streak exhausted: remote served at last");
        assert!(matches!(fx.sends[0], (_, DiningMsg::Unfair(UfMsg::Grant))));
    }

    #[test]
    fn remote_always_eventually_served() {
        // Wait-freedom sanity: across many cycles the remote gets grants.
        let fd = NoOracle(2);
        let mut c = UnfairDining::new(p(0), p(0), Time(0));
        let mut remote_grants = 0;
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        c.on_message(&mut io, p(1), DiningMsg::Unfair(UfMsg::Request));
        remote_grants += io.finish().sends.len();
        for t in 0..200u64 {
            let now = Time(10 + t * 3);
            if c.phase() == DinerPhase::Thinking {
                let mut io = DiningIo::new(p(0), now, &fd);
                c.hungry(&mut io);
                remote_grants += io.finish().sends.len();
            } else if c.phase() == DinerPhase::Eating {
                let mut io = DiningIo::new(p(0), now, &fd);
                c.exit_eating(&mut io);
                remote_grants += io.finish().sends.len();
            }
            if t % 7 == 3 {
                // Remote releases and re-requests.
                let mut io = DiningIo::new(p(0), now + 1, &fd);
                c.on_message(&mut io, p(1), DiningMsg::Unfair(UfMsg::Release));
                remote_grants += io.finish().sends.len();
                let mut io = DiningIo::new(p(0), now + 2, &fd);
                c.on_message(&mut io, p(1), DiningMsg::Unfair(UfMsg::Request));
                remote_grants += io.finish().sends.len();
            }
        }
        assert!(remote_grants >= 3, "remote starved: {remote_grants}");
    }

    #[test]
    fn pre_convergence_grants_everyone() {
        let fd = NoOracle(2);
        let mut c = UnfairDining::new(p(0), p(0), Time(1_000));
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        c.hungry(&mut io);
        assert_eq!(c.phase(), DinerPhase::Eating);
        let mut io = DiningIo::new(p(0), Time(2), &fd);
        c.on_message(&mut io, p(1), DiningMsg::Unfair(UfMsg::Request));
        assert_eq!(io.finish().sends.len(), 1, "concurrent grant pre-convergence");
    }
}
