//! Criterion bench: the applications layer — consensus rounds to decision
//! and leader-election stabilization, per system size.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dinefd_apps::{ConsensusNode, LeaderElection};
use dinefd_fd::{FdQuery, InjectedOracle};
use dinefd_sim::{CrashPlan, ProcessId, Time, World, WorldConfig};

fn run_consensus(n: usize, seed: u64) -> u64 {
    let plan = CrashPlan::one(ProcessId(0), Time(500));
    let fd: Rc<dyn FdQuery> = Rc::new(InjectedOracle::perfect(n, plan.clone(), 40));
    let nodes: Vec<ConsensusNode> = (0..n)
        .map(|i| ConsensusNode::new(ProcessId::from_index(i), n, i as u64 * 7, Rc::clone(&fd)))
        .collect();
    let mut world = World::new(nodes, WorldConfig::new(seed).crashes(plan));
    world.run_until(Time(30_000));
    (0..n).map(|i| world.node(ProcessId::from_index(i)).decision().expect("decided")).max().unwrap()
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_with_crash");
    for n in [3usize, 5, 9] {
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_consensus(n, seed)
            });
        });
    }
    group.finish();
}

fn bench_leader_election(c: &mut Criterion) {
    c.bench_function("leader_election_n8_crash", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let n = 8;
            let plan = CrashPlan::one(ProcessId(0), Time(1_000));
            let fd: Rc<dyn FdQuery> = Rc::new(InjectedOracle::perfect(n, plan.clone(), 40));
            let nodes: Vec<LeaderElection> =
                (0..n).map(|_| LeaderElection::new(n, Rc::clone(&fd))).collect();
            let mut world = World::new(nodes, WorldConfig::new(seed).crashes(plan));
            world.run_until(Time(5_000));
            world.trace().observations().count()
        });
    });
}

criterion_group!(benches, bench_consensus, bench_leader_election);
criterion_main!(benches);
