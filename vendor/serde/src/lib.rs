//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `serde` cannot be fetched. This crate implements the (small)
//! subset the workspace actually uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs, newtype structs, and unit enums, routed through a
//! self-describing [`Value`] tree that `serde_json` renders/parses.
//!
//! The API is intentionally *not* the real serde visitor architecture; only
//! the entry points exercised by this repository are provided.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree (the JSON data model, with exact integers).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; `u64::MAX` round-trips).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!("expected object with field `{name}`, got {other:?}"))),
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree (the stand-in for serde's `Serialize`).
pub trait Serialize {
    /// Converts `self` into a self-describing value.
    fn serialize(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree (the stand-in for serde's
/// `Deserialize`).
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a self-describing value.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected array of {expected}, got {}", items.len()
                            )));
                        }
                        Ok(($($t::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(u64::deserialize(&u64::MAX.serialize()).unwrap(), u64::MAX);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        let v: Vec<(u64, bool)> = vec![(3, true), (9, false)];
        assert_eq!(Vec::<(u64, bool)>::deserialize(&v.serialize()).unwrap(), v);
        assert_eq!(Option::<u32>::deserialize(&None::<u32>.serialize()).unwrap(), None);
    }
}
