//! # dinefd — wait-free dining under eventual weak exclusion ⇔ ◇P
//!
//! A full reproduction, as a Rust library, of *"The Weakest Failure Detector
//! for Wait-Free Dining under Eventual Weak Exclusion"* (Sastry, Pike, Welch;
//! SPAA'09, corrigendum SPAA'10).
//!
//! The paper's headline result: the **eventually perfect failure detector
//! ◇P** is the *weakest* oracle with which wait-free dining philosophers
//! under eventual weak exclusion (WF-◇WX) can be solved. Sufficiency was
//! known; the paper proves necessity with an asynchronous reduction that
//! runs, per monitored process, two black-box dining instances whose
//! witness/subject thread hand-off turns wait-freedom + eventual exclusion
//! into an eventually reliable crash detector.
//!
//! This crate is the facade over the workspace:
//!
//! * [`sim`] — deterministic discrete-event simulator of the paper's
//!   asynchronous message-passing model (reliable non-FIFO channels,
//!   crash faults, a conceptual global clock);
//! * [`fd`] — failure-detector classes (P, ◇P, S, T), their trace-level
//!   specification checkers, scripted oracles, and a real heartbeat ◇P for
//!   partially synchronous networks;
//! * [`dining`] — the dining-philosophers substrate: conflict graphs, the
//!   black-box participant interface, and six interchangeable services
//!   (Chandy–Misra hygienic, ◇P-based WF-◇WX, the §3 pathological variant,
//!   a spec-constrained adversarial service, T-based perpetual-WX FTME, and
//!   an eventually-2-fair algorithm);
//! * [`core`] — the paper's contribution: Alg. 1/Alg. 2 as pure
//!   guarded-command machines, the pair/all-pairs extraction hosts, the
//!   flawed reference-\[8\] construction (§3), the T-extraction (§9) and the
//!   eventual-2-fairness pipeline (§8);
//! * [`explore`] — bounded exhaustive checking of the paper's safety lemmas
//!   over every interleaving of the pair model, plus weakly-fair liveness
//!   runs;
//! * [`apps`] — what the extracted oracle is *for*: stable leader election
//!   and Chandra–Toueg consensus, runnable over the reduction's output;
//! * [`composite`] — full-stack assemblies defined here: a real heartbeat
//!   ◇P feeding the dining layer, closing the loop the paper describes
//!   (partial synchrony ⇒ ◇P ⇒ WF-◇WX ⇒ ◇P).
//!
//! ## Quickstart
//!
//! ```
//! use dinefd::prelude::*;
//!
//! // Extract ◇P from a black-box WF-◇WX service for the pair (p0 watches p1),
//! // with p1 crashing mid-run.
//! let mut sc = Scenario::pair(BlackBox::WfDx, 42);
//! sc.crashes = CrashPlan::one(ProcessId(1), Time(8_000));
//! let crashes = sc.crashes.clone();
//! let result = run_extraction(sc);
//!
//! // The extracted detector permanently suspects the crashed process…
//! let detections = result.history.strong_completeness(&crashes).unwrap();
//! assert!(detections[0].detected_from > detections[0].crashed_at);
//! // …and the run is classified as an eventually perfect detector.
//! assert!(result.history.classify(&crashes).contains(&OracleClass::EventuallyPerfect));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub use dinefd_apps as apps;
pub use dinefd_core as core;
pub use dinefd_dining as dining;
pub use dinefd_explore as explore;
pub use dinefd_fd as fd;
pub use dinefd_sim as sim;

pub mod composite;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dinefd_apps::{ConsensusNode, LeaderElection, ReplayOracle};
    pub use dinefd_core::{
        all_ordered_pairs, run_extraction, run_fair_over_extraction, run_flawed_pair, BlackBox,
        ExtractionResult, OracleSpec, PairTimelines, ReductionNode, Scenario, SharedSuspicion,
    };
    pub use dinefd_dining::{
        ConflictGraph, DinerPhase, DiningHistory, DiningIo, DiningMsg, DiningParticipant,
    };
    pub use dinefd_fd::{
        FdQuery, HeartbeatConfig, HeartbeatFd, InjectedOracle, MistakePlan, OracleClass,
        SuspicionHistory,
    };
    pub use dinefd_sim::{CrashPlan, DelayModel, ProcessId, SplitMix64, Time, World, WorldConfig};
}
