//! Small descriptive-statistics helpers for the experiment harness.

use std::fmt;

use crate::metrics::Histogram;

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` on an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Some(Summary {
            n,
            min: sorted[0],
            mean,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: sorted[n - 1],
        })
    }

    /// Summarizes integer samples.
    pub fn of_u64(values: &[u64]) -> Option<Summary> {
        let f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&f)
    }

    /// Approximate summary of a recorded [`Histogram`]: exact `n`, mean,
    /// min and max; `p50`/`p95` are bucket upper bounds (conservative
    /// over-estimates). Returns `None` on an empty histogram.
    pub fn of_histogram(h: &Histogram) -> Option<Summary> {
        if h.count() == 0 {
            return None;
        }
        Some(Summary {
            n: h.count() as usize,
            min: h.min() as f64,
            mean: h.mean(),
            p50: h.quantile_bound(0.50) as f64,
            p95: h.quantile_bound(0.95) as f64,
            max: h.max() as f64,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.1} mean={:.1} p50={:.1} p95={:.1} max={:.1}",
            self.n, self.min, self.mean, self.p50, self.p95, self.max
        )
    }
}

/// Percentile (nearest-rank interpolation) of an ascending-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[4.0]).unwrap();
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of_u64(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]).unwrap();
        assert_eq!(s.n, 10);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert!((s.mean - 5.5).abs() < 1e-9);
        assert!((s.p50 - 5.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 0.25) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn summary_of_histogram_bounds_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=64u64 {
            h.record(v);
        }
        let s = Summary::of_histogram(&h).unwrap();
        assert_eq!(s.n, 64);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 64.0);
        assert!((s.mean - 32.5).abs() < 1e-9);
        assert!(s.p50 >= 32.0 && s.p50 <= 64.0, "p50 bound {}", s.p50);
        assert!(s.p95 >= 61.0, "p95 bound {}", s.p95);
        assert!(Summary::of_histogram(&Histogram::new()).is_none());
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("n=2"));
        assert!(txt.contains("mean=1.5"));
    }
}
