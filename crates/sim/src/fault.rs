//! Crash-fault injection.
//!
//! The paper's fault model: in each run every process is either *correct*
//! (takes infinitely many steps, never fails) or *faulty* (crashes after
//! finite time and never recovers). A [`CrashPlan`] fixes, per run, which
//! processes are faulty and when each crash occurs; the
//! [`crate::world::World`] executes the plan.

use crate::id::ProcessId;
use crate::time::Time;

/// The crash schedule of one run.
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    crashes: Vec<(ProcessId, Time)>,
}

impl CrashPlan {
    /// No process ever crashes (a failure-free run).
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Plans a single crash.
    pub fn one(pid: ProcessId, at: Time) -> Self {
        CrashPlan { crashes: vec![(pid, at)] }
    }

    /// Adds a crash to the plan (builder style).
    pub fn and(mut self, pid: ProcessId, at: Time) -> Self {
        self.add(pid, at);
        self
    }

    /// Adds a crash to the plan.
    pub fn add(&mut self, pid: ProcessId, at: Time) {
        debug_assert!(
            !self.crashes.iter().any(|&(p, _)| p == pid),
            "{pid} already scheduled to crash"
        );
        self.crashes.push((pid, at));
    }

    /// All planned crashes.
    pub fn crashes(&self) -> &[(ProcessId, Time)] {
        &self.crashes
    }

    /// The crash time of `pid`, if it is faulty in this plan.
    pub fn crash_time(&self, pid: ProcessId) -> Option<Time> {
        self.crashes.iter().find(|&&(p, _)| p == pid).map(|&(_, t)| t)
    }

    /// Whether `pid` is faulty in this plan.
    pub fn is_faulty(&self, pid: ProcessId) -> bool {
        self.crash_time(pid).is_some()
    }

    /// Ids of all correct (never-crashing) processes in a system of size `n`.
    pub fn correct(&self, n: usize) -> Vec<ProcessId> {
        ProcessId::all(n).filter(|&p| !self.is_faulty(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_marks_everyone_correct() {
        let plan = CrashPlan::none();
        assert!(!plan.is_faulty(ProcessId(0)));
        assert_eq!(plan.correct(3).len(), 3);
    }

    #[test]
    fn crash_times_are_retrievable() {
        let plan = CrashPlan::one(ProcessId(1), Time(50)).and(ProcessId(2), Time(70));
        assert_eq!(plan.crash_time(ProcessId(1)), Some(Time(50)));
        assert_eq!(plan.crash_time(ProcessId(2)), Some(Time(70)));
        assert_eq!(plan.crash_time(ProcessId(0)), None);
        assert_eq!(plan.correct(3), vec![ProcessId(0)]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn double_crash_is_rejected() {
        let _ = CrashPlan::one(ProcessId(0), Time(1)).and(ProcessId(0), Time(2));
    }
}
