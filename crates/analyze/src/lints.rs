//! Static lint passes over the guarded-command IR and the machines' codecs.
//!
//! Five independent checks, each a semantic property the correctness
//! argument quietly assumes but nothing else in the repo verifies:
//!
//! 1. **Guard disjointness** — within each *machine-local* action family
//!    (`W_h`, `W_x`, `S_h`, `S_p`, `S_x`), the two instances' guards must be
//!    mutually exclusive on every state satisfying the strengthened
//!    invariant. The paper's regime argument assumes one instance is "in
//!    charge" at a time; an overlap means two competing local steps are
//!    simultaneously enabled (e.g. `IgnoreTriggerGuard` makes both `S_h`
//!    guards true at once). Wire/service families legitimately overlap and
//!    are exempt.
//! 2. **Dead guards** — every action in the IR's table must be enabled in
//!    at least one invariant-satisfying typed state. A dead guard is a
//!    transcription bug: the IR claims to model a rule that can never fire.
//! 3. **Duplicate-delivery idempotence** — the machine-state effect of the
//!    ping handler (`W_p`) and the ack handler (`S_a`) must be idempotent:
//!    delivering the same message twice must leave the machine bits where
//!    one delivery left them. The corrigendum's whole point is surviving
//!    message anomalies; the handlers are the line of defense.
//! 4. **Codec codomain completeness** — `WitnessMachine::unpack` accepts
//!    exactly the 16 packed bytes `pack` can produce, the subject's flag
//!    byte exactly the 64 valid patterns, and both round-trip.
//! 5. **Guard completeness** — the dual of disjointness: on every
//!    invariant-satisfying typed state, (a) an in-flight ping has its
//!    delivery action enabled (the witness is always live to receive), (b)
//!    an in-flight ack has *some* consumer enabled — a live subject accepts
//!    or (strict mode) rejects it, and a crashed subject is the documented
//!    drop rule — and (c) **crashed progress**: once `q` has crashed, some
//!    action is still enabled — the witness side must never wedge, because
//!    its continued cycling is what drives eventual suspicion (Theorem 1's
//!    completeness direction). (The unrestricted no-deadlock claim is
//!    deliberately *not* checked: the typed invariant set over-approximates
//!    reachability and contains wedged-modulo-crash states no concrete run
//!    visits.) A completeness hole means the transition relation
//!    under-approximates the wire, which would let the inductive checker
//!    "prove" lemmas the real system can still break.
//!
//! Lints are *warnings with evidence*: each finding carries a concrete
//! witness state, so a red lint is directly debuggable.

use crate::induct::clause_mask;
use crate::induct::ALL_CLAUSES;
use crate::ir::{family, AbsState, ActionId, Ir, IrConfig};
use dinefd_core::machines::{SubjectMachine, WitnessMachine};

/// A guard-overlap finding: both instances of one family enabled at once.
#[derive(Clone, Debug)]
pub struct OverlapFinding {
    /// The action family (e.g. `"S_h"`).
    pub family: &'static str,
    /// A witness state satisfying the strengthened invariant with both
    /// instances' guards true.
    pub witness: AbsState,
}

/// A dead-guard finding: the action is never enabled on the invariant.
#[derive(Clone, Debug)]
pub struct DeadGuardFinding {
    /// The dead action.
    pub action: ActionId,
    /// Its display name.
    pub name: &'static str,
}

/// A non-idempotent handler finding.
#[derive(Clone, Debug)]
pub struct IdempotenceFinding {
    /// `"W_p"` or `"S_a"`.
    pub handler: &'static str,
    /// The instance index.
    pub instance: usize,
    /// Debug rendering of the state the double delivery diverged from.
    pub witness: String,
}

/// Codec codomain findings (counts; zero everywhere = green).
#[derive(Clone, Copy, Debug, Default)]
pub struct CodecFindings {
    /// Bytes `WitnessMachine::unpack` accepted outside `pack`'s image.
    pub witness_extra: u32,
    /// Bytes in `pack`'s image that `unpack` rejected or mis-round-tripped.
    pub witness_missing: u32,
    /// Flag bytes `SubjectMachine::unpack` accepted outside the valid set.
    pub subject_extra: u32,
    /// Valid subject flag bytes rejected or mis-round-tripped.
    pub subject_missing: u32,
}

impl CodecFindings {
    /// Whether the codecs are exactly onto their documented codomains.
    pub fn clean(&self) -> bool {
        self.witness_extra == 0
            && self.witness_missing == 0
            && self.subject_extra == 0
            && self.subject_missing == 0
    }
}

/// A guard-completeness finding: an obligation the transition relation
/// fails to discharge on an invariant-satisfying state.
#[derive(Clone, Debug)]
pub struct CompletenessFinding {
    /// Which completeness rule broke (`"ping-without-handler"`,
    /// `"ack-without-consumer"`, or `"crashed-deadlock"`).
    pub rule: &'static str,
    /// The instance index, where the rule is per-instance.
    pub instance: Option<usize>,
    /// The first witness state in enumeration order.
    pub witness: AbsState,
}

/// The combined outcome of all five lint passes.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Guard overlaps within machine-local families.
    pub overlaps: Vec<OverlapFinding>,
    /// Actions with unsatisfiable guards.
    pub dead_guards: Vec<DeadGuardFinding>,
    /// Non-idempotent duplicate deliveries.
    pub idempotence: Vec<IdempotenceFinding>,
    /// Codec codomain audit.
    pub codec: CodecFindings,
    /// Guard-completeness holes (undeliverable messages, deadlocks).
    pub completeness: Vec<CompletenessFinding>,
}

impl LintReport {
    /// Whether every pass is green.
    pub fn clean(&self) -> bool {
        self.overlaps.is_empty()
            && self.dead_guards.is_empty()
            && self.idempotence.is_empty()
            && self.codec.clean()
            && self.completeness.is_empty()
    }

    /// Total finding count (the metric the bench table reports).
    pub fn finding_count(&self) -> u64 {
        self.overlaps.len() as u64
            + self.dead_guards.len() as u64
            + self.idempotence.len() as u64
            + u64::from(self.codec.witness_extra)
            + u64::from(self.codec.witness_missing)
            + u64::from(self.codec.subject_extra)
            + u64::from(self.codec.subject_missing)
            + self.completeness.len() as u64
    }
}

/// The machine-local families whose two instance guards must be disjoint.
const EXCLUSIVE_FAMILIES: [&str; 5] = ["W_h", "W_x", "S_h", "S_p", "S_x"];

/// Runs all five lint passes for `cfg`.
pub fn run_lints(cfg: &IrConfig) -> LintReport {
    let ir = Ir::new(*cfg);
    let (overlaps, dead_guards, completeness) = guard_lints(&ir);
    LintReport {
        overlaps,
        dead_guards,
        idempotence: idempotence_lint(cfg),
        codec: codec_lint(),
        completeness,
    }
}

/// One sweep of the typed domain computing the guard lints: for each
/// exclusive family, the first invariant state with both instances enabled;
/// for each action, whether any invariant state enables it; and for each
/// completeness rule, the first invariant state violating it. (The first
/// two resolve early; completeness is a universal claim, so a clean run
/// necessarily visits the whole invariant set.)
fn guard_lints(ir: &Ir) -> (Vec<OverlapFinding>, Vec<DeadGuardFinding>, Vec<CompletenessFinding>) {
    let all: u16 = (1 << ALL_CLAUSES.len()) - 1;
    let mut overlap: Vec<Option<AbsState>> = vec![None; EXCLUSIVE_FAMILIES.len()];
    let mut alive: Vec<bool> = vec![false; ir.actions().len()];
    let mut outstanding = EXCLUSIVE_FAMILIES.len() + ir.actions().len();
    // Completeness witnesses: ping-without-handler per instance,
    // ack-without-consumer per instance, crashed-state deadlock.
    let mut no_ping_handler: [Option<AbsState>; 2] = [None, None];
    let mut no_ack_consumer: [Option<AbsState>; 2] = [None, None];
    let mut deadlock: Option<AbsState> = None;
    crate::induct::for_each_typed_state_cap(ir.cfg.wire_cap, |s| {
        if clause_mask(s) != all {
            return;
        }
        if outstanding > 0 {
            for (k, a) in ir.actions().iter().enumerate() {
                if !alive[k] && ir.enabled(s, a.id) {
                    alive[k] = true;
                    outstanding -= 1;
                }
            }
            for (k, fam) in EXCLUSIVE_FAMILIES.iter().enumerate() {
                if overlap[k].is_some() {
                    continue;
                }
                let both = ir
                    .actions()
                    .iter()
                    .filter(|a| family(a.id) == *fam && ir.enabled(s, a.id))
                    .count();
                if both >= 2 {
                    overlap[k] = Some(*s);
                    outstanding -= 1;
                }
            }
        }
        if s.crashed && deadlock.is_none() {
            let mut any_enabled = false;
            for a in ir.actions() {
                if ir.enabled(s, a.id) {
                    any_enabled = true;
                    break;
                }
            }
            if !any_enabled {
                deadlock = Some(*s);
            }
        }
        for i in 0..2usize {
            if s.pings[i] > 0
                && no_ping_handler[i].is_none()
                && !ir.enabled(s, ActionId::DeliverPing(i))
            {
                no_ping_handler[i] = Some(*s);
            }
            if s.acks[i] > 0 && no_ack_consumer[i].is_none() && !s.crashed {
                let consumed = ir.enabled(s, ActionId::DeliverAck(i))
                    || ir.enabled(s, ActionId::DeliverStaleAck(i))
                    || ir.enabled(s, ActionId::DuplicateAck(i));
                if !consumed {
                    no_ack_consumer[i] = Some(*s);
                }
            }
        }
    });
    let overlaps = EXCLUSIVE_FAMILIES
        .iter()
        .zip(&overlap)
        .filter_map(|(fam, w)| w.map(|witness| OverlapFinding { family: fam, witness }))
        .collect();
    let dead = ir
        .actions()
        .iter()
        .zip(&alive)
        .filter(|&(_, &ok)| !ok)
        .map(|(a, _)| DeadGuardFinding { action: a.id, name: a.name })
        .collect();
    let mut completeness = Vec::new();
    for (i, w) in no_ping_handler.iter().enumerate() {
        if let Some(witness) = w {
            completeness.push(CompletenessFinding {
                rule: "ping-without-handler",
                instance: Some(i),
                witness: *witness,
            });
        }
    }
    for (i, w) in no_ack_consumer.iter().enumerate() {
        if let Some(witness) = w {
            completeness.push(CompletenessFinding {
                rule: "ack-without-consumer",
                instance: Some(i),
                witness: *witness,
            });
        }
    }
    if let Some(witness) = deadlock {
        completeness.push(CompletenessFinding {
            rule: "crashed-deadlock",
            instance: None,
            witness,
        });
    }
    (overlaps, dead, completeness)
}

/// Double-delivery idempotence of the machine handlers, swept over the
/// machines' full packed domains (16 witness states × 2 instances for
/// `W_p`; 64 subject flag states × 2 instances for `S_a`).
fn idempotence_lint(cfg: &IrConfig) -> Vec<IdempotenceFinding> {
    let mut findings = Vec::new();
    // W_p(i): haveping_i ← true. Ack emission is a wire effect, out of
    // scope here (the wire is audited by the inductive checker instead).
    for b in 0u8..16 {
        let w = WitnessMachine::unpack(b).expect("4-bit codomain");
        for i in 0..2usize {
            let mut once = w.clone();
            let _ = once.on_ping(i, 1);
            let mut twice = once.clone();
            let _ = twice.on_ping(i, 1);
            if once != twice {
                findings.push(IdempotenceFinding {
                    handler: "W_p",
                    instance: i,
                    witness: format!("{w:?}"),
                });
            }
        }
    }
    // S_a(i): trigger ← 1-i (or nothing, under SkipTriggerUpdate / a stale
    // sequence number). Replaying the same ack must change nothing more.
    for trigger in 0..2usize {
        for pe0 in [false, true] {
            for pe1 in [false, true] {
                for i in 0..2usize {
                    let mk = || {
                        SubjectMachine::from_parts(
                            trigger,
                            [pe0, pe1],
                            [1, 1],
                            cfg.strict_seq,
                            cfg.subject_mutation,
                        )
                    };
                    let mut once = mk();
                    once.on_ack(i, 1);
                    let mut twice = mk();
                    twice.on_ack(i, 1);
                    twice.on_ack(i, 1);
                    if once.flag_bits() != twice.flag_bits() {
                        findings.push(IdempotenceFinding {
                            handler: "S_a",
                            instance: i,
                            witness: format!("trigger={trigger} pe=[{pe0},{pe1}]"),
                        });
                    }
                }
            }
        }
    }
    findings
}

/// Pack/unpack codomain audit of both machine codecs.
fn codec_lint() -> CodecFindings {
    let mut f = CodecFindings::default();
    // Witness: the image of `pack` is exactly the 16 bytes with the high
    // nibble clear; `unpack` must accept exactly those and round-trip.
    for b in 0u16..=255 {
        let b = b as u8;
        let in_image = b & 0xF0 == 0;
        match WitnessMachine::unpack(b) {
            Some(w) => {
                if !in_image || w.pack() != b {
                    if in_image {
                        f.witness_missing += 1;
                    } else {
                        f.witness_extra += 1;
                    }
                }
            }
            None => {
                if in_image {
                    f.witness_missing += 1;
                }
            }
        }
    }
    // Subject: the flag byte's valid patterns are exactly the 64 with the
    // top two bits clear (trigger, two ping flags, strict bit, 2-bit
    // mutation tag — every combination is constructible).
    for b in 0u16..=255 {
        let b = b as u8;
        let valid = b & 0b1100_0000 == 0;
        let buf = [b, 0, 0]; // flag byte + two zero varint seqs
        let mut input: &[u8] = &buf;
        match SubjectMachine::unpack(&mut input) {
            Some(m) => {
                if !valid || m.flag_bits() != b {
                    if valid {
                        f.subject_missing += 1;
                    } else {
                        f.subject_extra += 1;
                    }
                }
            }
            None => {
                if valid {
                    f.subject_missing += 1;
                }
            }
        }
    }
    f
}

/// Renders `report` as a deterministic human-readable summary.
pub fn render_lints(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("lints: {} finding(s)\n", report.finding_count()));
    for o in &report.overlaps {
        out.push_str(&format!(
            "  overlap: family {} has both instances enabled at {:?}\n",
            o.family, o.witness
        ));
    }
    for d in &report.dead_guards {
        out.push_str(&format!("  dead guard: {} ({:?}) never enabled\n", d.name, d.action));
    }
    for i in &report.idempotence {
        out.push_str(&format!(
            "  non-idempotent: {}({}) double delivery diverges from {}\n",
            i.handler, i.instance, i.witness
        ));
    }
    if !report.codec.clean() {
        out.push_str(&format!("  codec: {:?}\n", report.codec));
    }
    for c in &report.completeness {
        let inst = c.instance.map_or(String::new(), |i| format!("({i})"));
        out.push_str(&format!("  incomplete: {}{} at {:?}\n", c.rule, inst, c.witness));
    }
    if report.clean() {
        out.push_str("  all clean\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinefd_core::machines::SubjectMutation;

    #[test]
    fn codec_codomains_are_exact() {
        let f = codec_lint();
        assert!(f.clean(), "{f:?}");
    }

    #[test]
    fn guard_completeness_is_clean_across_the_config_matrix() {
        use dinefd_explore::ModelMutation;
        let configs = [
            IrConfig::faithful(),
            IrConfig { strict_seq: true, ..IrConfig::faithful() },
            IrConfig { allow_crash: false, ..IrConfig::default() },
            IrConfig { subject_mutation: SubjectMutation::SkipPingDisable, ..IrConfig::faithful() },
            IrConfig {
                subject_mutation: SubjectMutation::IgnoreTriggerGuard,
                ..IrConfig::faithful()
            },
            IrConfig {
                subject_mutation: SubjectMutation::SkipTriggerUpdate,
                ..IrConfig::faithful()
            },
            IrConfig { model_mutation: ModelMutation::DropPingSend, ..IrConfig::faithful() },
            IrConfig { model_mutation: ModelMutation::StaleAckReplay, ..IrConfig::faithful() },
        ];
        for cfg in configs {
            let ir = Ir::new(cfg);
            let (_, _, completeness) = guard_lints(&ir);
            assert!(completeness.is_empty(), "{cfg:?}: {completeness:?}");
        }
    }

    #[test]
    fn handlers_are_idempotent_in_every_variant() {
        for mutation in [
            SubjectMutation::None,
            SubjectMutation::SkipPingDisable,
            SubjectMutation::IgnoreTriggerGuard,
            SubjectMutation::SkipTriggerUpdate,
        ] {
            for strict_seq in [false, true] {
                let cfg =
                    IrConfig { strict_seq, subject_mutation: mutation, ..IrConfig::faithful() };
                let f = idempotence_lint(&cfg);
                assert!(f.is_empty(), "{mutation:?} strict={strict_seq}: {f:?}");
            }
        }
    }
}
