//! Per-link fault schedules for the proxy layer.
//!
//! Each ordered link `(i → j)` of a live cluster is fronted by a TCP proxy
//! that can misbehave until the link's *global stabilization time* and must
//! behave afterwards — the partial-synchrony contract the heartbeat ◇P is
//! built for. Faults compose: a frame may be dropped, held back one slot
//! (reorder), and delayed; after GST every frame is forwarded promptly and
//! in order.

use std::time::Duration;

use dinefd_runtime::SplitMix64;

/// What one link's proxy does to frames before GST.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// Global stabilization time of this link, in ms since cluster start.
    /// Zero means the link is well-behaved from the outset.
    pub gst_ms: u64,
    /// Added per-frame delay before GST, in ms.
    pub delay_ms: u64,
    /// If true the pre-GST delay *ramps down* linearly as GST approaches
    /// (full `delay_ms` at t=0, zero at GST); if false it stays fixed.
    pub ramping: bool,
    /// Per-frame drop probability before GST, in per-mille (0..=1000).
    /// Dropping is only sound for idempotent traffic (heartbeats); token
    /// protocols need lossless links even before GST.
    pub drop_per_mille: u16,
    /// Per-frame probability of holding a frame back one slot (swapping it
    /// with its successor), in per-mille.
    pub reorder_per_mille: u16,
}

impl LinkFault {
    /// A link that never misbehaves.
    pub fn clean() -> Self {
        LinkFault {
            gst_ms: 0,
            delay_ms: 0,
            ramping: false,
            drop_per_mille: 0,
            reorder_per_mille: 0,
        }
    }

    /// Fixed `delay_ms` per frame until `gst_ms`.
    pub fn fixed_delay(gst_ms: u64, delay_ms: u64) -> Self {
        LinkFault { gst_ms, delay_ms, ..Self::clean() }
    }

    /// Delay ramping down from `delay_ms` to zero at `gst_ms`.
    pub fn ramping_delay(gst_ms: u64, delay_ms: u64) -> Self {
        LinkFault { gst_ms, delay_ms, ramping: true, ..Self::clean() }
    }

    /// The delay to apply to a frame observed at `now_ms`.
    pub fn delay_at(&self, now_ms: u64) -> Duration {
        if now_ms >= self.gst_ms || self.delay_ms == 0 {
            return Duration::ZERO;
        }
        let ms = if self.ramping {
            // Linear ramp: full delay at t=0, zero at GST.
            let remaining = self.gst_ms - now_ms;
            self.delay_ms.saturating_mul(remaining) / self.gst_ms.max(1)
        } else {
            self.delay_ms
        };
        Duration::from_millis(ms)
    }

    /// Whether to drop a frame observed at `now_ms`.
    pub fn drops(&self, now_ms: u64, rng: &mut SplitMix64) -> bool {
        now_ms < self.gst_ms
            && self.drop_per_mille > 0
            && rng.below(1000) < u64::from(self.drop_per_mille)
    }

    /// Whether to hold a frame back one slot at `now_ms`.
    pub fn reorders(&self, now_ms: u64, rng: &mut SplitMix64) -> bool {
        now_ms < self.gst_ms
            && self.reorder_per_mille > 0
            && rng.below(1000) < u64::from(self.reorder_per_mille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_never_misbehaves() {
        let f = LinkFault::clean();
        let mut rng = SplitMix64::new(1);
        for t in [0u64, 1, 1000] {
            assert_eq!(f.delay_at(t), Duration::ZERO);
            assert!(!f.drops(t, &mut rng));
            assert!(!f.reorders(t, &mut rng));
        }
    }

    #[test]
    fn fixed_delay_stops_exactly_at_gst() {
        let f = LinkFault::fixed_delay(100, 40);
        assert_eq!(f.delay_at(0), Duration::from_millis(40));
        assert_eq!(f.delay_at(99), Duration::from_millis(40));
        assert_eq!(f.delay_at(100), Duration::ZERO);
        assert_eq!(f.delay_at(10_000), Duration::ZERO);
    }

    #[test]
    fn ramping_delay_decays_to_zero() {
        let f = LinkFault::ramping_delay(100, 40);
        assert_eq!(f.delay_at(0), Duration::from_millis(40));
        assert_eq!(f.delay_at(50), Duration::from_millis(20));
        assert!(f.delay_at(99) <= Duration::from_millis(1));
        assert_eq!(f.delay_at(100), Duration::ZERO);
    }

    #[test]
    fn drops_and_reorders_only_before_gst() {
        let f = LinkFault {
            gst_ms: 50,
            drop_per_mille: 1000,
            reorder_per_mille: 1000,
            ..LinkFault::clean()
        };
        let mut rng = SplitMix64::new(2);
        assert!(f.drops(0, &mut rng));
        assert!(f.reorders(49, &mut rng));
        for _ in 0..100 {
            assert!(!f.drops(50, &mut rng));
            assert!(!f.reorders(50, &mut rng));
        }
    }
}
