//! The discrete-event queue driving a [`crate::world::World`].
//!
//! Two interchangeable backends sit behind [`EventQueue`]: a hierarchical
//! [`TimerWheel`](crate::wheel::TimerWheel) (the default — `O(1)` push/pop
//! for the near-future scheduling the simulator actually does) and the
//! original [`BinaryHeap`], retained for differential assertion. Both pop
//! strictly by `(time, seq)` where `seq` is the queue's scheduling
//! counter, so a run's trace is byte-identical whichever backend drives it
//! — `crates/sim` tests pin this.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::id::ProcessId;
use crate::node::TimerId;
use crate::time::Time;
use crate::wheel::TimerWheel;

/// What happens at a scheduled instant.
#[derive(Clone, Debug)]
pub enum EventKind<M> {
    /// Delivery of a message on the channel `from → to`.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payload.
        msg: M,
    },
    /// Delivery of a batched envelope on the channel `from → to`: every
    /// message some step flushed toward `to`, coalesced under one delay
    /// draw. Messages are dispatched in send order (FIFO within the
    /// envelope), each as its own atomic step of the receiver.
    Envelope {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payloads, in send order.
        msgs: Vec<M>,
    },
    /// A local timer of `pid` fires.
    Timer {
        /// Owner of the timer.
        pid: ProcessId,
        /// Which timer.
        id: TimerId,
    },
    /// `pid` crashes (ceases execution permanently).
    Crash {
        /// The process that crashes.
        pid: ProcessId,
    },
}

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Event<M> {
    /// When the event occurs.
    pub at: Time,
    /// Tie-breaking sequence number (assigned in scheduling order).
    pub seq: u64,
    /// The effect.
    pub kind: EventKind<M>,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first. Equal times are resolved by scheduling order, which
// keeps runs fully deterministic.
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Which data structure backs an [`EventQueue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timer wheel ([`crate::wheel`]) — `O(1)` push/pop for
    /// near-future events, the default.
    #[default]
    Wheel,
    /// The original global `BinaryHeap` — `O(log n)` everything, kept as
    /// the reference implementation for differential runs.
    Heap,
}

#[derive(Debug)]
enum Backend<M> {
    Wheel(TimerWheel<(u64, EventKind<M>)>),
    Heap(BinaryHeap<Event<M>>),
}

/// Deterministic event queue: pops strictly by `(time, scheduling order)`.
#[derive(Debug)]
pub struct EventQueue<M> {
    backend: Backend<M>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::with_backend(QueueBackend::default())
    }
}

impl<M> EventQueue<M> {
    /// Empty queue on the default backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let backend = match backend {
            QueueBackend::Wheel => Backend::Wheel(TimerWheel::new()),
            QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
        };
        EventQueue { backend, next_seq: 0 }
    }

    /// Schedules `kind` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// If `at` lies before an already-popped instant (the simulation clock
    /// never runs backwards). The heap backend tolerates such pushes by
    /// re-sorting, but they are always caller bugs; the wheel rejects them.
    pub fn push(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            // Same-time wheel entries pop in insertion order, and `seq` is
            // monotone in push order, so (time, seq) order is preserved;
            // the seq rides along for `Event` reconstruction on pop.
            Backend::Wheel(w) => w.push(at, (seq, kind)),
            Backend::Heap(h) => h.push(Event { at, seq, kind }),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        match &mut self.backend {
            Backend::Wheel(w) => w.pop().map(|(at, (seq, kind))| Event { at, seq, kind }),
            Backend::Heap(h) => h.pop(),
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.backend {
            Backend::Wheel(w) => w.peek_time(),
            Backend::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::Wheel, QueueBackend::Heap];

    #[test]
    fn pops_in_time_order() {
        for backend in BACKENDS {
            let mut q: EventQueue<&'static str> = EventQueue::with_backend(backend);
            q.push(Time(30), EventKind::Crash { pid: ProcessId(0) });
            q.push(Time(10), EventKind::Crash { pid: ProcessId(1) });
            q.push(Time(20), EventKind::Crash { pid: ProcessId(2) });
            let order: Vec<Time> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
            assert_eq!(order, vec![Time(10), Time(20), Time(30)], "{backend:?}");
        }
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        for backend in BACKENDS {
            let mut q: EventQueue<()> = EventQueue::with_backend(backend);
            for i in 0..5 {
                q.push(Time(7), EventKind::Crash { pid: ProcessId(i) });
            }
            let pids: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Crash { pid } => pid.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(pids, vec![0, 1, 2, 3, 4], "{backend:?}");
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        for backend in BACKENDS {
            let mut q: EventQueue<()> = EventQueue::with_backend(backend);
            assert_eq!(q.peek_time(), None);
            q.push(Time(4), EventKind::Crash { pid: ProcessId(0) });
            q.push(Time(2), EventKind::Crash { pid: ProcessId(1) });
            assert_eq!(q.peek_time(), Some(Time(2)), "{backend:?}");
            q.pop();
            assert_eq!(q.peek_time(), Some(Time(4)), "{backend:?}");
        }
    }

    /// The two backends must agree on `(at, seq)` pop order for arbitrary
    /// monotone-time interleavings of pushes and pops — the property that
    /// makes the wheel a drop-in replacement for the heap.
    #[test]
    fn wheel_and_heap_pop_identically() {
        let mut rng = SplitMix64::new(0xBEEF);
        for trial in 0..10 {
            let mut wheel: EventQueue<u32> = EventQueue::with_backend(QueueBackend::Wheel);
            let mut heap: EventQueue<u32> = EventQueue::with_backend(QueueBackend::Heap);
            let mut now = 0u64;
            for step in 0..3_000 {
                if rng.chance(3, 5) || wheel.is_empty() {
                    // Mix near-window delays with rare far-future spikes,
                    // including same-instant ties.
                    let delay =
                        if rng.chance(1, 10) { rng.range(1, 100_000) } else { rng.below(8) };
                    let at = Time(now + delay);
                    let pid = ProcessId(step as u32);
                    wheel.push(at, EventKind::Crash { pid });
                    heap.push(at, EventKind::Crash { pid });
                } else {
                    assert_eq!(wheel.peek_time(), heap.peek_time(), "trial {trial} peek");
                    let (w, h) = (wheel.pop().unwrap(), heap.pop().unwrap());
                    assert_eq!((w.at, w.seq), (h.at, h.seq), "trial {trial} pop order");
                    now = w.at.ticks();
                }
            }
            while let Some(h) = heap.pop() {
                let w = wheel.pop().expect("wheel drained early");
                assert_eq!((w.at, w.seq), (h.at, h.seq), "trial {trial} drain");
            }
            assert!(wheel.is_empty());
        }
    }
}
