//! # `dinefd-explore` — bounded exhaustive checking of the reduction
//!
//! The SPAA'10 corrigendum to this paper exists because proofs about
//! message regimes are delicate; this crate treats the paper's safety lemmas
//! as machine-checkable artifacts. It builds a *closed* nondeterministic
//! model of one monitoring pair — the pure witness/subject machines of
//! `dinefd-core` composed with a spec-level dining service (grants chosen by
//! the explorer, exclusive after an arbitrarily-chosen convergence point)
//! and explicit in-flight ping/ack multisets with non-FIFO delivery — and
//! explores **every interleaving** up to a depth bound.
//!
//! Checked at every reachable state (experiment E7):
//!
//! * **Lemma 2**: `s_i` not eating ⇒ `ping_i = true`;
//! * **Lemma 3**: `s_i` not eating ∧ `ping_i` ⇒ no ping/ack of `DX_i` in
//!   transit;
//! * **Lemma 4**: `s_i` hungry ⇒ `trigger = i`;
//! * **Lemma 9**: some witness thread is thinking;
//! * model soundness: after convergence the two endpoints of an instance
//!   never eat simultaneously;
//! * absence of deadlock states.
//!
//! Checked across every transition (the inductive crux of Theorem 1):
//! once `q` has crashed with no pings in flight and no banked ping, that
//! condition is closed under all transitions and the suspicion output is
//! monotone (never returns to trust).
//!
//! The liveness half of the lemmas (5, 7, 10, 11, 12 — things *happen*
//! infinitely often) cannot be established by finite safety search; the
//! [`mod@fair_run`] module drives the same model under a weakly-fair deterministic
//! schedule and checks the progress counters instead.
//!
//! ## Parallel search
//!
//! Both explorers accept a `threads` knob ([`ExploreConfig::threads`],
//! [`ComposedConfig::threads`]). `threads: 1` (the default) runs the
//! original serial DFS byte-for-byte; `threads >= 2` runs the same model on
//! a work-stealing engine ([`mod@parallel`]): per-worker LIFO deques with
//! FIFO stealing, a visited table sharded across [`parallel::N_SHARDS`]
//! mutexes, and a pending-task counter for termination. The visited table
//! stores, per state, the *maximum remaining depth* it has been queued
//! with; that map converges to a schedule-independent fixpoint, so
//! `states_visited`, `clean()`, and `deadlocks` are deterministic across
//! thread counts and schedules (when the state budget does not truncate the
//! run). Throughput and contention counters come back in
//! [`parallel::SearchStats`].
//!
//! ## Mutation testing
//!
//! A checker that never fires is indistinguishable from a checker that
//! cannot fire. [`ExploreConfig::subject_mutation`] /
//! [`ExploreConfig::model_mutation`] seed known bugs into the subject
//! machine and the wire model (skip a ping-disable, ignore the Lemma-4
//! trigger guard, drop a ping send, replay a stale ack…); the
//! `seeded_bugs` integration suite asserts the lemma checks actually catch
//! them, with lemma-attributed, replayable counterexample traces
//! ([`parallel::ViolationRecord`]).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod codec;
pub mod composed;
pub mod fair_run;
pub mod invariants;
pub mod pair_model;
pub mod parallel;
pub mod por;
pub mod search;
pub(crate) mod visited;

pub use codec::{fingerprint, StateCodec};
pub use composed::{
    explore_composed, ComposedConfig, ComposedLabel, ComposedReport, ComposedState,
};
pub use fair_run::{fair_run, fair_run_mutated, FairRunReport};
pub use invariants::{
    check_closure_step, check_state, exclusion_holds, in_completeness_closure, lemma2_holds,
    lemma3_holds, lemma4_holds, lemma9_holds, InvariantView,
};
pub use pair_model::{ExploreConfig, ModelMutation, PairState, TransitionLabel};
pub use parallel::{SearchStats, ViolationKind, ViolationRecord, N_SHARDS};
pub use por::DeliveryClass;
pub use search::{explore, explore_seeded, find_reachable, fmt_path, ExploreReport};

/// Re-export: machine-level seeded bugs live next to the machines.
pub use dinefd_core::machines::SubjectMutation;
