//! The fuzzer-side mutation gate (extends `crates/explore/tests/seeded_bugs.rs`):
//! under a fixed seed and a fixed iteration budget, the coverage-guided
//! fuzzer must *find* a lemma-violating schedule for every safety-violating
//! seeded mutation, must emit a minimized prefix that independently replays
//! to the same lemma, and must stay silent on the safety-silent controls.
//! A fuzzer that cannot re-find known bugs is a fuzzer whose findings on
//! the faithful model mean nothing.
//!
//! Every run here is driven through a scenario-DSL document — the same
//! kind of file `dinefd fuzz` and the CI job consume — so the gate also
//! exercises the DSL → engine plumbing end to end.

use dinefd_explore::{ExploreConfig, PairState, TransitionLabel};
use dinefd_fuzz::{fuzz_scenario, lemma_key, FuzzReport};
use dinefd_sim::scenario_dsl::Scenario;

/// The fixed gate budget. Empirically the slowest find (stale-ack-replay,
/// seed 1) lands around iteration 525; 4000 leaves an order-of-magnitude
/// margin while keeping the whole gate well under the CI time box.
const GATE: &str = "\n[fuzz]\nseed = 1\niterations = 4000\nmax_steps = 40\ncorpus_seeds = 16\n";

fn run_gate(mutation_key: &str, mutation: &str) -> FuzzReport {
    let text = format!("[model]\n{mutation_key} = {mutation}\n{GATE}");
    let doc = Scenario::parse(&text).expect("gate scenario parses");
    fuzz_scenario(&doc)
}

/// Independent replay harness (the `trace_replay` discipline): walk the
/// labels through `PairState::successors`, demanding each is enabled, and
/// return the invariant/closure violation at the end of the walk.
fn replay_violation(cfg: &ExploreConfig, path: &[TransitionLabel]) -> Option<String> {
    let mut state = PairState::initial(cfg);
    for (step, &label) in path.iter().enumerate() {
        let (_, next) =
            state.successors(cfg).into_iter().find(|&(l, _)| l == label).unwrap_or_else(|| {
                panic!("step {step}: label {label:?} not enabled during replay")
            });
        if let Some(msg) = state.check_closure_step(&next) {
            assert_eq!(step, path.len() - 1, "violation before the end of the minimized prefix");
            return Some(msg);
        }
        state = next;
    }
    state.check_invariants().into_iter().next()
}

fn assert_finds(mutation_key: &str, mutation: &str, expect_lemma: &str) {
    let text = format!("[model]\n{mutation_key} = {mutation}\n{GATE}");
    let doc = Scenario::parse(&text).expect("gate scenario parses");
    let report = fuzz_scenario(&doc);
    assert!(
        report.findings.iter().any(|f| f.lemma.starts_with(expect_lemma)),
        "{mutation}: expected a {expect_lemma} finding, got {:?}",
        report.findings.iter().map(|f| f.lemma.clone()).collect::<Vec<_>>(),
    );
    assert!(report.first_find_iter.is_some(), "{mutation}: no find iteration recorded");

    let cfg = ExploreConfig::from_scenario(&doc);
    for f in &report.findings {
        assert!(!f.minimized.is_empty(), "{mutation}: empty minimized prefix");
        assert!(f.minimized.len() <= f.path.len(), "{mutation}: minimizer grew the trace");
        let msg = replay_violation(&cfg, &f.minimized).unwrap_or_else(|| {
            panic!("{mutation}: minimized prefix replays clean: {:?}", f.minimized)
        });
        assert_eq!(
            lemma_key(&msg),
            f.lemma,
            "{mutation}: replayed violation changed lemma ({msg})"
        );
    }
}

#[test]
fn fuzzer_finds_skip_ping_disable() {
    assert_finds("subject_mutation", "skip-ping-disable", "Lemma 3");
}

#[test]
fn fuzzer_finds_ignore_trigger_guard() {
    assert_finds("subject_mutation", "ignore-trigger-guard", "Lemma 4");
}

#[test]
fn fuzzer_finds_stale_ack_replay() {
    // The in-flight duplicate trips Lemma 3 first (same incident the
    // explorer attributes to Lemmas 3/4; see `ModelMutation::StaleAckReplay`).
    assert_finds("model_mutation", "stale-ack-replay", "Lemma 3");
}

#[test]
fn fuzzer_is_silent_on_drop_ping_send() {
    let report = run_gate("model_mutation", "drop-ping-send");
    assert!(
        report.findings.is_empty(),
        "safety-silent control produced findings: {:?}",
        report.findings.iter().map(|f| f.message.clone()).collect::<Vec<_>>(),
    );
    assert_eq!(report.first_find_iter, None);
}

#[test]
fn fuzzer_is_silent_on_skip_trigger_update() {
    let report = run_gate("subject_mutation", "skip-trigger-update");
    assert!(report.findings.is_empty());
    assert_eq!(report.first_find_iter, None);
}

#[test]
fn fuzzer_is_silent_on_the_faithful_model() {
    let report = run_gate("subject_mutation", "none");
    assert!(report.findings.is_empty(), "faithful model violated: {:?}", report.findings);
    assert!(report.coverage_states > 100, "gate budget barely explored anything");
}

/// The acceptance-criteria determinism clause: identical seeds produce
/// byte-identical corpora and identical `fuzz.*` metrics across reruns.
#[test]
fn reruns_are_byte_identical() {
    for (key, mutation) in
        [("subject_mutation", "skip-ping-disable"), ("model_mutation", "stale-ack-replay")]
    {
        let a = run_gate(key, mutation);
        let b = run_gate(key, mutation);
        assert_eq!(a.corpus_digest, b.corpus_digest, "{mutation}: corpus diverged across reruns");
        assert_eq!(a.metrics(), b.metrics(), "{mutation}: metrics diverged across reruns");
        assert_eq!(
            a.findings.iter().map(|f| f.minimized.clone()).collect::<Vec<_>>(),
            b.findings.iter().map(|f| f.minimized.clone()).collect::<Vec<_>>(),
            "{mutation}: minimized prefixes diverged across reruns"
        );
    }
}
