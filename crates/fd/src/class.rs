//! The Chandra–Toueg oracle-class taxonomy used by the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A failure-detector class, identified by its completeness and accuracy
/// properties. All classes here share *strong completeness*; they differ in
/// accuracy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OracleClass {
    /// Perfect: perpetual strong accuracy (never suspects a correct process).
    Perfect,
    /// Eventually perfect (◇P): eventual strong accuracy — finitely many
    /// wrongful suspicions, then permanently accurate.
    EventuallyPerfect,
    /// Strong (S): perpetual weak accuracy — *some* correct process is never
    /// suspected by any live process.
    Strong,
    /// Eventually strong (◇S): eventual weak accuracy.
    EventuallyStrong,
    /// Trusting (T): eventually permanently trusts every correct process, and
    /// whenever it stops trusting a process, that process has crashed.
    Trusting,
}

impl OracleClass {
    /// Conventional symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            OracleClass::Perfect => "P",
            OracleClass::EventuallyPerfect => "◇P",
            OracleClass::Strong => "S",
            OracleClass::EventuallyStrong => "◇S",
            OracleClass::Trusting => "T",
        }
    }

    /// Classes whose specification is implied by this one, in this taxonomy
    /// (on the accuracy axis, with strong completeness fixed).
    ///
    /// `P` implies everything here: perpetual strong accuracy forbids any
    /// wrongful suspicion, hence trivially satisfies eventual strong accuracy,
    /// weak accuracy, and trusting accuracy.
    pub fn implies(self) -> &'static [OracleClass] {
        match self {
            OracleClass::Perfect => &[
                OracleClass::EventuallyPerfect,
                OracleClass::Strong,
                OracleClass::EventuallyStrong,
                OracleClass::Trusting,
            ],
            OracleClass::EventuallyPerfect => &[OracleClass::EventuallyStrong],
            OracleClass::Strong => &[OracleClass::EventuallyStrong],
            OracleClass::Trusting => {
                &[OracleClass::EventuallyPerfect, OracleClass::EventuallyStrong]
            }
            OracleClass::EventuallyStrong => &[],
        }
    }
}

impl fmt::Display for OracleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols() {
        assert_eq!(OracleClass::EventuallyPerfect.to_string(), "◇P");
        assert_eq!(OracleClass::Trusting.to_string(), "T");
    }

    #[test]
    fn perfect_implies_all_others() {
        let implied = OracleClass::Perfect.implies();
        assert!(implied.contains(&OracleClass::EventuallyPerfect));
        assert!(implied.contains(&OracleClass::Trusting));
        assert!(implied.contains(&OracleClass::Strong));
    }

    #[test]
    fn trusting_implies_eventually_perfect() {
        // T's accuracy (eventually permanently trusts correct processes)
        // subsumes ◇P's eventual strong accuracy.
        assert!(OracleClass::Trusting.implies().contains(&OracleClass::EventuallyPerfect));
    }
}
