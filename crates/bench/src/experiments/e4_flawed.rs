//! E4 — the Section 3 separation: the contention-manager reduction of
//! reference \[8\] is not black-box portable; the paper's two-instance
//! reduction is.
//!
//! Both extractors run over the same pathological-but-legal black box
//! (`DelayedConvergenceDining`). The flawed extractor's monitored process
//! enters the critical section during the non-exclusive prefix and never
//! exits, so the box never reaches its exclusive regime and the watcher's
//! wrongful suspicions grow without bound; the paper's reduction converges
//! because its subject threads always exit (the hand-off throttles the
//! witness instead).

use dinefd_core::{run_extraction, run_flawed_pair, BlackBox, OracleSpec, Scenario};
use dinefd_sim::{CrashPlan, ProcessId, Time};

use crate::table::{Report, Table};
use crate::{parallel_map, ExperimentConfig};

/// Runs E4 and returns the report.
pub fn run(cfg: &ExperimentConfig) -> Report {
    let t_wx = Time(1_500);
    let horizons = [Time(10_000), Time(20_000), Time(40_000)];
    let mut table = Table::new(
        "Wrongful suspicions of a correct subject vs run length \
         (black box: delayed-convergence)",
        &[
            "horizon",
            "runs",
            "flawed [8]: mistakes (mean)",
            "flawed [8]: still flapping",
            "this paper: mistakes (mean)",
            "this paper: converged",
        ],
    );
    for horizon in horizons {
        let flawed = parallel_map(0..cfg.seeds, move |seed| {
            let h = run_flawed_pair(
                BlackBox::Delayed { convergence: t_wx },
                4_000 + seed,
                CrashPlan::none(),
                horizon,
            );
            let mistakes = h.mistake_intervals(ProcessId(0), ProcessId(1)) as u64;
            let last_change = h
                .timeline(ProcessId(0), ProcessId(1))
                .changes()
                .last()
                .map_or(Time::ZERO, |&(t, _)| t);
            // "Still flapping": the output changed in the last 10% of the run.
            let flapping = last_change.ticks() * 10 > horizon.ticks() * 9;
            (mistakes, flapping)
        });
        let ours = parallel_map(0..cfg.seeds, move |seed| {
            let mut sc = Scenario::pair(BlackBox::Delayed { convergence: t_wx }, 4_000 + seed);
            sc.oracle = OracleSpec::Perfect { lag: 20 };
            sc.horizon = horizon;
            let crashes = sc.crashes.clone();
            let res = run_extraction(sc);
            let mistakes = res.history.mistake_intervals(ProcessId(0), ProcessId(1)) as u64;
            let converged = res.history.eventual_strong_accuracy(&crashes).is_ok();
            (mistakes, converged)
        });
        let fm = flawed.iter().map(|&(m, _)| m as f64).sum::<f64>() / flawed.len() as f64;
        let ff = flawed.iter().filter(|&&(_, f)| f).count();
        let om = ours.iter().map(|&(m, _)| m as f64).sum::<f64>() / ours.len() as f64;
        let oc = ours.iter().filter(|&&(_, c)| c).count();
        table.row(vec![
            horizon.ticks().to_string(),
            cfg.seeds.to_string(),
            format!("{fm:.0}"),
            format!("{ff}/{}", flawed.len()),
            format!("{om:.1}"),
            format!("{oc}/{}", ours.len()),
        ]);
    }
    Report {
        title: "E4 — the [8] reduction is not black-box; this paper's is (§3)".into(),
        preamble: "Paper claim: there is a legal WF-◇WX implementation (the \
                   delayed-convergence service, modeled on [12]'s behaviour) on which \
                   the construction of [8] suspects a correct process infinitely \
                   often, while the two-instance reduction still extracts ◇P. \
                   Measured: the flawed extractor's mistake count grows roughly \
                   linearly with the horizon and keeps flapping to the end; the \
                   paper's reduction converges with a small constant mistake count."
            .into(),
        tables: vec![table],
        notes: vec![],
        metrics: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_separation_is_visible() {
        let cfg = ExperimentConfig { seeds: 2 };
        let report = run(&cfg);
        let rows = &report.tables[0].rows;
        // Flawed mistakes grow with horizon; ours stay small and converged.
        let flawed_first: f64 = rows[0][2].parse().unwrap();
        let flawed_last: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(flawed_last > flawed_first * 2.0, "no growth: {flawed_first} → {flawed_last}");
        // Our reduction's mistakes all happen during the finite non-exclusive
        // prefix: the count must NOT grow with the horizon.
        let ours_first: f64 = rows[0][4].parse().unwrap();
        let ours_last: f64 = rows[rows.len() - 1][4].parse().unwrap();
        assert!(
            ours_last <= ours_first * 1.5 + 10.0,
            "our mistakes grew with horizon: {ours_first} → {ours_last}"
        );
        for row in rows {
            crate::table::assert_frac_full(&row[5], "our reduction failed to converge", row);
        }
    }
}
