//! Run-level metrics: counters, gauges, fixed-bucket histograms, and a
//! phase profiler.
//!
//! Everything here is a plain struct owned by whatever is being measured —
//! no globals, no atomics, no allocation on the hot path — so the serial
//! simulator loop pays one integer update per recorded event and the whole
//! set can be snapshotted, diffed, and serialized to the `BENCH_*.json`
//! perf reports (see `EXPERIMENTS.md`).
//!
//! Determinism: every type in this module except [`Profiler`] measures
//! *logical* quantities (event counts, queue depths, virtual-time delays),
//! so two runs of the same seed produce byte-identical exports. Wall-clock
//! lives only in [`Profiler`]/[`RunProfile`] and is kept out of
//! [`MetricMap`] exports by construction.

use std::collections::BTreeMap;
use std::time::Instant;

/// A flattened, key-sorted export of a metric set. Keys are
/// `dotted.snake_case` paths; values are exact integers, so serializing a
/// `MetricMap` with the vendored `serde_json` is byte-stable across reruns
/// of the same seed.
pub type MetricMap = BTreeMap<String, u64>;

/// A monotonic event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl From<u64> for Counter {
    fn from(n: u64) -> Self {
        Counter(n)
    }
}

/// An instantaneous level that remembers its high-water mark (e.g. event
/// queue depth).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    current: u64,
    high_water: u64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current level, updating the high-water mark.
    #[inline]
    pub fn set(&mut self, v: u64) {
        self.current = v;
        if v > self.high_water {
            self.high_water = v;
        }
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.current
    }

    /// Largest level ever set.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Merges another gauge into this one: levels add (the combined level
    /// of two disjoint backlogs is their sum), and the high-water mark is
    /// the max of the two marks — a *lower bound* on the true high water of
    /// the combined level, since the two peaks need not coincide in time.
    /// Callers needing the exact combined high water must track a combined
    /// gauge live (see `crate::shard::ShardedWorld`'s global depth gauge).
    pub fn absorb(&mut self, other: &Gauge) {
        self.current += other.current;
        self.high_water = self.high_water.max(other.high_water);
    }
}

/// Number of finite histogram buckets: bucket `i` counts values
/// `v ≤ 2^i` (not already counted by a smaller bucket); one extra overflow
/// bucket collects everything above the largest bound.
pub const HISTOGRAM_BUCKETS: usize = 13;

/// A fixed-bucket power-of-two histogram for latency/delay-like `u64`
/// samples. Bucketing is O(1) (a leading-zeros computation), so recording
/// is cheap enough for the simulator's per-send hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS + 1],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: [0; HISTOGRAM_BUCKETS + 1], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Upper bound (inclusive) of finite bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        // ceil(log2(v)) for v ≥ 1; zero lands in the first bucket.
        let idx = if v <= 1 { 0 } else { (64 - (v - 1).leading_zeros()) as usize };
        self.counts[idx.min(HISTOGRAM_BUCKETS)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, count)` per non-empty bucket; the overflow bucket
    /// reports `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let bound = if i < HISTOGRAM_BUCKETS { Histogram::bucket_bound(i) } else { u64::MAX };
            (bound, c)
        })
    }

    /// Smallest bucket bound at or above quantile `q` (by cumulative
    /// count) — an upper-bound estimate of the true quantile.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if i < HISTOGRAM_BUCKETS {
                    Histogram::bucket_bound(i).min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Merges another histogram into this one — bucket-wise addition, so
    /// `a.absorb(&b)` equals the histogram of the concatenated sample
    /// streams exactly (counts, sum, min, max, and every bucket).
    pub fn absorb(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Flattens into `prefix.count`, `prefix.sum`, `prefix.min`,
    /// `prefix.max`, and one `prefix.le_N` / `prefix.inf` key per
    /// non-empty bucket.
    pub fn export(&self, prefix: &str, out: &mut MetricMap) {
        out.insert(format!("{prefix}.count"), self.count);
        out.insert(format!("{prefix}.sum"), self.sum);
        out.insert(format!("{prefix}.min"), self.min());
        out.insert(format!("{prefix}.max"), self.max);
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let key = if i < HISTOGRAM_BUCKETS {
                format!("{prefix}.le_{}", Histogram::bucket_bound(i))
            } else {
                format!("{prefix}.inf")
            };
            out.insert(key, c);
        }
    }
}

/// Everything one simulated [`crate::world::World`] run counts.
///
/// Owned by the world and updated inline on the serial event loop; read it
/// through [`crate::world::World::metrics`]. All fields are logical
/// quantities, so equal seeds produce equal metric sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Atomic steps dispatched (start + message + timer steps).
    pub steps: Counter,
    /// Messages handed to the network.
    pub messages_sent: Counter,
    /// Messages delivered to live processes.
    pub messages_delivered: Counter,
    /// Messages that vanished because the receiver had crashed.
    pub messages_dropped: Counter,
    /// Crash events that took effect.
    pub crash_events: Counter,
    /// Timer events dispatched to live processes.
    pub timer_fires: Counter,
    /// Timers armed by nodes.
    pub timers_set: Counter,
    /// Application-level observations emitted by nodes (counted whether or
    /// not the trace records them — streaming sinks rely on this).
    pub observations: Counter,
    /// Wire envelopes handed to the network (equals `messages_sent` when
    /// envelope batching is off: every message rides alone).
    pub envelopes_sent: Counter,
    /// Messages per envelope. Only populated when envelope batching is on;
    /// with batching off the histogram stays empty (occupancy is trivially
    /// 1 and recording it would cost the default hot path).
    pub envelope_occupancy: Histogram,
    /// Event-queue depth (high-water mark is the backlog measure).
    pub queue_depth: Gauge,
    /// Sampled delivery delays, in virtual ticks — one sample per delay
    /// draw, i.e. per message without batching and per envelope with it.
    pub delay_ticks: Histogram,
}

impl SimMetrics {
    /// A zeroed metric set.
    pub fn new() -> Self {
        SimMetrics::default()
    }

    /// Merges a shard's metrics into this set: counters and histograms add
    /// exactly; the queue-depth gauge adds levels and takes the max of
    /// high-water marks (see [`Gauge::absorb`] for why that is a lower
    /// bound rather than the true combined peak).
    pub fn absorb(&mut self, other: &SimMetrics) {
        self.steps.add(other.steps.get());
        self.messages_sent.add(other.messages_sent.get());
        self.messages_delivered.add(other.messages_delivered.get());
        self.messages_dropped.add(other.messages_dropped.get());
        self.crash_events.add(other.crash_events.get());
        self.timer_fires.add(other.timer_fires.get());
        self.timers_set.add(other.timers_set.get());
        self.observations.add(other.observations.get());
        self.envelopes_sent.add(other.envelopes_sent.get());
        self.envelope_occupancy.absorb(&other.envelope_occupancy);
        self.queue_depth.absorb(&other.queue_depth);
        self.delay_ticks.absorb(&other.delay_ticks);
    }

    /// Flattens into a key-sorted map. `delay_model` labels the delay
    /// histogram with the [`crate::net::DelayModel`] variant that produced
    /// it.
    pub fn export(&self, delay_model: &str) -> MetricMap {
        let mut out = MetricMap::new();
        out.insert("steps".into(), self.steps.get());
        out.insert("messages_sent".into(), self.messages_sent.get());
        out.insert("messages_delivered".into(), self.messages_delivered.get());
        out.insert("messages_dropped".into(), self.messages_dropped.get());
        out.insert("crash_events".into(), self.crash_events.get());
        out.insert("timer_fires".into(), self.timer_fires.get());
        out.insert("timers_set".into(), self.timers_set.get());
        out.insert("observations".into(), self.observations.get());
        out.insert("envelopes_sent".into(), self.envelopes_sent.get());
        out.insert("queue_depth_high_water".into(), self.queue_depth.high_water());
        out.insert("queue_depth_final".into(), self.queue_depth.get());
        self.envelope_occupancy.export("envelope_occupancy", &mut out);
        self.delay_ticks.export(&format!("delay_ticks.{delay_model}"), &mut out);
        out
    }
}

/// Wall-clock accounting of one parallel shard worker: how long it spent
/// executing shard instants (`busy`) versus blocked at the per-instant
/// barrier waiting for the coordinator (`barrier_wait`), one sample per
/// instant, in microseconds.
///
/// **Wall-clock, never deterministic** — this type is deliberately *not*
/// part of [`SimMetrics`] (whose export is byte-diffed across reruns by the
/// perf-smoke gate). It feeds the `wall`/`nondet` sections of the
/// `BENCH_*.json` documents via [`WorkerStats::export`], which is where the
/// barrier-overhead columns of the E8 parallel-frontier table come from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Microseconds spent executing shard instants, one sample per instant.
    pub busy_micros: Histogram,
    /// Microseconds spent blocked at the instant barrier, one sample per
    /// wait.
    pub barrier_wait_micros: Histogram,
    /// Shard-instants this worker executed.
    pub instants: Counter,
}

impl WorkerStats {
    /// A zeroed stat set.
    pub fn new() -> Self {
        WorkerStats::default()
    }

    /// Merges another worker's samples into this set (exact).
    pub fn absorb(&mut self, other: &WorkerStats) {
        self.busy_micros.absorb(&other.busy_micros);
        self.barrier_wait_micros.absorb(&other.barrier_wait_micros);
        self.instants.add(other.instants.get());
    }

    /// Fraction of accounted wall-clock spent at the barrier, in `[0, 1]`
    /// (0 when no time was accounted).
    pub fn barrier_overhead(&self) -> f64 {
        let busy = self.busy_micros.sum() as f64;
        let wait = self.barrier_wait_micros.sum() as f64;
        if busy + wait == 0.0 {
            0.0
        } else {
            wait / (busy + wait)
        }
    }

    /// Flattens into `prefix.busy_micros.*`, `prefix.barrier_wait_micros.*`
    /// and `prefix.instants` — destined for a `nondet` section, never for a
    /// determinism-diffed metric map.
    pub fn export(&self, prefix: &str, out: &mut MetricMap) {
        self.busy_micros.export(&format!("{prefix}.busy_micros"), out);
        self.barrier_wait_micros.export(&format!("{prefix}.barrier_wait_micros"), out);
        out.insert(format!("{prefix}.instants"), self.instants.get());
    }
}

/// Wall-clock phase profiler for one experiment run.
///
/// Phases are timed with [`Profiler::time`]; [`Profiler::report`] closes
/// the books and attributes the remainder to an `other` phase, so the
/// reported phase durations always sum *exactly* to the reported total.
#[derive(Debug)]
pub struct Profiler {
    origin: Instant,
    phases: Vec<(&'static str, u64)>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// Starts the run clock.
    pub fn new() -> Self {
        Profiler { origin: Instant::now(), phases: Vec::new() }
    }

    /// Runs `f`, attributing its wall-clock time to `name`. Repeated
    /// phases accumulate under one entry.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let out = f();
        self.add(name, started.elapsed().as_nanos() as u64);
        out
    }

    /// Attributes `nanos` of already-measured time to `name`.
    pub fn add(&mut self, name: &'static str, nanos: u64) {
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, acc)) => *acc += nanos,
            None => self.phases.push((name, nanos)),
        }
    }

    /// Nanoseconds attributed to `name` so far.
    pub fn phase_nanos(&self, name: &str) -> u64 {
        self.phases.iter().find(|(n, _)| *n == name).map_or(0, |(_, ns)| *ns)
    }

    /// Closes the profile: total = wall-clock since construction, with the
    /// unattributed remainder reported as the `other` phase.
    pub fn report(&self) -> RunProfile {
        let total = self.origin.elapsed().as_nanos() as u64;
        let mut phases: Vec<(String, u64)> =
            self.phases.iter().map(|&(n, ns)| (n.to_string(), ns)).collect();
        let attributed: u64 = phases.iter().map(|(_, ns)| *ns).sum();
        // Phase clocks and the total clock are read at different instants,
        // so clamp rather than underflow when they disagree by nanoseconds.
        let other = total.saturating_sub(attributed);
        phases.push(("other".to_string(), other));
        RunProfile { total_nanos: attributed + other, phases }
    }
}

/// A closed wall-clock profile: named phase durations that sum exactly to
/// the total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunProfile {
    /// Total run duration in nanoseconds.
    pub total_nanos: u64,
    /// `(phase, nanoseconds)` in first-recorded order; the final `other`
    /// entry absorbs unattributed time.
    pub phases: Vec<(String, u64)>,
}

impl RunProfile {
    /// Nanoseconds of one phase (0 if absent).
    pub fn phase_nanos(&self, name: &str) -> u64 {
        self.phases.iter().find(|(n, _)| n == name).map_or(0, |(_, ns)| *ns)
    }

    /// Seconds of one phase (0.0 if absent).
    pub fn phase_secs(&self, name: &str) -> f64 {
        self.phase_nanos(name) as f64 / 1e9
    }

    /// Total seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let mut g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 9);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 5, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        // 0 and 1 → le_1; 2 → le_2; 3, 4 → le_4; 5 → le_8; 1e6 → overflow.
        assert_eq!(buckets, vec![(1, 2), (2, 1), (4, 2), (8, 1), (u64::MAX, 1)]);
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        // Exact powers of two must land in their own bucket, not the next.
        for i in 0..HISTOGRAM_BUCKETS {
            let mut h = Histogram::new();
            h.record(Histogram::bucket_bound(i));
            let buckets: Vec<(u64, u64)> = h.buckets().collect();
            assert_eq!(buckets, vec![(Histogram::bucket_bound(i), 1)]);
        }
    }

    #[test]
    fn histogram_quantiles_bound_from_above() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!(h.quantile_bound(0.5) >= 50);
        assert!(h.quantile_bound(0.5) <= 64);
        assert_eq!(h.quantile_bound(1.0), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile_bound(0.99), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn histogram_absorb_equals_concatenated_stream() {
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 7, 900, 3] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 40_000, 5] {
            b.record(v);
            whole.record(v);
        }
        a.absorb(&b);
        assert_eq!(a, whole);
        // Absorbing an empty histogram changes nothing (min stays intact).
        let snapshot = a.clone();
        a.absorb(&Histogram::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn gauge_absorb_adds_levels_and_maxes_high_water() {
        let mut a = Gauge::new();
        a.set(10);
        a.set(4);
        let mut b = Gauge::new();
        b.set(7);
        b.set(5);
        a.absorb(&b);
        assert_eq!(a.get(), 9, "levels add");
        assert_eq!(a.high_water(), 10, "high water is the max of marks");
    }

    #[test]
    fn sim_metrics_absorb_sums_counters() {
        let mut a = SimMetrics::new();
        a.steps.add(3);
        a.messages_sent.add(2);
        a.delay_ticks.record(4);
        let mut b = SimMetrics::new();
        b.steps.add(5);
        b.observations.add(1);
        b.delay_ticks.record(9);
        a.absorb(&b);
        assert_eq!(a.steps.get(), 8);
        assert_eq!(a.messages_sent.get(), 2);
        assert_eq!(a.observations.get(), 1);
        assert_eq!(a.delay_ticks.count(), 2);
        assert_eq!(a.delay_ticks.sum(), 13);
    }

    #[test]
    fn sim_metrics_export_is_sorted_and_labeled() {
        let mut m = SimMetrics::new();
        m.steps.add(10);
        m.messages_sent.add(4);
        m.delay_ticks.record(3);
        m.queue_depth.set(7);
        m.queue_depth.set(2);
        let map = m.export("uniform");
        assert_eq!(map["steps"], 10);
        assert_eq!(map["messages_sent"], 4);
        assert_eq!(map["queue_depth_high_water"], 7);
        assert_eq!(map["delay_ticks.uniform.count"], 1);
        assert_eq!(map["delay_ticks.uniform.le_4"], 1);
        let keys: Vec<&String> = map.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "BTreeMap export must iterate sorted");
    }

    #[test]
    fn profiler_phases_sum_to_total() {
        let mut p = Profiler::new();
        p.time("simulate", || std::thread::sleep(std::time::Duration::from_millis(2)));
        p.time("extract", || ());
        p.time("simulate", || ()); // repeated phases accumulate
        let r = p.report();
        let sum: u64 = r.phases.iter().map(|(_, ns)| ns).sum();
        assert_eq!(sum, r.total_nanos, "phases (incl. `other`) must sum exactly");
        assert!(r.phase_nanos("simulate") >= 2_000_000);
        assert_eq!(r.phases.iter().filter(|(n, _)| n == "simulate").count(), 1);
        assert_eq!(r.phases.last().unwrap().0, "other");
    }

    #[test]
    fn profiler_returns_closure_value() {
        let mut p = Profiler::new();
        let v = p.time("phase", || 41 + 1);
        assert_eq!(v, 42);
        assert!(p.phase_nanos("phase") < 1_000_000_000);
    }
}
