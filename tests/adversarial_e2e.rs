//! Adversarial schedules: scripted channel stalls, late convergence, crash
//! storms — the reduction must hold up everywhere the model allows.

use dinefd::prelude::*;
use dinefd::sim::net::ChannelStaller;

#[test]
fn stalled_ping_channel_only_delays_convergence() {
    // The adversary holds every q→p message (pings, dining traffic from the
    // subject) until t=6000. The extracted detector may suspect q throughout
    // the stall — all mistakes — but must converge afterwards.
    let mut sc = Scenario::pair(BlackBox::WfDx, 71);
    sc.delays = DelayModel::Scripted(Box::new(ChannelStaller {
        stalled: vec![(ProcessId(1), ProcessId(0))],
        release_at: Time(6_000),
        benign_hi: 8,
    }));
    sc.horizon = Time(50_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    let acc = res.history.eventual_strong_accuracy(&crashes);
    assert!(acc.is_ok(), "accuracy after stall: {:?}", acc.err());
    let trusted_from = acc.unwrap()[0].trusted_from;
    assert!(
        trusted_from >= Time(5_000),
        "a 6000-tick stall cannot be trusted through: {trusted_from:?}"
    );
}

#[test]
fn stalled_ack_channel_is_symmetric() {
    // Holding p→q instead starves the subject's hand-off (no acks), which
    // stalls the subjects — the witness legitimately suspects until release.
    let mut sc = Scenario::pair(BlackBox::WfDx, 73);
    sc.delays = DelayModel::Scripted(Box::new(ChannelStaller {
        stalled: vec![(ProcessId(0), ProcessId(1))],
        release_at: Time(6_000),
        benign_hi: 8,
    }));
    sc.horizon = Time(50_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    assert!(res.history.eventual_strong_accuracy(&crashes).is_ok());
}

#[test]
fn crash_during_the_stall_is_still_detected() {
    let mut sc = Scenario::pair(BlackBox::WfDx, 79);
    sc.delays = DelayModel::Scripted(Box::new(ChannelStaller {
        stalled: vec![(ProcessId(1), ProcessId(0))],
        release_at: Time(6_000),
        benign_hi: 8,
    }));
    sc.crashes = CrashPlan::one(ProcessId(1), Time(3_000)); // dies mid-stall
    sc.horizon = Time(50_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    assert!(res.history.strong_completeness(&crashes).is_ok());
}

#[test]
fn very_late_black_box_convergence() {
    // The black box stays non-exclusive for most of the run; the extracted
    // detector converges only after it does — finitely many mistakes either
    // way.
    let mut sc = Scenario::pair(BlackBox::Delayed { convergence: Time(20_000) }, 83);
    sc.oracle = OracleSpec::Perfect { lag: 20 };
    sc.horizon = Time(80_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    let acc = res.history.eventual_strong_accuracy(&crashes).unwrap();
    assert!(
        acc[0].trusted_from >= Time(10_000),
        "trust cannot stabilize long before the box converges: {:?}",
        acc[0].trusted_from
    );
}

#[test]
fn watcher_crash_leaves_system_consistent() {
    // The paper's Section 8 discussion: if the witness crashes, the subject
    // may eat forever in one instance — and that must not corrupt anything
    // (here: the run simply ends quiet; no panics, no illegal transitions).
    let mut sc = Scenario::all_pairs(3, BlackBox::WfDx, 89);
    sc.crashes = CrashPlan::one(ProcessId(0), Time(5_000)); // a watcher dies
    sc.horizon = Time(40_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    // The surviving watchers' pairs still behave like ◇P.
    let acc = res.history.eventual_strong_accuracy(&crashes);
    assert!(acc.is_ok(), "{:?}", acc.err());
    let det = res.history.strong_completeness(&crashes);
    assert!(det.is_ok(), "{:?}", det.err());
}

#[test]
fn pair_timelines_stay_sane_under_harsh_delays() {
    let mut sc = Scenario::pair(BlackBox::WfDx, 97);
    sc.delays = DelayModel::harsh();
    sc.horizon = Time(40_000);
    let res = run_extraction(sc);
    let tl = res.pair_timelines(ProcessId(0), ProcessId(1));
    let w = tl.witness_session_count();
    let s = tl.subject_session_count();
    assert!(w[0] > 10 && w[1] > 10, "witness sessions: {w:?}");
    assert!(s[0] > 10 && s[1] > 10, "subject sessions: {s:?}");
    // Lemma 12's alternation implies the two witnesses' session counts can
    // differ by at most one.
    assert!(w[0].abs_diff(w[1]) <= 1, "witness counts unbalanced: {w:?}");
    assert!(s[0].abs_diff(s[1]) <= 1, "subject counts unbalanced: {s:?}");
    // Fig. 1 structure in the suffix.
    assert!(tl.handoff_violations(Time(8_000)).is_empty());
}
