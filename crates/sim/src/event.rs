//! The discrete-event queue driving a [`crate::world::World`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::id::ProcessId;
use crate::node::TimerId;
use crate::time::Time;

/// What happens at a scheduled instant.
#[derive(Clone, Debug)]
pub enum EventKind<M> {
    /// Delivery of a message on the channel `from → to`.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payload.
        msg: M,
    },
    /// Delivery of a batched envelope on the channel `from → to`: every
    /// message some step flushed toward `to`, coalesced under one delay
    /// draw. Messages are dispatched in send order (FIFO within the
    /// envelope), each as its own atomic step of the receiver.
    Envelope {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payloads, in send order.
        msgs: Vec<M>,
    },
    /// A local timer of `pid` fires.
    Timer {
        /// Owner of the timer.
        pid: ProcessId,
        /// Which timer.
        id: TimerId,
    },
    /// `pid` crashes (ceases execution permanently).
    Crash {
        /// The process that crashes.
        pid: ProcessId,
    },
}

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Event<M> {
    /// When the event occurs.
    pub at: Time,
    /// Tie-breaking sequence number (assigned in scheduling order).
    pub seq: u64,
    /// The effect.
    pub kind: EventKind<M>,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first. Equal times are resolved by scheduling order, which
// keeps runs fully deterministic.
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic event queue: pops strictly by `(time, scheduling order)`.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<M> EventQueue<M> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn push(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(Time(30), EventKind::Crash { pid: ProcessId(0) });
        q.push(Time(10), EventKind::Crash { pid: ProcessId(1) });
        q.push(Time(20), EventKind::Crash { pid: ProcessId(2) });
        let order: Vec<Time> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, vec![Time(10), Time(20), Time(30)]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..5 {
            q.push(Time(7), EventKind::Crash { pid: ProcessId(i) });
        }
        let pids: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Crash { pid } => pid.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time(4), EventKind::Crash { pid: ProcessId(0) });
        q.push(Time(2), EventKind::Crash { pid: ProcessId(1) });
        assert_eq!(q.peek_time(), Some(Time(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Time(4)));
    }
}
