//! The paper's necessity theorem as a property test: for EVERY black-box
//! WF-◇WX implementation, crash pattern, delay regime and seed, the
//! reduction's output satisfies ◇P (strong completeness + eventual strong
//! accuracy). This is the universal quantification the reduction of \[8\]
//! fails — and the one this repository's E4/E9 counterexamples probe
//! deterministically; here randomization sweeps the remaining space.

use dinefd_core::{run_extraction, BlackBox, OracleSpec, Scenario};
use dinefd_fd::OracleClass;
use dinefd_sim::{CrashPlan, DelayModel, ProcessId, Time};
use proptest::prelude::*;

fn black_box_strategy() -> impl Strategy<Value = BlackBox> {
    prop_oneof![
        Just(BlackBox::WfDx),
        Just(BlackBox::Ftme),
        (500u64..4_000).prop_map(|c| BlackBox::Abstract { convergence: Time(c) }),
        (500u64..4_000).prop_map(|c| BlackBox::Delayed { convergence: Time(c) }),
        (500u64..4_000).prop_map(|c| BlackBox::Unfair { convergence: Time(c) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reduction_extracts_diamond_p_from_any_black_box(
        bb in black_box_strategy(),
        seed in any::<u64>(),
        crash_at in prop::option::of(2_000u64..15_000),
        strict in any::<bool>(),
        harsh in any::<bool>(),
    ) {
        let mut sc = Scenario::pair(bb, seed);
        sc.strict_seq = strict;
        sc.oracle = OracleSpec::Perfect { lag: 20 };
        sc.delays = if harsh { DelayModel::harsh() } else { DelayModel::default_async() };
        if let Some(t) = crash_at {
            sc.crashes = CrashPlan::one(ProcessId(1), Time(t));
        }
        sc.horizon = Time(60_000);
        let crashes = sc.crashes.clone();
        let res = run_extraction(sc);
        let classes = res.history.classify(&crashes);
        prop_assert!(
            classes.contains(&OracleClass::EventuallyPerfect),
            "black box {:?}, crash {:?}, strict {}, harsh {}: classes {:?} \
             (completeness: {:?}, accuracy: {:?})",
            bb,
            crash_at,
            strict,
            harsh,
            classes,
            res.history.strong_completeness(&crashes).err(),
            res.history.eventual_strong_accuracy(&crashes).err(),
        );
    }

    #[test]
    fn extraction_is_deterministic(
        bb in black_box_strategy(),
        seed in any::<u64>(),
    ) {
        let run = |seed: u64| {
            let mut sc = Scenario::pair(bb, seed);
            sc.horizon = Time(10_000);
            let res = run_extraction(sc);
            (
                res.steps,
                res.messages_sent,
                res.history.mistake_intervals(ProcessId(0), ProcessId(1)),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
