//! The **single-instance ablation** of the paper's reduction — why two
//! dining instances are necessary.
//!
//! This is the "obvious" one-instance design: per ordered pair `(p, q)`,
//! ONE dining instance in which `p`'s lone witness thread cycles
//! hungry→eat→check→exit, and `q`'s lone subject thread cycles
//! hungry→eat→ping→await-ack→exit. Unlike the flawed construction of
//! reference \[8\] (which this repository reproduces in
//! [`crate::flawed_cm`]), the subject here *does* exit, so the §3
//! never-exiting trap does not apply.
//!
//! It is still wrong, for the reason the paper's Section 5.1 spells out:
//! WF-◇WX guarantees no fairness, so a legal black box may grant the witness
//! unboundedly many meals between consecutive subject meals (see
//! [`dinefd_dining::unfair::UnfairDining`]); each extra meal finds no banked
//! ping and wrongfully suspects the correct subject — infinitely often. The
//! paper's two-instance hand-off closes exactly this hole: in the exclusive
//! suffix some subject thread is *always eating* (Lemma 8), so exclusion
//! itself throttles each witness thread between subject meals, no fairness
//! needed. Experiment E9 measures the separation.

use std::rc::Rc;

use dinefd_dining::{DinerPhase, DiningIo, DiningMsg, DiningParticipant};
use dinefd_fd::FdQuery;
use dinefd_sim::{Context, Node, ProcessId, Time, TimerId};

use crate::host::{DxEndpoint, RedObs, Role};

/// Messages of the single-instance reduction.
#[derive(Clone, Debug)]
pub enum SdMsg {
    /// Dining traffic of the pair's one instance.
    Dx {
        /// The pair's watcher.
        watcher: ProcessId,
        /// The pair's subject.
        subject: ProcessId,
        /// The black-box dining message.
        inner: DiningMsg,
    },
    /// Subject's in-session ping.
    Ping {
        /// The pair's watcher.
        watcher: ProcessId,
        /// The pair's subject.
        subject: ProcessId,
    },
    /// Witness's ack.
    Ack {
        /// The pair's watcher.
        watcher: ProcessId,
        /// The pair's subject.
        subject: ProcessId,
    },
}

struct SingleWitness {
    watcher: ProcessId,
    subject: ProcessId,
    dx: Box<dyn DiningParticipant>,
    haveping: bool,
    suspect: bool,
}

struct SingleSubject {
    watcher: ProcessId,
    subject: ProcessId,
    dx: Box<dyn DiningParticipant>,
    /// Ping sent this session and ack still pending.
    awaiting_ack: bool,
}

#[derive(Default)]
struct Out {
    sends: Vec<(ProcessId, SdMsg)>,
    obs: Vec<RedObs>,
}

const PUMP_BUDGET: usize = 4;

impl SingleWitness {
    fn invoke(
        &mut self,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
        f: impl FnOnce(&mut dyn DiningParticipant, &mut DiningIo<'_>),
    ) {
        let before = self.dx.phase();
        let mut io = DiningIo::new(self.watcher, now, fd);
        f(&mut *self.dx, &mut io);
        for (to, msg) in io.finish().sends {
            out.sends
                .push((to, SdMsg::Dx { watcher: self.watcher, subject: self.subject, inner: msg }));
        }
        let after = self.dx.phase();
        if before != after {
            out.obs.push(RedObs::DxPhase {
                watcher: self.watcher,
                subject: self.subject,
                role: Role::Witness,
                instance: 0,
                phase: after,
            });
        }
    }

    fn set_suspect(&mut self, v: bool, out: &mut Out) {
        if self.suspect != v {
            self.suspect = v;
            out.obs.push(RedObs::Suspicion { subject: self.subject, suspected: v });
        }
    }

    /// The one-instance witness cycle: hungry when thinking, check+exit when
    /// eating.
    fn pump(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        for _ in 0..PUMP_BUDGET {
            match self.dx.phase() {
                DinerPhase::Thinking => {
                    self.invoke(now, fd, out, |p, io| p.hungry(io));
                    if self.dx.phase() == DinerPhase::Hungry {
                        break;
                    }
                }
                DinerPhase::Eating => {
                    let trusted = self.haveping;
                    self.haveping = false;
                    self.set_suspect(!trusted, out);
                    self.invoke(now, fd, out, |p, io| p.exit_eating(io));
                }
                _ => break,
            }
        }
    }

    fn on_ping(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        self.haveping = true;
        out.sends.push((self.subject, SdMsg::Ack { watcher: self.watcher, subject: self.subject }));
        self.pump(now, fd, out);
    }
}

impl SingleSubject {
    fn invoke(
        &mut self,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
        f: impl FnOnce(&mut dyn DiningParticipant, &mut DiningIo<'_>),
    ) {
        let before = self.dx.phase();
        let mut io = DiningIo::new(self.subject, now, fd);
        f(&mut *self.dx, &mut io);
        for (to, msg) in io.finish().sends {
            out.sends
                .push((to, SdMsg::Dx { watcher: self.watcher, subject: self.subject, inner: msg }));
        }
        let after = self.dx.phase();
        if before != after {
            out.obs.push(RedObs::DxPhase {
                watcher: self.watcher,
                subject: self.subject,
                role: Role::Subject,
                instance: 0,
                phase: after,
            });
        }
    }

    /// The one-instance subject cycle: hungry when thinking; ping when
    /// eating; exit on ack.
    fn pump(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        for _ in 0..PUMP_BUDGET {
            match self.dx.phase() {
                DinerPhase::Thinking => {
                    self.invoke(now, fd, out, |p, io| p.hungry(io));
                    if self.dx.phase() == DinerPhase::Hungry {
                        break;
                    }
                }
                DinerPhase::Eating if !self.awaiting_ack => {
                    self.awaiting_ack = true;
                    out.sends.push((
                        self.watcher,
                        SdMsg::Ping { watcher: self.watcher, subject: self.subject },
                    ));
                    break;
                }
                _ => break,
            }
        }
    }

    fn on_ack(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        if self.awaiting_ack && self.dx.phase() == DinerPhase::Eating {
            self.awaiting_ack = false;
            self.invoke(now, fd, out, |p, io| p.exit_eating(io));
        }
        self.pump(now, fd, out);
    }
}

const TICK: TimerId = TimerId(0);

/// One physical process of the single-instance reduction.
pub struct SingleDxNode {
    me: ProcessId,
    witnesses: Vec<SingleWitness>,
    subjects: Vec<SingleSubject>,
    fd: Rc<dyn FdQuery>,
    tick_every: u64,
}

impl std::fmt::Debug for SingleDxNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleDxNode")
            .field("me", &self.me)
            .field("witnesses", &self.witnesses.len())
            .field("subjects", &self.subjects.len())
            .finish()
    }
}

impl SingleDxNode {
    /// Builds the node for `me` over the given ordered pairs (one dining
    /// instance per pair; `instance` is always 0 in the factory endpoint).
    pub fn new(
        me: ProcessId,
        pairs: &[(ProcessId, ProcessId)],
        factory: &(dyn Fn(DxEndpoint) -> Box<dyn DiningParticipant> + '_),
        fd: Rc<dyn FdQuery>,
    ) -> Self {
        let witnesses = pairs
            .iter()
            .filter(|&&(w, s)| w == me && s != me)
            .map(|&(w, s)| SingleWitness {
                watcher: w,
                subject: s,
                dx: factory(DxEndpoint { me: w, peer: s, watcher: w, subject: s, instance: 0 }),
                haveping: false,
                suspect: true,
            })
            .collect();
        let subjects = pairs
            .iter()
            .filter(|&&(w, s)| s == me && w != me)
            .map(|&(w, s)| SingleSubject {
                watcher: w,
                subject: s,
                dx: factory(DxEndpoint { me: s, peer: w, watcher: w, subject: s, instance: 0 }),
                awaiting_ack: false,
            })
            .collect();
        SingleDxNode { me, witnesses, subjects, fd, tick_every: 4 }
    }

    fn flush(out: Out, ctx: &mut Context<'_, SdMsg, RedObs>) {
        for (to, msg) in out.sends {
            ctx.send(to, msg);
        }
        for obs in out.obs {
            ctx.observe(obs);
        }
    }
}

impl Node for SingleDxNode {
    type Msg = SdMsg;
    type Obs = RedObs;

    fn on_start(&mut self, ctx: &mut Context<'_, SdMsg, RedObs>) {
        let mut out = Out::default();
        let (now, fd) = (ctx.now(), Rc::clone(&self.fd));
        for w in &mut self.witnesses {
            w.pump(now, &*fd, &mut out);
        }
        for s in &mut self.subjects {
            s.pump(now, &*fd, &mut out);
        }
        Self::flush(out, ctx);
        ctx.set_timer(self.tick_every, TICK);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SdMsg, RedObs>, from: ProcessId, msg: SdMsg) {
        let mut out = Out::default();
        let (now, fd) = (ctx.now(), Rc::clone(&self.fd));
        match msg {
            SdMsg::Dx { watcher, subject, inner } => {
                if watcher == self.me {
                    let w = self
                        .witnesses
                        .iter_mut()
                        .find(|w| w.subject == subject)
                        .expect("unknown pair");
                    w.invoke(now, &*fd, &mut out, |p, io| p.on_message(io, from, inner));
                    w.pump(now, &*fd, &mut out);
                } else {
                    let s = self
                        .subjects
                        .iter_mut()
                        .find(|s| s.watcher == watcher)
                        .expect("unknown pair");
                    s.invoke(now, &*fd, &mut out, |p, io| p.on_message(io, from, inner));
                    s.pump(now, &*fd, &mut out);
                }
            }
            SdMsg::Ping { subject, .. } => {
                let w =
                    self.witnesses.iter_mut().find(|w| w.subject == subject).expect("unknown pair");
                w.on_ping(now, &*fd, &mut out);
            }
            SdMsg::Ack { watcher, .. } => {
                let s =
                    self.subjects.iter_mut().find(|s| s.watcher == watcher).expect("unknown pair");
                s.on_ack(now, &*fd, &mut out);
            }
        }
        Self::flush(out, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SdMsg, RedObs>, timer: TimerId) {
        debug_assert_eq!(timer, TICK);
        let mut out = Out::default();
        let (now, fd) = (ctx.now(), Rc::clone(&self.fd));
        for w in &mut self.witnesses {
            w.invoke(now, &*fd, &mut out, |p, io| p.on_tick(io));
            w.pump(now, &*fd, &mut out);
        }
        for s in &mut self.subjects {
            s.invoke(now, &*fd, &mut out, |p, io| p.on_tick(io));
            s.pump(now, &*fd, &mut out);
        }
        Self::flush(out, ctx);
        ctx.set_timer(self.tick_every, TICK);
    }
}

/// Runs the single-instance reduction over one monitored pair `(p0, p1)`,
/// returning the extracted suspicion history.
pub fn run_single_pair(
    black_box: crate::scenario::BlackBox,
    seed: u64,
    crashes: dinefd_sim::CrashPlan,
    horizon: Time,
) -> dinefd_fd::SuspicionHistory {
    use dinefd_sim::{World, WorldConfig};
    let pairs = vec![(ProcessId(0), ProcessId(1))];
    let mut rng = dinefd_sim::SplitMix64::new(seed ^ 0x51D);
    let oracle: Rc<dyn FdQuery> = Rc::new(crate::scenario::OracleSpec::Perfect { lag: 20 }.build(
        2,
        crashes.clone(),
        &mut rng,
    ));
    let factory = crate::scenario::factory_for(black_box);
    let nodes: Vec<SingleDxNode> = ProcessId::all(2)
        .map(|me| SingleDxNode::new(me, &pairs, &factory, Rc::clone(&oracle)))
        .collect();
    let cfg = WorldConfig::new(seed).crashes(crashes);
    let mut world = World::new(nodes, cfg);
    world.run_until(horizon);
    let trace = world.into_trace();
    crate::detector::suspicion_history(2, &trace, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::BlackBox;
    use dinefd_sim::CrashPlan;

    #[test]
    fn single_instance_works_on_fair_boxes() {
        // On the FIFO-fair abstract box the one-instance design happens to
        // behave: alternation keeps the witness throttled.
        let h = run_single_pair(
            BlackBox::Abstract { convergence: Time(1_500) },
            3,
            CrashPlan::none(),
            Time(40_000),
        );
        let acc = h.eventual_strong_accuracy(&CrashPlan::none());
        assert!(acc.is_ok(), "accuracy on fair box: {:?}", acc.err());
    }

    #[test]
    fn single_instance_detects_crash() {
        let plan = CrashPlan::one(ProcessId(1), Time(5_000));
        let h = run_single_pair(
            BlackBox::Abstract { convergence: Time(1_500) },
            4,
            plan.clone(),
            Time(40_000),
        );
        assert!(h.strong_completeness(&plan).is_ok());
    }

    #[test]
    fn single_instance_breaks_on_unfair_box() {
        // The §5.1 remark realized: escalating-but-legal unfairness lets the
        // witness eat many times between subject meals; each extra meal is a
        // wrongful suspicion. Mistakes never stop.
        let h = run_single_pair(
            BlackBox::Unfair { convergence: Time(1_500) },
            5,
            CrashPlan::none(),
            Time(40_000),
        );
        let mistakes = h.mistake_intervals(ProcessId(0), ProcessId(1));
        assert!(mistakes > 20, "expected persistent flapping, saw {mistakes}");
        let last = h
            .timeline(ProcessId(0), ProcessId(1))
            .changes()
            .last()
            .map(|&(t, _)| t)
            .unwrap_or(Time::ZERO);
        assert!(last > Time(30_000), "flapping stopped early at {last:?}");
    }

    #[test]
    fn paper_reduction_survives_the_unfair_box() {
        // The control: the two-instance reduction converges on the same box.
        let mut sc =
            crate::scenario::Scenario::pair(BlackBox::Unfair { convergence: Time(1_500) }, 5);
        sc.oracle = crate::scenario::OracleSpec::Perfect { lag: 20 };
        sc.horizon = Time(40_000);
        let crashes = sc.crashes.clone();
        let res = crate::scenario::run_extraction(sc);
        let acc = res.history.eventual_strong_accuracy(&crashes);
        assert!(acc.is_ok(), "two-instance reduction must converge: {:?}", acc.err());
    }
}
