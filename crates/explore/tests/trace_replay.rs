//! Trace-prefix regression tests: every violation the explorer reports must
//! carry a *replayable* counterexample path. Replaying the recorded labels
//! from the initial state through `PairState::successors` must (a) stay on
//! enabled transitions the whole way and (b) land on a state that actually
//! exhibits the reported violation. A diagnostic that cannot be replayed is
//! a diagnostic that cannot be trusted.

use dinefd_explore::{
    explore, fmt_path, ExploreConfig, ModelMutation, PairState, SubjectMutation, TransitionLabel,
    ViolationKind, ViolationRecord,
};

/// Replays `path` from the initial state, panicking if any label is not
/// enabled where the trace says it fired.
fn replay(cfg: &ExploreConfig, path: &[TransitionLabel]) -> PairState {
    let mut state = PairState::initial(cfg);
    for (step, &label) in path.iter().enumerate() {
        let (_, next) =
            state.successors(cfg).into_iter().find(|&(l, _)| l == label).unwrap_or_else(|| {
                panic!("step {step}: label {label:?} not enabled during replay")
            });
        state = next;
    }
    state
}

/// Checks that one record reproduces its violation when replayed.
fn assert_replays(cfg: &ExploreConfig, r: &ViolationRecord<TransitionLabel>) {
    assert!(!fmt_path(&r.path, None).is_empty());
    match r.kind {
        ViolationKind::StateInvariant => {
            let end = replay(cfg, &r.path);
            let found = end.check_invariants().join("; ");
            assert!(
                found.contains(&r.message),
                "replayed state does not show the reported violation:\n  reported: {}\n  found: {}\n  path: {}",
                r.message,
                found,
                fmt_path(&r.path, None),
            );
        }
        ViolationKind::ClosureStep => {
            let (last, prefix) = r.path.split_last().expect("closure violations follow a step");
            let pre = replay(cfg, prefix);
            let (_, post) = pre
                .successors(cfg)
                .into_iter()
                .find(|&(l, _)| l == *last)
                .expect("violating step not enabled at its pre-state");
            let found = pre.check_closure_step(&post);
            assert_eq!(
                found.as_deref(),
                Some(r.message.as_str()),
                "closure violation did not reproduce"
            );
        }
    }
}

fn replay_all(cfg: &ExploreConfig, expect_lemma: &str) {
    for threads in [1usize, 4] {
        let report = explore(&ExploreConfig { threads, ..*cfg });
        assert!(
            report.records.iter().any(|r| r.message.contains(expect_lemma)),
            "no {expect_lemma} record to replay ({threads} threads)"
        );
        assert_eq!(report.records.len(), report.violations.len());
        for r in &report.records {
            // The mutated models only violate lemmas away from the initial
            // state, so every record here must have a real trace.
            assert!(!r.path.is_empty(), "empty path on {r:?}");
            assert_replays(cfg, r);
        }
    }
}

#[test]
fn lemma_4_counterexamples_replay() {
    replay_all(
        &ExploreConfig {
            max_depth: 8,
            subject_mutation: SubjectMutation::IgnoreTriggerGuard,
            ..Default::default()
        },
        "Lemma 4",
    );
}

#[test]
fn lemma_3_counterexamples_replay() {
    replay_all(
        &ExploreConfig {
            max_depth: 12,
            subject_mutation: SubjectMutation::SkipPingDisable,
            ..Default::default()
        },
        "Lemma 3",
    );
}

#[test]
fn stale_ack_counterexamples_replay() {
    replay_all(
        &ExploreConfig {
            max_depth: 16,
            model_mutation: ModelMutation::StaleAckReplay,
            ..Default::default()
        },
        "Lemma 4",
    );
}

#[test]
fn clean_model_produces_no_records() {
    for threads in [1usize, 4] {
        let report = explore(&ExploreConfig { max_depth: 14, threads, ..Default::default() });
        assert!(report.records.is_empty());
        assert!(report.violations.is_empty());
    }
}

/// The rendered string and the structured record must describe the same
/// incident: the string is exactly `"<message> (after <path>)"`.
#[test]
fn rendered_violations_match_their_records() {
    let cfg = ExploreConfig {
        max_depth: 8,
        subject_mutation: SubjectMutation::IgnoreTriggerGuard,
        ..Default::default()
    };
    let report = explore(&cfg);
    for (s, r) in report.violations.iter().zip(&report.records) {
        assert_eq!(*s, format!("{} (after {})", r.message, fmt_path(&r.path, None)));
    }
}
