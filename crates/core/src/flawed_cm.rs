//! The earlier ◇P-extraction of the paper's reference \[8\] (Guerraoui et al.,
//! "boosting obstruction-freedom"), reproduced faithfully so its
//! vulnerability can be demonstrated (the paper's Section 3, experiment E4).
//!
//! Construction, per ordered pair `(p, q)`:
//!
//! * `q` sends heartbeats to `p` at regular intervals; at start-up `q`
//!   requests permission from a **single** wait-free contention-manager
//!   instance (here: any [`dinefd_dining::DiningParticipant`] black box) and,
//!   once granted, enters its critical section and **never exits**;
//! * `p`, upon receiving a heartbeat, trusts `q` and requests permission
//!   itself; once granted, it enters and immediately exits its critical
//!   section, **suspects** `q`, and waits for the next heartbeat.
//!
//! The intended argument: if `q` is correct, the CM eventually serializes
//! access, `q` occupies the critical section forever, `p` is locked out
//! forever and trusts forever; if `q` crashes, heartbeats stop and
//! wait-freedom lets `p` in, so `p` suspects permanently.
//!
//! The flaw the paper identifies: a legal WF-◇WX service only promises an
//! exclusive suffix under conditions a never-exiting `q` can defeat. Against
//! [`dinefd_dining::delayed::DelayedConvergenceDining`] — whose exclusivity
//! additionally waits for every pre-convergence eater to exit — a correct
//! `q` that entered during the prefix and never exits keeps the service
//! non-exclusive forever, `p` keeps being granted, and `p` suspects a
//! correct process infinitely often: the extracted oracle is **not** ◇P.
//! The paper's two-instance reduction is immune (its subjects always exit;
//! the hand-off is what throttles the witness instead).

use std::rc::Rc;

use dinefd_dining::{DinerPhase, DiningIo, DiningMsg, DiningParticipant};
use dinefd_fd::FdQuery;
use dinefd_sim::{Context, Node, ProcessId, Time, TimerId};

use crate::host::{DxEndpoint, RedObs, Role};

/// Messages of the flawed construction.
#[derive(Clone, Debug)]
pub enum CmMsg {
    /// Contention-manager traffic of pair `(watcher, subject)`.
    Dx {
        /// The pair's watcher.
        watcher: ProcessId,
        /// The pair's subject.
        subject: ProcessId,
        /// The black-box dining message.
        inner: DiningMsg,
    },
    /// `q`'s heartbeat to `p`.
    Heartbeat {
        /// The destination watcher.
        watcher: ProcessId,
        /// The origin subject.
        subject: ProcessId,
    },
}

struct FlawedWitness {
    watcher: ProcessId,
    subject: ProcessId,
    cm: Box<dyn DiningParticipant>,
    suspect: bool,
    last_phase: DinerPhase,
}

struct FlawedSubject {
    watcher: ProcessId,
    subject: ProcessId,
    cm: Box<dyn DiningParticipant>,
    requested: bool,
    last_phase: DinerPhase,
}

#[derive(Default)]
struct Out {
    sends: Vec<(ProcessId, CmMsg)>,
    obs: Vec<RedObs>,
}

fn emit_phase(
    out: &mut Out,
    watcher: ProcessId,
    subject: ProcessId,
    role: Role,
    last: &mut DinerPhase,
    now_phase: DinerPhase,
) {
    let cycle = [DinerPhase::Thinking, DinerPhase::Hungry, DinerPhase::Eating, DinerPhase::Exiting];
    let pos = |ph: DinerPhase| cycle.iter().position(|&c| c == ph).expect("phase");
    let (mut i, target) = (pos(*last), pos(now_phase));
    while i != target {
        i = (i + 1) % cycle.len();
        out.obs.push(RedObs::DxPhase { watcher, subject, role, instance: 0, phase: cycle[i] });
    }
    *last = now_phase;
}

impl FlawedWitness {
    fn invoke(
        &mut self,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
        f: impl FnOnce(&mut dyn DiningParticipant, &mut DiningIo<'_>),
    ) {
        let mut io = DiningIo::new(self.watcher, now, fd);
        f(&mut *self.cm, &mut io);
        for (to, msg) in io.finish().sends {
            out.sends
                .push((to, CmMsg::Dx { watcher: self.watcher, subject: self.subject, inner: msg }));
        }
        let ph = self.cm.phase();
        emit_phase(out, self.watcher, self.subject, Role::Witness, &mut self.last_phase, ph);
    }

    fn set_suspect(&mut self, v: bool, out: &mut Out) {
        if self.suspect != v {
            self.suspect = v;
            out.obs.push(RedObs::Suspicion { subject: self.subject, suspected: v });
        }
    }

    /// If the CM granted us the critical section, leave immediately and
    /// suspect `q` (the \[8\] cycle).
    fn pump(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        if self.cm.phase() == DinerPhase::Eating {
            self.invoke(now, fd, out, |p, io| p.exit_eating(io));
            self.set_suspect(true, out);
        }
    }

    fn on_heartbeat(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        self.set_suspect(false, out);
        if self.cm.phase() == DinerPhase::Thinking {
            self.invoke(now, fd, out, |p, io| p.hungry(io));
        }
        self.pump(now, fd, out);
    }
}

impl FlawedSubject {
    fn invoke(
        &mut self,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
        f: impl FnOnce(&mut dyn DiningParticipant, &mut DiningIo<'_>),
    ) {
        let mut io = DiningIo::new(self.subject, now, fd);
        f(&mut *self.cm, &mut io);
        for (to, msg) in io.finish().sends {
            out.sends
                .push((to, CmMsg::Dx { watcher: self.watcher, subject: self.subject, inner: msg }));
        }
        let ph = self.cm.phase();
        emit_phase(out, self.watcher, self.subject, Role::Subject, &mut self.last_phase, ph);
    }

    /// Request once; once eating, never exit.
    fn pump(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        if !self.requested && self.cm.phase() == DinerPhase::Thinking {
            self.requested = true;
            self.invoke(now, fd, out, |p, io| p.hungry(io));
        }
    }
}

const TICK: TimerId = TimerId(0);
const HEARTBEAT: TimerId = TimerId(1);

/// One physical process of the flawed construction.
pub struct FlawedCmNode {
    me: ProcessId,
    witnesses: Vec<FlawedWitness>,
    subjects: Vec<FlawedSubject>,
    fd: Rc<dyn FdQuery>,
    heartbeat_every: u64,
    tick_every: u64,
}

impl std::fmt::Debug for FlawedCmNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlawedCmNode")
            .field("me", &self.me)
            .field("witnesses", &self.witnesses.len())
            .field("subjects", &self.subjects.len())
            .finish()
    }
}

impl FlawedCmNode {
    /// Builds the node for `me` over the given ordered pairs and CM factory
    /// (one dining instance per pair — `instance` is always 0).
    pub fn new(
        me: ProcessId,
        pairs: &[(ProcessId, ProcessId)],
        factory: &(dyn Fn(DxEndpoint) -> Box<dyn DiningParticipant> + '_),
        fd: Rc<dyn FdQuery>,
    ) -> Self {
        let witnesses = pairs
            .iter()
            .filter(|&&(w, s)| w == me && s != me)
            .map(|&(w, s)| FlawedWitness {
                watcher: w,
                subject: s,
                cm: factory(DxEndpoint { me: w, peer: s, watcher: w, subject: s, instance: 0 }),
                suspect: true,
                last_phase: DinerPhase::Thinking,
            })
            .collect();
        let subjects = pairs
            .iter()
            .filter(|&&(w, s)| s == me && w != me)
            .map(|&(w, s)| FlawedSubject {
                watcher: w,
                subject: s,
                cm: factory(DxEndpoint { me: s, peer: w, watcher: w, subject: s, instance: 0 }),
                requested: false,
                last_phase: DinerPhase::Thinking,
            })
            .collect();
        FlawedCmNode { me, witnesses, subjects, fd, heartbeat_every: 16, tick_every: 4 }
    }

    fn flush(out: Out, ctx: &mut Context<'_, CmMsg, RedObs>) {
        for (to, msg) in out.sends {
            ctx.send(to, msg);
        }
        for obs in out.obs {
            ctx.observe(obs);
        }
    }
}

impl Node for FlawedCmNode {
    type Msg = CmMsg;
    type Obs = RedObs;

    fn on_start(&mut self, ctx: &mut Context<'_, CmMsg, RedObs>) {
        let mut out = Out::default();
        let (now, fd) = (ctx.now(), Rc::clone(&self.fd));
        for s in &mut self.subjects {
            s.pump(now, &*fd, &mut out);
        }
        Self::flush(out, ctx);
        ctx.set_timer(self.tick_every, TICK);
        if !self.subjects.is_empty() {
            ctx.set_timer(self.heartbeat_every, HEARTBEAT);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, CmMsg, RedObs>, from: ProcessId, msg: CmMsg) {
        let mut out = Out::default();
        let (now, fd) = (ctx.now(), Rc::clone(&self.fd));
        match msg {
            CmMsg::Dx { watcher, subject, inner } => {
                if watcher == self.me {
                    let w = self
                        .witnesses
                        .iter_mut()
                        .find(|w| w.subject == subject)
                        .expect("unknown pair");
                    w.invoke(now, &*fd, &mut out, |p, io| p.on_message(io, from, inner));
                    w.pump(now, &*fd, &mut out);
                } else {
                    let s = self
                        .subjects
                        .iter_mut()
                        .find(|s| s.watcher == watcher)
                        .expect("unknown pair");
                    s.invoke(now, &*fd, &mut out, |p, io| p.on_message(io, from, inner));
                    s.pump(now, &*fd, &mut out);
                }
            }
            CmMsg::Heartbeat { watcher, subject } => {
                debug_assert_eq!(watcher, self.me);
                let w =
                    self.witnesses.iter_mut().find(|w| w.subject == subject).expect("unknown pair");
                w.on_heartbeat(now, &*fd, &mut out);
            }
        }
        Self::flush(out, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CmMsg, RedObs>, timer: TimerId) {
        let mut out = Out::default();
        let (now, fd) = (ctx.now(), Rc::clone(&self.fd));
        match timer {
            TICK => {
                for w in &mut self.witnesses {
                    w.invoke(now, &*fd, &mut out, |p, io| p.on_tick(io));
                    w.pump(now, &*fd, &mut out);
                }
                for s in &mut self.subjects {
                    s.invoke(now, &*fd, &mut out, |p, io| p.on_tick(io));
                    s.pump(now, &*fd, &mut out);
                }
                ctx.set_timer(self.tick_every, TICK);
            }
            HEARTBEAT => {
                for s in &self.subjects {
                    out.sends.push((
                        s.watcher,
                        CmMsg::Heartbeat { watcher: s.watcher, subject: s.subject },
                    ));
                }
                ctx.set_timer(self.heartbeat_every, HEARTBEAT);
            }
            other => debug_assert!(false, "unknown timer {other:?}"),
        }
        Self::flush(out, ctx);
    }
}

/// Runs the flawed construction over one monitored pair `(p0, p1)` on the
/// given black box; returns the extracted suspicion history.
pub fn run_flawed_pair(
    black_box: crate::scenario::BlackBox,
    seed: u64,
    crashes: dinefd_sim::CrashPlan,
    horizon: Time,
) -> dinefd_fd::SuspicionHistory {
    use dinefd_sim::{World, WorldConfig};
    let pairs = vec![(ProcessId(0), ProcessId(1))];
    let mut rng = dinefd_sim::SplitMix64::new(seed ^ 0xBAD);
    let oracle: Rc<dyn FdQuery> = Rc::new(crate::scenario::OracleSpec::Perfect { lag: 20 }.build(
        2,
        crashes.clone(),
        &mut rng,
    ));
    let factory = crate::scenario::factory_for(black_box);
    let nodes: Vec<FlawedCmNode> = ProcessId::all(2)
        .map(|me| FlawedCmNode::new(me, &pairs, &factory, Rc::clone(&oracle)))
        .collect();
    let cfg = WorldConfig::new(seed).crashes(crashes);
    let mut world = World::new(nodes, cfg);
    world.run_until(horizon);
    let trace = world.into_trace();
    crate::detector::suspicion_history(2, &trace, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::BlackBox;
    use dinefd_sim::CrashPlan;

    #[test]
    fn flawed_construction_works_on_benign_box() {
        // Against the Abstract box (exclusive after convergence, stragglers
        // block), the [8] construction behaves: q locks the CS and p is
        // locked out, trusting forever.
        let h = run_flawed_pair(
            BlackBox::Abstract { convergence: Time(1_500) },
            3,
            CrashPlan::none(),
            Time(40_000),
        );
        let acc = h.eventual_strong_accuracy(&CrashPlan::none());
        assert!(acc.is_ok(), "accuracy violated on benign box: {:?}", acc.err());
    }

    #[test]
    fn flawed_construction_detects_crash() {
        let plan = CrashPlan::one(ProcessId(1), Time(5_000));
        let h = run_flawed_pair(
            BlackBox::Abstract { convergence: Time(1_500) },
            4,
            plan.clone(),
            Time(40_000),
        );
        assert!(h.strong_completeness(&plan).is_ok());
    }

    #[test]
    fn flawed_construction_breaks_on_delayed_convergence_box() {
        // The Section 3 counterexample: q enters during the non-exclusive
        // prefix and never exits ⇒ exclusivity never starts ⇒ p is granted,
        // and hence suspects correct q, over and over.
        let h = run_flawed_pair(
            BlackBox::Delayed { convergence: Time(1_500) },
            5,
            CrashPlan::none(),
            Time(40_000),
        );
        let mistakes = h.mistake_intervals(ProcessId(0), ProcessId(1));
        assert!(
            mistakes > 50,
            "expected unbounded flapping, saw only {mistakes} mistake intervals"
        );
        // And the flapping persists to the end of the recording: the run is
        // NOT consistent with eventual strong accuracy having converged.
        let last_change = h.timeline(ProcessId(0), ProcessId(1)).changes().last().copied();
        let (t, _) = last_change.expect("output changed");
        assert!(t > Time(35_000), "suspicion flapping stopped early at {t:?}");
    }
}
