//! Depth-bounded exhaustive search over the pair model.
//!
//! [`explore`] dispatches on [`ExploreConfig::threads`]: `1` runs the
//! classic serial DFS below; `≥ 2` runs the work-stealing parallel engine in
//! [`crate::parallel`] over the same model, same checks, same pruning rule.
//! Serial and parallel agree on `states_visited`, `clean()`, and `deadlocks`
//! whenever the search is not truncated (see the determinism notes on
//! [`crate::parallel`]).

use std::collections::HashMap;
use std::time::Instant;

use crate::pair_model::{ExploreConfig, PairState, TransitionLabel};
use crate::parallel::{
    parallel_search, ParallelModel, SearchStats, ViolationKind, ViolationRecord,
};

/// Outcome of one exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states_visited: usize,
    /// Transitions traversed. (The serial search re-counts a state's
    /// out-edges when the state is re-expanded with a larger depth budget;
    /// the parallel engine counts each state's out-degree exactly once, so
    /// its figure is a deterministic lower bound of the serial one.)
    pub transitions: u64,
    /// Invariant violations found (empty = all lemmas hold in the explored
    /// region). Each entry carries a short trace prefix for diagnosis.
    pub violations: Vec<String>,
    /// Structured violations with replayable counterexample paths (same
    /// incidents as `violations`; replay them with
    /// [`PairState::successors`]).
    pub records: Vec<ViolationRecord<TransitionLabel>>,
    /// States with no outgoing transition (there should be none).
    pub deadlocks: usize,
    /// Whether the search hit its state budget before exhausting the
    /// depth-bounded region.
    pub truncated: bool,
    /// Throughput and contention counters of this run.
    pub stats: SearchStats,
}

impl ExploreReport {
    /// True when every checked property held everywhere explored.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.deadlocks == 0
    }
}

/// Exhaustively explores all interleavings up to `cfg.max_depth`, checking
/// the paper's safety lemmas at every state and the Theorem-1 closure across
/// every transition.
///
/// The visited map remembers the largest remaining depth each state was
/// expanded with, so re-entering a state with less budget is pruned soundly.
/// With `cfg.threads >= 2` the search runs on the work-stealing parallel
/// engine; the verdict (`clean()`, `states_visited`, `deadlocks`) is
/// schedule-independent.
///
/// ```
/// use dinefd_explore::{explore, ExploreConfig};
///
/// let report = explore(&ExploreConfig { max_depth: 12, ..Default::default() });
/// assert!(report.clean(), "lemma violations: {:?}", report.violations);
/// assert!(report.states_visited > 100);
/// ```
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    if cfg.threads <= 1 {
        explore_serial(cfg)
    } else {
        explore_parallel(cfg)
    }
}

/// The classic single-threaded DFS (exact semantics of the original serial
/// explorer, plus structured violation records).
fn explore_serial(cfg: &ExploreConfig) -> ExploreReport {
    let started = Instant::now();
    let initial = PairState::initial(cfg);
    let mut report = ExploreReport {
        states_visited: 0,
        transitions: 0,
        violations: Vec::new(),
        records: Vec::new(),
        deadlocks: 0,
        truncated: false,
        stats: SearchStats::serial(0, 0.0),
    };
    let mut visited: HashMap<PairState, u32> = HashMap::new();
    // Explicit stack: (state, remaining depth, path label for diagnostics).
    let mut stack: Vec<(PairState, u32, Vec<TransitionLabel>)> = Vec::new();

    if let Some(v) = joined_invariants(&initial) {
        push_violation(&mut report, ViolationKind::StateInvariant, v, Vec::new());
    }
    visited.insert(initial.clone(), cfg.max_depth);
    stack.push((initial, cfg.max_depth, Vec::new()));

    while let Some((state, depth, path)) = stack.pop() {
        report.states_visited = visited.len();
        if visited.len() >= cfg.max_states {
            report.truncated = true;
            break;
        }
        if depth == 0 {
            continue;
        }
        let succ = state.successors(cfg);
        if succ.is_empty() {
            report.deadlocks += 1;
            continue;
        }
        for (label, next) in succ {
            report.transitions += 1;
            if let Some(v) = state.check_closure_step(&next) {
                let mut p = path.clone();
                p.push(label);
                push_violation(&mut report, ViolationKind::ClosureStep, v, p);
            }
            let remaining = depth - 1;
            let seen = visited.get(&next).copied();
            if seen.is_some_and(|d| d >= remaining) {
                continue;
            }
            let mut next_path = path.clone();
            next_path.push(label);
            if let Some(v) = joined_invariants(&next) {
                push_violation(&mut report, ViolationKind::StateInvariant, v, next_path.clone());
            }
            visited.insert(next.clone(), remaining);
            stack.push((next, remaining, next_path));
        }
    }
    report.states_visited = visited.len();
    report.stats = SearchStats::serial(report.states_visited, started.elapsed().as_secs_f64());
    report
}

/// The work-stealing parallel search over the same model.
fn explore_parallel(cfg: &ExploreConfig) -> ExploreReport {
    struct PairSearch<'a>(&'a ExploreConfig);

    impl ParallelModel for PairSearch<'_> {
        type State = PairState;
        type Label = TransitionLabel;

        fn successors(&self, s: &PairState) -> Vec<(TransitionLabel, PairState)> {
            s.successors(self.0)
        }

        fn state_violations(&self, s: &PairState) -> Vec<String> {
            s.check_invariants()
        }

        fn step_violations(
            &self,
            s: &PairState,
            _label: TransitionLabel,
            next: &PairState,
        ) -> Vec<String> {
            s.check_closure_step(next).into_iter().collect()
        }
    }

    let outcome = parallel_search(
        &PairSearch(cfg),
        PairState::initial(cfg),
        cfg.max_depth,
        cfg.max_states,
        cfg.threads,
    );
    ExploreReport {
        states_visited: outcome.states_visited,
        transitions: outcome.transitions,
        violations: outcome.violations.iter().map(|r| render(&r.message, &r.path)).collect(),
        records: outcome.violations,
        deadlocks: outcome.deadlocks,
        truncated: outcome.truncated,
        stats: outcome.stats,
    }
}

/// All invariant failures of one state, joined into the serial explorer's
/// one-record-per-state core message.
fn joined_invariants(state: &PairState) -> Option<String> {
    let v = state.check_invariants();
    if v.is_empty() {
        None
    } else {
        Some(v.join("; "))
    }
}

fn push_violation(
    report: &mut ExploreReport,
    kind: ViolationKind,
    message: String,
    path: Vec<TransitionLabel>,
) {
    report.violations.push(render(&message, &path));
    report.records.push(ViolationRecord { kind, message, path });
}

fn render(message: &str, path: &[TransitionLabel]) -> String {
    format!("{message} (after {})", fmt_path(path, None))
}

/// Renders a transition path for diagnostics (`"initial state"` when empty).
pub fn fmt_path<L: std::fmt::Debug + Copy>(path: &[L], extra: Option<L>) -> String {
    let mut parts: Vec<String> = path.iter().map(|l| format!("{l:?}")).collect();
    if let Some(l) = extra {
        parts.push(format!("{l:?}"));
    }
    if parts.is_empty() {
        "initial state".to_string()
    } else {
        parts.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_exploration_is_clean_lenient() {
        let cfg = ExploreConfig { max_depth: 40, ..Default::default() };
        let report = explore(&cfg);
        assert!(report.clean(), "violations: {:#?}", report.violations);
        assert!(report.states_visited > 3_000, "only {} states", report.states_visited);
        assert!(!report.truncated);
    }

    #[test]
    fn shallow_exploration_is_clean_strict() {
        let cfg = ExploreConfig { max_depth: 40, strict_seq: true, ..Default::default() };
        let report = explore(&cfg);
        assert!(report.clean(), "violations: {:#?}", report.violations);
    }

    #[test]
    fn converged_start_is_clean() {
        let cfg = ExploreConfig {
            max_depth: 11,
            start_converged: true,
            allow_crash: true,
            ..Default::default()
        };
        let report = explore(&cfg);
        assert!(report.clean(), "violations: {:#?}", report.violations);
    }

    #[test]
    fn crash_free_exploration_is_clean_and_smaller() {
        let with = explore(&ExploreConfig { max_depth: 9, ..Default::default() });
        let without =
            explore(&ExploreConfig { max_depth: 9, allow_crash: false, ..Default::default() });
        assert!(with.clean() && without.clean());
        assert!(without.states_visited < with.states_visited);
    }

    #[test]
    fn state_budget_truncates_gracefully() {
        let cfg = ExploreConfig { max_depth: 200, max_states: 2_000, ..Default::default() };
        let report = explore(&cfg);
        assert!(report.truncated);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn parallel_agrees_with_serial_on_all_variants() {
        for (strict, crash, converged) in
            [(false, true, false), (true, true, false), (false, false, false), (false, true, true)]
        {
            let base = ExploreConfig {
                max_depth: 12,
                strict_seq: strict,
                allow_crash: crash,
                start_converged: converged,
                ..Default::default()
            };
            let serial = explore(&base);
            let parallel = explore(&ExploreConfig { threads: 4, ..base });
            assert_eq!(
                serial.states_visited, parallel.states_visited,
                "state count diverged (strict={strict} crash={crash} conv={converged})"
            );
            assert_eq!(serial.clean(), parallel.clean());
            assert_eq!(serial.deadlocks, parallel.deadlocks);
            assert!(!parallel.truncated);
            assert_eq!(parallel.stats.threads, 4);
        }
    }

    #[test]
    fn parallel_budget_truncates_gracefully() {
        let cfg =
            ExploreConfig { max_depth: 200, max_states: 2_000, threads: 4, ..Default::default() };
        let report = explore(&cfg);
        assert!(report.truncated);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn stats_are_populated_in_both_modes() {
        let serial = explore(&ExploreConfig { max_depth: 10, ..Default::default() });
        assert_eq!(serial.stats.threads, 1);
        assert_eq!(serial.stats.shards, 1);
        assert!(serial.stats.states_per_sec > 0.0);
        let par = explore(&ExploreConfig { max_depth: 10, threads: 3, ..Default::default() });
        assert_eq!(par.stats.threads, 3);
        assert_eq!(par.stats.shards, crate::parallel::N_SHARDS);
        assert!(par.stats.states_per_sec > 0.0);
    }

    #[test]
    fn fmt_path_renders_empty_and_chains() {
        assert_eq!(fmt_path::<TransitionLabel>(&[], None), "initial state");
        let p = [TransitionLabel::Converge, TransitionLabel::CrashSubject];
        let s = fmt_path(&p, None);
        assert!(s.contains("Converge") && s.contains("→"), "{s}");
    }
}
