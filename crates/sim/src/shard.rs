//! Sharded worlds: pair partitions with a deterministic cross-shard merge.
//!
//! A [`ShardedWorld`] runs the same discrete-event semantics as
//! [`crate::world::World`] over `k` shards, each owning the processes with
//! `pid.index() % k == shard` and a private [`TimerWheel`] of their pending
//! events. Shards exchange only cross-shard messages; everything else
//! (timers, same-shard sends) stays local. The extraction host partitions
//! pairs by the `witness_by_subject` index key — the witness pid — so
//! `pid % k` is exactly a pair partition there.
//!
//! ## The cross-shard `seq` merge rule
//!
//! A single `World` tie-breaks same-instant events by its global scheduling
//! counter `seq` — meaningless across shards, where each queue counts
//! alone. Instead every event carries a **canonical key**
//! `(time, class, source pid, source seq)`:
//!
//! * `class 0` — crash-plan events; `source seq` is the plan index;
//! * `class 1` — node effects (sends, envelopes, timers); `source seq` is a
//!   per-source-pid monotone effect counter.
//!
//! Each simulated instant, the coordinator pops *every* shard's events due
//! at the minimum pending time, sorts them by canonical key, and executes
//! them sequentially in that order. Keys are unique (per-source counters
//! never repeat), so the order is total — and because it never mentions
//! shards, the schedule is **independent of the shard count**: the same
//! seed produces a byte-identical trace and metric set for any `k`. The
//! per-instant barrier is sound because every delay and timer is at least
//! one tick ([`crate::net::DelayModel::sample`] and
//! [`crate::node::Context::set_timer`] both clamp), so executing an instant
//! can only create strictly-later events.
//!
//! Shard-count independence also requires the *randomness* to be
//! per-process rather than global: each process gets its own delay-model
//! clone ([`crate::net::DelayModel::try_clone`]) and its own forked
//! delay-RNG, so the draws a sender makes never depend on how senders are
//! interleaved across shards.
//!
//! Execution is sequential today (the extraction host's `Rc`-shared oracle
//! is not `Send`); the shard boundaries are the unit a parallel executor
//! would fan out, with the canonical sort as its merge point.
//!
//! ## Queue-depth accounting
//!
//! Per-shard `queue_depth` gauges meter each shard's own backlog, but the
//! *sum of their high-water marks* is not shard-count invariant (the peaks
//! need not coincide in time). The coordinator therefore also tracks a
//! global gauge of the instantaneous total backlog across shards, updated
//! every instant; its high water is what [`ShardedWorld::metrics_map`]
//! exports as `queue_depth_high_water`, and it is byte-identical across
//! shard counts. It never exceeds the summed per-shard marks — a pinned
//! test invariant.

use crate::event::EventKind;
use crate::id::ProcessId;
use crate::metrics::{Gauge, MetricMap, SimMetrics};
use crate::net::DelayModel;
use crate::node::{Context, Node, TimerId};
use crate::rng::SplitMix64;
use crate::time::Time;
use crate::trace::{Trace, TraceEvent};
use crate::wheel::TimerWheel;
use crate::world::{ObsSink, WorldConfig};

/// Crash-plan events sort before node effects at the same instant.
const CLASS_CRASH: u8 = 0;
/// Node effects (sends, envelopes, timers).
const CLASS_EFFECT: u8 = 1;

/// One pending event with its canonical merge key (minus the time, which
/// the wheel itself keys).
type Pending<M> = (u8, u32, u64, EventKind<M>);

/// A shard: the event queue and metrics of one process partition.
#[derive(Debug)]
struct Shard<M> {
    queue: TimerWheel<Pending<M>>,
    metrics: SimMetrics,
}

/// A sharded simulated world. Construction, stepping, and observation
/// mirror [`crate::world::World`]; see the module docs for what sharding
/// changes (and what it provably doesn't: the schedule).
pub struct ShardedWorld<N: Node> {
    nodes: Vec<N>,
    crashed: Vec<bool>,
    now: Time,
    shards: Vec<Shard<N::Msg>>,
    /// Per-process delay models and RNGs (shard-count independence).
    send_delays: Vec<DelayModel>,
    send_rngs: Vec<SplitMix64>,
    node_rngs: Vec<SplitMix64>,
    /// Per-process monotone effect counters (the canonical-key `seq`).
    effect_seq: Vec<u64>,
    /// Variant label of the configured delay model, for metric export.
    delay_kind: &'static str,
    trace: Trace<N::Msg, N::Obs>,
    record_observations: bool,
    batch_envelopes: bool,
    obs_sink: Option<Box<dyn ObsSink<N::Obs>>>,
    /// Instantaneous total backlog across all shards (the shard-count
    /// invariant depth gauge; see the module docs).
    global_depth: Gauge,
    // Reusable buffers, as in `World`.
    sends_buf: Vec<(ProcessId, N::Msg)>,
    timers_buf: Vec<(u64, TimerId)>,
    obs_buf: Vec<N::Obs>,
    envelope_pool: Vec<Vec<N::Msg>>,
    groups_buf: Vec<(ProcessId, Vec<N::Msg>)>,
    batch_buf: Vec<Pending<N::Msg>>,
}

impl<N: Node> std::fmt::Debug for ShardedWorld<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("nodes", &self.nodes.len())
            .field("shards", &self.shards.len())
            .field("now", &self.now)
            .field("pending", &self.pending_events())
            .finish_non_exhaustive()
    }
}

impl<N: Node> ShardedWorld<N> {
    /// Builds a `k`-shard world over `nodes` and delivers every node's
    /// `on_start` step at time zero.
    ///
    /// # Panics
    ///
    /// If `shards == 0`, or the configured delay model is
    /// [`DelayModel::Scripted`] (sharding needs one delay-state clone per
    /// process; a boxed adversary has none — see
    /// [`DelayModel::try_clone`]).
    pub fn new(nodes: Vec<N>, cfg: WorldConfig, shards: usize) -> Self {
        Self::build(nodes, cfg, shards, None)
    }

    /// Builds a sharded world with a streaming [`ObsSink`] attached (the
    /// `on_start` observations stream through it, as in
    /// [`crate::world::World::new_with_sink`]).
    pub fn new_with_sink(
        nodes: Vec<N>,
        cfg: WorldConfig,
        shards: usize,
        sink: Box<dyn ObsSink<N::Obs>>,
    ) -> Self {
        Self::build(nodes, cfg, shards, Some(sink))
    }

    fn build(
        nodes: Vec<N>,
        cfg: WorldConfig,
        shards: usize,
        obs_sink: Option<Box<dyn ObsSink<N::Obs>>>,
    ) -> Self {
        assert!(shards > 0, "a sharded world needs at least one shard");
        let n = nodes.len();
        let mut rng = SplitMix64::new(cfg.seed);
        // Fork order is load-bearing: node RNGs first (matching `World`),
        // then one delay RNG per process, all in pid order.
        let node_rngs: Vec<SplitMix64> = (0..n).map(|_| rng.fork()).collect();
        let send_rngs: Vec<SplitMix64> = (0..n).map(|_| rng.fork()).collect();
        let send_delays: Vec<DelayModel> = (0..n)
            .map(|_| {
                cfg.delays.try_clone().expect(
                    "sharded worlds need a cloneable delay model (Scripted is not; \
                     use a World or a deterministic model instead)",
                )
            })
            .collect();
        let mut world = ShardedWorld {
            nodes,
            crashed: vec![false; n],
            now: Time::ZERO,
            shards: (0..shards)
                .map(|_| Shard { queue: TimerWheel::new(), metrics: SimMetrics::new() })
                .collect(),
            send_delays,
            send_rngs,
            node_rngs,
            effect_seq: vec![0; n],
            delay_kind: cfg.delays.kind(),
            trace: Trace::new(cfg.record_messages),
            record_observations: cfg.record_observations,
            batch_envelopes: cfg.batch_envelopes,
            obs_sink,
            global_depth: Gauge::new(),
            sends_buf: Vec::new(),
            timers_buf: Vec::new(),
            obs_buf: Vec::new(),
            envelope_pool: Vec::new(),
            groups_buf: Vec::new(),
            batch_buf: Vec::new(),
        };
        for (plan_idx, &(pid, at)) in cfg.crashes.crashes().iter().enumerate() {
            assert!(pid.index() < n, "crash plan names unknown process {pid}");
            if at == Time::ZERO {
                // Dead from birth, exactly as in `World` (see its module
                // docs): effective before start dispatch.
                if !world.crashed[pid.index()] {
                    world.crashed[pid.index()] = true;
                    world.shard_mut(pid).metrics.crash_events.inc();
                    world.trace.push(TraceEvent::Crash { at: Time::ZERO, pid });
                }
            } else {
                let shard = world.shard_of(pid);
                world.shards[shard]
                    .queue
                    .push(at, (CLASS_CRASH, pid.0, plan_idx as u64, EventKind::Crash { pid }));
            }
        }
        world.update_depth_gauges();
        for i in 0..n {
            if !world.crashed[i] {
                world.dispatch_start(ProcessId::from_index(i));
            }
        }
        world
    }

    #[inline]
    fn shard_of(&self, pid: ProcessId) -> usize {
        pid.index() % self.shards.len()
    }

    #[inline]
    fn shard_mut(&mut self, pid: ProcessId) -> &mut Shard<N::Msg> {
        let s = self.shard_of(pid);
        &mut self.shards[s]
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Current global time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total atomic steps dispatched, across all shards.
    pub fn steps(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.steps.get()).sum()
    }

    /// Total messages sent, across all shards.
    pub fn messages_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.messages_sent.get()).sum()
    }

    /// Read access to a node's state.
    pub fn node(&self, pid: ProcessId) -> &N {
        &self.nodes[pid.index()]
    }

    /// Whether `pid` has crashed already.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.crashed[pid.index()]
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace<N::Msg, N::Obs> {
        &self.trace
    }

    /// Consumes the world, returning the trace.
    pub fn into_trace(self) -> Trace<N::Msg, N::Obs> {
        self.trace
    }

    /// Detaches and returns the streaming sink, if one was attached.
    pub fn take_obs_sink(&mut self) -> Option<Box<dyn ObsSink<N::Obs>>> {
        self.obs_sink.take()
    }

    /// Events still pending, summed across shards.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// One shard's metric set (per-shard backlog, sender- and
    /// executor-side counters).
    pub fn shard_metrics(&self, shard: usize) -> &SimMetrics {
        &self.shards[shard].metrics
    }

    /// The shard-count-invariant global backlog gauge (see module docs).
    pub fn global_queue_depth(&self) -> &Gauge {
        &self.global_depth
    }

    /// Merged metric export. Counters and histograms are exact sums over
    /// shards; `queue_depth_high_water` / `queue_depth_final` come from
    /// the global gauge, so the whole map is byte-identical across shard
    /// counts for a fixed seed.
    pub fn metrics_map(&self) -> MetricMap {
        let mut merged = SimMetrics::new();
        for s in &self.shards {
            merged.absorb(&s.metrics);
        }
        merged.queue_depth = self.global_depth;
        merged.export(self.delay_kind)
    }

    fn update_depth_gauges(&mut self) {
        let mut total = 0u64;
        for s in &mut self.shards {
            let depth = s.queue.len() as u64;
            s.metrics.queue_depth.set(depth);
            total += depth;
        }
        self.global_depth.set(total);
    }

    /// Executes every event due at the earliest pending instant, in
    /// canonical-key order. Returns `false` when all queues are empty.
    pub fn step_instant(&mut self) -> bool {
        let Some(t) = self.peek_time() else {
            return false;
        };
        debug_assert!(t >= self.now, "time must not run backwards");
        self.now = t;
        let mut batch = std::mem::take(&mut self.batch_buf);
        debug_assert!(batch.is_empty());
        for s in &mut self.shards {
            while s.queue.peek_time() == Some(t) {
                batch.push(s.queue.pop().expect("peeked event exists").1);
            }
        }
        // The deterministic merge: canonical keys are unique, so this
        // order is total and shard-count independent.
        batch.sort_by_key(|a| (a.0, a.1, a.2));
        for (_, _, _, kind) in batch.drain(..) {
            self.execute(kind);
        }
        self.batch_buf = batch;
        self.update_depth_gauges();
        true
    }

    /// Earliest pending instant across all shards.
    pub fn peek_time(&self) -> Option<Time> {
        self.shards.iter().filter_map(|s| s.queue.peek_time()).min()
    }

    /// Runs until all queues are empty or global time exceeds `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            self.step_instant();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` more ticks of virtual time.
    pub fn run_for(&mut self, d: u64) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    fn execute(&mut self, kind: EventKind<N::Msg>) {
        match kind {
            EventKind::Crash { pid } => {
                if !self.crashed[pid.index()] {
                    self.crashed[pid.index()] = true;
                    let at = self.now;
                    self.shard_mut(pid).metrics.crash_events.inc();
                    self.trace.push(TraceEvent::Crash { at, pid });
                }
            }
            EventKind::Timer { pid, id } => {
                if !self.crashed[pid.index()] {
                    self.shard_mut(pid).metrics.timer_fires.inc();
                    self.dispatch_timer(pid, id);
                }
            }
            EventKind::Deliver { from, to, msg } => {
                if !self.crashed[to.index()] {
                    self.shard_mut(to).metrics.messages_delivered.inc();
                    if self.trace.records_messages {
                        let at = self.now;
                        self.trace.push(TraceEvent::Deliver { at, from, to, msg: msg.clone() });
                    }
                    self.dispatch_message(to, from, msg);
                } else {
                    self.shard_mut(to).metrics.messages_dropped.inc();
                }
            }
            EventKind::Envelope { from, to, mut msgs } => {
                if !self.crashed[to.index()] {
                    for msg in msgs.drain(..) {
                        self.shard_mut(to).metrics.messages_delivered.inc();
                        if self.trace.records_messages {
                            let at = self.now;
                            self.trace.push(TraceEvent::Deliver { at, from, to, msg: msg.clone() });
                        }
                        self.dispatch_message(to, from, msg);
                    }
                } else {
                    self.shard_mut(to).metrics.messages_dropped.add(msgs.len() as u64);
                    msgs.clear();
                }
                self.envelope_pool.push(msgs);
            }
        }
    }

    fn dispatch_start(&mut self, pid: ProcessId) {
        let (sends, timers, obs) = {
            let mut ctx = Context {
                me: pid,
                now: self.now,
                sends: &mut self.sends_buf,
                timers: &mut self.timers_buf,
                observations: &mut self.obs_buf,
                rng: &mut self.node_rngs[pid.index()],
            };
            self.nodes[pid.index()].on_start(&mut ctx);
            (
                std::mem::take(&mut self.sends_buf),
                std::mem::take(&mut self.timers_buf),
                std::mem::take(&mut self.obs_buf),
            )
        };
        self.route_effects(pid, sends, timers, obs);
    }

    fn dispatch_message(&mut self, pid: ProcessId, from: ProcessId, msg: N::Msg) {
        let (sends, timers, obs) = {
            let mut ctx = Context {
                me: pid,
                now: self.now,
                sends: &mut self.sends_buf,
                timers: &mut self.timers_buf,
                observations: &mut self.obs_buf,
                rng: &mut self.node_rngs[pid.index()],
            };
            self.nodes[pid.index()].on_message(&mut ctx, from, msg);
            (
                std::mem::take(&mut self.sends_buf),
                std::mem::take(&mut self.timers_buf),
                std::mem::take(&mut self.obs_buf),
            )
        };
        self.route_effects(pid, sends, timers, obs);
    }

    fn dispatch_timer(&mut self, pid: ProcessId, id: TimerId) {
        let (sends, timers, obs) = {
            let mut ctx = Context {
                me: pid,
                now: self.now,
                sends: &mut self.sends_buf,
                timers: &mut self.timers_buf,
                observations: &mut self.obs_buf,
                rng: &mut self.node_rngs[pid.index()],
            };
            self.nodes[pid.index()].on_timer(&mut ctx, id);
            (
                std::mem::take(&mut self.sends_buf),
                std::mem::take(&mut self.timers_buf),
                std::mem::take(&mut self.obs_buf),
            )
        };
        self.route_effects(pid, sends, timers, obs);
    }

    /// Next canonical-key sequence number for effects of `pid`.
    #[inline]
    fn next_effect_seq(&mut self, pid: ProcessId) -> u64 {
        let seq = self.effect_seq[pid.index()];
        self.effect_seq[pid.index()] = seq + 1;
        seq
    }

    /// Resolves an effect's absolute instant; overflow past the clock
    /// horizon is a hard error (see `World::schedule_at`).
    #[inline]
    fn schedule_at(now: Time, delay: u64, what: &str) -> Time {
        match now.checked_add(delay) {
            Some(at) => at,
            None => panic!("{what} scheduled past the clock horizon (t{now} + {delay} ticks)"),
        }
    }

    fn route_effects(
        &mut self,
        pid: ProcessId,
        mut sends: Vec<(ProcessId, N::Msg)>,
        mut timers: Vec<(u64, TimerId)>,
        mut obs: Vec<N::Obs>,
    ) {
        self.shard_mut(pid).metrics.steps.inc();
        for o in obs.drain(..) {
            self.shard_mut(pid).metrics.observations.inc();
            if let Some(sink) = self.obs_sink.as_mut() {
                sink.on_obs(self.now, pid, &o);
            }
            if self.record_observations {
                let at = self.now;
                self.trace.push(TraceEvent::Obs { at, pid, obs: o });
            }
        }
        if self.batch_envelopes {
            self.route_sends_batched(pid, &mut sends);
        } else {
            for (to, msg) in sends.drain(..) {
                assert!(to.index() < self.nodes.len(), "send to unknown process {to}");
                if self.trace.records_messages {
                    let at = self.now;
                    self.trace.push(TraceEvent::Send { at, from: pid, to, msg: msg.clone() });
                }
                let d = self.send_delays[pid.index()].sample(
                    pid,
                    to,
                    self.now,
                    &mut self.send_rngs[pid.index()],
                );
                let sender = self.shard_mut(pid);
                sender.metrics.messages_sent.inc();
                sender.metrics.envelopes_sent.inc();
                sender.metrics.delay_ticks.record(d);
                let at = Self::schedule_at(self.now, d, "delivery");
                let seq = self.next_effect_seq(pid);
                let shard = self.shard_of(to);
                self.shards[shard].queue.push(
                    at,
                    (CLASS_EFFECT, pid.0, seq, EventKind::Deliver { from: pid, to, msg }),
                );
            }
        }
        for (delay, id) in timers.drain(..) {
            self.shard_mut(pid).metrics.timers_set.inc();
            let at = Self::schedule_at(self.now, delay, "timer");
            let seq = self.next_effect_seq(pid);
            let shard = self.shard_of(pid);
            self.shards[shard]
                .queue
                .push(at, (CLASS_EFFECT, pid.0, seq, EventKind::Timer { pid, id }));
        }
        self.sends_buf = sends;
        self.timers_buf = timers;
        self.obs_buf = obs;
    }

    /// Envelope batching, as in `World::route_sends_batched`, with pooled
    /// payload vectors and canonical-key stamping.
    fn route_sends_batched(&mut self, pid: ProcessId, sends: &mut Vec<(ProcessId, N::Msg)>) {
        let mut groups = std::mem::take(&mut self.groups_buf);
        for (to, msg) in sends.drain(..) {
            assert!(to.index() < self.nodes.len(), "send to unknown process {to}");
            self.shard_mut(pid).metrics.messages_sent.inc();
            if self.trace.records_messages {
                let at = self.now;
                self.trace.push(TraceEvent::Send { at, from: pid, to, msg: msg.clone() });
            }
            match groups.iter_mut().find(|(t, _)| *t == to) {
                Some((_, msgs)) => msgs.push(msg),
                None => {
                    let mut msgs = self.envelope_pool.pop().unwrap_or_default();
                    msgs.push(msg);
                    groups.push((to, msgs));
                }
            }
        }
        for (to, msgs) in groups.drain(..) {
            let d = self.send_delays[pid.index()].sample(
                pid,
                to,
                self.now,
                &mut self.send_rngs[pid.index()],
            );
            let sender = self.shard_mut(pid);
            sender.metrics.envelopes_sent.inc();
            sender.metrics.envelope_occupancy.record(msgs.len() as u64);
            sender.metrics.delay_ticks.record(d);
            let at = Self::schedule_at(self.now, d, "envelope");
            let seq = self.next_effect_seq(pid);
            let shard = self.shard_of(to);
            self.shards[shard]
                .queue
                .push(at, (CLASS_EFFECT, pid.0, seq, EventKind::Envelope { from: pid, to, msgs }));
        }
        self.groups_buf = groups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashPlan;

    /// Ring-token nodes (the `World` test workload, reused verbatim).
    #[derive(Debug)]
    struct RingNode {
        n: usize,
        hops_left: u32,
        received: u32,
    }

    impl Node for RingNode {
        type Msg = u32;
        type Obs = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
            if ctx.me() == ProcessId(0) {
                let next = ProcessId::from_index((ctx.me().index() + 1) % self.n);
                ctx.send(next, self.hops_left);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, u32, u32>, _from: ProcessId, msg: u32) {
            self.received += 1;
            ctx.observe(msg);
            if msg > 0 {
                let next = ProcessId::from_index((ctx.me().index() + 1) % self.n);
                ctx.send(next, msg - 1);
            }
        }
    }

    fn ring(n: usize, hops: u32) -> Vec<RingNode> {
        (0..n).map(|_| RingNode { n, hops_left: hops, received: 0 }).collect()
    }

    fn cfg(seed: u64, n: usize, batch: bool) -> WorldConfig {
        let cfg = WorldConfig::new(seed)
            .delays(DelayModel::harsh())
            .crashes(CrashPlan::one(ProcessId((n - 1) as u32), Time(150)))
            .record_messages();
        if batch {
            cfg.batch_envelopes()
        } else {
            cfg
        }
    }

    fn run(seed: u64, shards: usize, batch: bool) -> (Time, String, MetricMap) {
        let n = 6;
        let mut w = ShardedWorld::new(ring(n, 300), cfg(seed, n, batch), shards);
        while w.step_instant() {}
        (w.now(), format!("{:?}", w.trace().events()), w.metrics_map())
    }

    /// The ISSUE 7 determinism matrix: same seed ⇒ byte-identical trace
    /// and metrics for shards ∈ {1, 2, 4, 8}, including the exported
    /// `queue_depth_high_water`.
    #[test]
    fn shard_count_never_changes_the_run() {
        for batch in [false, true] {
            let reference = run(90, 1, batch);
            for shards in [2, 4, 8] {
                let got = run(90, shards, batch);
                assert_eq!(got, reference, "shards={shards} batch={batch} diverged");
            }
        }
    }

    #[test]
    fn different_seeds_still_diverge() {
        assert_ne!(run(90, 4, false).1, run(91, 4, false).1);
    }

    #[test]
    fn global_high_water_is_bounded_by_summed_shard_marks() {
        let n = 6;
        let mut w = ShardedWorld::new(ring(n, 300), cfg(5, n, false), 4);
        while w.step_instant() {}
        let summed: u64 =
            (0..w.shards()).map(|s| w.shard_metrics(s).queue_depth.high_water()).sum();
        let global = w.global_queue_depth().high_water();
        assert!(global >= 1);
        assert!(
            global <= summed,
            "global high water {global} must not exceed summed shard marks {summed}"
        );
        // And the export carries the global mark, not the sum.
        assert_eq!(w.metrics_map()["queue_depth_high_water"], global);
    }

    #[test]
    fn counters_sum_exactly_across_shards() {
        let n = 6;
        let mut w = ShardedWorld::new(ring(n, 200), cfg(7, n, false), 4);
        while w.step_instant() {}
        let m = w.metrics_map();
        assert_eq!(m["messages_sent"], w.messages_sent());
        assert_eq!(m["steps"], w.steps());
        assert_eq!(
            m["messages_delivered"] + m["messages_dropped"],
            m["messages_sent"],
            "every sent message is delivered or dropped once the run drains"
        );
    }

    #[test]
    fn crash_at_time_zero_suppresses_start_step() {
        let cfg =
            WorldConfig::new(3).crashes(CrashPlan::one(ProcessId(0), Time::ZERO)).record_messages();
        let mut w = ShardedWorld::new(ring(3, 10), cfg, 2);
        assert!(w.is_crashed(ProcessId(0)));
        while w.step_instant() {}
        assert_eq!(w.trace().sent_count(), 0, "a dead-from-birth process must not send");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut w = ShardedWorld::new(ring(4, 1000), WorldConfig::new(9), 2);
        w.run_until(Time(50));
        assert!(w.now() >= Time(50));
        let before = w.trace().observations().count();
        w.run_for(400);
        assert!(w.trace().observations().count() > before);
    }

    #[test]
    #[should_panic(expected = "cloneable delay model")]
    fn scripted_delays_are_rejected() {
        use crate::net::ChannelStaller;
        let staller = ChannelStaller { stalled: vec![], release_at: Time(1), benign_hi: 1 };
        let cfg = WorldConfig::new(1).delays(DelayModel::Scripted(Box::new(staller)));
        ShardedWorld::new(ring(2, 1), cfg, 2);
    }

    /// A sink observing through the sharded coordinator sees the exact
    /// trace stream, as with `World`.
    #[derive(Debug, Default)]
    struct FoldSink {
        seen: Vec<(Time, ProcessId, u32)>,
    }

    impl ObsSink<u32> for FoldSink {
        fn on_obs(&mut self, at: Time, pid: ProcessId, obs: &u32) {
            self.seen.push((at, pid, *obs));
        }
    }

    #[test]
    fn obs_sink_streams_exactly_the_trace_observations() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let sink = Rc::new(RefCell::new(FoldSink::default()));
        let mut w = ShardedWorld::new_with_sink(
            ring(4, 23),
            WorldConfig::new(9),
            3,
            Box::new(Rc::clone(&sink)),
        );
        while w.step_instant() {}
        let from_trace: Vec<(Time, ProcessId, u32)> =
            w.trace().observations().map(|(t, p, &o)| (t, p, o)).collect();
        assert!(!from_trace.is_empty());
        assert_eq!(sink.borrow().seen, from_trace);
    }
}
