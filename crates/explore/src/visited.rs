//! The fingerprinted, arena-backed visited store behind both search engines.
//!
//! The old engines kept `HashMap<State, u32>` — every insertion cloned the
//! full state struct (two machines, fork endpoints, several `Vec`s) to use
//! as a key, and every lookup re-hashed it with SipHash. This store keeps a
//! state as:
//!
//! * its compact encoding ([`crate::codec::StateCodec`]), interned once in a
//!   per-store byte **arena**;
//! * a 64-bit **fingerprint** of that encoding, which drives an
//!   open-addressing (linear-probe) index table.
//!
//! A probe walks the index by fingerprint; on a fingerprint match the
//! interned bytes are compared exactly before the entry is trusted
//! ([`StoreStats::confirms`] counts the comparisons,
//! [`StoreStats::collisions`] the fingerprint matches whose bytes differed).
//! A collision therefore costs one extra probe step — it can never produce a
//! false "seen" verdict, so the search remains exhaustive rather than a
//! bitstate approximation.
//!
//! Each entry also carries the search metadata the engines need:
//!
//! * `remaining` — the largest remaining depth the state was queued with
//!   (the classic pruning rule: re-entering with less budget is redundant);
//! * `sleep` — the partial-order-reduction sleep mask ([`crate::por`]);
//!   entries converge by *intersection*, mirroring how `remaining` converges
//!   by maximum, so the POR fixpoint is schedule-independent too;
//! * `parent` + `label` — the tree edge that first inserted the state.
//!   Violation paths are reconstructed by walking parent links, which frees
//!   the hot loop from cloning a path `Vec` into every queued task;
//! * `expanded` — whether some expansion already counted this state's
//!   out-degree/deadlock contribution (the once-per-state figures).
//!
//! Entries are append-only and identified by dense indices, so a parent
//! reference is stable across table growth. The parallel engine wraps
//! [`N_SHARDS`] of these stores, selecting a shard by the *top* fingerprint
//! bits (the index table uses the low bits — independent, so shard striping
//! does not correlate with probe clustering).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::parallel::N_SHARDS;

/// Sentinel parent reference of the root state.
pub(crate) const NO_PARENT: u64 = u64::MAX;

/// Empty index-table slot.
const EMPTY: u32 = u32::MAX;

/// Codec observability counters of one store (summed across shards by the
/// parallel engine; exported through `SearchStats`).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StoreStats {
    /// Fingerprint hits confirmed equal by exact byte comparison.
    pub confirms: u64,
    /// Fingerprint hits whose interned bytes differed (true collisions).
    pub collisions: u64,
}

struct Entry<L> {
    fp: u64,
    off: u32,
    len: u32,
    remaining: u32,
    sleep: u32,
    parent: u64,
    label: Option<L>,
    expanded: bool,
}

/// What a [`VisitedStore::probe`] concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ProbeOutcome {
    /// Never seen: interned, must be checked and queued.
    Fresh,
    /// Seen, but this arrival carries more depth or a smaller sleep mask:
    /// the stored entry was upgraded and the state must be re-queued.
    Requeue,
    /// Seen with at least this much depth and no sleep shrink: redundant.
    Pruned,
}

/// Result of one probe: the verdict plus the entry's post-update metadata
/// (the values a re-queued task should run with).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Probe {
    pub outcome: ProbeOutcome,
    /// Dense entry index within this store.
    pub index: u32,
    pub remaining: u32,
    pub sleep: u32,
}

/// One open-addressing visited store (the serial engine uses one; the
/// parallel engine stripes [`N_SHARDS`] of them).
pub(crate) struct VisitedStore<L> {
    /// Linear-probe index: slot → entry index (or [`EMPTY`]).
    index: Vec<u32>,
    entries: Vec<Entry<L>>,
    arena: Vec<u8>,
    stats: StoreStats,
}

impl<L: Copy> VisitedStore<L> {
    pub fn new() -> Self {
        VisitedStore {
            index: vec![EMPTY; 1024],
            entries: Vec::new(),
            arena: Vec::new(),
            stats: StoreStats::default(),
        }
    }

    /// Distinct states interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Bytes interned in the arena (a memory figure, not a state count).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Looks up `bytes` (pre-fingerprinted as `fp`), arriving with
    /// `remaining` depth and POR mask `sleep` via `parent --label-->`.
    /// Interns on miss; upgrades `remaining` (max) and `sleep`
    /// (intersection) on hit.
    pub fn probe(
        &mut self,
        fp: u64,
        bytes: &[u8],
        remaining: u32,
        sleep: u32,
        parent: u64,
        label: Option<L>,
    ) -> Probe {
        if (self.entries.len() + 1) * 2 > self.index.len() {
            self.grow();
        }
        let mask = self.index.len() - 1;
        let mut slot = (fp as usize) & mask;
        loop {
            match self.index[slot] {
                EMPTY => {
                    let index = self.entries.len() as u32;
                    let off = self.arena.len() as u32;
                    self.arena.extend_from_slice(bytes);
                    self.entries.push(Entry {
                        fp,
                        off,
                        len: bytes.len() as u32,
                        remaining,
                        sleep,
                        parent,
                        label,
                        expanded: false,
                    });
                    self.index[slot] = index;
                    return Probe { outcome: ProbeOutcome::Fresh, index, remaining, sleep };
                }
                id => {
                    let e = &mut self.entries[id as usize];
                    if e.fp == fp {
                        let interned = &self.arena[e.off as usize..(e.off + e.len) as usize];
                        if interned == bytes {
                            self.stats.confirms += 1;
                            let up_remaining = e.remaining.max(remaining);
                            let up_sleep = e.sleep & sleep;
                            let outcome = if up_remaining == e.remaining && up_sleep == e.sleep {
                                ProbeOutcome::Pruned
                            } else {
                                e.remaining = up_remaining;
                                e.sleep = up_sleep;
                                ProbeOutcome::Requeue
                            };
                            return Probe {
                                outcome,
                                index: id,
                                remaining: up_remaining,
                                sleep: up_sleep,
                            };
                        }
                        self.stats.collisions += 1;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// Marks entry `index` expanded; true iff this is the first expansion.
    pub fn mark_expanded(&mut self, index: u32) -> bool {
        !std::mem::replace(&mut self.entries[index as usize].expanded, true)
    }

    /// The tree edge that first interned entry `index`.
    pub fn parent_of(&self, index: u32) -> (u64, Option<L>) {
        let e = &self.entries[index as usize];
        (e.parent, e.label)
    }

    fn grow(&mut self) {
        let new_len = self.index.len() * 2;
        let mask = new_len - 1;
        let mut index = vec![EMPTY; new_len];
        for (id, e) in self.entries.iter().enumerate() {
            let mut slot = (e.fp as usize) & mask;
            while index[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            index[slot] = id as u32;
        }
        self.index = index;
    }
}

/// Packs a (shard, entry-index) pair into the engines' 64-bit entry
/// reference. The serial engine always uses shard 0.
pub(crate) fn entry_ref(shard: usize, index: u32) -> u64 {
    debug_assert!(shard < N_SHARDS);
    ((shard as u64) << 32) | u64::from(index)
}

fn split_ref(r: u64) -> (usize, u32) {
    ((r >> 32) as usize, r as u32)
}

/// Reconstructs the label path from the root to entry `r` by walking parent
/// links through `store_of(shard)`; `extra` appends a final (step) label.
pub(crate) fn path_through<'a, L: Copy + 'a>(
    mut r: u64,
    extra: Option<L>,
    store_of: impl Fn(usize) -> &'a VisitedStore<L>,
) -> Vec<L> {
    let mut path: Vec<L> = Vec::new();
    while r != NO_PARENT {
        let (shard, index) = split_ref(r);
        let (parent, label) = store_of(shard).parent_of(index);
        if let Some(l) = label {
            path.push(l);
        }
        r = parent;
    }
    path.reverse();
    path.extend(extra);
    path
}

/// The lock-striped parallel wrapper: [`N_SHARDS`] independent stores,
/// selected by the top fingerprint bits. `try_lock` misses are counted as
/// shard conflicts, exactly like the old sharded hash map.
pub(crate) struct ShardedVisitedStore<L> {
    shards: Vec<Mutex<VisitedStore<L>>>,
    conflicts: AtomicU64,
}

impl<L: Copy> ShardedVisitedStore<L> {
    pub fn new() -> Self {
        ShardedVisitedStore {
            shards: (0..N_SHARDS).map(|_| Mutex::new(VisitedStore::new())).collect(),
            conflicts: AtomicU64::new(0),
        }
    }

    fn shard_of(fp: u64) -> usize {
        (fp >> 56) as usize & (N_SHARDS - 1)
    }

    fn lock_counting(&self, shard: usize) -> parking_lot::MutexGuard<'_, VisitedStore<L>> {
        let m = &self.shards[shard];
        match m.try_lock() {
            Some(g) => g,
            None => {
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                m.lock()
            }
        }
    }

    /// As [`VisitedStore::probe`], returning a global entry reference.
    pub fn probe(
        &self,
        fp: u64,
        bytes: &[u8],
        remaining: u32,
        sleep: u32,
        parent: u64,
        label: Option<L>,
    ) -> (ProbeOutcome, u64, u32, u32) {
        let shard = Self::shard_of(fp);
        let p = self.lock_counting(shard).probe(fp, bytes, remaining, sleep, parent, label);
        (p.outcome, entry_ref(shard, p.index), p.remaining, p.sleep)
    }

    /// Marks the referenced entry expanded; true iff first expansion.
    pub fn mark_expanded(&self, r: u64) -> bool {
        let (shard, index) = split_ref(r);
        self.lock_counting(shard).mark_expanded(index)
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|m| m.lock().len()).sum()
    }

    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Total bytes interned across shards.
    pub fn arena_bytes(&self) -> usize {
        self.shards.iter().map(|m| m.lock().arena_bytes()).sum()
    }

    /// Summed codec counters across shards.
    pub fn stats(&self) -> StoreStats {
        self.shards.iter().map(|m| m.lock().stats()).fold(StoreStats::default(), |a, s| {
            StoreStats {
                confirms: a.confirms + s.confirms,
                collisions: a.collisions + s.collisions,
            }
        })
    }

    /// Reconstructs a violation path (single-threaded post-processing: locks
    /// shards one hop at a time).
    pub fn path_to(&self, mut r: u64, extra: Option<L>) -> Vec<L> {
        let mut path: Vec<L> = Vec::new();
        while r != NO_PARENT {
            let (shard, index) = split_ref(r);
            let (parent, label) = self.shards[shard].lock().parent_of(index);
            if let Some(l) = label {
                path.push(l);
            }
            r = parent;
        }
        path.reverse();
        path.extend(extra);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinefd_sim::codec::hash64;

    #[test]
    fn fresh_then_pruned_then_requeued_on_deeper_arrival() {
        let mut store: VisitedStore<u8> = VisitedStore::new();
        let bytes = b"state-a";
        let fp = hash64(bytes);
        let p = store.probe(fp, bytes, 5, 0, NO_PARENT, None);
        assert_eq!(p.outcome, ProbeOutcome::Fresh);
        assert_eq!(store.len(), 1);
        // Same depth or shallower: pruned; store remembers the max.
        assert_eq!(store.probe(fp, bytes, 5, 0, NO_PARENT, None).outcome, ProbeOutcome::Pruned);
        assert_eq!(store.probe(fp, bytes, 3, 0, NO_PARENT, None).outcome, ProbeOutcome::Pruned);
        // Deeper: requeue with the upgraded budget.
        let p = store.probe(fp, bytes, 9, 0, NO_PARENT, None);
        assert_eq!(p.outcome, ProbeOutcome::Requeue);
        assert_eq!(p.remaining, 9);
        assert_eq!(store.len(), 1, "no duplicate interning");
        assert!(store.stats().confirms >= 3);
    }

    #[test]
    fn sleep_masks_converge_by_intersection() {
        let mut store: VisitedStore<u8> = VisitedStore::new();
        let bytes = b"state-b";
        let fp = hash64(bytes);
        store.probe(fp, bytes, 4, 0b1100, NO_PARENT, None);
        // Same depth, overlapping mask: shrinks to the intersection.
        let p = store.probe(fp, bytes, 4, 0b0110, NO_PARENT, None);
        assert_eq!(p.outcome, ProbeOutcome::Requeue);
        assert_eq!(p.sleep, 0b0100);
        // Arriving with a superset mask adds nothing.
        let p = store.probe(fp, bytes, 4, 0b1110, NO_PARENT, None);
        assert_eq!(p.outcome, ProbeOutcome::Pruned);
        assert_eq!(p.sleep, 0b0100);
    }

    #[test]
    fn fingerprint_collisions_are_resolved_exactly() {
        let mut store: VisitedStore<u8> = VisitedStore::new();
        // Force a collision by probing two different byte strings under the
        // same fingerprint (the store trusts the caller's fp).
        let fp = 0x42;
        assert_eq!(store.probe(fp, b"first", 3, 0, NO_PARENT, None).outcome, ProbeOutcome::Fresh);
        assert_eq!(store.probe(fp, b"second", 3, 0, NO_PARENT, None).outcome, ProbeOutcome::Fresh);
        assert_eq!(store.len(), 2, "colliding states must both be interned");
        assert_eq!(store.stats().collisions, 1);
        // Each still resolves to its own entry.
        assert_eq!(store.probe(fp, b"first", 3, 0, NO_PARENT, None).outcome, ProbeOutcome::Pruned);
        assert_eq!(store.probe(fp, b"second", 2, 0, NO_PARENT, None).outcome, ProbeOutcome::Pruned);
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut store: VisitedStore<u8> = VisitedStore::new();
        let n = 5_000u64; // forces several grow() rehashes past the 1024 seed
        for i in 0..n {
            let bytes = i.to_le_bytes();
            let p = store.probe(hash64(&bytes), &bytes, 1, 0, NO_PARENT, None);
            assert_eq!(p.outcome, ProbeOutcome::Fresh);
        }
        assert_eq!(store.len(), n as usize);
        assert_eq!(store.arena_bytes(), n as usize * 8, "one 8-byte encoding per entry");
        for i in 0..n {
            let bytes = i.to_le_bytes();
            let p = store.probe(hash64(&bytes), &bytes, 1, 0, NO_PARENT, None);
            assert_eq!(p.outcome, ProbeOutcome::Pruned, "entry {i} lost in growth");
        }
    }

    #[test]
    fn parent_links_reconstruct_paths() {
        let mut store: VisitedStore<char> = VisitedStore::new();
        let root = store.probe(hash64(b"r"), b"r", 9, 0, NO_PARENT, None);
        let a = store.probe(hash64(b"a"), b"a", 8, 0, entry_ref(0, root.index), Some('a'));
        let b = store.probe(hash64(b"b"), b"b", 7, 0, entry_ref(0, a.index), Some('b'));
        let path = path_through(entry_ref(0, b.index), Some('c'), |_| &store);
        assert_eq!(path, vec!['a', 'b', 'c']);
        let root_path = path_through(entry_ref(0, root.index), None, |_| &store);
        assert!(root_path.is_empty());
    }

    #[test]
    fn sharded_store_routes_and_counts() {
        let store: ShardedVisitedStore<u8> = ShardedVisitedStore::new();
        for i in 0..500u64 {
            let bytes = i.to_le_bytes();
            let (o, _, _, _) = store.probe(hash64(&bytes), &bytes, 2, 0, NO_PARENT, None);
            assert_eq!(o, ProbeOutcome::Fresh);
        }
        assert_eq!(store.len(), 500);
        let (o, r, _, _) =
            store.probe(hash64(&0u64.to_le_bytes()), &0u64.to_le_bytes(), 2, 0, NO_PARENT, None);
        assert_eq!(o, ProbeOutcome::Pruned);
        assert!(store.mark_expanded(r));
        assert!(!store.mark_expanded(r), "second expansion is not first");
        assert!(store.stats().confirms >= 1);
    }
}
