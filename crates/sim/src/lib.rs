//! # `dinefd-sim` — asynchronous message-passing system simulator
//!
//! This crate is the *system substrate* for the `dinefd` reproduction of
//! "The Weakest Failure Detector for Wait-Free Dining under Eventual Weak
//! Exclusion" (Sastry, Pike, Welch; SPAA'09, corrigendum SPAA'10).
//!
//! The paper's technical framework (its Section 4) posits:
//!
//! * a finite set of processes `Π` executing **atomic steps** — in each step a
//!   process receives messages, makes a state transition, and sends messages;
//! * **reliable, non-FIFO channels**: every message sent to a correct process
//!   is eventually received; messages are neither lost, duplicated, nor
//!   corrupted; delivery delay is unbounded;
//! * **crash faults**: a faulty process ceases execution without warning and
//!   never recovers; correct processes take infinitely many steps;
//! * a **discrete global clock** `T` (ticks ∈ ℕ) that is a conceptual device
//!   inaccessible to the processes themselves.
//!
//! The simulator implements exactly these axioms as a deterministic
//! discrete-event machine:
//!
//! * [`world::World`] owns a set of [`node::Node`]s and an event queue keyed
//!   by virtual [`time::Time`] (the paper's clock `T`);
//! * sends are assigned delivery delays by a pluggable [`net::DelayModel`]
//!   (uniform, heavy-tailed, partially synchronous with a global
//!   stabilization time, or a scripted adversary) — varying delays make the
//!   channels non-FIFO while event-queue delivery keeps them reliable;
//! * [`fault::CrashPlan`] injects crash faults at chosen instants; events of
//!   a crashed process are discarded, so it "ceases execution without
//!   warning";
//! * every run records a [`trace::Trace`] of sends, deliveries, crashes and
//!   application-level observations, over which the temporal property
//!   checkers in [`props`] (and in the `dinefd-fd` / `dinefd-dining` crates)
//!   evaluate the paper's specifications.
//!
//! Determinism: all randomness flows from a single [`rng::SplitMix64`] seed,
//! so every run is exactly reproducible — a necessity for the experiment
//! tables in `EXPERIMENTS.md`.
//!
//! Observability: every world carries a [`metrics::SimMetrics`] set
//! (counters, queue-depth gauge, per-delay histogram) updated inline on the
//! event loop; [`metrics::Profiler`] splits experiment wall-clock into
//! phases. Both feed the machine-readable `BENCH_*.json` perf reports.
//!
//! Streaming: a [`world::ObsSink`] attached via [`world::World::new_with_sink`]
//! receives every observation as it is routed, so consumers can fold run
//! output online instead of materializing the full trace; combined with
//! [`world::WorldConfig::observation_events_off`] the run's resident
//! footprint no longer grows with its length. Optional *envelope batching*
//! ([`world::WorldConfig::batch_envelopes`], off by default) coalesces all
//! messages one step sends to the same destination into a single wire
//! envelope with a single delay draw, FIFO-preserved within the envelope;
//! occupancy lands in [`metrics::SimMetrics::envelope_occupancy`].
//!
//! Scenarios: [`scenario_dsl::Scenario`] is a serializable description of
//! one adversarial setup — delay model, crash schedule, seeded mutation,
//! fuzz budgets — shared verbatim by the simulator, the bounded explorer,
//! and the `dinefd-fuzz` schedule fuzzer.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod props;
pub mod scenario_dsl;
pub mod shard;
pub mod stats;
pub mod trace;
pub mod wheel;
pub mod world;

// The runtime-neutral layer (process abstraction, virtual time, RNG, clock)
// lives in `dinefd-runtime`; re-export its modules under the historical
// paths so `dinefd_sim::id::ProcessId` etc. keep working.
pub use dinefd_runtime::{clock, id, node, rng, time};

pub use dinefd_runtime::{
    Clock, ManualClock, MonotonicClock, ObsRecord, Runtime, Wire, WireError, WireReader, WireWriter,
};
pub use event::QueueBackend;
pub use fault::CrashPlan;
pub use id::ProcessId;
pub use metrics::{
    Counter, Gauge, Histogram, MetricMap, Profiler, RunProfile, SimMetrics, WorkerStats,
};
pub use net::{Adversary, DelayModel};
pub use node::{Context, Node, TimerId};
pub use props::{stabilization_time, BoolTimeline};
pub use rng::SplitMix64;
pub use scenario_dsl::{Scenario as ScenarioDoc, ScenarioError};
pub use shard::{ShardBuildError, ShardedWorld};
pub use stats::Summary;
pub use time::Time;
pub use trace::{Trace, TraceEvent};
pub use world::{ObsSink, World, WorldConfig};
