//! Event-driven hosts that run the witness/subject machines over black-box
//! dining instances inside the simulator.
//!
//! For every ordered monitoring pair `(p, q)` the reduction instantiates two
//! dining instances `DX_0`, `DX_1`, each a 2-diner conflict graph between
//! `p`'s witness thread `w_i` and `q`'s subject thread `s_i`. A single
//! physical process may simultaneously host many witness components (one per
//! process it watches) and many subject components (one per process watching
//! it); a [`ReductionNode`] bundles them and routes the tagged messages.

use std::rc::Rc;

use dinefd_dining::{DinerPhase, DiningIo, DiningMsg, DiningParticipant};
use dinefd_fd::FdQuery;
use dinefd_sim::{Context, Node, ProcessId, Time, TimerId};

use crate::machines::{SubjectAction, SubjectCmd, SubjectMachine, WitnessCmd, WitnessMachine};

/// Which side of a monitoring pair a dining endpoint belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The watcher's side (`p.w_i`).
    Witness,
    /// The monitored side (`q.s_i`).
    Subject,
}

/// Messages of the reduction layer, tagged with their monitoring pair.
#[derive(Clone, Debug)]
pub enum RedMsg {
    /// Traffic of dining instance `DX_instance` of pair `(watcher, subject)`.
    Dx {
        /// The pair's watcher.
        watcher: ProcessId,
        /// The pair's subject.
        subject: ProcessId,
        /// 0 or 1.
        instance: u8,
        /// The black-box dining message.
        inner: DiningMsg,
    },
    /// A subject's ping (Alg. 2, action `S_p`).
    Ping {
        /// The pair's watcher (the destination).
        watcher: ProcessId,
        /// The pair's subject (the origin).
        subject: ProcessId,
        /// Which instance's subject thread pinged.
        instance: u8,
        /// Hardening sequence number.
        seq: u64,
    },
    /// A witness's ack (Alg. 1, action `W_p`).
    Ack {
        /// The pair's watcher (the origin).
        watcher: ProcessId,
        /// The pair's subject (the destination).
        subject: ProcessId,
        /// Which instance is being acked.
        instance: u8,
        /// Echoed sequence number.
        seq: u64,
    },
}

/// Observations emitted by reduction nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedObs {
    /// The extracted detector output of this (watcher) node changed.
    Suspicion {
        /// The monitored process.
        subject: ProcessId,
        /// New output.
        suspected: bool,
    },
    /// A witness/subject thread changed dining phase (Fig. 1 material).
    DxPhase {
        /// The pair's watcher.
        watcher: ProcessId,
        /// The pair's subject.
        subject: ProcessId,
        /// Which side of the pair this thread is.
        role: Role,
        /// 0 or 1.
        instance: u8,
        /// The new phase.
        phase: DinerPhase,
    },
}

/// Identity of one dining endpoint handed to a [`DiningFactory`].
#[derive(Clone, Copy, Debug)]
pub struct DxEndpoint {
    /// The process hosting this endpoint.
    pub me: ProcessId,
    /// The instance peer (the other endpoint's process).
    pub peer: ProcessId,
    /// The pair's watcher.
    pub watcher: ProcessId,
    /// The pair's subject.
    pub subject: ProcessId,
    /// 0 or 1.
    pub instance: u8,
}

/// Builds the local participant of one dining instance — this closure *is*
/// the black box the reduction quantifies over.
pub type DiningFactory<'a> = dyn Fn(DxEndpoint) -> Box<dyn DiningParticipant> + 'a;

/// Effect collector shared by the components of one node invocation.
#[derive(Debug, Default)]
pub struct Out {
    /// Outgoing reduction messages.
    pub sends: Vec<(ProcessId, RedMsg)>,
    /// Observations (suspicion changes, thread phases).
    pub obs: Vec<RedObs>,
}

/// Maximum machine actions fired per pump. Grant-immediately black boxes can
/// keep a witness cycling hungry→eating→exit endlessly; bounding the pump
/// turns that cycle into one action per atomic step, exactly as the paper's
/// interleaving semantics intend.
const PUMP_BUDGET: usize = 4;

/// Emits the observation chain implied by a phase jump (a participant can
/// cross several phases inside one invocation).
fn emit_phase_chain(
    out: &mut Out,
    watcher: ProcessId,
    subject: ProcessId,
    role: Role,
    instance: u8,
    from: DinerPhase,
    to: DinerPhase,
) {
    if from == to {
        return;
    }
    let cycle = [DinerPhase::Thinking, DinerPhase::Hungry, DinerPhase::Eating, DinerPhase::Exiting];
    let pos = |ph: DinerPhase| cycle.iter().position(|&c| c == ph).expect("phase");
    let (mut i, target) = (pos(from), pos(to));
    while i != target {
        i = (i + 1) % cycle.len();
        out.obs.push(RedObs::DxPhase { watcher, subject, role, instance, phase: cycle[i] });
    }
}

/// The watcher-side component of one monitoring pair.
pub struct WitnessComponent {
    watcher: ProcessId,
    subject: ProcessId,
    machine: WitnessMachine,
    dx: [Box<dyn DiningParticipant>; 2],
    last_phase: [DinerPhase; 2],
    last_suspect: bool,
}

impl std::fmt::Debug for WitnessComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WitnessComponent")
            .field("subject", &self.subject)
            .field("machine", &self.machine)
            .finish()
    }
}

impl WitnessComponent {
    fn new(watcher: ProcessId, subject: ProcessId, factory: &DiningFactory<'_>) -> Self {
        let mk = |instance: u8| {
            factory(DxEndpoint { me: watcher, peer: subject, watcher, subject, instance })
        };
        WitnessComponent {
            watcher,
            subject,
            machine: WitnessMachine::new(),
            dx: [mk(0), mk(1)],
            last_phase: [DinerPhase::Thinking; 2],
            last_suspect: true,
        }
    }

    /// Current extracted output for this pair.
    pub fn suspects(&self) -> bool {
        self.machine.suspects()
    }

    fn invoke_dx(
        &mut self,
        i: usize,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
        f: impl FnOnce(&mut dyn DiningParticipant, &mut DiningIo<'_>),
    ) {
        let mut io = DiningIo::new(self.watcher, now, fd);
        f(&mut *self.dx[i], &mut io);
        let (watcher, subject) = (self.watcher, self.subject);
        for (to, msg) in io.finish().sends {
            debug_assert_eq!(to, subject);
            out.sends.push((to, RedMsg::Dx { watcher, subject, instance: i as u8, inner: msg }));
        }
        let ph = self.dx[i].phase();
        emit_phase_chain(out, watcher, subject, Role::Witness, i as u8, self.last_phase[i], ph);
        self.last_phase[i] = ph;
    }

    fn note_suspicion(&mut self, out: &mut Out) {
        let s = self.machine.suspects();
        if s != self.last_suspect {
            self.last_suspect = s;
            out.obs.push(RedObs::Suspicion { subject: self.subject, suspected: s });
        }
    }

    /// Fires enabled witness actions (bounded) and applies their commands.
    fn pump(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        for _ in 0..PUMP_BUDGET {
            let phases = [self.dx[0].phase(), self.dx[1].phase()];
            let Some(&action) = self.machine.enabled(phases).first() else {
                break;
            };
            match self.machine.fire(action, phases) {
                WitnessCmd::BecomeHungry(i) => {
                    self.invoke_dx(i, now, fd, out, |p, io| p.hungry(io));
                }
                WitnessCmd::Exit(i) => {
                    self.invoke_dx(i, now, fd, out, |p, io| p.exit_eating(io));
                }
                WitnessCmd::SendAck(..) => unreachable!("acks are message-triggered"),
            }
            self.note_suspicion(out);
        }
    }

    fn on_dx_message(
        &mut self,
        instance: u8,
        from: ProcessId,
        inner: DiningMsg,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
    ) {
        self.invoke_dx(instance as usize, now, fd, out, |p, io| p.on_message(io, from, inner));
        self.pump(now, fd, out);
    }

    fn on_ping(&mut self, instance: u8, seq: u64, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        let WitnessCmd::SendAck(i, seq) = self.machine.on_ping(instance as usize, seq) else {
            unreachable!()
        };
        out.sends.push((
            self.subject,
            RedMsg::Ack { watcher: self.watcher, subject: self.subject, instance: i as u8, seq },
        ));
        self.pump(now, fd, out);
    }

    fn on_tick(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        for i in 0..2 {
            self.invoke_dx(i, now, fd, out, |p, io| p.on_tick(io));
        }
        self.pump(now, fd, out);
    }
}

/// The monitored-side component of one monitoring pair.
pub struct SubjectComponent {
    watcher: ProcessId,
    subject: ProcessId,
    machine: SubjectMachine,
    dx: [Box<dyn DiningParticipant>; 2],
    last_phase: [DinerPhase; 2],
}

impl std::fmt::Debug for SubjectComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubjectComponent")
            .field("watcher", &self.watcher)
            .field("machine", &self.machine)
            .finish()
    }
}

impl SubjectComponent {
    fn new(
        watcher: ProcessId,
        subject: ProcessId,
        strict_seq: bool,
        factory: &DiningFactory<'_>,
    ) -> Self {
        let mk = |instance: u8| {
            factory(DxEndpoint { me: subject, peer: watcher, watcher, subject, instance })
        };
        SubjectComponent {
            watcher,
            subject,
            machine: SubjectMachine::new(strict_seq),
            dx: [mk(0), mk(1)],
            last_phase: [DinerPhase::Thinking; 2],
        }
    }

    fn invoke_dx(
        &mut self,
        i: usize,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
        f: impl FnOnce(&mut dyn DiningParticipant, &mut DiningIo<'_>),
    ) {
        let mut io = DiningIo::new(self.subject, now, fd);
        f(&mut *self.dx[i], &mut io);
        let (watcher, subject) = (self.watcher, self.subject);
        for (to, msg) in io.finish().sends {
            debug_assert_eq!(to, watcher);
            out.sends.push((to, RedMsg::Dx { watcher, subject, instance: i as u8, inner: msg }));
        }
        let ph = self.dx[i].phase();
        emit_phase_chain(out, watcher, subject, Role::Subject, i as u8, self.last_phase[i], ph);
        self.last_phase[i] = ph;
    }

    fn pump(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        for _ in 0..PUMP_BUDGET {
            let phases = [self.dx[0].phase(), self.dx[1].phase()];
            let enabled = self.machine.enabled(phases);
            // Prefer pings over hunger so a lone eater's ping is never
            // starved by the other thread's bookkeeping.
            let Some(&action) = enabled
                .iter()
                .find(|a| matches!(a, SubjectAction::Ping(_)))
                .or_else(|| enabled.first())
            else {
                break;
            };
            match self.machine.fire(action, phases) {
                SubjectCmd::BecomeHungry(i) => {
                    self.invoke_dx(i, now, fd, out, |p, io| p.hungry(io));
                }
                SubjectCmd::Exit(i) => {
                    self.invoke_dx(i, now, fd, out, |p, io| p.exit_eating(io));
                }
                SubjectCmd::SendPing(i, seq) => {
                    out.sends.push((
                        self.watcher,
                        RedMsg::Ping {
                            watcher: self.watcher,
                            subject: self.subject,
                            instance: i as u8,
                            seq,
                        },
                    ));
                }
            }
        }
    }

    fn on_dx_message(
        &mut self,
        instance: u8,
        from: ProcessId,
        inner: DiningMsg,
        now: Time,
        fd: &dyn FdQuery,
        out: &mut Out,
    ) {
        self.invoke_dx(instance as usize, now, fd, out, |p, io| p.on_message(io, from, inner));
        self.pump(now, fd, out);
    }

    fn on_ack(&mut self, instance: u8, seq: u64, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        self.machine.on_ack(instance as usize, seq);
        self.pump(now, fd, out);
    }

    fn on_tick(&mut self, now: Time, fd: &dyn FdQuery, out: &mut Out) {
        for i in 0..2 {
            self.invoke_dx(i, now, fd, out, |p, io| p.on_tick(io));
        }
        self.pump(now, fd, out);
    }
}

const TICK: TimerId = TimerId(0);

/// One physical process of the reduction: all of its witness and subject
/// components plus message routing.
pub struct ReductionNode {
    me: ProcessId,
    witnesses: Vec<WitnessComponent>,
    subjects: Vec<SubjectComponent>,
    fd: Rc<dyn FdQuery>,
    tick_every: u64,
}

impl std::fmt::Debug for ReductionNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReductionNode")
            .field("me", &self.me)
            .field("witnesses", &self.witnesses.len())
            .field("subjects", &self.subjects.len())
            .finish()
    }
}

impl ReductionNode {
    /// Builds the node for `me` given the full list of ordered monitoring
    /// pairs, the black-box dining factory, and the oracle handle consumed by
    /// the dining implementations (NOT by the reduction itself — the
    /// reduction is oracle-free, that is the whole point).
    pub fn new(
        me: ProcessId,
        pairs: &[(ProcessId, ProcessId)],
        factory: &DiningFactory<'_>,
        fd: Rc<dyn FdQuery>,
        strict_seq: bool,
    ) -> Self {
        let witnesses = pairs
            .iter()
            .filter(|&&(w, s)| w == me && s != me)
            .map(|&(w, s)| WitnessComponent::new(w, s, factory))
            .collect();
        let subjects = pairs
            .iter()
            .filter(|&&(w, s)| s == me && w != me)
            .map(|&(w, s)| SubjectComponent::new(w, s, strict_seq, factory))
            .collect();
        ReductionNode { me, witnesses, subjects, fd, tick_every: 4 }
    }

    /// Overrides the self-tick period (scheduling-granularity ablation).
    pub fn set_tick_every(&mut self, ticks: u64) {
        self.tick_every = ticks.max(1);
    }

    /// The extracted detector output of this node: does `me` suspect `q`?
    /// `true` for pairs this node does not watch (matching the reduction's
    /// pessimistic initialization).
    pub fn suspects(&self, q: ProcessId) -> bool {
        self.witnesses.iter().find(|w| w.subject == q).is_none_or(|w| w.suspects())
    }

    fn witness_mut(&mut self, subject: ProcessId) -> &mut WitnessComponent {
        self.witnesses
            .iter_mut()
            .find(|w| w.subject == subject)
            .expect("message for unknown witness pair")
    }

    fn subject_mut(&mut self, watcher: ProcessId) -> &mut SubjectComponent {
        self.subjects
            .iter_mut()
            .find(|s| s.watcher == watcher)
            .expect("message for unknown subject pair")
    }

    /// Context-free start step (for composition with other layers). The
    /// caller is responsible for scheduling the recurring tick.
    pub fn handle_start(&mut self, now: Time) -> Out {
        let mut out = Out::default();
        let fd = Rc::clone(&self.fd);
        for w in &mut self.witnesses {
            w.pump(now, &*fd, &mut out);
        }
        for s in &mut self.subjects {
            s.pump(now, &*fd, &mut out);
        }
        out
    }

    /// Context-free message step.
    pub fn handle_message(&mut self, from: ProcessId, msg: RedMsg, now: Time) -> Out {
        let mut out = Out::default();
        let fd = Rc::clone(&self.fd);
        match msg {
            RedMsg::Dx { watcher, subject, instance, inner } => {
                if watcher == self.me {
                    self.witness_mut(subject)
                        .on_dx_message(instance, from, inner, now, &*fd, &mut out);
                } else {
                    debug_assert_eq!(subject, self.me);
                    self.subject_mut(watcher)
                        .on_dx_message(instance, from, inner, now, &*fd, &mut out);
                }
            }
            RedMsg::Ping { watcher, subject, instance, seq } => {
                debug_assert_eq!(watcher, self.me);
                self.witness_mut(subject).on_ping(instance, seq, now, &*fd, &mut out);
            }
            RedMsg::Ack { watcher, subject, instance, seq } => {
                debug_assert_eq!(subject, self.me);
                self.subject_mut(watcher).on_ack(instance, seq, now, &*fd, &mut out);
            }
        }
        out
    }

    /// Context-free tick step.
    pub fn handle_tick(&mut self, now: Time) -> Out {
        let mut out = Out::default();
        let fd = Rc::clone(&self.fd);
        for w in &mut self.witnesses {
            w.on_tick(now, &*fd, &mut out);
        }
        for s in &mut self.subjects {
            s.on_tick(now, &*fd, &mut out);
        }
        out
    }

    fn flush(out: Out, ctx: &mut Context<'_, RedMsg, RedObs>) {
        for (to, msg) in out.sends {
            ctx.send(to, msg);
        }
        for obs in out.obs {
            ctx.observe(obs);
        }
    }
}

impl Node for ReductionNode {
    type Msg = RedMsg;
    type Obs = RedObs;

    fn on_start(&mut self, ctx: &mut Context<'_, RedMsg, RedObs>) {
        let out = self.handle_start(ctx.now());
        Self::flush(out, ctx);
        ctx.set_timer(self.tick_every, TICK);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, RedMsg, RedObs>, from: ProcessId, msg: RedMsg) {
        let out = self.handle_message(from, msg, ctx.now());
        Self::flush(out, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, RedMsg, RedObs>, timer: TimerId) {
        debug_assert_eq!(timer, TICK);
        let out = self.handle_tick(ctx.now());
        Self::flush(out, ctx);
        ctx.set_timer(self.tick_every, TICK);
    }
}
