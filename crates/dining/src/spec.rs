//! Trace-level checkers for the dining specifications: eventual/perpetual
//! weak exclusion, wait-freedom, and eventual k-fairness.

use dinefd_sim::{CrashPlan, ProcessId, Time};

use crate::graph::ConflictGraph;
use crate::state::DinerPhase;

/// Two live neighbors ate simultaneously during `[from, to)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExclusionViolation {
    /// One diner (lower id).
    pub a: ProcessId,
    /// The other diner.
    pub b: ProcessId,
    /// Overlap start.
    pub from: Time,
    /// Overlap end.
    pub to: Time,
}

/// A dining-spec violation other than an exclusion overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiningViolation {
    /// A correct diner was hungry from `since` and never ate by the end of
    /// the recording (wait-freedom violation candidate).
    Starvation {
        /// The starving diner.
        pid: ProcessId,
        /// When its unserved hunger began.
        since: Time,
    },
    /// A diner made an illegal phase transition.
    IllegalTransition {
        /// The offending diner.
        pid: ProcessId,
        /// When.
        at: Time,
        /// Phase before.
        from: DinerPhase,
        /// Phase after.
        to: DinerPhase,
    },
}

/// The recorded phase history of every diner in one dining instance.
#[derive(Clone, Debug)]
pub struct DiningHistory {
    n: usize,
    horizon: Time,
    /// Per diner: chronological phase changes. Every diner starts Thinking.
    phases: Vec<Vec<(Time, DinerPhase)>>,
}

impl DiningHistory {
    /// Empty history over `n` diners.
    pub fn new(n: usize) -> Self {
        DiningHistory { n, horizon: Time::ZERO, phases: vec![Vec::new(); n] }
    }

    /// Records a phase change.
    pub fn record(&mut self, at: Time, pid: ProcessId, phase: DinerPhase) {
        debug_assert!(
            self.phases[pid.index()].last().is_none_or(|&(t, _)| t <= at),
            "phase records must be chronological per diner"
        );
        self.phases[pid.index()].push((at, phase));
        if at > self.horizon {
            self.horizon = at;
        }
    }

    /// Extends the recording horizon (the instant the run was stopped).
    pub fn set_horizon(&mut self, t: Time) {
        if t > self.horizon {
            self.horizon = t;
        }
    }

    /// The recording horizon.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// System size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the system is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The phase of `pid` at instant `t` (just after any change at `t`).
    pub fn phase_at(&self, pid: ProcessId, t: Time) -> DinerPhase {
        self.phases[pid.index()]
            .iter()
            .rev()
            .find(|&&(ct, _)| ct <= t)
            .map_or(DinerPhase::Thinking, |&(_, ph)| ph)
    }

    /// Checks that every recorded transition is legal.
    pub fn legal_transitions(&self) -> Result<(), Vec<DiningViolation>> {
        let mut violations = Vec::new();
        for pid in ProcessId::all(self.n) {
            let mut cur = DinerPhase::Thinking;
            for &(at, next) in &self.phases[pid.index()] {
                if !cur.can_transition_to(next) {
                    violations.push(DiningViolation::IllegalTransition {
                        pid,
                        at,
                        from: cur,
                        to: next,
                    });
                }
                cur = next;
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Maximal intervals `[start, end)` during which `pid` was in `phase`,
    /// truncated at its crash time and at the horizon. An interval still
    /// open at truncation ends there.
    pub fn phase_intervals(
        &self,
        pid: ProcessId,
        phase: DinerPhase,
        plan: &CrashPlan,
    ) -> Vec<(Time, Time)> {
        let cutoff = plan.crash_time(pid).unwrap_or(self.horizon).min(self.horizon);
        let mut out = Vec::new();
        let mut open: Option<Time> = None;
        for &(at, ph) in &self.phases[pid.index()] {
            if at > cutoff {
                break;
            }
            match (open, ph == phase) {
                (None, true) => open = Some(at),
                (Some(s), false) => {
                    if s < at {
                        out.push((s, at));
                    }
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(s) = open {
            if s < cutoff {
                out.push((s, cutoff));
            }
        }
        out
    }

    /// Eating sessions of `pid` (crash- and horizon-truncated).
    pub fn eating_sessions(&self, pid: ProcessId, plan: &CrashPlan) -> Vec<(Time, Time)> {
        self.phase_intervals(pid, DinerPhase::Eating, plan)
    }

    /// Number of eating sessions *started* by `pid`.
    pub fn session_count(&self, pid: ProcessId) -> usize {
        self.phases[pid.index()].iter().filter(|&&(_, ph)| ph == DinerPhase::Eating).count()
    }

    /// All instants at which two live neighbors ate simultaneously.
    ///
    /// * Perpetual WX holds iff the result is empty.
    /// * ◇WX (on a finite recording) is quantified by the last violation's
    ///   end: the run behaved exclusively from that instant on.
    pub fn exclusion_violations(
        &self,
        graph: &ConflictGraph,
        plan: &CrashPlan,
    ) -> Vec<ExclusionViolation> {
        let mut out = Vec::new();
        for (a, b) in graph.edges() {
            let ia = self.eating_sessions(a, plan);
            let ib = self.eating_sessions(b, plan);
            // Two-pointer sweep over the sorted session lists.
            let (mut x, mut y) = (0usize, 0usize);
            while x < ia.len() && y < ib.len() {
                let (s, e) = (ia[x].0.max(ib[y].0), ia[x].1.min(ib[y].1));
                if s < e {
                    out.push(ExclusionViolation { a, b, from: s, to: e });
                }
                if ia[x].1 <= ib[y].1 {
                    x += 1;
                } else {
                    y += 1;
                }
            }
        }
        out.sort_by_key(|v| (v.from, v.a, v.b));
        out
    }

    /// The instant from which the recording is exclusion-violation-free
    /// (the measured ◇WX convergence point). [`Time::ZERO`] if no violation
    /// was ever recorded.
    pub fn wx_converged_from(&self, graph: &ConflictGraph, plan: &CrashPlan) -> Time {
        self.exclusion_violations(graph, plan).iter().map(|v| v.to).max().unwrap_or(Time::ZERO)
    }

    /// **Wait-freedom** on a finite run: every correct diner whose hunger
    /// began at or before `horizon - grace` must have eaten. Hungry spells
    /// younger than `grace` are inconclusive and not reported.
    pub fn wait_freedom(&self, plan: &CrashPlan, grace: u64) -> Result<(), Vec<DiningViolation>> {
        let mut violations = Vec::new();
        let deadline = Time(self.horizon.ticks().saturating_sub(grace));
        for pid in ProcessId::all(self.n) {
            if plan.is_faulty(pid) {
                continue;
            }
            // A starving diner's *last* phase record is Hungry (it never
            // transitioned out).
            if let Some(&(at, DinerPhase::Hungry)) = self.phases[pid.index()].last() {
                if at <= deadline {
                    violations.push(DiningViolation::Starvation { pid, since: at });
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// The correct diners left permanently hungry (same finite-run criterion
    /// as [`DiningHistory::wait_freedom`]).
    pub fn starved(&self, plan: &CrashPlan, grace: u64) -> Vec<ProcessId> {
        match self.wait_freedom(plan, grace) {
            Ok(()) => Vec::new(),
            Err(violations) => violations
                .into_iter()
                .filter_map(|v| match v {
                    DiningViolation::Starvation { pid, .. } => Some(pid),
                    _ => None,
                })
                .collect(),
        }
    }

    /// **Failure locality** of the recorded run: the maximum conflict-graph
    /// distance from a starved correct diner to its nearest crashed process
    /// (`None` when nobody starves — locality 0 by the usual convention is
    /// reported as `Some(0)` only if a crash's own *neighbor* starves, so a
    /// fully wait-free run yields `None`). Dijkstra-style algorithms have
    /// unbounded locality (a crash can starve a whole waiting chain); the
    /// paper's intro cites "crash-locality-1 dining" as a ◇P application,
    /// and the ◇P-based algorithm here achieves locality "none".
    pub fn failure_locality(
        &self,
        graph: &ConflictGraph,
        plan: &CrashPlan,
        grace: u64,
    ) -> Option<usize> {
        let starved = self.starved(plan, grace);
        let crashed: Vec<ProcessId> = plan.crashes().iter().map(|&(p, _)| p).collect();
        starved
            .iter()
            .map(|&p| {
                crashed.iter().filter_map(|&c| graph.distance(p, c)).min().unwrap_or(usize::MAX)
            })
            .max()
    }

    /// Maximum overtaking after `after`: over all ordered neighbor pairs
    /// `(a, b)` and all maximal hungry spells of `b` starting at or after
    /// `after`, the number of eating sessions `a` *started* during the
    /// spell. Eventual k-fairness predicts a suffix where this is ≤ k.
    pub fn max_overtaking(&self, graph: &ConflictGraph, plan: &CrashPlan, after: Time) -> usize {
        let mut max = 0;
        for (a, b) in graph.edges() {
            for (x, y) in [(a, b), (b, a)] {
                // x overtakes y: count x's session starts inside y's spells.
                let starts: Vec<Time> =
                    self.eating_sessions(x, plan).iter().map(|&(s, _)| s).collect();
                for &(h0, h1) in &self.phase_intervals(y, DinerPhase::Hungry, plan) {
                    if h0 < after {
                        continue;
                    }
                    let c = starts.iter().filter(|&&t| h0 <= t && t < h1).count();
                    max = max.max(c);
                }
            }
        }
        max
    }

    /// Renders an ASCII Gantt chart of diner phases over `[t0, t1)` with the
    /// given column count — the Fig. 1 style timeline used by experiment E3.
    pub fn ascii_gantt(
        &self,
        pids: &[(&str, ProcessId)],
        t0: Time,
        t1: Time,
        cols: usize,
    ) -> String {
        assert!(t1 > t0 && cols > 0);
        let span = t1 - t0;
        let mut out = String::new();
        for &(label, pid) in pids {
            out.push_str(&format!("{label:>10} |"));
            for c in 0..cols {
                let t = Time(t0.ticks() + span * c as u64 / cols as u64);
                out.push(self.phase_at(pid, t).code());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn simple_history() -> DiningHistory {
        // p0: t 0..5 thinking, hungry at 5, eats 10..20, thinks from 21.
        // p1: hungry at 8, eats 15..30 (overlap 15..20 with p0), thinks.
        let mut h = DiningHistory::new(2);
        h.record(Time(5), p(0), DinerPhase::Hungry);
        h.record(Time(8), p(1), DinerPhase::Hungry);
        h.record(Time(10), p(0), DinerPhase::Eating);
        h.record(Time(15), p(1), DinerPhase::Eating);
        h.record(Time(20), p(0), DinerPhase::Exiting);
        h.record(Time(21), p(0), DinerPhase::Thinking);
        h.record(Time(30), p(1), DinerPhase::Exiting);
        h.record(Time(31), p(1), DinerPhase::Thinking);
        h.set_horizon(Time(100));
        h
    }

    #[test]
    fn phase_at_reads_step_function() {
        let h = simple_history();
        assert_eq!(h.phase_at(p(0), Time(0)), DinerPhase::Thinking);
        assert_eq!(h.phase_at(p(0), Time(5)), DinerPhase::Hungry);
        assert_eq!(h.phase_at(p(0), Time(12)), DinerPhase::Eating);
        assert_eq!(h.phase_at(p(0), Time(50)), DinerPhase::Thinking);
    }

    #[test]
    fn transitions_are_legal() {
        let h = simple_history();
        assert!(h.legal_transitions().is_ok());
        let mut bad = DiningHistory::new(1);
        bad.record(Time(3), p(0), DinerPhase::Eating); // thinking → eating
        let errs = bad.legal_transitions().unwrap_err();
        assert!(matches!(errs[0], DiningViolation::IllegalTransition { .. }));
    }

    #[test]
    fn overlap_detected_on_edge() {
        let h = simple_history();
        let g = ConflictGraph::from_edges(2, &[(0, 1)]);
        let v = h.exclusion_violations(&g, &CrashPlan::none());
        assert_eq!(v, vec![ExclusionViolation { a: p(0), b: p(1), from: Time(15), to: Time(20) }]);
        assert_eq!(h.wx_converged_from(&g, &CrashPlan::none()), Time(20));
    }

    #[test]
    fn no_overlap_without_edge() {
        let h = simple_history();
        let g = ConflictGraph::from_edges(2, &[]);
        assert!(h.exclusion_violations(&g, &CrashPlan::none()).is_empty());
    }

    #[test]
    fn crash_truncates_sessions() {
        // p1 crashes at t=17 while eating: the overlap with p0 is 15..17,
        // and ◇WX-against-live-neighbors ends there.
        let h = simple_history();
        let g = ConflictGraph::from_edges(2, &[(0, 1)]);
        let plan = CrashPlan::one(p(1), Time(17));
        let v = h.exclusion_violations(&g, &plan);
        assert_eq!(v, vec![ExclusionViolation { a: p(0), b: p(1), from: Time(15), to: Time(17) }]);
    }

    #[test]
    fn wait_freedom_flags_stuck_hungry() {
        let mut h = DiningHistory::new(2);
        h.record(Time(5), p(0), DinerPhase::Hungry);
        h.set_horizon(Time(1_000));
        let errs = h.wait_freedom(&CrashPlan::none(), 100).unwrap_err();
        assert_eq!(errs, vec![DiningViolation::Starvation { pid: p(0), since: Time(5) }]);
        // Faulty diners are exempt.
        assert!(h.wait_freedom(&CrashPlan::one(p(0), Time(900)), 100).is_ok());
        // Young hunger is inconclusive.
        let mut h = DiningHistory::new(1);
        h.record(Time(990), p(0), DinerPhase::Hungry);
        h.set_horizon(Time(1_000));
        assert!(h.wait_freedom(&CrashPlan::none(), 100).is_ok());
    }

    #[test]
    fn overtaking_counts_sessions_inside_spell() {
        // p1 hungry 10..100; p0 eats 20..25, 40..45, 60..65 → overtaking 3.
        let mut h = DiningHistory::new(2);
        h.record(Time(10), p(1), DinerPhase::Hungry);
        for (s, e) in [(20u64, 25u64), (40, 45), (60, 65)] {
            h.record(Time(s.saturating_sub(2)), p(0), DinerPhase::Hungry);
            h.record(Time(s), p(0), DinerPhase::Eating);
            h.record(Time(e), p(0), DinerPhase::Exiting);
            h.record(Time(e + 1), p(0), DinerPhase::Thinking);
        }
        h.record(Time(100), p(1), DinerPhase::Eating);
        h.record(Time(110), p(1), DinerPhase::Exiting);
        h.record(Time(111), p(1), DinerPhase::Thinking);
        h.set_horizon(Time(200));
        let g = ConflictGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(h.max_overtaking(&g, &CrashPlan::none(), Time::ZERO), 3);
        // Restricting to a suffix after the spell gives 0.
        assert_eq!(h.max_overtaking(&g, &CrashPlan::none(), Time(50)), 0);
    }

    #[test]
    fn failure_locality_measures_starvation_spread() {
        // Path 0-1-2-3; p0 crashes; p1 and p2 starve: locality = 2.
        let mut h = DiningHistory::new(4);
        h.record(Time(10), p(1), DinerPhase::Hungry);
        h.record(Time(12), p(2), DinerPhase::Hungry);
        h.record(Time(14), p(3), DinerPhase::Hungry);
        h.record(Time(20), p(3), DinerPhase::Eating);
        h.record(Time(25), p(3), DinerPhase::Exiting);
        h.record(Time(26), p(3), DinerPhase::Thinking);
        h.set_horizon(Time(10_000));
        let g = ConflictGraph::path(4);
        let plan = CrashPlan::one(p(0), Time(5));
        assert_eq!(h.starved(&plan, 100), vec![p(1), p(2)]);
        assert_eq!(h.failure_locality(&g, &plan, 100), Some(2));
        // A wait-free run has no locality to speak of.
        let mut h2 = DiningHistory::new(4);
        h2.set_horizon(Time(10_000));
        assert_eq!(h2.failure_locality(&g, &plan, 100), None);
    }

    /// Phase character at column `col` of a rendered gantt row, with a
    /// labeled panic (instead of an index-out-of-bounds) when the row is
    /// malformed or too short.
    fn gantt_cell(row: &str, col: usize) -> char {
        let body = row
            .split('|')
            .nth(1)
            .unwrap_or_else(|| panic!("gantt row has no `|`-delimited body: {row:?}"));
        body.chars()
            .nth(col)
            .unwrap_or_else(|| panic!("gantt row body shorter than column {col}: {row:?}"))
    }

    #[test]
    fn gantt_renders_phases() {
        let h = simple_history();
        let s = h.ascii_gantt(&[("w0", p(0)), ("s0", p(1))], Time(0), Time(40), 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('E'));
        assert!(lines[0].starts_with("        w0 |"));
        // Overlap column: both eating at t=16.
        assert_eq!((gantt_cell(lines[0], 16), gantt_cell(lines[1], 16)), ('E', 'E'));
    }

    #[test]
    fn session_counts() {
        let h = simple_history();
        assert_eq!(h.session_count(p(0)), 1);
        assert_eq!(h.session_count(p(1)), 1);
    }
}
