//! A hierarchical timer wheel — the event queue's scale backend.
//!
//! A simulated run schedules almost everything *near* the current instant:
//! message delays are small (the delay models top out at a few hundred
//! ticks) and node self-ticks are single digits, so the global
//! `BinaryHeap`'s `O(log n)` per operation — with its cache-hostile
//! percolation over a million pending events at `n = 1024` — buys
//! generality the workload never uses. The wheel splits the horizon into
//! two levels:
//!
//! * **near**: a fixed ring of [`NEAR_SLOTS`] one-tick slots covering the
//!   window `[window_start, window_start + NEAR_SLOTS)`, with a bitmap of
//!   occupied slots so finding the next non-empty instant is a couple of
//!   `trailing_zeros` instructions. Push and pop are `O(1)`.
//! * **far**: a `BTreeMap` keyed by exact instant for the rare event beyond
//!   the window (GST-scale delays, late crash plans). When the near window
//!   drains, the wheel jumps straight to the window containing the earliest
//!   far instant and moves every bucket that now fits into the ring.
//!
//! ## Ordering contract
//!
//! [`TimerWheel::pop`] yields items in ascending `(time, insertion order)`
//! — exactly the `(time, seq)` order of the heap-backed
//! [`crate::event::EventQueue`], *provided same-time items are pushed in
//! ascending order of their intended tie-break* (the event queue's `seq` is
//! a monotone push counter, so this holds by construction). Within a slot
//! the wheel appends on push and pops from the front; far buckets preserve
//! append order and whole buckets move into the ring at window roll, so
//! insertion order survives every path. `crates/sim` pins wheel ≡ heap with
//! randomized differential tests.

use std::collections::{BTreeMap, VecDeque};

use crate::time::Time;

/// Size of the near ring in one-tick slots. Covers every delay the stock
/// models draw in the common case (uniform/heavy-tail common range ≤ 16,
/// spikes to 400 occasionally go far). Must be a power of two.
pub const NEAR_SLOTS: usize = 512;

const WORDS: usize = NEAR_SLOTS / 64;

/// A two-level timer wheel holding values of type `V`, popped in ascending
/// `(time, insertion order)`. See the module docs for the ordering contract.
#[derive(Debug)]
pub struct TimerWheel<V> {
    /// One-tick slots; slot `t % NEAR_SLOTS` holds the events of instant
    /// `t` while `t` lies inside the current window.
    slots: Vec<VecDeque<V>>,
    /// Occupancy bitmap over `slots` (bit set ⇔ slot non-empty).
    occupied: [u64; WORDS],
    /// First instant of the near window; always `≡ 0 (mod NEAR_SLOTS)`.
    window_start: u64,
    /// Lower bound on the next pop's instant (the scan cursor). Invariant:
    /// `window_start <= cursor < window_start + NEAR_SLOTS`.
    cursor: u64,
    /// Events beyond the near window, keyed by exact instant; bucket order
    /// is append order.
    far: BTreeMap<u64, Vec<V>>,
    len: usize,
}

impl<V> Default for TimerWheel<V> {
    fn default() -> Self {
        TimerWheel {
            slots: (0..NEAR_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            window_start: 0,
            cursor: 0,
            far: BTreeMap::new(),
            len: 0,
        }
    }
}

impl<V> TimerWheel<V> {
    /// An empty wheel with its window at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// End of the near window, `None` when the window touches the horizon.
    #[inline]
    fn window_end(&self) -> Option<u64> {
        self.window_start.checked_add(NEAR_SLOTS as u64)
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn unmark(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// Schedules `v` at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// If `at` lies before an already-popped instant — the simulation clock
    /// never runs backwards, so such a push is a caller bug the heap would
    /// have masked by re-sorting.
    pub fn push(&mut self, at: Time, v: V) {
        let t = at.ticks();
        assert!(t >= self.cursor, "wheel push at t{t} behind the cursor t{}", self.cursor);
        if self.window_end().is_some_and(|end| t < end) {
            let slot = (t % NEAR_SLOTS as u64) as usize;
            self.slots[slot].push_back(v);
            self.mark(slot);
        } else {
            self.far.entry(t).or_default().push(v);
        }
        self.len += 1;
    }

    /// First occupied slot index at or after `from_slot`, if any.
    fn scan_from(&self, from_slot: usize) -> Option<usize> {
        let (mut word, bit) = (from_slot / 64, from_slot % 64);
        let mut bits = self.occupied[word] & (!0u64 << bit);
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == WORDS {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Rolls the window forward to the one containing the earliest far
    /// instant and moves every bucket that now fits into the ring. Requires
    /// the ring to be empty and `far` non-empty.
    fn roll(&mut self) {
        debug_assert!(self.scan_from(0).is_none(), "roll with a non-empty ring");
        let &earliest = self.far.keys().next().expect("roll with an empty far level");
        self.window_start = earliest - (earliest % NEAR_SLOTS as u64);
        self.cursor = earliest;
        match self.window_end() {
            Some(end) => {
                let beyond = self.far.split_off(&end);
                let within = std::mem::replace(&mut self.far, beyond);
                for (t, bucket) in within {
                    let slot = (t % NEAR_SLOTS as u64) as usize;
                    self.slots[slot].extend(bucket);
                    self.mark(slot);
                }
            }
            None => {
                // The window touches the horizon: everything left fits.
                for (t, bucket) in std::mem::take(&mut self.far) {
                    let slot = (t % NEAR_SLOTS as u64) as usize;
                    self.slots[slot].extend(bucket);
                    self.mark(slot);
                }
            }
        }
    }

    /// Advances the cursor to the next non-empty instant. Requires
    /// `len > 0`. Returns the slot holding it.
    fn seek(&mut self) -> usize {
        debug_assert!(self.len > 0);
        // The cursor may lag arbitrarily (pops drain slots lazily), so scan
        // the ring from it; if the rest of the window is empty, the
        // remaining events are all far.
        let from = (self.cursor % NEAR_SLOTS as u64) as usize;
        // A slot below `from` can only belong to a *later* window lap; the
        // ring never holds two laps at once because `push` bounds near
        // times to the current window. So scanning upward is complete.
        if let Some(slot) = self.scan_from(from) {
            self.cursor = self.window_start + slot as u64;
            return slot;
        }
        self.roll();
        (self.cursor % NEAR_SLOTS as u64) as usize
    }

    /// Instant of the earliest pending item.
    ///
    /// Non-mutating by design: a peek commits to nothing, so a caller
    /// coordinating several wheels (e.g. [`crate::shard::ShardedWorld`])
    /// may peek a wheel arbitrarily far ahead of the instants it will
    /// still push into. Only [`TimerWheel::pop`] advances the cursor and
    /// rolls windows. The min is cheap without mutation because far keys
    /// are always `≥` the near window's end: if the ring is non-empty its
    /// first occupied slot is the min, otherwise the first far key is.
    pub fn peek_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let from = (self.cursor % NEAR_SLOTS as u64) as usize;
        if let Some(slot) = self.scan_from(from) {
            return Some(Time(self.window_start + slot as u64));
        }
        self.far.keys().next().map(|&t| Time(t))
    }

    /// Removes and returns the earliest item with its instant.
    pub fn pop(&mut self) -> Option<(Time, V)> {
        if self.len == 0 {
            return None;
        }
        let slot = self.seek();
        let v = self.slots[slot].pop_front().expect("seek found an occupied slot");
        if self.slots[slot].is_empty() {
            self.unmark(slot);
        }
        self.len -= 1;
        Some((Time(self.cursor), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.push(Time(30), 0);
        w.push(Time(10), 1);
        w.push(Time(100_000), 2); // far
        w.push(Time(20), 3);
        let order: Vec<(u64, u32)> =
            std::iter::from_fn(|| w.pop()).map(|(t, v)| (t.ticks(), v)).collect();
        assert_eq!(order, vec![(10, 1), (20, 3), (30, 0), (100_000, 2)]);
        assert!(w.is_empty());
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        for i in 0..100 {
            w.push(Time(7), i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|(_, v)| v).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_buckets_preserve_insertion_order_through_a_roll() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let far_t = Time(10 * NEAR_SLOTS as u64 + 3);
        for i in 0..10 {
            w.push(far_t, i);
        }
        w.push(Time(1), 99);
        assert_eq!(w.pop(), Some((Time(1), 99)));
        let popped: Vec<u32> = std::iter::from_fn(|| w.pop()).map(|(_, v)| v).collect();
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_at_the_cursor_instant() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.push(Time(5), 0);
        assert_eq!(w.pop(), Some((Time(5), 0)));
        // Same-instant push after a pop is legal and pops next.
        w.push(Time(5), 1);
        w.push(Time(6), 2);
        assert_eq!(w.pop(), Some((Time(5), 1)));
        assert_eq!(w.pop(), Some((Time(6), 2)));
    }

    #[test]
    #[should_panic(expected = "behind the cursor")]
    fn pushing_into_the_past_is_rejected() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.push(Time(50), 0);
        w.pop();
        w.push(Time(49), 1);
    }

    #[test]
    fn window_rolls_skip_empty_space() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // Several rolls' worth of sparse far events.
        let times = [3u64, 700, 45_000, 46_000, 9_000_000];
        for (i, &t) in times.iter().enumerate() {
            w.push(Time(t), i as u32);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|(t, _)| t.ticks()).collect();
        assert_eq!(popped, times.to_vec());
    }

    #[test]
    fn horizon_instants_are_reachable() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.push(Time::INFINITY, 1);
        w.push(Time(u64::MAX - 1), 0);
        assert_eq!(w.peek_time(), Some(Time(u64::MAX - 1)));
        assert_eq!(w.pop(), Some((Time(u64::MAX - 1), 0)));
        assert_eq!(w.pop(), Some((Time::INFINITY, 1)));
        assert_eq!(w.pop(), None);
    }

    /// Randomized differential: the wheel must agree with a sorted-vector
    /// reference on `(time, insertion order)` for interleaved push/pop
    /// workloads whose delays mix near and far scales.
    #[test]
    fn differential_against_stable_sort_reference() {
        let mut rng = SplitMix64::new(0xD1FF);
        for trial in 0..20 {
            let mut w: TimerWheel<u64> = TimerWheel::new();
            let mut reference: Vec<(u64, u64)> = Vec::new(); // (time, id)
            let mut now = 0u64;
            let mut next_id = 0u64;
            let mut popped_wheel = Vec::new();
            let mut popped_ref = Vec::new();
            for _ in 0..2_000 {
                if rng.chance(3, 5) || reference.is_empty() {
                    let delay = match rng.below(4) {
                        0 => rng.range(1, 16),
                        1 => rng.range(1, 2 * NEAR_SLOTS as u64),
                        2 => rng.range(1, 50_000),
                        _ => rng.range(1, 5_000_000),
                    };
                    w.push(Time(now + delay), next_id);
                    reference.push((now + delay, next_id));
                    next_id += 1;
                } else {
                    let (t, v) = w.pop().expect("reference non-empty");
                    let min = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &(rt, _))| (rt, i))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    let (rt, rv) = reference.remove(min);
                    popped_wheel.push((t.ticks(), v));
                    popped_ref.push((rt, rv));
                    now = t.ticks();
                }
            }
            while let Some((t, v)) = w.pop() {
                popped_wheel.push((t.ticks(), v));
            }
            reference.sort_by_key(|&(t, id)| (t, id));
            popped_ref.extend(reference);
            assert_eq!(popped_wheel, popped_ref, "trial {trial} diverged");
        }
    }
}
