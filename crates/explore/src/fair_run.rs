//! Weakly-fair deterministic runs of the pair model — the liveness half of
//! the lemma suite.
//!
//! Exhaustive safety search cannot establish "infinitely often" claims, so
//! the liveness lemmas are checked on a deterministic schedule that is
//! weakly fair by construction: every round delivers all in-flight
//! messages, lets the subject fire all enabled actions, grants every
//! grantable endpoint (subject first), and lets the witness fire all enabled
//! actions. Over such runs the paper predicts:
//!
//! * **Lemma 7**: both subject threads eat over and over;
//! * **Lemma 11**: both witness threads eat over and over;
//! * **Lemma 12**: witness eating sessions strictly alternate `w_0, w_1, …`;
//! * **Theorem 2**: with a correct subject, after convergence the witness
//!   output stabilizes to *trust*;
//! * **Theorem 1**: after a crash, the output stabilizes to *suspect*.

use dinefd_core::machines::SubjectMutation;

use crate::pair_model::{ExploreConfig, ModelMutation, PairState, TransitionLabel};

/// Everything measured over one fair run.
#[derive(Clone, Debug)]
pub struct FairRunReport {
    /// Rounds executed.
    pub rounds: u32,
    /// Eating sessions started by each witness thread.
    pub witness_eats: [u32; 2],
    /// Eating sessions started by each subject thread.
    pub subject_eats: [u32; 2],
    /// Order in which witness threads started eating (instance indices).
    pub witness_eat_order: Vec<usize>,
    /// Suspicion output changes `(round, suspected)`.
    pub suspicion_changes: Vec<(u32, bool)>,
    /// Output at the end of the run.
    pub final_suspects: bool,
    /// Invariant violations observed along the way (must be empty).
    pub violations: Vec<String>,
}

impl FairRunReport {
    /// Whether witness sessions strictly alternate between the instances.
    pub fn witnesses_alternate(&self) -> bool {
        self.witness_eat_order.windows(2).all(|w| w[0] != w[1])
    }

    /// The round of the last suspicion change ([`u32::MAX`] if none).
    pub fn stabilized_at(&self) -> u32 {
        self.suspicion_changes.last().map_or(0, |&(r, _)| r)
    }
}

/// Fires the first enabled transition matching `pred`; returns whether one
/// fired.
fn fire_if(
    state: &mut PairState,
    cfg: &ExploreConfig,
    pred: impl Fn(TransitionLabel) -> bool,
) -> Option<TransitionLabel> {
    let succ = state.successors(cfg);
    for (label, next) in succ {
        if pred(label) {
            *state = next;
            return Some(label);
        }
    }
    None
}

/// Runs the model for `rounds` weakly-fair rounds. `converge_at` injects the
/// ◇WX convergence; `crash_at` (optional) crashes the subject.
pub fn fair_run(
    rounds: u32,
    converge_at: u32,
    crash_at: Option<u32>,
    strict_seq: bool,
) -> FairRunReport {
    fair_run_mutated(
        rounds,
        converge_at,
        crash_at,
        strict_seq,
        SubjectMutation::None,
        ModelMutation::None,
    )
}

/// [`fair_run`] with seeded bugs: the liveness-side companion of the
/// mutation-testing suite. Safety-silent mutants (e.g. a dropped ping send)
/// betray themselves here as eventual wrongful suspicion or starved subject
/// threads.
pub fn fair_run_mutated(
    rounds: u32,
    converge_at: u32,
    crash_at: Option<u32>,
    strict_seq: bool,
    subject_mutation: SubjectMutation,
    model_mutation: ModelMutation,
) -> FairRunReport {
    let cfg = ExploreConfig {
        max_depth: 0,
        max_states: 0,
        strict_seq,
        allow_crash: true,
        start_converged: false,
        threads: 1,
        por: false,
        subject_mutation,
        model_mutation,
    };
    let mut state = PairState::initial(&cfg);
    let mut report = FairRunReport {
        rounds,
        witness_eats: [0; 2],
        subject_eats: [0; 2],
        witness_eat_order: Vec::new(),
        suspicion_changes: Vec::new(),
        final_suspects: true,
        violations: Vec::new(),
    };
    let mut last_suspect = state.witness.suspects();

    for round in 0..rounds {
        // 1. Drain the network (pings may generate acks; loop to fixpoint).
        for _ in 0..64 {
            let fired = fire_if(&mut state, &cfg, |l| {
                matches!(l, TransitionLabel::DeliverPing(_) | TransitionLabel::DeliverAck(_))
            });
            if fired.is_none() {
                break;
            }
        }
        // 2. Subject fires everything it can.
        for _ in 0..8 {
            if fire_if(&mut state, &cfg, |l| matches!(l, TransitionLabel::Subject(_))).is_none() {
                break;
            }
        }
        // 3. Grants: subject endpoints first, then witnesses.
        for i in 0..2 {
            if fire_if(&mut state, &cfg, |l| l == TransitionLabel::GrantSubject(i)).is_some() {
                report.subject_eats[i] += 1;
            }
        }
        for i in 0..2 {
            if fire_if(&mut state, &cfg, |l| l == TransitionLabel::GrantWitness(i)).is_some() {
                report.witness_eats[i] += 1;
                report.witness_eat_order.push(i);
            }
        }
        // 4. Witness fires everything it can.
        for _ in 0..8 {
            if fire_if(&mut state, &cfg, |l| matches!(l, TransitionLabel::Witness(_))).is_none() {
                break;
            }
        }
        // 5. Scheduled environment events.
        if round >= converge_at && !state.converged {
            let _ = fire_if(&mut state, &cfg, |l| l == TransitionLabel::Converge);
        }
        if crash_at == Some(round) {
            let _ = fire_if(&mut state, &cfg, |l| l == TransitionLabel::CrashSubject);
        }
        // Bookkeeping.
        let s = state.witness.suspects();
        if s != last_suspect {
            report.suspicion_changes.push((round, s));
            last_suspect = s;
        }
        for v in state.check_invariants() {
            report.violations.push(format!("round {round}: {v}"));
        }
    }
    report.final_suspects = state.witness.suspects();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_run_converges_to_trust() {
        for strict in [false, true] {
            let r = fair_run(400, 50, None, strict);
            assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
            assert!(!r.final_suspects, "must trust a correct subject (strict={strict})");
            // Liveness lemmas: everyone eats repeatedly.
            assert!(r.witness_eats[0] > 5 && r.witness_eats[1] > 5, "{:?}", r.witness_eats);
            assert!(r.subject_eats[0] > 5 && r.subject_eats[1] > 5, "{:?}", r.subject_eats);
            // Lemma 12: witnesses alternate.
            assert!(r.witnesses_alternate(), "order: {:?}", r.witness_eat_order);
            // Theorem 2: finitely many mistakes, stabilization well before
            // the end.
            assert!(r.stabilized_at() < 300, "stabilized at {}", r.stabilized_at());
        }
    }

    #[test]
    fn crashed_subject_is_permanently_suspected() {
        for strict in [false, true] {
            let r = fair_run(400, 50, Some(120), strict);
            assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
            assert!(r.final_suspects, "must suspect the crashed subject (strict={strict})");
            // And the last output change is to `suspected`.
            let last = r.suspicion_changes.last().copied();
            assert!(matches!(last, Some((_, true))), "changes: {:?}", r.suspicion_changes);
        }
    }

    #[test]
    fn early_crash_before_any_ping() {
        let r = fair_run(200, 20, Some(0), false);
        assert!(r.violations.is_empty());
        assert!(r.final_suspects);
        // Witness threads keep eating forever by wait-freedom.
        assert!(r.witness_eats[0] > 10 && r.witness_eats[1] > 10);
        // The crash lands at the end of round 0, after s_0's first grant;
        // s_1 never gets to eat.
        assert!(r.subject_eats[0] <= 1);
        assert_eq!(r.subject_eats[1], 0);
    }

    #[test]
    fn late_convergence_still_converges() {
        let r = fair_run(800, 500, None, false);
        assert!(r.violations.is_empty());
        assert!(!r.final_suspects);
        assert!(r.stabilized_at() >= 1, "some mistake phase expected");
    }

    #[test]
    fn mistake_count_is_finite_and_recorded() {
        let r = fair_run(600, 100, None, false);
        // The output starts suspected, so at least one change to trust.
        assert!(!r.suspicion_changes.is_empty());
        // After stabilization, no further changes — guaranteed by the check
        // that the last change round is well before the end combined with
        // final_suspects == false.
        assert!(!r.final_suspects);
    }
}
