//! Sleep-set partial-order reduction over commuting message deliveries.
//!
//! The explorers enumerate every interleaving of machine actions and message
//! deliveries. Many of those interleavings are provably redundant: two
//! deliveries from *different* wire pools touch disjoint parts of the state
//! and commute, so exploring `DeliverPing(k); DeliverAck(j)` and
//! `DeliverAck(j); DeliverPing(k)` from the same state reaches the same
//! grandchild twice. Sleep sets (Godefroid) prune the second arrival's
//! re-exploration *work* without losing any reachable state.
//!
//! ## Which labels commute (the soundness argument)
//!
//! A label is assigned a [`DeliveryClass`] when it only removes one message
//! from one wire pool and feeds it to the receiving component:
//!
//! * **`Ping(k)`** — pair/composed `DeliverPing(k)`: removes `pings[k]`,
//!   steps the *witness* machine, may append one ack to the end of `acks`.
//! * **`Ack(j)`** — `DeliverAck(j)`: removes `acks[j]`, steps the *subject*
//!   machine.
//! * **`Dx(d)`** — composed `DeliverDx(d)`: removes `dx_wire[d]`, steps one
//!   *fork endpoint*.
//!
//! Two labels of **different** classes commute: their receiving components
//! are disjoint (witness vs subject vs fork layer), neither consumes the
//! message the other consumes, neither enables or disables the other, and
//! the only shared structure — a ping delivery *appending* an ack while an
//! ack delivery *removes* an earlier ack — commutes because removal at index
//! `j` and push-at-end are order-independent for `j` within the original
//! prefix. (The composed model's derived taints depend only on phases and
//! mistake flags, which single deliveries of different classes update
//! disjointly.)
//!
//! Two labels of the **same** class do *not* commute in general (two ping
//! deliveries race on witness ping-flags and on ack append order; two dx
//! deliveries race on one endpoint's clock), so same-class labels never
//! sleep each other. Every non-delivery label (machine actions, crashes,
//! ticks, flag flips, the composed `DuplicateAck` mistake) has class `None`
//! and conservatively resets the sleep mask.
//!
//! ## Mechanics
//!
//! A sleep mask is a `u32` with one bit per *pool index*: ping indices 0–9
//! map to bits 0–9, ack indices to bits 10–19, dx indices 0–11 to bits
//! 20–31. An index beyond its window gets no bit and is therefore never
//! slept — sound, merely unoptimized (the explorers' wire pools stay far
//! below these bounds at practical depths).
//!
//! During expansion the engine walks the successor list in order; for each
//! *explored* delivery label it adds the label's bit to an `earlier`
//! accumulator, and each successor inherits
//! `(parent_sleep | earlier) & survivors(class)` — i.e. a child may skip
//! re-exploring deliveries of *other* classes that an earlier sibling
//! already explored (the classic sleep-set recurrence restricted to the
//! proven-independent pairs). A successor whose own label's bit is already
//! set in the parent's sleep mask is **skipped** (counted in
//! `SearchStats::sleep_skips`): the state it leads to is reachable — and
//! reached — through the commuted order.
//!
//! Because independent permutations preserve path *length*, and the visited
//! store re-queues a state whenever it arrives with more remaining depth or
//! a strictly smaller sleep mask (intersection convergence, see
//! [`crate::visited`]), the POR-on search visits **exactly** the same state
//! set, transition count, deadlock set, and verdicts as the full search —
//! equivalence is asserted test-for-test across every seeded mutation in
//! `tests/por_equivalence.rs`. The savings show up as skipped
//! encode/probe/expand work, not as a smaller state count.

/// Classification of a transition label for sleep-set purposes: which wire
/// pool the label consumes from, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryClass {
    /// Delivers `pings[k]` to the witness.
    Ping(usize),
    /// Delivers `acks[j]` to the subject.
    Ack(usize),
    /// Delivers `dx_wire[d]` to a fork endpoint (composed model only).
    Dx(usize),
}

const PING_BITS: u32 = 0x0000_03ff; // bits 0..10
const ACK_BITS: u32 = 0x000f_fc00; // bits 10..20
const DX_BITS: u32 = 0xfff0_0000; // bits 20..32

impl DeliveryClass {
    /// The label's own sleep bit, or 0 if its index is beyond the window
    /// (such a label can never be slept — sound, just unreduced).
    pub(crate) fn bit(self) -> u32 {
        match self {
            DeliveryClass::Ping(k) if k < 10 => 1 << k,
            DeliveryClass::Ack(j) if j < 10 => 1 << (10 + j),
            DeliveryClass::Dx(d) if d < 12 => 1 << (20 + d),
            _ => 0,
        }
    }

    /// Mask of sleep bits that *survive* executing this label: exactly the
    /// other classes' windows, since only cross-class pairs are proven
    /// independent.
    pub(crate) fn survivors(self) -> u32 {
        match self {
            DeliveryClass::Ping(_) => ACK_BITS | DX_BITS,
            DeliveryClass::Ack(_) => PING_BITS | DX_BITS,
            DeliveryClass::Dx(_) => PING_BITS | ACK_BITS,
        }
    }
}

/// Sleep mask a successor inherits: the parent's surviving sleeps plus the
/// earlier-explored siblings', restricted to classes independent of the
/// executed label. `None`-class labels reset the mask.
pub(crate) fn child_sleep(parent_sleep: u32, earlier: u32, class: Option<DeliveryClass>) -> u32 {
    match class {
        Some(c) => (parent_sleep | earlier) & c.survivors(),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_are_disjoint_and_windowed() {
        let mut seen = 0u32;
        for k in 0..10 {
            let b = DeliveryClass::Ping(k).bit();
            assert_ne!(b, 0);
            assert_eq!(seen & b, 0);
            seen |= b;
            assert_eq!(b & PING_BITS, b);
        }
        for j in 0..10 {
            let b = DeliveryClass::Ack(j).bit();
            assert_ne!(b, 0);
            assert_eq!(seen & b, 0);
            seen |= b;
            assert_eq!(b & ACK_BITS, b);
        }
        for d in 0..12 {
            let b = DeliveryClass::Dx(d).bit();
            assert_ne!(b, 0);
            assert_eq!(seen & b, 0);
            seen |= b;
            assert_eq!(b & DX_BITS, b);
        }
        assert_eq!(seen, u32::MAX, "the three windows tile the u32 exactly");
        // Oversized indices are never sleepable.
        assert_eq!(DeliveryClass::Ping(10).bit(), 0);
        assert_eq!(DeliveryClass::Ack(10).bit(), 0);
        assert_eq!(DeliveryClass::Dx(12).bit(), 0);
    }

    #[test]
    fn same_class_never_sleeps_itself() {
        for (a, b) in [
            (DeliveryClass::Ping(0), DeliveryClass::Ping(3)),
            (DeliveryClass::Ack(1), DeliveryClass::Ack(2)),
            (DeliveryClass::Dx(0), DeliveryClass::Dx(5)),
        ] {
            assert_eq!(a.bit() & b.survivors(), 0, "{a:?} must not survive {b:?}");
            assert_eq!(a.bit() & a.survivors(), 0, "{a:?} must not survive itself");
        }
    }

    #[test]
    fn cross_class_sleeps_propagate() {
        // An explored ping sleeps in an ack-delivery child, and vice versa.
        let ping = DeliveryClass::Ping(2);
        let ack = DeliveryClass::Ack(4);
        let s = child_sleep(0, ping.bit(), Some(ack));
        assert_ne!(s & ping.bit(), 0);
        let s = child_sleep(0, ack.bit(), Some(ping));
        assert_ne!(s & ack.bit(), 0);
        // But a non-delivery step resets everything.
        assert_eq!(child_sleep(u32::MAX, u32::MAX, None), 0);
    }
}
