//! Criterion bench: cost of running the ◇P-extraction reduction (E1/E2/E8
//! companion). One iteration = one complete deterministic simulation run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dinefd_core::{run_extraction, BlackBox, OracleSpec, Scenario};
use dinefd_sim::{CrashPlan, ProcessId, Time};

fn pair_scenario(black_box: BlackBox, seed: u64, horizon: Time) -> Scenario {
    let mut sc = Scenario::pair(black_box, seed);
    sc.oracle =
        OracleSpec::DiamondP { lag: 20, convergence: Time(1_000), max_mistakes: 2, max_len: 100 };
    sc.horizon = horizon;
    sc
}

fn bench_pair_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_extraction_10k_ticks");
    let boxes = [
        ("wfdx", BlackBox::WfDx),
        ("abstract", BlackBox::Abstract { convergence: Time(1_000) }),
        ("delayed", BlackBox::Delayed { convergence: Time(1_000) }),
        ("ftme", BlackBox::Ftme),
    ];
    for (name, bb) in boxes {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_extraction(pair_scenario(bb, seed, Time(10_000))).steps
            });
        });
    }
    group.finish();
}

fn bench_all_pairs_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_extraction_4k_ticks");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sc = Scenario::all_pairs(n, BlackBox::WfDx, seed);
                sc.oracle = OracleSpec::Perfect { lag: 20 };
                sc.horizon = Time(4_000);
                sc.crashes = CrashPlan::one(ProcessId::from_index(n - 1), Time(2_000));
                run_extraction(sc).steps
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pair_extraction, bench_all_pairs_scaling);
criterion_main!(benches);
