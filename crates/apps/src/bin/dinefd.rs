//! The `dinefd` command-line tool.
//!
//! ```text
//! dinefd analyze [FLAGS]      static analysis: lints + inductive checking
//! dinefd fuzz [FLAGS]         coverage-guided schedule fuzzing
//! dinefd extract [FLAGS]      one ◇P-extraction run over n processes
//! dinefd live [FLAGS]         live loopback-TCP runtime: differential + soak
//! ```
//!
//! `dinefd analyze` runs the `dinefd-analyze` pipeline on one model
//! configuration: the five IR lint passes, then the invariant checker —
//! the explicit enumerator over the full typed abstract domain and/or the
//! symbolic k-induction engine (SAT over the bit-blasted IR), classifying
//! any counterexamples-to-induction against the concrete explorer. At the
//! default wire cap both engines are byte-for-byte interchangeable;
//! `--engine both` asserts that on every run. `--emit-tla` additionally
//! writes the configuration's transition system as a TLA+ module.
//!
//! Exit status: `0` when every checked obligation holds and every lint is
//! clean, `2` when any lemma fails, any lint is red, or `--engine both`
//! disagrees, `64` for bad usage (unknown flag, out-of-range value). So
//! the faithful configuration doubles as a CI gate, and a mutated
//! configuration's exit 2 is the expected demonstration.
//!
//! Flags (all optional):
//!
//! ```text
//! --wire-cap N              wire-counter saturation cap, 2..=8 (default 2;
//!                           the typed domain grows as (N+1)^4)
//! --engine NAME             auto | explicit | symbolic | both (default
//!                           auto: explicit at cap 2, symbolic above;
//!                           explicit is refused above cap 4)
//! --max-k N                 symbolic induction depth, 1..=8 (default 1)
//! --emit-tla FILE           write the TLA+ module for this configuration
//! --strict                  sequence-checked acks (hardened subject)
//! --no-crash                forbid the subject crash transition
//! --subject-mutation NAME   skip-ping-disable | ignore-trigger-guard |
//!                           skip-trigger-update
//! --model-mutation NAME     drop-ping-send | stale-ack-replay
//! --no-classify             skip concrete CTI classification (faster)
//! --skip-lints              induction only
//! --skip-induction          lints only
//! --help, -h                print usage on stdout and exit 0
//! ```
//!
//! `dinefd fuzz` runs the `dinefd-fuzz` coverage-guided schedule fuzzer
//! against one model configuration — from a scenario-DSL file, from
//! flags, or both (flags override the file). Findings are printed with
//! their ddmin-minimized replayable prefixes, and the `fuzz.*` metric
//! block is emitted for perf tooling. Exit status is `0` for a clean run,
//! `2` when any lemma violation was found, `64` for bad usage (including
//! scenario parse errors, which carry their line number).
//!
//! ```text
//! --scenario FILE           load a scenario-DSL document
//! --seed N                  fuzzer seed             (default 1)
//! --iterations N            mutation iterations     (default 2000)
//! --max-steps N             schedule length cap     (default 40)
//! --corpus-seeds N          initial random corpus   (default 16)
//! --time-budget-secs N      wall-clock cap; truncation only, never
//!                           extension (omit for fully deterministic runs)
//! --strict | --no-crash | --subject-mutation | --model-mutation
//!                           as for `analyze`
//! ```
//!
//! `dinefd extract` runs one simulator-backed ◇P-extraction over the full
//! ordered-pair matrix of `n` processes (the E8 harness's hot path, exposed
//! directly). It prints a one-line run summary followed by the
//! deterministic metric block, and exits `0` on success — the run itself
//! asserts internal invariants (routing, horizon saturation, cross-shard
//! merge order) and aborts loudly if any fail. With `--shards K` the run
//! uses the sharded-world family (shard-count invariant for fixed seed);
//! `--threads T` runs the shards on the simulator's worker pool behind its
//! deterministic barrier merge — *everything printed to stdout is
//! byte-identical for every thread count* (per-worker busy/barrier-wait
//! wall-clock, which is inherently nondeterministic, goes to stderr), so
//! `diff <(dinefd extract --shards 4 --threads 4) <(dinefd extract
//! --shards 4 --threads 1)` is a direct determinism check; `--queue heap`
//! switches the event queue to the reference binary heap, which must
//! reproduce the timer wheel byte-for-byte.
//!
//! ```text
//! --n N                     system size             (default 8, min 2)
//! --seed N                  run seed                (default 42)
//! --horizon N               ticks to simulate       (default 5000)
//! --shards K                sharded world, K shards (default 0 = classic)
//! --threads T               worker threads for sharded runs (default 1;
//!                           needs --shards >= 2 to engage)
//! --crash PID@TICK          crash PID at TICK (repeatable)
//! --streaming               extract through the streaming sink
//! --batch                   coalesce same-instant sends into envelopes
//! --queue wheel|heap        event queue backend     (default wheel)
//! --heap                    deprecated alias for --queue heap
//! --strict                  sequence-checked acks (hardened subject)
//! ```
//!
//! `dinefd live` runs the identical heartbeat-◇P logic core on the live
//! loopback-TCP runtime (`dinefd-live`): first the sim-vs-live
//! differential matrix (crash × delay × GST; every cell must reach the
//! same timing-free verdict on both substrates), then the sustained-load
//! soak, which measures msgs/sec and the p99 crash-detection latency and
//! gates on zero false suspicions surviving past GST and zero missed
//! detections. Exit status is `0` when every matrix cell converges and the
//! soak gate holds, `2` otherwise. With `--bench-out FILE` the soak
//! numbers are written as a `dinefd-bench/v1` document whose measured
//! values live in the `nondet`/`wall` sections — wall-clock figures,
//! excluded from determinism diffs by construction.
//!
//! ```text
//! --n N                     system size per trial   (default 4, min 2)
//! --trials N                soak trials             (default 6, min 1)
//! --seed N                  base seed               (default 0x50AB)
//! --period-ms N             heartbeat period in ms  (default 8)
//! --crash-at-ms N           crash instant per trial (default 150)
//! --horizon-ms N            trial length in ms      (default 500)
//! --skip-matrix             soak only, no differential matrix
//! --bench-out FILE          write BENCH_live.json-style report to FILE
//! ```

use dinefd_analyze::induct::{render_summary, run_induction, InductOptions};
use dinefd_analyze::ir::{IrConfig, MAX_WIRE_CAP, MIN_WIRE_CAP};
use dinefd_analyze::kinduct::{
    agrees_with_explicit, render_kinduct_summary, run_kinduction, KinductOptions,
};
use dinefd_analyze::lints::{render_lints, run_lints};
use dinefd_core::machines::SubjectMutation;
use dinefd_explore::ModelMutation;
use dinefd_fuzz::{FuzzConfig, Fuzzer};
use dinefd_sim::scenario_dsl::Scenario;
use std::process::ExitCode;
use std::time::Duration;

/// The full usage text, shared by `--help` (stdout, exit 0) and usage
/// errors (stderr, exit 64) so the two can never drift apart.
const USAGE: &str = "usage: dinefd analyze [--wire-cap N] [--engine auto|explicit|symbolic|both] \
     [--max-k N] [--emit-tla FILE] [--strict] [--no-crash] \
     [--subject-mutation NAME] [--model-mutation NAME] \
     [--no-classify] [--skip-lints] [--skip-induction]\n\
     \x20      dinefd fuzz [--scenario FILE] [--seed N] [--iterations N] \
     [--max-steps N] [--corpus-seeds N] [--time-budget-secs N] \
     [--strict] [--no-crash] [--subject-mutation NAME] [--model-mutation NAME]\n\
     \x20      dinefd extract [--n N] [--seed N] [--horizon N] [--shards K] \
     [--threads T] [--crash PID@TICK] [--streaming] [--batch] \
     [--queue wheel|heap] [--strict]\n\
     \x20      dinefd live [--n N] [--trials N] [--seed N] [--period-ms N] \
     [--crash-at-ms N] [--horizon-ms N] [--skip-matrix] [--bench-out FILE]";

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("{USAGE}");
    ExitCode::from(64)
}

fn help() -> ExitCode {
    println!("{USAGE}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return help();
    }
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("extract") => extract(&args[1..]),
        Some("live") => live(&args[1..]),
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("missing subcommand"),
    }
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut doc = Scenario::default();
    let mut time_budget: Option<u64> = None;
    let mut it = args.iter();
    let parse_u64 = |name: &str, v: Option<&String>| -> Result<u64, String> {
        let Some(v) = v else { return Err(format!("{name} needs a value")) };
        v.parse::<u64>().map_err(|_| format!("{name}: `{v}` is not an integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => {
                let Some(path) = it.next() else {
                    return usage("--scenario needs a file path");
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => return usage(&format!("cannot read {path}: {e}")),
                };
                doc = match Scenario::parse(&text) {
                    Ok(d) => d,
                    Err(e) => return usage(&format!("{path}: {e}")),
                };
            }
            "--seed" => match parse_u64("--seed", it.next()) {
                Ok(v) => doc.fuzz.seed = v,
                Err(e) => return usage(&e),
            },
            "--iterations" => match parse_u64("--iterations", it.next()) {
                Ok(0) => return usage("--iterations must be at least 1"),
                Ok(v) => doc.fuzz.iterations = v,
                Err(e) => return usage(&e),
            },
            "--max-steps" => match parse_u64("--max-steps", it.next()) {
                Ok(v @ 1..=100_000) => doc.fuzz.max_steps = v as u32,
                Ok(v) => return usage(&format!("--max-steps {v} out of range [1, 100000]")),
                Err(e) => return usage(&e),
            },
            "--corpus-seeds" => match parse_u64("--corpus-seeds", it.next()) {
                Ok(v @ 0..=1_000_000) => doc.fuzz.corpus_seeds = v as u32,
                Ok(v) => return usage(&format!("--corpus-seeds {v} out of range")),
                Err(e) => return usage(&e),
            },
            "--time-budget-secs" => match parse_u64("--time-budget-secs", it.next()) {
                Ok(v) => time_budget = Some(v),
                Err(e) => return usage(&e),
            },
            "--strict" => doc.model.strict_seq = true,
            "--no-crash" => doc.model.allow_crash = false,
            "--subject-mutation" => {
                let Some(name) = it.next() else {
                    return usage("--subject-mutation needs a value");
                };
                use dinefd_sim::scenario_dsl::SubjectMutationSpec as S;
                doc.model.subject_mutation = match name.as_str() {
                    "skip-ping-disable" => S::SkipPingDisable,
                    "ignore-trigger-guard" => S::IgnoreTriggerGuard,
                    "skip-trigger-update" => S::SkipTriggerUpdate,
                    other => return usage(&format!("unknown subject mutation `{other}`")),
                };
            }
            "--model-mutation" => {
                let Some(name) = it.next() else {
                    return usage("--model-mutation needs a value");
                };
                use dinefd_sim::scenario_dsl::ModelMutationSpec as M;
                doc.model.model_mutation = match name.as_str() {
                    "drop-ping-send" => M::DropPingSend,
                    "stale-ack-replay" => M::StaleAckReplay,
                    other => return usage(&format!("unknown model mutation `{other}`")),
                };
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let mut fuzzer = Fuzzer::new(FuzzConfig::from_scenario(&doc));
    if let Some(secs) = time_budget {
        fuzzer = fuzzer.with_time_budget(Duration::from_secs(secs));
    }
    let report = fuzzer.run();

    println!(
        "fuzz: {} executions, {} iterations, {} states covered, {} corpus entries{}",
        report.executions,
        report.iterations_run,
        report.coverage_states,
        report.corpus_entries,
        if report.timed_out { " (time budget expired)" } else { "" },
    );
    for f in &report.findings {
        println!("FINDING [{}] at iteration {}: {}", f.lemma, f.iteration, f.message);
        println!(
            "  minimized prefix ({} of {} steps): {}",
            f.minimized.len(),
            f.path.len(),
            dinefd_explore::fmt_path(&f.minimized, None),
        );
    }
    for (k, v) in report.metrics() {
        println!("{k} = {v}");
    }
    if report.findings.is_empty() {
        println!("fuzz: no lemma violations found");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn extract(args: &[String]) -> ExitCode {
    use dinefd_core::{run_extraction, BlackBox};
    use dinefd_sim::{CrashPlan, ProcessId, QueueBackend, Time};

    let mut n: usize = 8;
    let mut seed: u64 = 42;
    let mut horizon: u64 = 5_000;
    let mut shards: usize = 0;
    let mut threads: usize = 1;
    let mut crashes = CrashPlan::none();
    let mut streaming = false;
    let mut batch = false;
    let mut queue = QueueBackend::Wheel;
    let mut strict = false;
    let mut it = args.iter();
    let parse_u64 = |name: &str, v: Option<&String>| -> Result<u64, String> {
        let Some(v) = v else { return Err(format!("{name} needs a value")) };
        v.parse::<u64>().map_err(|_| format!("{name}: `{v}` is not an integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--n" => match parse_u64("--n", it.next()) {
                Ok(v @ 2..=4096) => n = v as usize,
                Ok(v) => return usage(&format!("--n {v} out of range [2, 4096]")),
                Err(e) => return usage(&e),
            },
            "--seed" => match parse_u64("--seed", it.next()) {
                Ok(v) => seed = v,
                Err(e) => return usage(&e),
            },
            "--horizon" => match parse_u64("--horizon", it.next()) {
                Ok(0) => return usage("--horizon must be at least 1"),
                Ok(v) => horizon = v,
                Err(e) => return usage(&e),
            },
            "--shards" => match parse_u64("--shards", it.next()) {
                Ok(v @ 0..=256) => shards = v as usize,
                Ok(v) => return usage(&format!("--shards {v} out of range [0, 256]")),
                Err(e) => return usage(&e),
            },
            "--threads" => match parse_u64("--threads", it.next()) {
                Ok(v @ 1..=64) => threads = v as usize,
                Ok(v) => return usage(&format!("--threads {v} out of range [1, 64]")),
                Err(e) => return usage(&e),
            },
            "--crash" => {
                let Some(spec) = it.next() else {
                    return usage("--crash needs PID@TICK");
                };
                let Some((pid, at)) = spec.split_once('@') else {
                    return usage(&format!("--crash `{spec}`: expected PID@TICK"));
                };
                let (Ok(pid), Ok(at)) = (pid.parse::<u32>(), at.parse::<u64>()) else {
                    return usage(&format!("--crash `{spec}`: expected PID@TICK"));
                };
                crashes.add(ProcessId(pid), Time(at));
            }
            "--streaming" => streaming = true,
            "--batch" => batch = true,
            "--queue" => {
                let Some(name) = it.next() else {
                    return usage("--queue needs a value (wheel | heap)");
                };
                queue = match name.as_str() {
                    "wheel" => QueueBackend::Wheel,
                    "heap" => QueueBackend::Heap,
                    other => return usage(&format!("unknown queue backend `{other}`")),
                };
            }
            "--heap" => {
                eprintln!("warning: --heap is deprecated, use --queue heap");
                queue = QueueBackend::Heap;
            }
            "--strict" => strict = true,
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    if crashes.crashes().iter().any(|&(p, _)| p.index() >= n) {
        return usage("--crash PID must be below --n");
    }

    let mut sc = dinefd_core::Scenario::all_pairs(n, BlackBox::WfDx, seed);
    sc.horizon = Time(horizon);
    sc.crashes = crashes;
    sc.streaming = streaming;
    sc.batch_envelopes = batch;
    sc.shards = shards;
    sc.queue = queue;
    sc.strict_seq = strict;
    sc.threads = threads;
    if threads > 1 && shards < 2 {
        return usage("--threads needs --shards >= 2 (the classic world is single-threaded)");
    }
    let res = run_extraction(sc);

    println!(
        "extract: n={n} pairs={} horizon={horizon} shards={shards} queue={} \
         streaming={streaming}",
        n * (n - 1),
        match queue {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        },
    );
    println!(
        "extract: {} steps, {} messages, {} history changes, {} node-resident bytes",
        res.steps, res.messages_sent, res.history_changes, res.node_resident_bytes,
    );
    for (k, v) in &res.metrics {
        println!("{k} = {v}");
    }
    // Wall-clock per-worker accounting is nondeterministic by nature, so it
    // goes to stderr: stdout stays byte-identical across thread counts.
    for (w, stats) in res.worker_stats.iter().enumerate() {
        eprintln!(
            "worker {w}: {} instants, busy {}us, barrier-wait {}us",
            stats.instants.get(),
            stats.busy_micros.sum(),
            stats.barrier_wait_micros.sum(),
        );
    }
    ExitCode::SUCCESS
}

/// `BENCH_live.json` document: same shape as `dinefd-bench/v1` so tooling
/// can ingest it, but everything measured is wall-clock — the soak numbers
/// live in `nondet`/`wall` and are never baseline-diffed. Only structural
/// facts (sizes, and the gates that must always hold) go in `metrics`.
#[derive(Debug, serde::Serialize)]
struct LiveBenchDoc {
    schema: String,
    profile: String,
    metrics: dinefd_sim::MetricMap,
    wall: std::collections::BTreeMap<String, String>,
    nondet: dinefd_sim::MetricMap,
}

fn live(args: &[String]) -> ExitCode {
    use dinefd_live::{run_differential, run_soak, DiffScenario, SoakConfig};
    use dinefd_sim::ProcessId;

    let mut cfg = SoakConfig::quick();
    let mut matrix = true;
    let mut bench_out: Option<String> = None;
    let mut it = args.iter();
    let parse_u64 = |name: &str, v: Option<&String>| -> Result<u64, String> {
        let Some(v) = v else { return Err(format!("{name} needs a value")) };
        v.parse::<u64>().map_err(|_| format!("{name}: `{v}` is not an integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--n" => match parse_u64("--n", it.next()) {
                Ok(v @ 2..=16) => cfg.n = v as usize,
                Ok(v) => return usage(&format!("--n {v} out of range [2, 16]")),
                Err(e) => return usage(&e),
            },
            "--trials" => match parse_u64("--trials", it.next()) {
                Ok(v @ 1..=100) => cfg.trials = v as usize,
                Ok(v) => return usage(&format!("--trials {v} out of range [1, 100]")),
                Err(e) => return usage(&e),
            },
            "--seed" => match parse_u64("--seed", it.next()) {
                Ok(v) => cfg.seed = v,
                Err(e) => return usage(&e),
            },
            "--period-ms" => match parse_u64("--period-ms", it.next()) {
                Ok(v @ 1..=1_000) => cfg.period_ms = v,
                Ok(v) => return usage(&format!("--period-ms {v} out of range [1, 1000]")),
                Err(e) => return usage(&e),
            },
            "--crash-at-ms" => match parse_u64("--crash-at-ms", it.next()) {
                Ok(v) => cfg.crash_at_ms = v,
                Err(e) => return usage(&e),
            },
            "--horizon-ms" => match parse_u64("--horizon-ms", it.next()) {
                Ok(0) => return usage("--horizon-ms must be at least 1"),
                Ok(v) => cfg.horizon_ms = v,
                Err(e) => return usage(&e),
            },
            "--skip-matrix" => matrix = false,
            "--bench-out" => {
                let Some(path) = it.next() else {
                    return usage("--bench-out needs a file path");
                };
                bench_out = Some(path.clone());
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    if cfg.crash_at_ms >= cfg.horizon_ms {
        return usage("--crash-at-ms must be below --horizon-ms");
    }

    let mut clean = true;
    let mut cells = 0u64;
    if matrix {
        // Crash × delay × GST: the same cells the differential test suite
        // asserts, driven here so a live box failure is reproducible from
        // the command line.
        let delay_cells: [(u64, u64, bool); 3] = [(0, 0, false), (150, 40, false), (150, 40, true)];
        for (i, &(gst, delay, ramping)) in delay_cells.iter().enumerate() {
            for crash in [None, Some((ProcessId::from_index(cfg.n - 1), 250))] {
                let scenario = DiffScenario {
                    crash,
                    gst,
                    delay,
                    ramping,
                    seed: cfg.seed.wrapping_add(i as u64),
                    horizon: 700,
                    ..DiffScenario::new(cfg.n, 0)
                };
                let report = run_differential(&scenario);
                cells += 1;
                let ok = report.converged() && report.sim.verdict.eventually_perfect;
                println!(
                    "live: matrix cell gst={gst} delay={delay} ramping={ramping} crash={} -> {}",
                    crash.map_or("none".to_string(), |(p, at)| format!("{p}@{at}ms")),
                    if ok { "converged" } else { "DIVERGED" },
                );
                if !ok {
                    eprintln!("  sim:  {:?}", report.sim.verdict);
                    eprintln!("  live: {:?}", report.live.verdict);
                    clean = false;
                }
            }
        }
    }

    let report = run_soak(&cfg);
    println!(
        "live: soak {} trials of n={} ({}ms each, crash at {}ms): \
         {:.0} msgs/sec, p99 detection {}ms (max {}ms over {} samples)",
        report.trials,
        cfg.n,
        cfg.horizon_ms,
        cfg.crash_at_ms,
        report.msgs_per_sec,
        report.p99_detection_ms,
        report.max_detection_ms,
        report.detection_samples,
    );
    println!(
        "live: gate {}: {} surviving false suspicions, {} missed detections, \
         {} transient mistakes (allowed)",
        if report.gate_ok() { "OK" } else { "FAILED" },
        report.surviving_false_suspicions,
        report.missed_detections,
        report.transient_mistakes,
    );
    clean &= report.gate_ok();

    if let Some(path) = bench_out {
        let mut doc = LiveBenchDoc {
            schema: "dinefd-bench/v1".to_string(),
            profile: "live".to_string(),
            metrics: dinefd_sim::MetricMap::new(),
            wall: std::collections::BTreeMap::new(),
            nondet: dinefd_sim::MetricMap::new(),
        };
        doc.metrics.insert("soak.n".into(), cfg.n as u64);
        doc.metrics.insert("soak.trials".into(), report.trials as u64);
        doc.metrics.insert("soak.gate_ok".into(), report.gate_ok() as u64);
        doc.metrics.insert(
            "soak.surviving_false_suspicions".into(),
            report.surviving_false_suspicions as u64,
        );
        doc.metrics.insert("soak.missed_detections".into(), report.missed_detections as u64);
        doc.metrics.insert("matrix.cells".into(), cells);
        doc.metrics.insert("matrix.converged".into(), clean as u64);
        doc.nondet.insert("soak.p99_detection_ms".into(), report.p99_detection_ms);
        doc.nondet.insert("soak.max_detection_ms".into(), report.max_detection_ms);
        doc.nondet.insert("soak.detection_samples".into(), report.detection_samples as u64);
        doc.nondet.insert("soak.transient_mistakes".into(), report.transient_mistakes as u64);
        doc.nondet.insert("soak.frames_delivered".into(), report.frames_delivered);
        doc.nondet.insert("soak.wall_ms".into(), report.wall_ms);
        doc.wall.insert("soak.msgs_per_sec".into(), format!("{:.6}", report.msgs_per_sec));
        doc.wall.insert("soak.secs".into(), format!("{:.6}", report.wall_ms as f64 / 1_000.0));
        let mut json = match serde_json::to_string_pretty(&doc) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: cannot serialize bench report: {e}");
                return ExitCode::from(2);
            }
        };
        json.push('\n');
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("live: wrote {path}");
    }

    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Which invariant-checking engine(s) an `analyze` run uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Explicit at the default cap, symbolic above it.
    Auto,
    /// Typed-domain enumeration only.
    Explicit,
    /// SAT-based k-induction only.
    Symbolic,
    /// Run both and assert they agree (cap 2 only — the agreement contract
    /// compares retained CTI sets, which are enumeration-order-defined).
    Both,
}

fn analyze(args: &[String]) -> ExitCode {
    let mut cfg = IrConfig::faithful();
    let mut classify = true;
    let mut do_lints = true;
    let mut do_induction = true;
    let mut engine = Engine::Auto;
    let mut max_k: u32 = 1;
    let mut emit_tla: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => cfg.strict_seq = true,
            "--no-crash" => cfg.allow_crash = false,
            "--no-classify" => classify = false,
            "--skip-lints" => do_lints = false,
            "--skip-induction" => do_induction = false,
            "--wire-cap" => {
                let Some(v) = it.next() else { return usage("--wire-cap needs a value") };
                cfg.wire_cap = match v.parse::<u8>() {
                    Ok(c) if (MIN_WIRE_CAP..=MAX_WIRE_CAP).contains(&c) => c,
                    _ => {
                        return usage(&format!(
                            "--wire-cap `{v}` out of range [{MIN_WIRE_CAP}, {MAX_WIRE_CAP}]"
                        ))
                    }
                };
            }
            "--engine" => {
                let Some(name) = it.next() else { return usage("--engine needs a value") };
                engine = match name.as_str() {
                    "auto" => Engine::Auto,
                    "explicit" => Engine::Explicit,
                    "symbolic" => Engine::Symbolic,
                    "both" => Engine::Both,
                    other => return usage(&format!("unknown engine `{other}`")),
                };
            }
            "--max-k" => {
                let Some(v) = it.next() else { return usage("--max-k needs a value") };
                max_k = match v.parse::<u32>() {
                    Ok(k @ 1..=8) => k,
                    _ => return usage(&format!("--max-k `{v}` out of range [1, 8]")),
                };
            }
            "--emit-tla" => {
                let Some(path) = it.next() else { return usage("--emit-tla needs a file path") };
                emit_tla = Some(path.clone());
            }
            "--subject-mutation" => {
                let Some(name) = it.next() else {
                    return usage("--subject-mutation needs a value");
                };
                cfg.subject_mutation = match name.as_str() {
                    "skip-ping-disable" => SubjectMutation::SkipPingDisable,
                    "ignore-trigger-guard" => SubjectMutation::IgnoreTriggerGuard,
                    "skip-trigger-update" => SubjectMutation::SkipTriggerUpdate,
                    other => return usage(&format!("unknown subject mutation `{other}`")),
                };
            }
            "--model-mutation" => {
                let Some(name) = it.next() else {
                    return usage("--model-mutation needs a value");
                };
                cfg.model_mutation = match name.as_str() {
                    "drop-ping-send" => ModelMutation::DropPingSend,
                    "stale-ack-replay" => ModelMutation::StaleAckReplay,
                    other => return usage(&format!("unknown model mutation `{other}`")),
                };
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    // Engine/cap compatibility: the explicit sweep is O((cap+1)^4) states
    // and the both-engines agreement contract is defined at the default cap.
    let resolved = match engine {
        Engine::Auto if cfg.wire_cap == MIN_WIRE_CAP => Engine::Explicit,
        Engine::Auto => Engine::Symbolic,
        e => e,
    };
    if matches!(resolved, Engine::Explicit | Engine::Both) && cfg.wire_cap > 4 {
        return usage(&format!(
            "--engine {} is impractical above --wire-cap 4 (the typed domain has \
             41472*(cap+1)^4 states); use --engine symbolic",
            if resolved == Engine::Both { "both" } else { "explicit" },
        ));
    }
    if resolved == Engine::Both && cfg.wire_cap != MIN_WIRE_CAP {
        return usage("--engine both compares retained CTI sets, defined at --wire-cap 2 only");
    }
    if max_k > 1 && matches!(resolved, Engine::Explicit) {
        return usage("--max-k applies to the symbolic engine (use --engine symbolic or both)");
    }

    if let Some(path) = &emit_tla {
        let module = dinefd_analyze::tla::render_tla(&cfg);
        if let Err(e) = std::fs::write(path, module) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("analyze: wrote TLA+ module to {path}");
    }

    let mut clean = true;
    if do_lints {
        let report = run_lints(&cfg);
        print!("{}", render_lints(&report));
        clean &= report.clean();
    }
    if do_induction {
        let opts =
            InductOptions { classify: if classify { 2 } else { 0 }, ..InductOptions::default() };
        let explicit_run = if matches!(resolved, Engine::Explicit | Engine::Both) {
            let run = run_induction(&cfg, &opts);
            print!("{}", render_summary(&run));
            clean &= run.all_inductive();
            Some(run)
        } else {
            None
        };
        if matches!(resolved, Engine::Symbolic | Engine::Both) {
            let kopts = KinductOptions { max_k, classify: opts, ..KinductOptions::default() };
            let run = run_kinduction(&cfg, &kopts);
            print!("{}", render_kinduct_summary(&run));
            clean &= run.all_proved();
            if let Some(exp) = &explicit_run {
                match agrees_with_explicit(&run, exp) {
                    Ok(()) => println!("analyze: engines agree (verdicts, CTIs, classifications)"),
                    Err(diff) => {
                        eprintln!("error: engine disagreement: {diff}");
                        clean = false;
                    }
                }
            }
        }
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
