//! Differential conformance: the guarded-command IR against the executable
//! machines and the concrete explorer model.
//!
//! The IR transcribes Alg. 1/Alg. 2 *independently* of
//! `dinefd_core::machines`; these properties are what entitle the inductive
//! checker to speak about the real system:
//!
//! * **enabled-set agreement** — on every abstract state, the IR enables
//!   exactly the machine-local actions the machines enable (for every
//!   `SubjectMutation`, strictness, and crash flag);
//! * **fire agreement** — firing an agreed-enabled action leaves the
//!   machine's packed bits exactly where the IR's update says, and moves
//!   the dining phase the way the machine's host command says;
//! * **handler agreement** — `W_p`/`S_a` (message-triggered) match the
//!   IR's delivery actions, including strict-mode stale-ack rejection;
//! * **simulation** — along random walks of the *concrete* model, every
//!   transition is matched by an IR action reproducing the abstracted
//!   post-state: the abstraction really over-approximates the system, so
//!   inductive invariants transfer to all reachable concrete states.

use dinefd_analyze::ir::{AbsState, ActionId, Ir, IrConfig, WIRE_CAP};
use dinefd_core::machines::{
    SubjectAction, SubjectCmd, SubjectMachine, SubjectMutation, WitnessAction, WitnessCmd,
    WitnessMachine,
};
use dinefd_dining::DinerPhase;
use dinefd_explore::{ModelMutation, PairState, TransitionLabel};
use proptest::prelude::*;

fn phase_of(bits: u8) -> DinerPhase {
    match bits % 3 {
        0 => DinerPhase::Thinking,
        1 => DinerPhase::Hungry,
        _ => DinerPhase::Eating,
    }
}

fn arb_abs_state() -> impl Strategy<Value = AbsState> {
    (
        (any::<u8>(), 0u8..2, any::<bool>(), any::<bool>(), any::<bool>()),
        (0u8..2, any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        (0u8..=WIRE_CAP, 0u8..=WIRE_CAP, 0u8..=WIRE_CAP, 0u8..=WIRE_CAP),
    )
        .prop_map(
            |(
                (phases, switch, hp0, hp1, suspect),
                (trigger, pe0, pe1, converged, crashed),
                (p0, p1, a0, a1),
            )| AbsState {
                w_phase: [phase_of(phases), phase_of(phases / 3)],
                s_phase: [phase_of(phases / 9), phase_of(phases / 27)],
                switch,
                haveping: [hp0, hp1],
                suspect,
                trigger,
                ping_enabled: [pe0, pe1],
                converged,
                crashed,
                pings: [p0, p1],
                acks: [a0, a1],
            },
        )
}

fn arb_cfg() -> impl Strategy<Value = IrConfig> {
    (0u8..4, 0u8..3, any::<bool>(), any::<bool>()).prop_map(|(sm, mm, strict_seq, allow_crash)| {
        // Conformance is stated against the executable machines, whose
        // abstraction saturates at the default cap — the IR's wider caps
        // are covered by the CNF round-trip and agreement suites instead.
        IrConfig {
            wire_cap: WIRE_CAP,
            strict_seq,
            allow_crash,
            subject_mutation: match sm {
                0 => SubjectMutation::None,
                1 => SubjectMutation::SkipPingDisable,
                2 => SubjectMutation::IgnoreTriggerGuard,
                _ => SubjectMutation::SkipTriggerUpdate,
            },
            model_mutation: match mm {
                0 => ModelMutation::None,
                1 => ModelMutation::DropPingSend,
                _ => ModelMutation::StaleAckReplay,
            },
        }
    })
}

/// The witness machine built from an abstract state's witness bits.
fn witness_of(s: &AbsState) -> WitnessMachine {
    WitnessMachine::from_parts(s.switch as usize, s.haveping, s.suspect)
}

/// The subject machine built from an abstract state's subject bits.
fn subject_of(s: &AbsState, cfg: &IrConfig) -> SubjectMachine {
    SubjectMachine::from_parts(
        s.trigger as usize,
        s.ping_enabled,
        [1, 1],
        cfg.strict_seq,
        cfg.subject_mutation,
    )
}

/// The unique successor of a deterministic IR action.
fn fire_one(ir: &Ir, s: &AbsState, id: ActionId) -> AbsState {
    let mut out = Vec::new();
    ir.fire(s, id, &mut out);
    assert!(!out.is_empty(), "{id:?} produced no successor");
    out[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Enabled-set and fire agreement for the witness machine (Alg. 1).
    #[test]
    fn witness_conforms(s in arb_abs_state(), cfg in arb_cfg()) {
        let ir = Ir::new(cfg);
        let machine = witness_of(&s);

        let mut from_machine: Vec<ActionId> = machine
            .enabled(s.w_phase)
            .into_iter()
            .map(|a| match a {
                WitnessAction::Hungry(i) => ActionId::WitnessHungry(i),
                WitnessAction::ExitCheck(i) => ActionId::WitnessExit(i),
            })
            .collect();
        let mut from_ir: Vec<ActionId> = Vec::new();
        ir.for_each_enabled(&s, |id| {
            if matches!(id, ActionId::WitnessHungry(_) | ActionId::WitnessExit(_)) {
                from_ir.push(id);
            }
        });
        let key = |id: &ActionId| format!("{id:?}");
        from_machine.sort_by_key(key);
        from_ir.sort_by_key(key);
        prop_assert_eq!(&from_machine, &from_ir, "enabled sets differ at {:?}", s);

        for id in from_ir {
            let (action, i) = match id {
                ActionId::WitnessHungry(i) => (WitnessAction::Hungry(i), i),
                ActionId::WitnessExit(i) => (WitnessAction::ExitCheck(i), i),
                _ => unreachable!(),
            };
            let mut m = machine.clone();
            let cmd = m.fire(action, s.w_phase);
            let t = fire_one(&ir, &s, id);
            // Machine bits: bit-identical via the packed byte.
            prop_assert_eq!(m.pack(), witness_of(&t).pack(), "machine bits after {:?}", id);
            // Phase effect: the host command's phase change is the IR's.
            let expected_phase = match cmd {
                WitnessCmd::BecomeHungry(j) => {
                    prop_assert_eq!(j, i);
                    DinerPhase::Hungry
                }
                WitnessCmd::Exit(j) => {
                    prop_assert_eq!(j, i);
                    DinerPhase::Thinking
                }
                WitnessCmd::SendAck(..) => unreachable!("not a local action command"),
            };
            prop_assert_eq!(t.w_phase[i], expected_phase);
        }
    }

    /// Enabled-set and fire agreement for the subject machine (Alg. 2),
    /// under every seeded mutation. The machine is crash-oblivious (its
    /// host stops scheduling it); the IR folds `¬crashed` into the guards.
    #[test]
    fn subject_conforms(s in arb_abs_state(), cfg in arb_cfg()) {
        let ir = Ir::new(cfg);
        let machine = subject_of(&s, &cfg);

        let mut from_machine: Vec<ActionId> = if s.crashed {
            Vec::new()
        } else {
            machine
                .enabled(s.s_phase)
                .into_iter()
                .map(|a| match a {
                    SubjectAction::Hungry(i) => ActionId::SubjectHungry(i),
                    SubjectAction::Ping(i) => ActionId::SubjectPing(i),
                    SubjectAction::Exit(i) => ActionId::SubjectExit(i),
                })
                .collect()
        };
        let mut from_ir: Vec<ActionId> = Vec::new();
        ir.for_each_enabled(&s, |id| {
            if matches!(
                id,
                ActionId::SubjectHungry(_) | ActionId::SubjectPing(_) | ActionId::SubjectExit(_)
            ) {
                from_ir.push(id);
            }
        });
        let key = |id: &ActionId| format!("{id:?}");
        from_machine.sort_by_key(key);
        from_ir.sort_by_key(key);
        prop_assert_eq!(&from_machine, &from_ir, "enabled sets differ at {:?}", s);

        for id in from_ir {
            let (action, i) = match id {
                ActionId::SubjectHungry(i) => (SubjectAction::Hungry(i), i),
                ActionId::SubjectPing(i) => (SubjectAction::Ping(i), i),
                ActionId::SubjectExit(i) => (SubjectAction::Exit(i), i),
                _ => unreachable!(),
            };
            let mut m = machine.clone();
            let cmd = m.fire(action, s.s_phase);
            let t = fire_one(&ir, &s, id);
            prop_assert_eq!(
                m.flag_bits(),
                subject_of(&t, &cfg).flag_bits(),
                "machine bits after {:?}",
                id
            );
            match cmd {
                SubjectCmd::BecomeHungry(j) => {
                    prop_assert_eq!(j, i);
                    prop_assert_eq!(t.s_phase[i], DinerPhase::Hungry);
                }
                SubjectCmd::SendPing(j, _) => {
                    prop_assert_eq!(j, i);
                    prop_assert_eq!(t.s_phase[i], s.s_phase[i], "ping keeps the phase");
                    // The wire effect honors the model mutation.
                    let expect = if cfg.model_mutation == ModelMutation::DropPingSend {
                        s.pings[i]
                    } else {
                        (s.pings[i] + 1).min(WIRE_CAP)
                    };
                    prop_assert_eq!(t.pings[i], expect);
                }
                SubjectCmd::Exit(j) => {
                    prop_assert_eq!(j, i);
                    prop_assert_eq!(t.s_phase[i], DinerPhase::Thinking);
                }
            }
        }
    }

    /// The message-triggered handlers: `W_p` against `DeliverPing`, `S_a`
    /// against `DeliverAck` / `DeliverStaleAck`.
    #[test]
    fn handlers_conform(s in arb_abs_state(), cfg in arb_cfg(), i in 0usize..2) {
        let ir = Ir::new(cfg);

        if s.pings[i] > 0 {
            let mut m = witness_of(&s);
            let cmd = m.on_ping(i, 1);
            prop_assert_eq!(cmd, WitnessCmd::SendAck(i, 1));
            let mut succ = Vec::new();
            ir.fire(&s, ActionId::DeliverPing(i), &mut succ);
            for t in &succ {
                prop_assert_eq!(m.pack(), witness_of(t).pack());
                // The model drops the ack on the floor iff q is a corpse.
                let expect = if s.crashed { s.acks[i] } else { (s.acks[i] + 1).min(WIRE_CAP) };
                prop_assert_eq!(t.acks[i], expect);
            }
        }

        if !s.crashed && s.acks[i] > 0 {
            // A current-sequence ack: accepted in every mode.
            let mut m = subject_of(&s, &cfg);
            m.on_ack(i, 1); // matches the seq the machine was built with
            let mut succ = Vec::new();
            ir.fire(&s, ActionId::DeliverAck(i), &mut succ);
            for t in &succ {
                prop_assert_eq!(m.flag_bits(), subject_of(t, &cfg).flag_bits());
            }
            // A stale ack: rejected iff strict (the IR models the rejected
            // branch as its own action, existing only in strict mode).
            let mut stale = subject_of(&s, &cfg);
            stale.on_ack(i, 99);
            if cfg.strict_seq {
                prop_assert!(ir.enabled(&s, ActionId::DeliverStaleAck(i)));
                let mut succ = Vec::new();
                ir.fire(&s, ActionId::DeliverStaleAck(i), &mut succ);
                for t in &succ {
                    prop_assert_eq!(stale.flag_bits(), subject_of(t, &cfg).flag_bits());
                    prop_assert_eq!(t.trigger, s.trigger, "rejected ack must not flip trigger");
                }
            } else {
                prop_assert!(!ir.enabled(&s, ActionId::DeliverStaleAck(i)));
                prop_assert_eq!(stale.flag_bits(), m.flag_bits(), "lenient mode applies any seq");
            }
        }
    }

    /// Simulation: along random concrete walks, every model transition is
    /// matched by an IR action whose successor is the abstracted post-state.
    #[test]
    fn concrete_walks_are_simulated(
        choices in prop::collection::vec(any::<u32>(), 1..80),
        cfg in arb_cfg(),
    ) {
        let ecfg = cfg.explore_config(0, 0);
        let ir = Ir::new(cfg);
        let mut state = PairState::initial(&ecfg);
        for &c in &choices {
            let succ = state.successors(&ecfg);
            if succ.is_empty() {
                break;
            }
            let (label, post) = &succ[(c as usize) % succ.len()];
            let pre_abs = AbsState::abstract_of(&state);
            let post_abs = AbsState::abstract_of(post);

            // The IR action(s) that may simulate this concrete label.
            let expected: Vec<ActionId> = match *label {
                TransitionLabel::Witness(WitnessAction::Hungry(i)) =>
                    vec![ActionId::WitnessHungry(i)],
                TransitionLabel::Witness(WitnessAction::ExitCheck(i)) =>
                    vec![ActionId::WitnessExit(i)],
                TransitionLabel::Subject(SubjectAction::Hungry(i)) =>
                    vec![ActionId::SubjectHungry(i)],
                TransitionLabel::Subject(SubjectAction::Ping(i)) =>
                    vec![ActionId::SubjectPing(i)],
                TransitionLabel::Subject(SubjectAction::Exit(i)) =>
                    vec![ActionId::SubjectExit(i)],
                TransitionLabel::DeliverPing(k) => {
                    let i = state.pings[k].0 as usize;
                    vec![ActionId::DeliverPing(i)]
                }
                TransitionLabel::DeliverAck(k) => {
                    let i = state.acks[k].0 as usize;
                    vec![ActionId::DeliverAck(i), ActionId::DeliverStaleAck(i)]
                }
                TransitionLabel::DuplicateAck(k) => {
                    let i = state.acks[k].0 as usize;
                    vec![ActionId::DuplicateAck(i)]
                }
                TransitionLabel::GrantWitness(i) => vec![ActionId::GrantWitness(i)],
                TransitionLabel::GrantSubject(i) => vec![ActionId::GrantSubject(i)],
                TransitionLabel::Converge => vec![ActionId::Converge],
                TransitionLabel::CrashSubject => vec![ActionId::CrashSubject],
            };

            let mut simulated = false;
            for &id in &expected {
                if !ir.enabled(&pre_abs, id) {
                    continue;
                }
                let mut out = Vec::new();
                ir.fire(&pre_abs, id, &mut out);
                if out.contains(&post_abs) {
                    simulated = true;
                    break;
                }
            }
            prop_assert!(
                simulated,
                "concrete {:?} not simulated: pre {:?} post {:?} (candidates {:?})",
                label, pre_abs, post_abs, expected
            );
            state = post.clone();
        }
    }
}
