//! End-to-end tests of the `dinefd` binary's flag surface: the
//! `--queue wheel|heap` backend selector (with its deprecated `--heap`
//! alias) and the `live` subcommand's soak + bench-report path.

use std::process::{Command, Output};

fn dinefd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dinefd")).args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Stdout minus the first summary line, which echoes the selected backend
/// (`queue=wheel` vs `queue=heap`) and so differs by construction; every
/// simulation-derived line below it must be byte-identical.
fn body(out: &Output) -> String {
    let s = stdout(out);
    s.split_once('\n').map(|(_, rest)| rest.to_owned()).unwrap_or(s)
}

const EXTRACT_BASE: [&str; 6] = ["extract", "--n", "4", "--horizon", "400", "--seed"];

#[test]
fn queue_heap_reproduces_the_wheel_byte_for_byte() {
    let wheel = dinefd(&[&EXTRACT_BASE[..], &["7", "--queue", "wheel"]].concat());
    let heap = dinefd(&[&EXTRACT_BASE[..], &["7", "--queue", "heap"]].concat());
    assert!(wheel.status.success(), "wheel run failed: {}", stderr(&wheel));
    assert!(heap.status.success(), "heap run failed: {}", stderr(&heap));
    assert_eq!(body(&wheel), body(&heap), "queue backends must not diverge");
    assert!(stdout(&wheel).contains("queue=wheel"));
    assert!(stdout(&heap).contains("queue=heap"));
    assert!(!stderr(&wheel).contains("deprecated"), "--queue must not warn");
    assert!(!stderr(&heap).contains("deprecated"), "--queue must not warn");
}

#[test]
fn deprecated_heap_alias_still_works_but_warns() {
    let alias = dinefd(&[&EXTRACT_BASE[..], &["7", "--heap"]].concat());
    let spelled = dinefd(&[&EXTRACT_BASE[..], &["7", "--queue", "heap"]].concat());
    assert!(alias.status.success(), "--heap run failed: {}", stderr(&alias));
    assert_eq!(stdout(&alias), stdout(&spelled), "alias must select the same backend");
    assert!(stdout(&alias).contains("queue=heap"), "alias must report the heap backend");
    assert!(
        stderr(&alias).contains("--heap is deprecated"),
        "alias must warn on stderr: {}",
        stderr(&alias)
    );
}

#[test]
fn unknown_queue_backend_is_a_usage_error() {
    let out = dinefd(&["extract", "--queue", "splay"]);
    assert_eq!(out.status.code(), Some(64));
    assert!(stderr(&out).contains("unknown queue backend"));

    let missing = dinefd(&["extract", "--queue"]);
    assert_eq!(missing.status.code(), Some(64));
}

#[test]
fn live_soak_runs_and_writes_the_bench_report() {
    let path = std::env::temp_dir().join(format!("dinefd_cli_bench_{}.json", std::process::id()));
    let path_s = path.to_str().expect("utf-8 temp path");
    let out = dinefd(&[
        "live",
        "--skip-matrix",
        "--n",
        "3",
        "--trials",
        "2",
        "--horizon-ms",
        "300",
        "--crash-at-ms",
        "100",
        "--bench-out",
        path_s,
    ]);
    assert!(out.status.success(), "live run failed: {} {}", stdout(&out), stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("msgs/sec"), "summary line missing: {text}");
    assert!(text.contains("gate OK"), "gate line missing: {text}");
    let json = std::fs::read_to_string(&path).expect("bench report written");
    std::fs::remove_file(&path).ok();
    assert!(json.contains("\"dinefd-bench/v1\""));
    assert!(json.contains("soak.p99_detection_ms"));
    assert!(json.contains("soak.msgs_per_sec"));
    assert!(json.contains("\"soak.gate_ok\": 1"));
}

#[test]
fn live_rejects_a_crash_outside_the_trial() {
    let out = dinefd(&["live", "--horizon-ms", "100", "--crash-at-ms", "100"]);
    assert_eq!(out.status.code(), Some(64));
    assert!(stderr(&out).contains("--crash-at-ms must be below --horizon-ms"));
}
