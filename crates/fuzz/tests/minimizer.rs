//! Unit/regression suite for the delta-debugging trace minimizer. The
//! three contract properties (same lemma, idempotent, never longer) are
//! checked over fuzzer-found traces for every safety-violating seeded
//! mutation, and one concrete stale-ack counterexample is pinned
//! label-for-label so a silent change in minimizer behavior fails loudly.

use dinefd_core::machines::{SubjectAction, WitnessAction};
use dinefd_explore::{
    ExploreConfig, ModelMutation, SubjectMutation, TransitionLabel, TransitionLabel as L,
};
use dinefd_fuzz::{execute, lemma_key, minimize, replay, Schedule};
use dinefd_sim::SplitMix64;

/// First violating path a fixed random-schedule sweep finds.
fn find_violating_path(cfg: &ExploreConfig, seed: u64) -> (Vec<TransitionLabel>, String) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..20_000 {
        let s = Schedule::random(&mut rng, 40);
        let out = execute(cfg, &s);
        if let Some(msg) = out.violation {
            return (out.path, msg);
        }
    }
    panic!("no violating schedule found under seed {seed}");
}

fn all_violating_cfgs() -> Vec<(&'static str, ExploreConfig)> {
    vec![
        (
            "skip-ping-disable",
            ExploreConfig {
                subject_mutation: SubjectMutation::SkipPingDisable,
                ..Default::default()
            },
        ),
        (
            "ignore-trigger-guard",
            ExploreConfig {
                subject_mutation: SubjectMutation::IgnoreTriggerGuard,
                ..Default::default()
            },
        ),
        (
            "stale-ack-replay",
            ExploreConfig { model_mutation: ModelMutation::StaleAckReplay, ..Default::default() },
        ),
    ]
}

#[test]
fn minimized_prefix_violates_the_same_lemma() {
    for (name, cfg) in all_violating_cfgs() {
        let (path, original_msg) = find_violating_path(&cfg, 1);
        let min = minimize(&cfg, &path).expect("violating path must minimize");
        assert_eq!(min.lemma, lemma_key(&original_msg), "{name}: lemma drifted");
        let out = replay(&cfg, &min.path).expect("minimized path must stay replayable");
        let (at, msg) = out.violation.unwrap_or_else(|| panic!("{name}: minimized path clean"));
        assert_eq!(at, min.path.len(), "{name}: violation not at the prefix end");
        assert_eq!(lemma_key(&msg), min.lemma, "{name}: replay shows a different lemma");
        assert_eq!(msg, min.message, "{name}: reported message does not match replay");
    }
}

#[test]
fn minimization_never_grows_and_is_idempotent() {
    for (name, cfg) in all_violating_cfgs() {
        for seed in [1u64, 2, 3] {
            let (path, _) = find_violating_path(&cfg, seed);
            let once = minimize(&cfg, &path).expect("violating path must minimize");
            assert!(
                once.path.len() <= path.len(),
                "{name}/{seed}: minimized {} > original {}",
                once.path.len(),
                path.len()
            );
            let twice = minimize(&cfg, &once.path).expect("minimized path must re-minimize");
            assert_eq!(once.path, twice.path, "{name}/{seed}: not a fixpoint");
            assert_eq!(once.message, twice.message, "{name}/{seed}: message unstable");
        }
    }
}

#[test]
fn clean_traces_do_not_minimize() {
    let cfg = ExploreConfig::default();
    assert!(minimize(&cfg, &[]).is_none(), "empty clean trace minimized");
    // A short legal faithful-model prefix replays clean, so it must not
    // minimize either.
    let legal = [L::Subject(SubjectAction::Hungry(0)), L::GrantSubject(0)];
    let out = replay(&cfg, &legal).expect("legal prefix replays");
    assert!(out.violation.is_none());
    assert!(minimize(&cfg, &legal).is_none());
}

#[test]
fn unreplayable_paths_are_rejected() {
    let cfg = ExploreConfig::default();
    // Exit(0) is never enabled in the initial state.
    assert!(replay(&cfg, &[L::Subject(SubjectAction::Exit(0))]).is_none());
    assert!(minimize(&cfg, &[L::Subject(SubjectAction::Exit(0))]).is_none());
}

/// Regression pin: a concrete stale-ack-replay counterexample trace from a
/// fuzzer run (seed 1), with the exact minimized prefix the ddmin pass
/// produced when this suite was written. The raw trace carries dead weight
/// — a `Converge`, a witness step, a second-instance detour — and the
/// minimizer must strip exactly down to the nine-label core: open DX_0,
/// ping it, deliver, duplicate the ack in flight, land one copy, then
/// re-enter hungry and exit while the stale twin is still in transit.
#[test]
fn pinned_stale_ack_regression() {
    let cfg = ExploreConfig { model_mutation: ModelMutation::StaleAckReplay, ..Default::default() };
    let raw = vec![
        L::Subject(SubjectAction::Hungry(0)),
        L::GrantSubject(0),
        L::Subject(SubjectAction::Ping(0)),
        L::DeliverPing(0),
        L::Converge,
        L::DuplicateAck(0),
        L::DeliverAck(1),
        L::Witness(WitnessAction::Hungry(0)),
        L::Subject(SubjectAction::Hungry(1)),
        L::GrantSubject(1),
        L::Subject(SubjectAction::Exit(0)),
    ];
    let expected_min = vec![
        L::Subject(SubjectAction::Hungry(0)),
        L::GrantSubject(0),
        L::Subject(SubjectAction::Ping(0)),
        L::DeliverPing(0),
        L::DuplicateAck(0),
        L::DeliverAck(1),
        L::Subject(SubjectAction::Hungry(1)),
        L::GrantSubject(1),
        L::Subject(SubjectAction::Exit(0)),
    ];
    let min = minimize(&cfg, &raw).expect("pinned trace must minimize");
    assert_eq!(min.lemma, "Lemma 3 violated");
    assert_eq!(
        min.message,
        "Lemma 3 violated: s_0 not eating, ping_0 = true, yet a DX_0 message is in transit"
    );
    assert_eq!(min.path, expected_min, "minimizer output drifted from the pinned regression");
    // And the pin itself is honest: the minimized prefix replays to the
    // same violation on the mutated model and is not further reducible.
    let again = minimize(&cfg, &expected_min).unwrap();
    assert_eq!(again.path, expected_min);
}
