//! The differential convergence harness: one logic core, two runtimes.
//!
//! A [`DiffScenario`] describes a heartbeat-◇P system abstractly — size,
//! seed, one optional crash, a GST, and a pre-GST delay profile — in units
//! that mean *ticks* under the simulator and *milliseconds* under the live
//! transport (the live runtime's 1 tick = 1 ms convention). The harness
//! runs the **identical** [`HeartbeatFd`] node on both substrates:
//!
//! * deterministic discrete-event [`World`] with a mirrored
//!   [`DelayModel`] (fixed or ramping pre-GST delay, bounded after), and
//! * [`LiveCluster`] over loopback TCP with the matching [`LinkFault`]
//!   proxy schedule,
//!
//! then reduces each run to a timing-free [`Verdict`]: the final suspicion
//! set of every correct watcher plus the extraction checks (eventual
//! strong accuracy, strong completeness, ◇P classification). The two
//! runtimes schedule events in completely unrelated orders, so raw traces
//! can never match — but the verdicts must: that is what "one logic core,
//! converging on whichever asynchrony it actually measures" means, and
//! [`DiffReport::assert_converged`] enforces it.

use dinefd_fd::{HeartbeatConfig, HeartbeatFd, OracleClass, SuspicionHistory};
use dinefd_runtime::{ProcessId, Runtime, SplitMix64, Time};
use dinefd_sim::{Adversary, CrashPlan, DelayModel, World, WorldConfig};

use crate::cluster::{LiveCluster, LiveConfig, LiveStats};
use crate::fault::LinkFault;

/// Post-GST delay bound mirrored on the sim side (the live loopback is
/// sub-millisecond after its proxies go clean, i.e. ≤ 1 tick).
const POST_GST_BOUND: u64 = 2;

/// One cell of the crash × delay × GST matrix. All times are in virtual
/// ticks ≡ live milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct DiffScenario {
    /// System size.
    pub n: usize,
    /// Seed for both runtimes' randomness.
    pub seed: u64,
    /// Heartbeat broadcast period (ticks / ms).
    pub period: u64,
    /// Optional single crash `(process, at)`.
    pub crash: Option<(ProcessId, u64)>,
    /// Global stabilization time; 0 means well-behaved from the start.
    pub gst: u64,
    /// Pre-GST per-message delay (ticks / ms); 0 means no added delay.
    pub delay: u64,
    /// If true the pre-GST delay ramps down linearly to zero at GST;
    /// otherwise it is fixed until GST.
    pub ramping: bool,
    /// Pre-GST per-frame drop probability on the live proxies, per mille.
    /// The simulator's channels are reliable by the paper's model, so this
    /// perturbs only the live side — legitimate pre-GST arbitrariness that
    /// the verdict must be insensitive to (heartbeats are idempotent).
    pub drop_per_mille: u16,
    /// Pre-GST one-slot reorder probability on the live proxies, per
    /// mille. The simulator is already non-FIFO, so no mirror is needed.
    pub reorder_per_mille: u16,
    /// Run length (ticks / ms).
    pub horizon: u64,
}

impl DiffScenario {
    /// A benign default cell: 3 processes, no crash, no pre-GST chaos.
    pub fn new(n: usize, seed: u64) -> Self {
        DiffScenario {
            n,
            seed,
            period: 8,
            crash: None,
            gst: 0,
            delay: 0,
            ramping: false,
            drop_per_mille: 0,
            reorder_per_mille: 0,
            horizon: 600,
        }
    }

    /// The crash plan this scenario induces.
    pub fn crash_plan(&self) -> CrashPlan {
        match self.crash {
            Some((pid, at)) => CrashPlan::one(pid, Time(at)),
            None => CrashPlan::none(),
        }
    }
}

/// The timing-free outcome both runtimes must agree on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Per correct watcher: the sorted set of peers it suspects at the end.
    pub final_suspicions: Vec<(ProcessId, Vec<ProcessId>)>,
    /// Did the run satisfy eventual strong accuracy?
    pub accuracy_ok: bool,
    /// Did the run satisfy strong completeness?
    pub completeness_ok: bool,
    /// Did the extraction classify the history as ◇P?
    pub eventually_perfect: bool,
}

/// Everything one runtime produced for a scenario.
#[derive(Clone, Debug)]
pub struct RuntimeOutcome {
    /// The timing-free summary used for convergence comparison.
    pub verdict: Verdict,
    /// The full suspicion history (timing-dependent; informational).
    pub history: SuspicionHistory,
    /// Wrongful-suspicion intervals summed over correct pairs.
    pub mistakes: usize,
}

/// The sim and live outcomes of one scenario, side by side.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// The scenario that was run.
    pub scenario: DiffScenario,
    /// Outcome under the deterministic simulator.
    pub sim: RuntimeOutcome,
    /// Outcome under the live loopback-TCP runtime.
    pub live: RuntimeOutcome,
    /// Transport counters of the live run.
    pub live_stats: LiveStats,
}

impl DiffReport {
    /// Whether the two runtimes reached the same verdict.
    pub fn converged(&self) -> bool {
        self.sim.verdict == self.live.verdict
    }

    /// Panics with a side-by-side diff if the runtimes diverged or either
    /// failed its extraction checks.
    pub fn assert_converged(&self) {
        assert!(
            self.converged(),
            "sim and live diverged on {:?}\n  sim:  {:?}\n  live: {:?}",
            self.scenario,
            self.sim.verdict,
            self.live.verdict,
        );
        assert!(
            self.sim.verdict.accuracy_ok
                && self.sim.verdict.completeness_ok
                && self.sim.verdict.eventually_perfect,
            "converged, but on a failing verdict: {:?} for {:?}",
            self.sim.verdict,
            self.scenario,
        );
    }
}

/// Sim-side mirror of [`LinkFault::ramping_delay`]: delay shrinks linearly
/// from `delay` at t=0 to the post-GST bound at GST.
#[derive(Debug)]
struct RampAdversary {
    gst: u64,
    delay: u64,
}

impl Adversary for RampAdversary {
    fn delay(&mut self, _: ProcessId, _: ProcessId, now: Time, rng: &mut SplitMix64) -> u64 {
        if now.0 >= self.gst {
            return 1 + rng.below(POST_GST_BOUND);
        }
        let remaining = self.gst - now.0;
        (self.delay.saturating_mul(remaining) / self.gst.max(1)).max(1)
    }
}

fn delay_model(s: &DiffScenario) -> DelayModel {
    if s.gst == 0 || s.delay == 0 {
        return DelayModel::Fixed(1);
    }
    if s.ramping {
        DelayModel::Scripted(Box::new(RampAdversary { gst: s.gst, delay: s.delay }))
    } else {
        DelayModel::PartialSync {
            gst: Time(s.gst),
            pre: Box::new(DelayModel::Fixed(s.delay)),
            bound: POST_GST_BOUND,
        }
    }
}

fn link_fault(s: &DiffScenario) -> LinkFault {
    let mut fault = if s.gst == 0 || s.delay == 0 {
        LinkFault::clean()
    } else if s.ramping {
        LinkFault::ramping_delay(s.gst, s.delay)
    } else {
        LinkFault::fixed_delay(s.gst, s.delay)
    };
    if s.drop_per_mille > 0 || s.reorder_per_mille > 0 {
        fault.gst_ms = fault.gst_ms.max(s.gst);
        fault.drop_per_mille = s.drop_per_mille;
        fault.reorder_per_mille = s.reorder_per_mille;
    }
    fault
}

fn nodes_for(s: &DiffScenario) -> Vec<HeartbeatFd> {
    let cfg = HeartbeatConfig { n: s.n, period: s.period, initial_timeout_periods: 4 };
    (0..s.n).map(|_| HeartbeatFd::new(cfg)).collect()
}

fn verdict_of(
    s: &DiffScenario,
    history: SuspicionHistory,
    suspects: impl Fn(ProcessId, ProcessId) -> bool,
) -> RuntimeOutcome {
    let plan = s.crash_plan();
    let mut final_suspicions = Vec::new();
    for w in plan.correct(s.n) {
        let suspected: Vec<ProcessId> =
            ProcessId::all(s.n).filter(|&q| q != w && suspects(w, q)).collect();
        final_suspicions.push((w, suspected));
    }
    let accuracy = history.eventual_strong_accuracy(&plan);
    let completeness = history.strong_completeness(&plan);
    let classes = history.classify(&plan);
    let mut mistakes = 0;
    for w in plan.correct(s.n) {
        for q in plan.correct(s.n) {
            if w != q {
                mistakes += history.mistake_intervals(w, q);
            }
        }
    }
    RuntimeOutcome {
        verdict: Verdict {
            final_suspicions,
            accuracy_ok: accuracy.is_ok(),
            completeness_ok: completeness.is_ok(),
            eventually_perfect: classes.contains(&OracleClass::EventuallyPerfect),
        },
        history,
        mistakes,
    }
}

/// Runs the scenario under the deterministic simulator.
pub fn run_sim(s: &DiffScenario) -> RuntimeOutcome {
    let wcfg = WorldConfig::new(s.seed).delays(delay_model(s)).crashes(s.crash_plan());
    let mut world = World::new(nodes_for(s), wcfg);
    world.run_until(Time(s.horizon));
    let mut history = SuspicionHistory::new(s.n, false);
    for (at, pid, obs) in world.trace().observations() {
        history.record(at, pid, obs.subject, obs.suspected);
    }
    verdict_of(s, history, |w, q| world.node(w).suspects(q))
}

/// Runs the scenario on the live loopback-TCP runtime.
pub fn run_live(s: &DiffScenario) -> (RuntimeOutcome, LiveStats) {
    let mut cfg = LiveConfig::new(s.seed).fault(link_fault(s));
    if let Some((pid, at)) = s.crash {
        cfg = cfg.crash(pid, at);
    }
    let mut cluster = LiveCluster::new(nodes_for(s), cfg);
    let obs = cluster.run_to_horizon(Time(s.horizon));
    let mut history = SuspicionHistory::new(s.n, false);
    for rec in &obs {
        history.record(rec.at, rec.who, rec.obs.subject, rec.obs.suspected);
    }
    let stats = *cluster.stats();
    (verdict_of(s, history, |w, q| cluster.node(w).suspects(q)), stats)
}

/// Runs one scenario on both runtimes and pairs up the outcomes.
pub fn run_differential(s: &DiffScenario) -> DiffReport {
    let sim = run_sim(s);
    let (live, live_stats) = run_live(s);
    DiffReport { scenario: *s, sim, live, live_stats }
}
