//! Replaying a recorded suspicion history as a live oracle.
//!
//! The reduction's output is recorded as a [`SuspicionHistory`]; wrapping it
//! in a [`ReplayOracle`] lets any `FdQuery` consumer (the dining algorithms,
//! leader election, consensus) run against *exactly* the detector the
//! reduction produced in some earlier run — the cleanest way to demonstrate
//! that the extracted oracle is usable, without entangling two simulations.

use dinefd_fd::{FdQuery, SuspicionHistory};
use dinefd_sim::{ProcessId, Time};

/// An `FdQuery` that answers from a recorded suspicion history.
#[derive(Clone, Debug)]
pub struct ReplayOracle {
    history: SuspicionHistory,
}

impl ReplayOracle {
    /// Wraps a recorded history.
    pub fn new(history: SuspicionHistory) -> Self {
        ReplayOracle { history }
    }

    /// The wrapped history.
    pub fn history(&self) -> &SuspicionHistory {
        &self.history
    }

    /// Serializes the recorded detector to JSON — e.g. to archive the
    /// output of an expensive extraction run.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.history).expect("history is serializable")
    }

    /// Restores a detector from [`ReplayOracle::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        Ok(ReplayOracle { history: serde_json::from_str(json)? })
    }
}

impl FdQuery for ReplayOracle {
    fn suspected(&self, watcher: ProcessId, subject: ProcessId, now: Time) -> bool {
        if watcher == subject {
            return false;
        }
        self.history.timeline(watcher, subject).value_at(now)
    }

    fn len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_preserves_answers() {
        let mut h = SuspicionHistory::new(3, true);
        h.record(Time(10), ProcessId(0), ProcessId(1), false);
        h.record(Time(50), ProcessId(0), ProcessId(2), false);
        h.record(Time(90), ProcessId(0), ProcessId(2), true);
        let original = ReplayOracle::new(h);
        let restored = ReplayOracle::from_json(&original.to_json()).unwrap();
        for w in 0..3u32 {
            for s in 0..3u32 {
                for t in [0u64, 10, 49, 50, 89, 90, 1000] {
                    assert_eq!(
                        original.suspected(ProcessId(w), ProcessId(s), Time(t)),
                        restored.suspected(ProcessId(w), ProcessId(s), Time(t)),
                        "mismatch at ({w},{s},{t})"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_matches_recorded_timeline() {
        let mut h = SuspicionHistory::new(2, true);
        h.record(Time(10), ProcessId(0), ProcessId(1), false);
        h.record(Time(50), ProcessId(0), ProcessId(1), true);
        h.record(Time(60), ProcessId(0), ProcessId(1), false);
        let o = ReplayOracle::new(h);
        assert!(o.suspected(ProcessId(0), ProcessId(1), Time(0)));
        assert!(!o.suspected(ProcessId(0), ProcessId(1), Time(10)));
        assert!(o.suspected(ProcessId(0), ProcessId(1), Time(55)));
        assert!(!o.suspected(ProcessId(0), ProcessId(1), Time(100)));
        assert!(!o.suspected(ProcessId(1), ProcessId(1), Time(0)), "never self-suspects");
        assert_eq!(o.len(), 2);
    }
}
