//! Quickstart: extract ◇P from a black-box WF-◇WX dining service.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dinefd::prelude::*;

fn main() {
    // p0 monitors p1. The black box is the ◇P-based wait-free dining
    // algorithm; its internal oracle makes scripted mistakes until t=2000.
    // p1 crashes at t=8000.
    let mut sc = Scenario::pair(BlackBox::WfDx, 42);
    sc.crashes = CrashPlan::one(ProcessId(1), Time(8_000));
    let crashes = sc.crashes.clone();
    println!("running the reduction: p0 watches p1, p1 crashes at t=8000 …");
    let result = run_extraction(sc);

    // Strong completeness: the crash is eventually permanently suspected.
    let detections = result
        .history
        .strong_completeness(&crashes)
        .expect("crashed subject must be permanently suspected");
    let d = &detections[0];
    println!(
        "p1 crashed at t={} → permanently suspected from t={} (latency {} ticks)",
        d.crashed_at,
        d.detected_from,
        d.detected_from - d.crashed_at
    );

    // Before the crash, the extracted output behaved like ◇P: finitely many
    // wrongful suspicions of the then-live p1.
    let mistakes = result.history.mistake_intervals(ProcessId(0), ProcessId(1));
    println!("wrongful-suspicion intervals while p1 was live: {mistakes}");

    // The whole run classifies as an eventually perfect detector.
    let classes = result.history.classify(&crashes);
    println!(
        "oracle classes consistent with this run: {}",
        classes.iter().map(|c| c.symbol()).collect::<Vec<_>>().join(", ")
    );
    assert!(classes.contains(&OracleClass::EventuallyPerfect));
    println!("⇒ the reduction extracted ◇P, as Theorems 1 & 2 predict.");
}
