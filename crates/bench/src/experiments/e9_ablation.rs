//! E9 — ablations of the reduction's design choices.
//!
//! (a) **Why two instances**: three extractors — the paper's two-instance
//! reduction, the natural single-instance variant (subject exits properly),
//! and the flawed heartbeat construction of reference \[8\] — against three
//! legal black boxes: a FIFO-fair service, the §3 delayed-convergence
//! service, and the §5.1 escalating-unfairness service. Only the paper's
//! design is ◇P on all of them.
//!
//! (b) **Scheduling granularity**: the reduction's self-tick period sweeps
//! from eager to lazy; correctness must be unaffected (only latency and
//! message volume move).

use dinefd_core::{
    run_extraction, run_flawed_pair, run_single_pair, BlackBox, OracleSpec, Scenario,
};
use dinefd_sim::{CrashPlan, ProcessId, Time};

use crate::table::{Report, Table};
use crate::{parallel_map, ExperimentConfig};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extractor {
    Paper,
    SingleInstance,
    FlawedCm,
}

fn run_one(ex: Extractor, bb: BlackBox, seed: u64, horizon: Time) -> (u64, bool) {
    let history = match ex {
        Extractor::Paper => {
            let mut sc = Scenario::pair(bb, seed);
            sc.oracle = OracleSpec::Perfect { lag: 20 };
            sc.horizon = horizon;
            run_extraction(sc).history
        }
        Extractor::SingleInstance => run_single_pair(bb, seed, CrashPlan::none(), horizon),
        Extractor::FlawedCm => run_flawed_pair(bb, seed, CrashPlan::none(), horizon),
    };
    let mistakes = history.mistake_intervals(ProcessId(0), ProcessId(1)) as u64;
    let converged = history.eventual_strong_accuracy(&CrashPlan::none()).is_ok();
    (mistakes, converged)
}

/// Runs E9 and returns the report.
pub fn run(cfg: &ExperimentConfig) -> Report {
    let horizon = Time(40_000);
    let t_wx = Time(1_500);
    let mut matrix = Table::new(
        "Extractor × black box: wrongful-suspicion intervals (mean) and ◇P-accuracy rate",
        &["extractor", "fair (abstract)", "delayed-convergence (§3)", "escalating-unfair (§5.1)"],
    );
    let boxes = [
        BlackBox::Abstract { convergence: t_wx },
        BlackBox::Delayed { convergence: t_wx },
        BlackBox::Unfair { convergence: t_wx },
    ];
    for (name, ex) in [
        ("paper (two instances)", Extractor::Paper),
        ("single instance", Extractor::SingleInstance),
        ("flawed [8] (heartbeats)", Extractor::FlawedCm),
    ] {
        let mut cells = vec![name.to_string()];
        for bb in boxes {
            let results =
                parallel_map(0..cfg.seeds, move |seed| run_one(ex, bb, 9_000 + seed, horizon));
            let mean = results.iter().map(|&(m, _)| m as f64).sum::<f64>() / results.len() as f64;
            let conv = results.iter().filter(|&&(_, c)| c).count();
            cells.push(format!("{mean:.0} mistakes, {conv}/{} ◇P", results.len()));
        }
        matrix.row(cells);
    }

    let mut ticks = Table::new(
        "Self-tick period ablation (paper reduction, wfdx box, crash at 8k)",
        &["tick period", "runs", "complete", "accurate", "detect latency (mean)", "msgs (mean)"],
    );
    for tick_every in [1u64, 4, 16, 64] {
        let results = parallel_map(0..cfg.seeds, move |seed| {
            let mut sc = Scenario::pair(BlackBox::WfDx, 9_500 + seed);
            sc.tick_every = tick_every;
            sc.crashes = CrashPlan::one(ProcessId(1), Time(8_000));
            sc.horizon = Time(40_000);
            let crashes = sc.crashes.clone();
            let res = run_extraction(sc);
            let complete = res.history.strong_completeness(&crashes);
            let latency = complete.as_ref().ok().map(|d| d[0].detected_from - d[0].crashed_at);
            let accurate = res.history.eventual_strong_accuracy(&crashes).is_ok();
            (complete.is_ok(), accurate, latency, res.messages_sent)
        });
        let complete = results.iter().filter(|r| r.0).count();
        let accurate = results.iter().filter(|r| r.1).count();
        let lat: Vec<f64> = results.iter().filter_map(|r| r.2).map(|l| l as f64).collect();
        let lat_mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
        let msgs = results.iter().map(|r| r.3 as f64).sum::<f64>() / results.len() as f64;
        ticks.row(vec![
            tick_every.to_string(),
            results.len().to_string(),
            format!("{complete}/{}", results.len()),
            format!("{accurate}/{}", results.len()),
            format!("{lat_mean:.0}"),
            format!("{msgs:.0}"),
        ]);
    }

    Report {
        title: "E9 — design ablations: why two instances; scheduling granularity".into(),
        preamble: "The matrix realizes the paper's §5.1 remark: WF-◇WX guarantees no \
                   fairness, so one dining instance cannot throttle the witness — a \
                   legal box with escalating watcher bias makes the single-instance \
                   extractor (and [8]'s heartbeat variant) suspect a correct process \
                   forever, while the paper's two-instance hand-off converges on every \
                   box. The tick sweep shows the reduction's correctness is untouched \
                   by scheduling granularity; only latency/message volume trade off."
            .into(),
        tables: vec![matrix, ticks],
        notes: vec![],
        metrics: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_only_the_paper_survives_every_box() {
        let cfg = ExperimentConfig { seeds: 2 };
        let report = run(&cfg);
        let rows = &report.tables[0].rows;
        // Paper row: ◇P everywhere.
        for cell in &rows[0][1..] {
            assert!(cell.contains("2/2 ◇P"), "paper failed somewhere: {cell}");
        }
        // Single instance: fails on the unfair box.
        assert!(rows[1][3].contains("0/2 ◇P"), "single-instance should fail: {}", rows[1][3]);
        // Flawed [8]: fails on the delayed box.
        assert!(rows[2][2].contains("0/2 ◇P"), "flawed should fail: {}", rows[2][2]);
        // Tick sweep never breaks correctness.
        for row in &report.tables[1].rows {
            assert!(row[2].starts_with("2/"), "completeness broke: {row:?}");
            assert!(row[3].starts_with("2/"), "accuracy broke: {row:?}");
        }
    }
}
