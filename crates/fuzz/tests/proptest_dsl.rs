//! Property tests for the unified scenario DSL, plus the cross-engine
//! agreement checks: one scenario document must mean the same thing to
//! the simulator, the bounded explorer, and the fuzzer.

use dinefd_explore::{explore, ExploreConfig};
use dinefd_fuzz::{fuzz_scenario, lemma_key};
use dinefd_sim::scenario_dsl::{
    DelaySpec, FuzzSection, ModelMutationSpec, ModelSection, Scenario, SimSection,
    SubjectMutationSpec,
};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

fn flat_delay_spec() -> BoxedStrategy<DelaySpec> {
    prop_oneof![
        (1u64..100).prop_map(DelaySpec::Fixed),
        (1u64..50, 0u64..50).prop_map(|(lo, extra)| DelaySpec::Uniform { lo, hi: lo + extra }),
        (1u64..20, 0u64..20, 1u64..10, 0u64..200).prop_map(|(lo, extra, num, spike_extra)| {
            DelaySpec::HeavyTail {
                lo,
                hi: lo + extra,
                spike_num: num,
                spike_den: num + 9,
                spike_hi: lo + extra + spike_extra,
            }
        }),
        (0u64..5_000, 1u64..64).prop_map(|(gst, bound)| DelaySpec::PartialSync { gst, bound }),
    ]
    .boxed()
}

fn delay_spec() -> BoxedStrategy<DelaySpec> {
    prop_oneof![
        flat_delay_spec(),
        flat_delay_spec().prop_map(|inner| DelaySpec::Fifo(Box::new(inner))),
    ]
    .boxed()
}

fn model_section() -> BoxedStrategy<ModelSection> {
    (
        (1u32..40, 1u64..5_000_000, any::<bool>(), any::<bool>(), any::<bool>()),
        prop_oneof![
            Just(SubjectMutationSpec::None),
            Just(SubjectMutationSpec::SkipPingDisable),
            Just(SubjectMutationSpec::IgnoreTriggerGuard),
            Just(SubjectMutationSpec::SkipTriggerUpdate),
        ],
        prop_oneof![
            Just(ModelMutationSpec::None),
            Just(ModelMutationSpec::DropPingSend),
            Just(ModelMutationSpec::StaleAckReplay),
        ],
    )
        .prop_map(
            |(
                (max_depth, max_states, strict_seq, allow_crash, start_converged),
                subject_mutation,
                model_mutation,
            )| ModelSection {
                max_depth,
                max_states,
                strict_seq,
                allow_crash,
                start_converged,
                subject_mutation,
                model_mutation,
            },
        )
        .boxed()
}

fn sim_section() -> BoxedStrategy<SimSection> {
    (
        (2u32..8, 1u32..9),
        any::<u64>(),
        1u64..100_000,
        delay_spec(),
        proptest::collection::vec(0u64..9_999, 0..4),
    )
        .prop_map(|((n, threads), seed, horizon, delay, crash_ticks)| {
            // Distinct pids below n: pid i crashes at crash_ticks[i].
            let crashes = crash_ticks
                .into_iter()
                .enumerate()
                .map(|(i, at)| (i as u32 % n, at))
                .filter({
                    let mut seen = std::collections::HashSet::new();
                    move |&(pid, _)| seen.insert(pid)
                })
                .collect();
            SimSection { n, seed, horizon, delay, crashes, threads }
        })
        .boxed()
}

fn scenario() -> BoxedStrategy<Scenario> {
    (model_section(), sim_section(), (any::<u64>(), 1u64..100_000, 1u32..200, 0u32..64))
        .prop_map(|(model, sim, (seed, iterations, max_steps, corpus_seeds))| Scenario {
            model,
            sim,
            fuzz: FuzzSection { seed, iterations, max_steps, corpus_seeds },
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ render = id on every valid scenario.
    #[test]
    fn render_parse_round_trips(s in scenario()) {
        let text = s.render();
        let back = Scenario::parse(&text);
        prop_assert_eq!(back.as_ref().ok(), Some(&s), "no round trip for:\n{}", text);
        // Canonical form is a fixpoint: render ∘ parse ∘ render = render.
        prop_assert_eq!(back.unwrap().render(), text);
    }

    /// Corrupting any single line of a canonical document is rejected with
    /// exactly that line's number.
    #[test]
    fn corruption_is_rejected_with_the_right_line(s in scenario(), at in 0usize..100) {
        let text = s.render();
        let mut lines: Vec<&str> = text.lines().collect();
        let at = at % (lines.len() + 1);
        lines.insert(at, "?? this is not a scenario line");
        let corrupted = lines.join("\n");
        let e = Scenario::parse(&corrupted).expect_err("corrupted doc must be rejected");
        prop_assert_eq!(e.line, at + 1, "wrong line in `{}`", e);
    }

    /// Unknown keys are rejected wherever they appear, with their line.
    #[test]
    fn unknown_keys_carry_their_line(section in prop_oneof![Just("model"), Just("sim"), Just("fuzz")]) {
        let text = format!("[{section}]\n\nbogus_key = 1\n");
        let e = Scenario::parse(&text).expect_err("unknown key must be rejected");
        prop_assert_eq!(e.line, 3);
        prop_assert!(e.message.contains("bogus_key"), "message lost the key: {}", e);
    }
}

/// Malformed-input corpus with exact line attribution (the non-random
/// complement of the proptest corruption case).
#[test]
fn malformed_scenarios_are_rejected_with_lines() {
    let cases: &[(&str, usize)] = &[
        ("[model]\nmax_depth = -3\n", 2),
        ("[model]\nsubject_mutation = drop-ping-send\n", 2), // wire bug in the wrong slot
        ("[model]\nmodel_mutation = skip-ping-disable\n", 2),
        ("[sim]\ndelay = uniform 1\n", 2),
        ("[sim]\ndelay = heavy_tail 1 4 2/0 100\n", 2),
        ("[sim]\ndelay = heavy_tail 4 1 1/10 100\n", 2),
        ("[sim]\ncrash = one@100\n", 2),
        ("[fuzz]\nmax_steps = 0\n", 2),
        ("[fuzz]\nmax_steps = 9999999999999\n", 2),
        ("# comment\n[model]\n[sim\n", 3),
    ];
    for (text, want_line) in cases {
        let e = Scenario::parse(text).expect_err(text);
        assert_eq!(e.line, *want_line, "wrong line for {text:?}: {e}");
        assert!(e.to_string().starts_with(&format!("scenario line {want_line}")), "{e}");
    }
}

/// Sim-vs-explorer agreement: for scenarios whose `[model]` section seeds a
/// bug, every lemma the *fuzzer* reports must also be reported by the
/// bounded explorer running the same document — and on the faithful
/// document both engines (and the simulator's own checkers) are clean.
#[test]
fn engines_agree_on_the_same_scenario_file() {
    let docs = [
        "[model]\nsubject_mutation = ignore-trigger-guard\nmax_depth = 8\n\
         \n[fuzz]\nseed = 1\niterations = 1500\nmax_steps = 30\ncorpus_seeds = 8\n",
        "[model]\nmodel_mutation = stale-ack-replay\nmax_depth = 16\n\
         \n[fuzz]\nseed = 1\niterations = 4000\nmax_steps = 40\ncorpus_seeds = 16\n",
        "[model]\n\n[fuzz]\nseed = 1\niterations = 500\nmax_steps = 30\ncorpus_seeds = 8\n",
    ];
    for text in docs {
        let doc = Scenario::parse(text).expect("agreement scenario parses");
        let fuzz_report = fuzz_scenario(&doc);
        let explore_report = explore(&ExploreConfig::from_scenario(&doc));
        for f in &fuzz_report.findings {
            assert!(
                explore_report.violations.iter().any(|v| lemma_key(v) == f.lemma),
                "fuzzer found `{}` but the explorer (same scenario) reports only {:?}",
                f.lemma,
                explore_report.violations,
            );
        }
        if doc.model.subject_mutation == SubjectMutationSpec::None
            && doc.model.model_mutation == ModelMutationSpec::None
        {
            assert!(fuzz_report.findings.is_empty(), "fuzzer flagged the faithful scenario");
            assert!(explore_report.clean(), "explorer flagged the faithful scenario");
        } else {
            assert!(!fuzz_report.findings.is_empty(), "fuzzer missed the seeded bug in {text}");
        }
    }
}

/// The `[sim]` section drives the actual discrete-event engine: the same
/// document yields byte-identical extraction metrics across reruns, and
/// the delay/crash knobs demonstrably reach the world.
#[test]
fn scenario_file_drives_the_simulator_deterministically() {
    let doc = Scenario::parse(
        "[sim]\nn = 3\nseed = 7\nhorizon = 6000\ndelay = partial_sync 1500 8\ncrash = 2@3000\n",
    )
    .unwrap();
    let run = |doc: &Scenario| {
        dinefd_core::run_extraction(dinefd_core::Scenario::from_dsl(
            doc,
            dinefd_core::BlackBox::WfDx,
        ))
    };
    let a = run(&doc);
    let b = run(&doc);
    assert_eq!(a.metrics, b.metrics, "same scenario, same seed, different run");
    assert_eq!(a.metrics["crash_events"], 1, "the DSL crash line must reach the world");
    assert!(a.metrics["messages_delivered"] > 0);

    // Changing only the DSL seed changes the run (the knob is live).
    let mut reseeded = doc.clone();
    reseeded.sim.seed = 8;
    let c = run(&reseeded);
    assert_ne!(
        a.metrics["messages_delivered"], c.metrics["messages_delivered"],
        "sim seed knob appears dead"
    );
}
