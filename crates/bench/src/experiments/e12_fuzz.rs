//! E12 — coverage-guided schedule fuzzing over the seeded-mutation matrix:
//! the fuzzer must find a lemma-violating schedule (with a replay-confirmed,
//! ddmin-minimized prefix) for every safety-violating mutation within a
//! fixed deterministic iteration budget, stay silent on the safety-silent
//! controls and the faithful model, and produce byte-identical corpora and
//! metrics across reruns — every `e12.*` key below is diffed against the
//! committed baseline in CI.

use dinefd_explore::ExploreConfig;
use dinefd_fuzz::{fuzz_scenario, replay, FuzzReport};
use dinefd_sim::scenario_dsl::Scenario;
use dinefd_sim::MetricMap;

use crate::table::{Report, Table};
use crate::ExperimentConfig;

/// The fuzzed configurations: `(stable key, expect a finding, [model] body)`.
fn configs() -> Vec<(&'static str, bool, &'static str)> {
    vec![
        ("faithful", false, ""),
        ("skip_ping_disable", true, "subject_mutation = skip-ping-disable"),
        ("ignore_trigger_guard", true, "subject_mutation = ignore-trigger-guard"),
        ("stale_ack_replay", true, "model_mutation = stale-ack-replay"),
        ("skip_trigger_update", false, "subject_mutation = skip-trigger-update"),
        ("drop_ping_send", false, "model_mutation = drop-ping-send"),
    ]
}

fn scenario_for(model_body: &str, iterations: u64) -> Scenario {
    let text = format!(
        "[model]\n{model_body}\n\n[fuzz]\nseed = 1\niterations = {iterations}\n\
         max_steps = 40\ncorpus_seeds = 16\n"
    );
    Scenario::parse(&text).expect("e12 scenario matrix parses")
}

fn campaign(model_body: &str, iterations: u64) -> FuzzReport {
    fuzz_scenario(&scenario_for(model_body, iterations))
}

/// Runs E12 and returns the report.
pub fn run(cfg: &ExperimentConfig) -> Report {
    // Budgets are iteration-counted (never wall-clock), so the whole
    // experiment — including the corpus digests — is a pure function of
    // the profile. Quick keeps an ~8x margin over the slowest observed
    // time-to-find; full roughly triples it.
    let iterations: u64 = if cfg.seeds <= 3 { 4_000 } else { 12_000 };

    let mut table = Table::new(
        "Coverage-guided schedule fuzzing per seeded mutation (seed 1)",
        &[
            "config",
            "expect",
            "found",
            "first find (iter)",
            "lemma",
            "raw / min steps",
            "coverage",
            "corpus",
            "verdict",
        ],
    );
    let mut metrics = MetricMap::new();
    let mut as_expected = 0u64;
    let mut safety_bugs_found = 0u64;
    let mut controls_silent = 0u64;

    for (key, expect_finding, model_body) in configs() {
        let report = campaign(model_body, iterations);
        let found = !report.findings.is_empty();
        let matches = found == expect_finding;
        as_expected += matches as u64;
        if expect_finding && found {
            safety_bugs_found += 1;
        }
        if !expect_finding && !found {
            controls_silent += 1;
        }

        // Replay-confirm every minimized prefix against the same scenario's
        // model — a finding that does not reproduce does not count.
        let explore_cfg = ExploreConfig::from_scenario(&scenario_for(model_body, iterations));
        let mut confirmed = 0u64;
        for f in &report.findings {
            let out = replay(&explore_cfg, &f.minimized)
                .unwrap_or_else(|| panic!("{key}: minimized prefix not replayable"));
            let (_, msg) =
                out.violation.unwrap_or_else(|| panic!("{key}: minimized prefix replays clean"));
            assert_eq!(dinefd_fuzz::lemma_key(&msg), f.lemma, "{key}: lemma drifted in replay");
            confirmed += 1;
        }

        let (lemma, raw_min) = match report.findings.first() {
            Some(f) => (f.lemma.clone(), format!("{} / {}", f.path.len(), f.minimized.len())),
            None => ("-".into(), "-".into()),
        };
        table.row(vec![
            key.to_string(),
            if expect_finding { "finding".into() } else { "silent".to_string() },
            found.to_string(),
            report.first_find_iter.map_or("-".into(), |i| i.to_string()),
            lemma,
            raw_min,
            report.coverage_states.to_string(),
            report.corpus_entries.to_string(),
            if matches { "as expected".into() } else { "UNEXPECTED".to_string() },
        ]);

        metrics.insert(format!("{key}_found"), found as u64);
        metrics.insert(format!("{key}_first_find_iter"), report.first_find_iter.unwrap_or(0));
        metrics.insert(format!("{key}_findings"), report.findings.len() as u64);
        metrics.insert(format!("{key}_confirmed"), confirmed);
        metrics.insert(format!("{key}_coverage_states"), report.coverage_states);
        metrics.insert(format!("{key}_corpus_entries"), report.corpus_entries);
        metrics.insert(format!("{key}_corpus_digest"), report.corpus_digest);
        metrics.insert(format!("{key}_executions"), report.executions);
        metrics.insert(format!("{key}_minimize_tests"), report.minimize_tests);
        metrics.insert(
            format!("{key}_minimized_len"),
            report.findings.iter().map(|f| f.minimized.len() as u64).sum(),
        );
        metrics.insert(format!("{key}_as_expected"), matches as u64);
    }

    // Coverage growth on the faithful model: deterministic sequential
    // execution means the k-iteration run IS the prefix of the full run,
    // so checkpoints come from independent (cheap) reruns.
    let mut curve = Table::new(
        "Coverage growth, faithful model (distinct states vs iterations)",
        &["iterations", "coverage", "corpus"],
    );
    for frac in [8u64, 4, 2, 1] {
        let iters = iterations / frac;
        let r = campaign("", iters);
        curve.row(vec![
            iters.to_string(),
            r.coverage_states.to_string(),
            r.corpus_entries.to_string(),
        ]);
        metrics.insert(format!("curve_{iters}_coverage"), r.coverage_states);
    }

    metrics.insert("configs".into(), configs().len() as u64);
    metrics.insert("configs_as_expected".into(), as_expected);
    metrics.insert("safety_bugs_found".into(), safety_bugs_found);
    metrics.insert("controls_silent".into(), controls_silent);
    metrics.insert("iterations_budget".into(), iterations);

    Report {
        title: "E12 — coverage-guided schedule fuzzing (seeded-mutation matrix)".into(),
        preamble: "A coverage-guided fuzzer mutates decision-word schedules against the \
                   closed pair model, using bit-packed state-codec fingerprints as the \
                   novelty signal and the safety lemmas as the oracle. Within a fixed \
                   deterministic iteration budget it must rediscover a violating \
                   schedule for every safety-violating seeded mutation — each shrunk by \
                   removal-only delta debugging to a locally-minimal prefix and \
                   replay-confirmed against the same scenario — while the safety-silent \
                   mutations and the faithful model stay finding-free. Identical seeds \
                   produce byte-identical corpora (the *_corpus_digest keys) and \
                   metrics."
            .into(),
        tables: vec![table, curve],
        notes: vec![
            "Ground truth matches E7/E11: SkipPingDisable, IgnoreTriggerGuard and \
             StaleAckReplay break a safety lemma (the fuzzer must find a schedule); \
             DropPingSend and SkipTriggerUpdate only hurt liveness, which no finite \
             safety-oracle run can flag. StaleAckReplay is attributed to Lemma 3 here \
             (the in-flight duplicate), the first lemma its incident trips."
                .into(),
            "All budgets are iteration-counted; wall-clock budgets exist only at the \
             CLI/CI layer and can only truncate, so every e12.* key is deterministic."
                .into(),
        ],
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_every_config_behaves_as_expected() {
        let report = run(&ExperimentConfig { seeds: 2 });
        for row in &report.tables[0].rows {
            assert_eq!(row[8], "as expected", "{row:?}");
        }
        assert_eq!(report.metrics["configs_as_expected"], report.metrics["configs"]);
        assert_eq!(report.metrics["safety_bugs_found"], 3);
        assert_eq!(report.metrics["controls_silent"], 3);
        // Every finding was replay-confirmed (asserted inside run as well).
        for key in ["skip_ping_disable", "ignore_trigger_guard", "stale_ack_replay"] {
            assert_eq!(report.metrics[&format!("{key}_confirmed")], 1, "{key}");
            assert!(report.metrics[&format!("{key}_minimized_len")] >= 1, "{key}");
        }
    }

    #[test]
    fn e12_metrics_are_rerun_identical() {
        let a = run(&ExperimentConfig { seeds: 2 });
        let b = run(&ExperimentConfig { seeds: 2 });
        assert_eq!(a.metrics, b.metrics);
    }
}
