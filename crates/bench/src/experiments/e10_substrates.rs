//! E10 — substrate characterization: failure locality of the dining
//! algorithms, and quality of the real heartbeat ◇P under partial synchrony.
//!
//! Neither table corresponds to a paper table (the paper has none); both
//! quantify claims its introduction leans on: that crash-oblivious dining
//! has unbounded failure locality (a crash starves whole waiting chains),
//! that a ◇P-driven scheduler confines a crash's damage, and that partially
//! synchronous environments "are often" sufficient to implement ◇P.

use std::rc::Rc;

use dinefd_dining::driver::{collect_history, DiningDriverNode, Workload};
use dinefd_dining::hygienic::HygienicDining;
use dinefd_dining::wfdx::WfDxDining;
use dinefd_dining::{ConflictGraph, DiningParticipant};
use dinefd_fd::{FdQuery, HeartbeatConfig, HeartbeatFd, InjectedOracle, SuspicionHistory};
use dinefd_sim::{CrashPlan, DelayModel, ProcessId, SplitMix64, Time, World, WorldConfig};

use crate::table::{Report, Table};
use crate::{parallel_map, ExperimentConfig};

fn run_locality(algo: &'static str, crash_idx: usize, seed: u64) -> (usize, Option<usize>) {
    let n = 8;
    let graph = ConflictGraph::path(n);
    let plan = CrashPlan::one(ProcessId::from_index(crash_idx), Time(2_000));
    let mut rng = SplitMix64::new(seed);
    let oracle = InjectedOracle::diamond_p(n, plan.clone(), 50, Time(1_500), 2, 100, &mut rng);
    let fd: Rc<dyn FdQuery> = Rc::new(oracle);
    let mk = |p: ProcessId, nbrs: &[ProcessId]| -> Box<dyn DiningParticipant> {
        match algo {
            "hygienic" => Box::new(HygienicDining::new(p, nbrs)),
            "wfdx" => Box::new(WfDxDining::new(p, nbrs)),
            _ => unreachable!(),
        }
    };
    let nodes: Vec<DiningDriverNode> = ProcessId::all(n)
        .map(|p| DiningDriverNode::new(mk(p, graph.neighbors(p)), Rc::clone(&fd), Workload::busy()))
        .collect();
    let cfg = WorldConfig::new(seed).crashes(plan.clone());
    let mut world = World::new(nodes, cfg);
    world.run_until(Time(40_000));
    let mut h = collect_history(n, world.trace(), 0);
    h.set_horizon(Time(40_000));
    let starved = h.starved(&plan, 8_000).len();
    let locality = h.failure_locality(&graph, &plan, 8_000);
    (starved, locality)
}

fn run_heartbeat(gst: Time, bound: u64, seed: u64) -> (usize, bool, bool) {
    let n = 4;
    let plan = CrashPlan::one(ProcessId(3), Time(20_000));
    let cfg = HeartbeatConfig::new(n);
    let nodes: Vec<HeartbeatFd> = (0..n).map(|_| HeartbeatFd::new(cfg)).collect();
    let delays = DelayModel::PartialSync { gst, pre: Box::new(DelayModel::harsh()), bound };
    let wcfg = WorldConfig::new(seed).delays(delays).crashes(plan.clone());
    let mut world = World::new(nodes, wcfg);
    world.run_until(Time(80_000));
    let mut hist = SuspicionHistory::new(n, false);
    for (at, pid, obs) in world.trace().observations() {
        hist.record(at, pid, obs.subject, obs.suspected);
    }
    let mut mistakes = 0;
    for w in ProcessId::all(n) {
        for s in ProcessId::all(n) {
            if w != s && !plan.is_faulty(s) {
                mistakes += hist.mistake_intervals(w, s);
            }
        }
    }
    let accurate = hist.eventual_strong_accuracy(&plan).is_ok();
    let complete = hist.strong_completeness(&plan).is_ok();
    (mistakes, accurate, complete)
}

/// Runs E10 and returns the report.
pub fn run(cfg: &ExperimentConfig) -> Report {
    let mut locality = Table::new(
        "Failure locality on a path of 8 diners (crash at t=2000)",
        &["algorithm", "crash at", "runs", "starved (mean)", "locality (max hops)"],
    );
    for algo in ["hygienic", "wfdx"] {
        for crash_idx in [0usize, 3] {
            let results = parallel_map(0..cfg.seeds, move |seed| {
                run_locality(algo, crash_idx, 10_000 + seed)
            });
            let starved =
                results.iter().map(|&(s, _)| s as f64).sum::<f64>() / results.len() as f64;
            let loc = results.iter().filter_map(|&(_, l)| l).max();
            locality.row(vec![
                algo.to_string(),
                format!("p{crash_idx}"),
                results.len().to_string(),
                format!("{starved:.1}"),
                loc.map_or("-".into(), |l| l.to_string()),
            ]);
        }
    }

    let mut heartbeat = Table::new(
        "Heartbeat ◇P quality vs partial synchrony (4 processes, crash at 20k)",
        &["GST", "post-GST bound", "runs", "wrongful intervals (mean)", "◇P-accurate", "complete"],
    );
    for gst in [Time(0), Time(4_000), Time(16_000)] {
        for bound in [4u64, 12] {
            let results =
                parallel_map(0..cfg.seeds, move |seed| run_heartbeat(gst, bound, 11_000 + seed));
            let mistakes =
                results.iter().map(|&(m, _, _)| m as f64).sum::<f64>() / results.len() as f64;
            let acc = results.iter().filter(|&&(_, a, _)| a).count();
            let comp = results.iter().filter(|&&(_, _, c)| c).count();
            heartbeat.row(vec![
                gst.ticks().to_string(),
                bound.to_string(),
                results.len().to_string(),
                format!("{mistakes:.1}"),
                format!("{acc}/{}", results.len()),
                format!("{comp}/{}", results.len()),
            ]);
        }
    }

    Report {
        title: "E10 — substrate characterization: failure locality & heartbeat ◇P".into(),
        preamble: "Left: a crash on a path graph starves waiting chains under the \
                   crash-oblivious baseline (unbounded failure locality), while the \
                   ◇P-driven algorithm starves nobody — the property family the \
                   paper's intro cites via 'crash-locality-1 dining [11]'. Right: the \
                   heartbeat implementation really is ◇P under every partial-synchrony \
                   regime — earlier stabilization and looser pre-GST chaos only move \
                   the (finite) wrongful-suspicion count."
            .into(),
        tables: vec![locality, heartbeat],
        notes: vec![],
        metrics: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_wfdx_is_local_and_heartbeat_is_diamond_p() {
        let cfg = ExperimentConfig { seeds: 2 };
        let report = run(&cfg);
        for row in &report.tables[0].rows {
            if row[0] == "wfdx" {
                assert_eq!(row[4], "-", "wfdx should starve nobody: {row:?}");
            }
        }
        // Hygienic starves someone in at least one configuration.
        let hygienic_starves =
            report.tables[0].rows.iter().filter(|r| r[0] == "hygienic").any(|r| r[4] != "-");
        assert!(hygienic_starves, "baseline should exhibit non-local starvation");
        for row in &report.tables[1].rows {
            crate::table::assert_frac_full(&row[4], "heartbeat accuracy failed", row);
            crate::table::assert_frac_full(&row[5], "heartbeat completeness failed", row);
        }
    }
}
