//! # `dinefd-bench` — the experiment harness
//!
//! One module per experiment in `EXPERIMENTS.md` (E1–E13), each producing a
//! [`table::Report`] that the `tables` binary prints. Experiments sweep
//! seeds/parameters in parallel across OS threads (each run builds its own
//! single-threaded deterministic world, so parallelism never affects
//! results — only wall-clock).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perfdump;
pub mod table;

use dinefd_sim::pool::{self, WorkerFn};

/// Knobs shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Seeds (= independent runs) per configuration point.
    pub seeds: u64,
}

impl ExperimentConfig {
    /// Quick profile for CI / smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig { seeds: 3 }
    }

    /// Full profile for the published tables.
    pub fn full() -> Self {
        ExperimentConfig { seeds: 10 }
    }
}

/// Maps `f` over `items` in parallel (bounded by the machine's parallelism),
/// preserving order. Each invocation is independent and owns its inputs, so
/// determinism is untouched — parallelism only buys wall-clock.
///
/// Workers take items in index order (a shared FIFO iterator), so the first
/// configurations of a sweep finish first and long tail items don't pin the
/// whole sweep behind one late-started worker; results land in their
/// original slots regardless of completion order.
pub fn parallel_map<I, T, F>(items: I, f: F) -> Vec<T>
where
    I: IntoIterator,
    I::Item: Send,
    T: Send,
    F: Fn(I::Item) -> T + Sync,
{
    let items: Vec<I::Item> = items.into_iter().collect();
    if items.is_empty() {
        return Vec::new();
    }
    let workers = pool::recommended_workers(items.len());
    let results: Vec<std::sync::Mutex<Option<T>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let work: std::sync::Mutex<std::vec::IntoIter<(usize, I::Item)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>().into_iter());
    let tasks: Vec<WorkerFn<'_, ()>> = (0..workers)
        .map(|_| {
            Box::new(|| loop {
                let next = work.lock().expect("work queue").next();
                match next {
                    Some((i, item)) => {
                        let value = f(item);
                        *results[i].lock().expect("result slot") = Some(value);
                    }
                    None => break,
                }
            }) as WorkerFn<'_, ()>
        })
        .collect();
    pool::run_each(tasks);
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(0..32u64, |x| x * x);
        assert_eq!(out, (0..32u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty() {
        let out: Vec<u64> = parallel_map(std::iter::empty::<u64>(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_single_item() {
        assert_eq!(parallel_map([7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_hands_out_items_in_index_order() {
        // Record the order items are *taken* by workers. With one worker the
        // pick-up order is fully deterministic and must be FIFO (the old
        // `Vec::pop` hand-out was LIFO); with many workers it must still be
        // a permutation where pick-up order is monotone per worker.
        let picked = std::sync::Mutex::new(Vec::new());
        let out = parallel_map(0..64u64, |x| {
            picked.lock().unwrap().push(x);
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        let picked = picked.into_inner().unwrap();
        // Item 0 is handed out before item 63 ever is: index order, not LIFO.
        let pos = |v: u64| picked.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(63), "hand-out went LIFO: {picked:?}");
    }

    #[test]
    fn parallel_map_order_independent_of_completion_order() {
        // Early items sleep longer, so later items complete first; the
        // result vector must still be in input order.
        let out = parallel_map(0..16u64, |x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x * 10
        });
        assert_eq!(out, (0..16u64).map(|x| x * 10).collect::<Vec<_>>());
    }
}
