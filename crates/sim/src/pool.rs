//! Shared scoped-thread runner: one place for worker-count policy and
//! panic propagation.
//!
//! Three subsystems fan work out over OS threads — the lemma explorer's
//! work-stealing search (`dinefd-explore`), the experiment harness's
//! `parallel_map` sweep driver (`dinefd-bench`), and the parallel
//! shard-worker loop of [`crate::shard::ShardedWorld`]. They used to spawn
//! threads three different ways with three panic-handling policies; this
//! module is the single spawning site they all go through.
//!
//! The model is deliberately minimal: every call spawns *scoped* threads
//! (std [`std::thread::scope`]), so workers may borrow the caller's stack
//! state, and every call **joins all workers before returning** — there is
//! no detached global pool, no shutdown protocol, and no work queue. A
//! worker panic is re-raised on the calling thread with its original
//! payload once every other worker has been joined, so `should_panic`
//! tests and caller-side `catch_unwind` observe the worker's own message.

use std::thread;

/// A boxed per-worker closure: the unit [`run_each`] and
/// [`run_with_coordinator`] spawn. Boxing (rather than a shared `Fn`)
/// lets each worker *move-capture* its own state — a work-stealing deque,
/// a channel receiver — which a uniform `Fn(usize)` cannot express.
pub type WorkerFn<'env, R> = Box<dyn FnOnce() -> R + Send + 'env>;

/// How many workers to spawn for `jobs` independent jobs: the machine's
/// available parallelism (falling back to 4 when unknown), capped by the
/// job count, and always at least 1.
pub fn recommended_workers(jobs: usize) -> usize {
    thread::available_parallelism().map_or(4, |p| p.get()).min(jobs.max(1)).max(1)
}

/// Runs every closure on its own scoped thread and joins them all,
/// returning their results in input order.
///
/// # Panics
///
/// If a worker panics, the first panic (in input order) is re-raised on
/// the calling thread after all workers have been joined.
pub fn run_each<'env, R: Send + 'env>(workers: Vec<WorkerFn<'env, R>>) -> Vec<R> {
    run_with_coordinator(workers, || ()).0
}

/// Spawns the workers, runs `coordinator` on the *calling* thread while
/// they execute, then joins every worker. Returns the worker results (in
/// input order) and the coordinator's result.
///
/// This is the shape a barrier-stepped protocol needs: the coordinator
/// owns the channel endpoints and loops on the current thread; workers
/// run until their inbound channel closes. If a worker panics, its
/// channel endpoints drop, so a coordinator blocked on `recv` observes a
/// disconnect and can return normally — the worker's panic is then
/// re-raised here, after the join.
///
/// # Panics
///
/// Re-raises the first worker panic (in input order) after all workers
/// and the coordinator have finished. A coordinator panic unwinds
/// through the scope, which joins (and thereby waits for) all workers.
pub fn run_with_coordinator<'env, R, T>(
    workers: Vec<WorkerFn<'env, R>>,
    coordinator: impl FnOnce() -> T,
) -> (Vec<R>, T)
where
    R: Send + 'env,
{
    thread::scope(|scope| {
        let handles: Vec<_> = workers.into_iter().map(|w| scope.spawn(w)).collect();
        let out = coordinator();
        let results = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
            .collect();
        (results, out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn recommended_workers_is_capped_and_positive() {
        assert_eq!(recommended_workers(0), 1);
        assert_eq!(recommended_workers(1), 1);
        let w = recommended_workers(1_000_000);
        assert!(w >= 1);
        assert!(w <= 1_000_000);
    }

    #[test]
    fn run_each_returns_results_in_input_order() {
        let tasks: Vec<WorkerFn<'_, usize>> =
            (0..8usize).map(|i| Box::new(move || i * i) as WorkerFn<'_, usize>).collect();
        assert_eq!(run_each(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn workers_may_borrow_caller_state() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<WorkerFn<'_, ()>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as WorkerFn<'_, ()>
            })
            .collect();
        run_each(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn run_each_with_zero_tasks_returns_empty() {
        let tasks: Vec<WorkerFn<'_, u32>> = Vec::new();
        assert_eq!(run_each(tasks), Vec::<u32>::new());
    }

    #[test]
    fn run_with_coordinator_runs_with_zero_workers() {
        let tasks: Vec<WorkerFn<'_, ()>> = Vec::new();
        let (results, out) = run_with_coordinator(tasks, || 41 + 1);
        assert!(results.is_empty());
        assert_eq!(out, 42);
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate_with_their_payload() {
        let tasks: Vec<WorkerFn<'_, ()>> =
            vec![Box::new(|| ()), Box::new(|| panic!("worker exploded"))];
        run_each(tasks);
    }

    #[test]
    #[should_panic(expected = "first boom")]
    fn first_worker_panic_in_input_order_is_the_one_reraised() {
        // Both workers panic; the join loop walks handles in input order,
        // so the caller observes worker 0's payload deterministically even
        // if worker 1 panicked first on the wall clock.
        let tasks: Vec<WorkerFn<'_, ()>> = vec![
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("first boom");
            }),
            Box::new(|| panic!("second boom")),
        ];
        run_each(tasks);
    }

    #[test]
    fn worker_panic_payload_survives_as_owned_string() {
        // Panics raised with format arguments carry a `String` payload, not
        // a `&'static str`; re-raising must preserve that too.
        let code = 7;
        let tasks: Vec<WorkerFn<'_, ()>> = vec![Box::new(move || panic!("code {code}"))];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_each(tasks)));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert_eq!(msg, "code 7");
    }

    #[test]
    fn coordinator_drives_workers_over_channels() {
        // The shard-runner shape in miniature: the coordinator feeds each
        // worker jobs over a private channel and collects replies on a
        // shared one; dropping the senders shuts the workers down.
        let (reply_tx, reply_rx) = mpsc::channel::<u64>();
        let mut job_txs = Vec::new();
        let mut tasks: Vec<WorkerFn<'_, u64>> = Vec::new();
        for _ in 0..3 {
            let (job_tx, job_rx) = mpsc::channel::<u64>();
            job_txs.push(job_tx);
            let reply_tx = reply_tx.clone();
            tasks.push(Box::new(move || {
                let mut handled = 0;
                while let Ok(job) = job_rx.recv() {
                    if reply_tx.send(job * 2).is_err() {
                        break;
                    }
                    handled += 1;
                }
                handled
            }));
        }
        drop(reply_tx);
        let (handled, sum) = run_with_coordinator(tasks, move || {
            let mut sum = 0;
            for round in 0..5u64 {
                for tx in &job_txs {
                    tx.send(round).expect("worker alive");
                }
                for _ in 0..job_txs.len() {
                    sum += reply_rx.recv().expect("reply");
                }
            }
            drop(job_txs);
            sum
        });
        assert_eq!(handled, vec![5, 5, 5]);
        assert_eq!(sum, 2 * 3 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn coordinator_survives_worker_death_via_disconnect() {
        // A worker that dies mid-protocol must not deadlock the
        // coordinator: the dropped channel surfaces as a recv error, the
        // coordinator bails, and the panic is re-raised afterwards.
        let (reply_tx, reply_rx) = mpsc::channel::<u64>();
        let tasks: Vec<WorkerFn<'_, ()>> = vec![Box::new(move || {
            let _keep = reply_tx;
            panic!("mid-protocol death");
        })];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_coordinator(tasks, || {
                // Blocks until the worker's panic drops `reply_tx`.
                reply_rx.recv().expect_err("disconnect, not a value")
            })
        }));
        let payload = caught.expect_err("worker panic must re-raise");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "mid-protocol death");
    }
}
