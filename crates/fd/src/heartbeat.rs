//! A message-passing ◇P: heartbeats with adaptive timeouts.
//!
//! This is the classical construction showing ◇P is *implementable* under
//! partial synchrony (the paper's Section 2 motivates exactly this setting):
//! every process periodically broadcasts `Alive`; each watcher counts its own
//! periods since it last heard from each peer and suspects peers that exceed
//! a per-peer timeout. On discovering a false suspicion (an `Alive` from a
//! suspected peer) the watcher raises that peer's timeout, so after the
//! global stabilization time the timeout eventually exceeds the real delay
//! bound and mistakes stop — eventual strong accuracy. A crashed peer stops
//! sending forever, so its counter grows without bound — strong completeness.
//!
//! The timeout adaptation is **measured**, not merely doubled: each watcher
//! tracks the largest inter-arrival gap (in its own periods) it has ever
//! observed per peer, and a false-suspicion recovery jumps the timeout to at
//! least that measured gap plus slack. Under the simulator the "measurement"
//! is of the `World`'s drawn delays; on the live transport it is of real
//! socket latency — the identical code measures whichever asynchrony it is
//! actually running under, which is what lets one logic core converge on
//! both runtimes (the Kompics-style increasing-timeout ◇P).
//!
//! The node never reads global time: it counts its *own* timer firings,
//! which is legitimate local step-counting.

use dinefd_sim::{Context, Node, ProcessId, TimerId, Wire, WireError, WireReader, WireWriter};

/// Message type: a heartbeat.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Alive;

/// Wire tag of [`Alive`] frames on the live transport.
const ALIVE_TAG: u8 = 0xA1;

impl Wire for Alive {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(ALIVE_TAG);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            ALIVE_TAG => Ok(Alive),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Observation emitted whenever the local output changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HbObs {
    /// The peer whose suspicion status changed.
    pub subject: ProcessId,
    /// The new status.
    pub suspected: bool,
}

/// Static parameters of the heartbeat detector.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// System size.
    pub n: usize,
    /// Ticks between heartbeat broadcasts (and timeout checks).
    pub period: u64,
    /// Initial per-peer timeout, in periods.
    pub initial_timeout_periods: u64,
}

impl HeartbeatConfig {
    /// A reasonable default: period 8, initial timeout 4 periods.
    pub fn new(n: usize) -> Self {
        HeartbeatConfig { n, period: 8, initial_timeout_periods: 4 }
    }
}

const TICK: TimerId = TimerId(0);

/// Extra periods added on top of the measured gap when a false-suspicion
/// recovery re-seeds the timeout from measurement.
const MEASURED_SLACK_PERIODS: u64 = 1;

/// One process's heartbeat-◇P module.
#[derive(Clone, Debug)]
pub struct HeartbeatFd {
    cfg: HeartbeatConfig,
    /// Periods elapsed since the last `Alive` from each peer.
    periods_since_heard: Vec<u64>,
    /// Current per-peer timeout, in periods.
    timeout_periods: Vec<u64>,
    /// Largest inter-arrival gap (periods) ever measured per peer — the
    /// watcher's local estimate of the channel's worst observed asynchrony.
    measured_gap_periods: Vec<u64>,
    /// Current output.
    suspected: Vec<bool>,
}

impl HeartbeatFd {
    /// Fresh module; initially trusts everyone.
    pub fn new(cfg: HeartbeatConfig) -> Self {
        HeartbeatFd {
            periods_since_heard: vec![0; cfg.n],
            timeout_periods: vec![cfg.initial_timeout_periods.max(1); cfg.n],
            measured_gap_periods: vec![0; cfg.n],
            suspected: vec![false; cfg.n],
            cfg,
        }
    }

    /// Current output: is `q` suspected?
    pub fn suspects(&self, q: ProcessId) -> bool {
        self.suspected[q.index()]
    }

    /// The current adaptive timeout (periods) for `q`.
    pub fn timeout_of(&self, q: ProcessId) -> u64 {
        self.timeout_periods[q.index()]
    }

    /// The largest inter-arrival gap (periods) measured for `q` so far.
    pub fn measured_gap_of(&self, q: ProcessId) -> u64 {
        self.measured_gap_periods[q.index()]
    }

    /// All peers this module heartbeats to.
    pub fn peers(&self, me: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        ProcessId::all(self.cfg.n).filter(move |&q| q != me)
    }

    /// The broadcast period, in ticks.
    pub fn period(&self) -> u64 {
        self.cfg.period
    }

    /// Context-free handler: an `Alive` from `from` arrived. Returns the
    /// output change, if any.
    pub fn handle_alive(&mut self, from: ProcessId) -> Option<HbObs> {
        let i = from.index();
        // The gap that just closed is a *measurement* of the channel's real
        // asynchrony (drawn delays under sim, socket latency under live).
        self.measured_gap_periods[i] =
            self.measured_gap_periods[i].max(self.periods_since_heard[i]);
        self.periods_since_heard[i] = 0;
        if self.suspected[i] {
            // False suspicion discovered: repent and be more patient — at
            // least double (the classical ◇P guarantee of unbounded growth),
            // and at least the worst asynchrony actually measured plus
            // slack, so one bad pre-GST spike is absorbed in a single jump
            // instead of O(log spike) repeated mistakes.
            self.suspected[i] = false;
            self.timeout_periods[i] = self.timeout_periods[i]
                .saturating_mul(2)
                .max(self.measured_gap_periods[i].saturating_add(MEASURED_SLACK_PERIODS));
            Some(HbObs { subject: from, suspected: false })
        } else {
            None
        }
    }

    /// Context-free handler: one local period elapsed. Returns output
    /// changes. The caller must also broadcast `Alive` to [`Self::peers`]
    /// and re-arm its period timer.
    pub fn handle_period(&mut self, me: ProcessId) -> Vec<HbObs> {
        let mut out = Vec::new();
        for q in ProcessId::all(self.cfg.n) {
            if q == me {
                continue;
            }
            self.periods_since_heard[q.index()] += 1;
            if !self.suspected[q.index()]
                && self.periods_since_heard[q.index()] > self.timeout_periods[q.index()]
            {
                self.suspected[q.index()] = true;
                out.push(HbObs { subject: q, suspected: true });
            }
        }
        out
    }

    fn broadcast(&self, ctx: &mut Context<'_, Alive, HbObs>) {
        let me = ctx.me();
        for q in self.peers(me) {
            ctx.send(q, Alive);
        }
    }
}

impl Node for HeartbeatFd {
    type Msg = Alive;
    type Obs = HbObs;

    fn on_start(&mut self, ctx: &mut Context<'_, Alive, HbObs>) {
        self.broadcast(ctx);
        ctx.set_timer(self.cfg.period, TICK);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Alive, HbObs>, from: ProcessId, _msg: Alive) {
        if let Some(obs) = self.handle_alive(from) {
            ctx.observe(obs);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Alive, HbObs>, timer: TimerId) {
        debug_assert_eq!(timer, TICK);
        for obs in self.handle_period(ctx.me()) {
            ctx.observe(obs);
        }
        self.broadcast(ctx);
        ctx.set_timer(self.cfg.period, TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SuspicionHistory;
    use crate::OracleClass;
    use dinefd_sim::{CrashPlan, DelayModel, Time, World, WorldConfig};

    fn run_system(
        n: usize,
        seed: u64,
        crashes: CrashPlan,
        delays: DelayModel,
        horizon: Time,
    ) -> (SuspicionHistory, CrashPlan) {
        let cfg = HeartbeatConfig::new(n);
        let nodes: Vec<HeartbeatFd> = (0..n).map(|_| HeartbeatFd::new(cfg)).collect();
        let wcfg = WorldConfig::new(seed).delays(delays).crashes(crashes.clone());
        let mut world = World::new(nodes, wcfg);
        world.run_until(horizon);
        let mut hist = SuspicionHistory::new(n, false);
        for (at, pid, obs) in world.trace().observations() {
            hist.record(at, pid, obs.subject, obs.suspected);
        }
        (hist, crashes)
    }

    #[test]
    fn failure_free_synchronous_run_is_perfect() {
        let (hist, plan) = run_system(3, 1, CrashPlan::none(), DelayModel::Fixed(2), Time(5_000));
        assert!(hist.perpetual_strong_accuracy(&plan).is_ok());
    }

    #[test]
    fn crash_is_detected_permanently() {
        let plan = CrashPlan::one(ProcessId(2), Time(500));
        let (hist, plan) = run_system(3, 2, plan, DelayModel::Fixed(2), Time(10_000));
        let detections = hist.strong_completeness(&plan).unwrap();
        assert_eq!(detections.len(), 2); // two correct watchers
        for d in detections {
            assert!(d.detected_from > d.crashed_at);
        }
    }

    #[test]
    fn partially_synchronous_run_is_eventually_perfect() {
        // Harsh delays before GST can cause false suspicions; the adaptive
        // timeout must absorb them after GST.
        let plan = CrashPlan::one(ProcessId(3), Time(4_000));
        let delays = DelayModel::partially_synchronous(Time(3_000), 6);
        let (hist, plan) = run_system(4, 3, plan, delays, Time(60_000));
        let acc = hist.eventual_strong_accuracy(&plan);
        assert!(acc.is_ok(), "accuracy violated: {:?}", acc.err());
        assert!(hist.strong_completeness(&plan).is_ok());
        let classes = hist.classify(&plan);
        assert!(classes.contains(&OracleClass::EventuallyPerfect), "classes: {classes:?}");
    }

    #[test]
    fn harsh_prefix_actually_produces_mistakes_some_seed() {
        // Sanity that the test above is non-vacuous: some seed exhibits at
        // least one wrongful suspicion before convergence.
        let mut total_mistakes = 0;
        for seed in 0..8 {
            let delays = DelayModel::partially_synchronous(Time(3_000), 6);
            let (hist, _) = run_system(3, seed, CrashPlan::none(), delays, Time(30_000));
            for w in ProcessId::all(3) {
                for s in ProcessId::all(3) {
                    if w != s {
                        total_mistakes += hist.mistake_intervals(w, s);
                    }
                }
            }
        }
        assert!(total_mistakes > 0, "no seed produced any false suspicion");
    }

    #[test]
    fn alive_roundtrips_on_the_wire() {
        let bytes = Alive.to_bytes();
        assert_eq!(bytes.len(), 1);
        assert_eq!(Alive::from_bytes(&bytes).unwrap(), Alive);
        assert!(Alive::from_bytes(&[0x00]).is_err());
        assert!(Alive::from_bytes(&[]).is_err());
    }

    #[test]
    fn recovery_timeout_jumps_to_the_measured_gap() {
        // Watcher 0, peer 1, initial timeout 4 periods. Let 20 silent
        // periods elapse (suspicion fires after period 5), then deliver the
        // late Alive: the measured gap is 20, so the recovered timeout must
        // be ≥ 21 — one jump, not ceil(log2(20/4)) = 3 successive doublings.
        let cfg = HeartbeatConfig::new(2);
        let mut fd = HeartbeatFd::new(cfg);
        let me = ProcessId(0);
        let peer = ProcessId(1);
        let mut suspected_at = None;
        for p in 1..=20u64 {
            for obs in fd.handle_period(me) {
                assert_eq!(obs.subject, peer);
                assert!(obs.suspected);
                suspected_at = Some(p);
            }
        }
        assert_eq!(suspected_at, Some(cfg.initial_timeout_periods + 1));
        assert!(fd.suspects(peer));
        let obs = fd.handle_alive(peer).expect("false suspicion must surface");
        assert!(!obs.suspected);
        assert_eq!(fd.measured_gap_of(peer), 20);
        assert!(
            fd.timeout_of(peer) >= 21,
            "timeout {} must clear the measured 20-period gap",
            fd.timeout_of(peer)
        );
        // A second, *smaller* spike is now absorbed without any mistake.
        for _ in 0..20 {
            assert!(fd.handle_period(me).is_empty(), "measured timeout must hold");
        }
        assert!(fd.handle_alive(peer).is_none());
    }

    #[test]
    fn measured_gap_tracks_the_worst_interarrival_only() {
        let mut fd = HeartbeatFd::new(HeartbeatConfig::new(2));
        let me = ProcessId(0);
        let peer = ProcessId(1);
        for gap in [3u64, 1, 2] {
            for _ in 0..gap {
                let _ = fd.handle_period(me);
            }
            let _ = fd.handle_alive(peer);
        }
        assert_eq!(fd.measured_gap_of(peer), 3, "max of 3,1,2 gaps");
    }

    #[test]
    fn timeouts_grow_on_false_suspicion() {
        let delays = DelayModel::partially_synchronous(Time(2_000), 6);
        let cfg = HeartbeatConfig::new(2);
        let nodes: Vec<HeartbeatFd> = (0..2).map(|_| HeartbeatFd::new(cfg)).collect();
        let mut world = World::new(nodes, WorldConfig::new(11).delays(delays));
        world.run_until(Time(30_000));
        // If any false suspicion happened, the timeout must exceed initial.
        let n0 = world.node(ProcessId(0));
        let had_mistake = world
            .trace()
            .observations()
            .any(|(_, pid, o)| pid == ProcessId(0) && o.subject == ProcessId(1) && o.suspected);
        if had_mistake {
            assert!(n0.timeout_of(ProcessId(1)) > cfg.initial_timeout_periods);
        }
    }
}
