//! Property-based tests driving the pure witness/subject machines with
//! random (but legal) schedules, checking the paper's invariants along every
//! generated trajectory. These complement the exhaustive explorer in
//! `dinefd-explore`: random walks go much deeper than the bounded DFS.

use dinefd_core::machines::{SubjectCmd, SubjectMachine, WitnessCmd, WitnessMachine};
use dinefd_dining::DinerPhase;
use proptest::prelude::*;

/// A tiny closed interpreter of the witness+subject pair with in-flight
/// message pools, driven by a random choice sequence.
struct Harness {
    witness: WitnessMachine,
    subject: SubjectMachine,
    w_phase: [DinerPhase; 2],
    s_phase: [DinerPhase; 2],
    pings: Vec<(usize, u64)>,
    acks: Vec<(usize, u64)>,
    converged: bool,
    witness_eats: [u32; 2],
    subject_eats: [u32; 2],
}

impl Harness {
    fn new(strict: bool) -> Self {
        Harness {
            witness: WitnessMachine::new(),
            subject: SubjectMachine::new(strict),
            w_phase: [DinerPhase::Thinking; 2],
            s_phase: [DinerPhase::Thinking; 2],
            pings: Vec::new(),
            acks: Vec::new(),
            converged: false,
            witness_eats: [0; 2],
            subject_eats: [0; 2],
        }
    }

    /// Executes one scheduler choice (mapped into the currently enabled
    /// options); returns false if nothing was enabled.
    fn step(&mut self, choice: u32) -> bool {
        // Enumerate options: witness actions, subject actions, deliveries,
        // grants, convergence.
        let mut options: Vec<u32> = Vec::new();
        let w_enabled = self.witness.enabled(self.w_phase);
        let s_enabled = self.subject.enabled(self.s_phase);
        for i in 0..w_enabled.len() {
            options.push(i as u32); // 0..: witness action i
        }
        for i in 0..s_enabled.len() {
            options.push(100 + i as u32);
        }
        for i in 0..self.pings.len() {
            options.push(200 + i as u32);
        }
        for i in 0..self.acks.len() {
            options.push(300 + i as u32);
        }
        for i in 0..2usize {
            if self.w_phase[i] == DinerPhase::Hungry
                && (!self.converged || self.s_phase[i] != DinerPhase::Eating)
            {
                options.push(400 + i as u32);
            }
            if self.s_phase[i] == DinerPhase::Hungry
                && (!self.converged || self.w_phase[i] != DinerPhase::Eating)
            {
                options.push(500 + i as u32);
            }
        }
        let overlap = (0..2).any(|i| {
            self.w_phase[i] == DinerPhase::Eating && self.s_phase[i] == DinerPhase::Eating
        });
        if !self.converged && !overlap {
            options.push(600);
        }
        if options.is_empty() {
            return false;
        }
        let pick = options[(choice as usize) % options.len()];
        match pick {
            0..=99 => {
                let a = w_enabled[pick as usize];
                match self.witness.fire(a, self.w_phase) {
                    WitnessCmd::BecomeHungry(i) => self.w_phase[i] = DinerPhase::Hungry,
                    WitnessCmd::Exit(i) => self.w_phase[i] = DinerPhase::Thinking,
                    WitnessCmd::SendAck(..) => unreachable!(),
                }
            }
            100..=199 => {
                let a = s_enabled[(pick - 100) as usize];
                match self.subject.fire(a, self.s_phase) {
                    SubjectCmd::BecomeHungry(i) => self.s_phase[i] = DinerPhase::Hungry,
                    SubjectCmd::Exit(i) => self.s_phase[i] = DinerPhase::Thinking,
                    SubjectCmd::SendPing(i, seq) => self.pings.push((i, seq)),
                }
            }
            200..=299 => {
                let (i, seq) = self.pings.remove((pick - 200) as usize);
                let WitnessCmd::SendAck(i2, s2) = self.witness.on_ping(i, seq) else {
                    unreachable!()
                };
                self.acks.push((i2, s2));
            }
            300..=399 => {
                let (i, seq) = self.acks.remove((pick - 300) as usize);
                self.subject.on_ack(i, seq);
            }
            400..=401 => {
                let i = (pick - 400) as usize;
                self.w_phase[i] = DinerPhase::Eating;
                self.witness_eats[i] += 1;
            }
            500..=501 => {
                let i = (pick - 500) as usize;
                self.s_phase[i] = DinerPhase::Eating;
                self.subject_eats[i] += 1;
            }
            600 => self.converged = true,
            other => panic!("bad pick {other}"),
        }
        true
    }

    /// The paper's safety lemmas as predicates on the harness state.
    fn check(&self) -> Result<(), String> {
        for i in 0..2 {
            // Lemma 2.
            if self.s_phase[i] != DinerPhase::Eating && !self.subject.ping_enabled(i) {
                return Err(format!("Lemma 2: s_{i} not eating, ping_{i} false"));
            }
            // Lemma 4.
            if self.s_phase[i] == DinerPhase::Hungry && self.subject.trigger() != i {
                return Err(format!("Lemma 4: s_{i} hungry, trigger {}", self.subject.trigger()));
            }
            // Lemma 3.
            if self.s_phase[i] != DinerPhase::Eating && self.subject.ping_enabled(i) {
                let transit = self.pings.iter().any(|&(j, _)| j == i)
                    || self.acks.iter().any(|&(j, _)| j == i);
                if transit {
                    return Err(format!("Lemma 3: DX_{i} message in transit"));
                }
            }
        }
        // Lemma 9.
        if self.w_phase[0] != DinerPhase::Thinking && self.w_phase[1] != DinerPhase::Thinking {
            return Err("Lemma 9: no witness thinking".to_string());
        }
        Ok(())
    }
}

#[allow(clippy::needless_range_loop)] // indices address parallel arrays
mod walks {
    use super::*;
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn safety_lemmas_hold_on_random_walks(
            strict in any::<bool>(),
            choices in prop::collection::vec(any::<u32>(), 0..400),
        ) {
            let mut h = Harness::new(strict);
            prop_assert!(h.check().is_ok());
            for &c in &choices {
                if !h.step(c) {
                    break;
                }
                if let Err(e) = h.check() {
                    prop_assert!(false, "{e} after {} steps", choices.len());
                }
            }
        }

        #[test]
        fn witness_turns_strictly_alternate(
            choices in prop::collection::vec(any::<u32>(), 0..600),
        ) {
            // Along any legal schedule, the order of witness eat-starts
            // alternates between the two instances (Lemma 12's shape).
            let mut h = Harness::new(false);
            let mut order: Vec<usize> = Vec::new();
            let mut last_counts = [0u32; 2];
            for &c in &choices {
                if !h.step(c) {
                    break;
                }
                for i in 0..2 {
                    if h.witness_eats[i] > last_counts[i] {
                        order.push(i);
                        last_counts[i] = h.witness_eats[i];
                    }
                }
            }
            prop_assert!(
                order.windows(2).all(|w| w[0] != w[1]),
                "witness eats did not alternate: {:?}", order
            );
        }

        #[test]
        fn subject_sessions_alternate_too(
            choices in prop::collection::vec(any::<u32>(), 0..600),
        ) {
            // Subjects hand off strictly: s_0, s_1, s_0, … (their sessions
            // overlap, but the *starts* alternate).
            let mut h = Harness::new(false);
            let mut order: Vec<usize> = Vec::new();
            let mut last_counts = [0u32; 2];
            for &c in &choices {
                if !h.step(c) {
                    break;
                }
                for i in 0..2 {
                    if h.subject_eats[i] > last_counts[i] {
                        order.push(i);
                        last_counts[i] = h.subject_eats[i];
                    }
                }
            }
            prop_assert!(
                order.windows(2).all(|w| w[0] != w[1]),
                "subject eats did not alternate: {:?}", order
            );
        }

        #[test]
        fn suspect_flips_only_at_witness_exits(
            choices in prop::collection::vec(any::<u32>(), 0..400),
        ) {
            // The output changes only when some witness exits an eating session
            // (action W_x) — never on pings alone.
            let mut h = Harness::new(false);
            let mut last = h.witness.suspects();
            let mut last_thinking = [true; 2];
            for &c in &choices {
                let before_phases = h.w_phase;
                if !h.step(c) {
                    break;
                }
                let now = h.witness.suspects();
                if now != last {
                    // Some witness moved Eating → Thinking in this step.
                    let exited = (0..2).any(|i| {
                        before_phases[i] == DinerPhase::Eating
                            && h.w_phase[i] == DinerPhase::Thinking
                    });
                    prop_assert!(exited, "output changed without a witness exit");
                }
                last = now;
                last_thinking = [h.w_phase[0] == DinerPhase::Thinking, h.w_phase[1] == DinerPhase::Thinking];
            }
            let _ = last_thinking;
        }
    }
}
