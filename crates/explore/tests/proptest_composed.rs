//! Random deep walks through the composed model (reduction over the real
//! fork algorithm). The exhaustive DFS is depth-bounded; random walks reach
//! hundreds of steps, checking the same invariants far beyond that bound.

use dinefd_explore::composed::{ComposedConfig, ComposedState};
use proptest::prelude::*;

fn walk(cfg: &ComposedConfig, choices: &[u32]) -> Result<(u32, ComposedState), String> {
    let mut state = ComposedState::initial(cfg);
    if !state.check_invariants().is_empty() {
        return Err("initial state invalid".into());
    }
    let mut steps = 0;
    for &c in choices {
        let succ = state.successors(cfg);
        if succ.is_empty() {
            return Err(format!("deadlock after {steps} steps"));
        }
        let (label, next) = &succ[(c as usize) % succ.len()];
        // Exclusion discipline across the step.
        for i in 0..2 {
            if !state.overlapping(i) && next.overlapping(i) && !next_crashed(next) {
                let prior_tainted = state.prior_eater_tainted(i);
                if !next.mistake_active() && !prior_tainted {
                    return Err(format!(
                        "exclusion violated on DX_{i} via {label:?} after {steps} steps"
                    ));
                }
            }
        }
        let v = next.check_invariants();
        if !v.is_empty() {
            return Err(format!("{} after {steps} steps (via {label:?})", v.join("; ")));
        }
        state = next.clone();
        steps += 1;
    }
    Ok((steps, state))
}

fn next_crashed(s: &ComposedState) -> bool {
    s.is_crashed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn composed_invariants_hold_on_deep_random_walks(
        choices in prop::collection::vec(any::<u32>(), 0..500),
        allow_crash in any::<bool>(),
        allow_mistakes in any::<bool>(),
        strict in any::<bool>(),
    ) {
        let cfg = ComposedConfig {
            max_depth: 0,
            max_states: 0,
            allow_crash,
            allow_mistakes,
            strict_seq: strict,
            threads: 1,
            por: false,
        };
        let r = walk(&cfg, &choices);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap());
    }
}
