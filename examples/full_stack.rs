//! The paper's equivalence, end to end:
//!
//! 1. partial synchrony ⇒ a *real* heartbeat ◇P (no injected oracle);
//! 2. that ◇P ⇒ wait-free dining under ◇WX (the sufficiency direction);
//! 3. any such dining black box ⇒ ◇P again via the reduction (necessity).
//!
//! ```sh
//! cargo run --example full_stack
//! ```

use dinefd::composite::run_full_stack;
use dinefd::dining::driver::Workload;
use dinefd::dining::wfdx::WfDxDining;
use dinefd::prelude::*;

fn main() {
    // ---- Stages 1+2: heartbeat ◇P feeding dining, under a GST network ----
    let graph = ConflictGraph::ring(4);
    let crashes = CrashPlan::one(ProcessId(2), Time(8_000));
    println!("stage 1+2: heartbeat ◇P (GST at t=3000) driving WF-◇WX dining on ring(4),");
    println!("           p2's battery dies at t=8000 …");
    let res = run_full_stack(
        &graph,
        |p, nbrs| Box::new(WfDxDining::new(p, nbrs)),
        31,
        Time(3_000),
        crashes.clone(),
        Time(80_000),
        Workload::relaxed(),
    );
    let fd_classes = res.fd.classify(&crashes);
    println!(
        "  heartbeat layer classified as: {}",
        fd_classes.iter().map(|c| c.symbol()).collect::<Vec<_>>().join(", ")
    );
    assert!(fd_classes.contains(&OracleClass::EventuallyPerfect));
    assert!(res.dining.wait_freedom(&crashes, 15_000).is_ok());
    let conv = res.dining.wx_converged_from(&graph, &crashes);
    println!("  dining layer: wait-free ✓, exclusion violations end by t={conv}");

    // ---- Stage 3: the reduction extracts ◇P back out of such a box ----
    println!("\nstage 3: the necessity reduction over the same dining algorithm as a");
    println!("         black box (its internal oracle now scripted), p1 crashes at t=8000 …");
    let mut sc = Scenario::pair(BlackBox::WfDx, 31);
    sc.crashes = CrashPlan::one(ProcessId(1), Time(8_000));
    let plan = sc.crashes.clone();
    let ext = run_extraction(sc);
    let classes = ext.history.classify(&plan);
    println!(
        "  extracted detector classified as: {}",
        classes.iter().map(|c| c.symbol()).collect::<Vec<_>>().join(", ")
    );
    assert!(classes.contains(&OracleClass::EventuallyPerfect));
    println!("\n⇒ ◇P ⇒ WF-◇WX ⇒ ◇P: the two problems encapsulate the same synchrony —");
    println!("  ◇P is the weakest failure detector for wait-free dining under ◇WX.");
}
