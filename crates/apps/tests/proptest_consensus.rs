//! Property-based testing of consensus: uniform agreement and validity must
//! hold for ANY inputs, ANY minority crash set, ANY delay severity and seed.
//! (Termination within the horizon is asserted for correct processes.)

use std::rc::Rc;

use dinefd_apps::ConsensusNode;
use dinefd_fd::{FdQuery, InjectedOracle};
use dinefd_sim::{CrashPlan, DelayModel, ProcessId, SplitMix64, Time, World, WorldConfig};
use proptest::prelude::*;

fn run_consensus(
    inputs: &[u64],
    seed: u64,
    plan: &CrashPlan,
    harsh: bool,
    horizon: Time,
) -> Vec<Option<u64>> {
    let n = inputs.len();
    let mut rng = SplitMix64::new(seed);
    let oracle = InjectedOracle::diamond_p(n, plan.clone(), 40, Time(1_500), 2, 120, &mut rng);
    let fd: Rc<dyn FdQuery> = Rc::new(oracle);
    let nodes: Vec<ConsensusNode> = inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| ConsensusNode::new(ProcessId::from_index(i), n, v, Rc::clone(&fd)))
        .collect();
    let delays = if harsh { DelayModel::harsh() } else { DelayModel::default_async() };
    let cfg = WorldConfig::new(seed).crashes(plan.clone()).delays(delays);
    let mut world = World::new(nodes, cfg);
    world.run_until(horizon);
    (0..n).map(|i| world.node(ProcessId::from_index(i)).decision()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_agreement_validity_termination(
        seed in any::<u64>(),
        inputs in prop::collection::vec(0u64..1000, 3..8),
        crash_pick in any::<u64>(),
        crash_count in 0usize..3,
        harsh in any::<bool>(),
    ) {
        let n = inputs.len();
        let f = (n - 1) / 2; // tolerated crashes
        let crash_count = crash_count.min(f);
        let mut plan = CrashPlan::none();
        let mut pick = crash_pick;
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < crash_count {
            let idx = (pick % n as u64) as usize;
            pick = pick.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !chosen.contains(&idx) {
                chosen.push(idx);
                plan.add(ProcessId::from_index(idx), Time(100 + 700 * chosen.len() as u64));
            }
        }
        let decisions = run_consensus(&inputs, seed, &plan, harsh, Time(120_000));
        // Termination: every correct process decided.
        let mut value: Option<u64> = None;
        for p in plan.correct(n) {
            let d = decisions[p.index()];
            prop_assert!(d.is_some(), "{p} undecided (plan {:?})", plan);
            match value {
                None => value = d,
                Some(v) => prop_assert_eq!(Some(v), d, "disagreement"),
            }
        }
        let v = value.expect("some correct process");
        // Validity.
        prop_assert!(inputs.contains(&v), "decided {} not in {:?}", v, inputs);
        // Uniform agreement: even crashed deciders agree.
        for d in decisions.iter().flatten() {
            prop_assert_eq!(*d, v);
        }
    }
}
