//! `FtmeDining` — wait-free dining under **perpetual** weak exclusion (WX),
//! the Fault-Tolerant Mutual Exclusion setting of Delporte-Gallet et al.
//! (the paper's reference \[4\] and its Section 9).
//!
//! Same fork machinery as [`crate::wfdx`], but suspicion satisfies an edge
//! only under the **trust-gated** policy: a suspicion of `q` counts only
//! after `q` has been observed trusted at least once. With a trusting oracle
//! T, a trust→suspect transition implies `q` really crashed, so a
//! suspicion-eat can never violate exclusion against a live neighbor —
//! exclusion is *perpetual*, not merely eventual.
//!
//! Two model notes, both visible in experiment E5:
//!
//! * The paper (and \[4\]) show **T alone is insufficient** for wait-free WX:
//!   if `q` crashes before the oracle ever trusted it, the gate never opens
//!   and a neighbor waiting on `q`'s fork starves. The sufficient oracle is
//!   the composition T+S. Experiments therefore drive this service either
//!   with an injected *perfect* oracle (P implies T+S, and "suspected ⇒
//!   crashed" holds from time zero) or with an injected T whose initial
//!   distrust ends before any crash. What Section 9 actually claims — and
//!   what E5 checks — is about the *output* of the reduction applied to this
//!   black box: it satisfies the trusting accuracy of T.
//! * Run on a clique, this service is exactly fault-tolerant mutual
//!   exclusion.

use dinefd_sim::ProcessId;

use crate::participant::{DiningIo, DiningMsg, DiningParticipant};
use crate::state::DinerPhase;
use crate::wfdx::{ForkCore, SuspicionPolicy, Ts, WxMsg};

/// Messages of the FTME service (isomorphic to the ◇P algorithm's).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FtMsg {
    /// The request token, stamped with the requester's session timestamp.
    Request(Ts),
    /// The fork, carrying the sender's Lamport clock.
    Fork {
        /// Sender's clock at yield time.
        clock: u64,
    },
    /// The bare token sent home (see [`crate::wfdx::WxMsg::TokenReturn`]).
    TokenReturn {
        /// Sender's clock.
        clock: u64,
    },
}

fn to_core(m: FtMsg) -> WxMsg {
    match m {
        FtMsg::Request(ts) => WxMsg::Request(ts),
        FtMsg::Fork { clock } => WxMsg::Fork { clock },
        FtMsg::TokenReturn { clock } => WxMsg::TokenReturn { clock },
    }
}

fn wrap(m: WxMsg) -> DiningMsg {
    DiningMsg::Ftme(match m {
        WxMsg::Request(ts) => FtMsg::Request(ts),
        WxMsg::Fork { clock } => FtMsg::Fork { clock },
        WxMsg::TokenReturn { clock } => FtMsg::TokenReturn { clock },
    })
}

/// One diner's endpoint of a perpetual-WX (FTME) dining instance.
#[derive(Clone, Debug)]
pub struct FtmeDining {
    core: ForkCore,
}

impl FtmeDining {
    /// Endpoint for `me` with the given instance neighbors.
    pub fn new(me: ProcessId, neighbors: &[ProcessId]) -> Self {
        FtmeDining { core: ForkCore::new(me, neighbors, SuspicionPolicy::TrustGated) }
    }

    /// Whether this endpoint holds the fork shared with `peer`.
    pub fn holds_fork(&self, peer: ProcessId) -> bool {
        self.core.holds_fork(peer)
    }
}

impl DiningParticipant for FtmeDining {
    fn hungry(&mut self, io: &mut DiningIo<'_>) {
        self.core.hungry(io, wrap);
    }

    fn exit_eating(&mut self, io: &mut DiningIo<'_>) {
        self.core.exit_eating(io, wrap);
    }

    fn on_message(&mut self, io: &mut DiningIo<'_>, from: ProcessId, msg: DiningMsg) {
        let DiningMsg::Ftme(m) = msg else {
            debug_assert!(false, "foreign message {msg:?}");
            return;
        };
        self.core.on_message(io, from, to_core(m), wrap);
    }

    fn on_tick(&mut self, io: &mut DiningIo<'_>) {
        self.core.on_tick(io);
    }

    fn phase(&self) -> DinerPhase {
        self.core.phase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinefd_fd::{InjectedOracle, MistakePlan};
    use dinefd_sim::{CrashPlan, Time};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn pre_trust_suspicion_never_grants() {
        // The oracle suspects p0 from the start (legal for T before first
        // trust); the trust gate must keep p1 hungry.
        let mut oracle = InjectedOracle::perfect(2, CrashPlan::none(), 0);
        oracle.set_mistakes(p(1), p(0), MistakePlan::from_intervals(vec![(Time(0), Time(50))]));
        let mut d = FtmeDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(1), &oracle);
        d.hungry(&mut io);
        assert_eq!(d.phase(), DinerPhase::Hungry);
        let mut io = DiningIo::new(p(1), Time(40), &oracle);
        d.on_tick(&mut io);
        assert_eq!(d.phase(), DinerPhase::Hungry);
    }

    #[test]
    fn post_trust_crash_suspicion_grants() {
        let oracle = InjectedOracle::perfect(2, CrashPlan::one(p(0), Time(100)), 10);
        let mut d = FtmeDining::new(p(1), &[p(0)]);
        // Establish trust before the crash.
        let mut io = DiningIo::new(p(1), Time(5), &oracle);
        d.hungry(&mut io);
        assert_eq!(d.phase(), DinerPhase::Hungry);
        let mut io = DiningIo::new(p(1), Time(50), &oracle);
        d.on_tick(&mut io);
        assert_eq!(d.phase(), DinerPhase::Hungry);
        // After the crash is detected, the gate is open and the edge is
        // satisfied by (crash-implied) suspicion.
        let mut io = DiningIo::new(p(1), Time(120), &oracle);
        d.on_tick(&mut io);
        assert_eq!(d.phase(), DinerPhase::Eating);
    }

    #[test]
    fn fork_flow_matches_wfdx() {
        let oracle = InjectedOracle::perfect(2, CrashPlan::none(), 0);
        let mut d = FtmeDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(0), &oracle);
        d.hungry(&mut io);
        let fx = io.finish();
        assert!(matches!(fx.sends[0], (_, DiningMsg::Ftme(FtMsg::Request(_)))));
        let mut io = DiningIo::new(p(1), Time(1), &oracle);
        d.on_message(&mut io, p(0), DiningMsg::Ftme(FtMsg::Fork { clock: 3 }));
        assert_eq!(d.phase(), DinerPhase::Eating);
        assert!(d.holds_fork(p(0)));
    }
}
