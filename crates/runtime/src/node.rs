//! The process abstraction: atomic steps, sends, local timers, observations.

use crate::id::ProcessId;
use crate::rng::SplitMix64;
use crate::time::Time;

/// Identifier of a local timer, chosen by the node itself.
///
/// Timers model a process scheduling its *own future step* (the paper's
/// processes take infinitely many steps; a recurring timer is how a node asks
/// the simulator for spontaneous steps in between message deliveries). They
/// are not a global clock: a node only learns "the timer I set has fired",
/// never the time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u32);

/// A process (an element of `Π`) as an event-driven state machine.
///
/// Each handler invocation is one **atomic step** in the sense of the paper's
/// Section 4: the process consumes at most one message, makes a state
/// transition, and emits any number of sends (the paper allows one send per
/// destination per step; emitting `k` messages to the same destination is
/// equivalent to `k` consecutive steps, which the model also allows).
///
/// Handlers of crashed processes are never invoked again — crash semantics
/// live entirely in the driving runtime (the simulator's `World`, or the
/// live cluster's per-process crash schedule).
pub trait Node {
    /// Message type exchanged between nodes of this system.
    type Msg: Clone + std::fmt::Debug;
    /// Application-level observation type recorded into the trace
    /// (diner transitions, suspect-set changes, …) for property checking.
    type Obs: Clone + std::fmt::Debug;

    /// Invoked once at time zero, before any message flows.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Obs>);

    /// Invoked when a message from `from` is delivered.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Obs>,
        from: ProcessId,
        msg: Self::Msg,
    );

    /// Invoked when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg, Self::Obs>, _timer: TimerId) {}
}

/// The capabilities a node has during one atomic step.
///
/// A `Context` is handed to every [`Node`] handler; the world routes the
/// buffered effects (sends, timers, observations) after the handler returns,
/// which makes each handler invocation atomic.
pub struct Context<'a, M, O> {
    me: ProcessId,
    now: Time,
    sends: &'a mut Vec<(ProcessId, M)>,
    timers: &'a mut Vec<(u64, TimerId)>,
    observations: &'a mut Vec<O>,
    rng: &'a mut SplitMix64,
}

impl<M, O> std::fmt::Debug for Context<'_, M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("me", &self.me)
            .field("now", &self.now)
            .field("sends", &self.sends.len())
            .field("timers", &self.timers.len())
            .field("observations", &self.observations.len())
            .finish_non_exhaustive()
    }
}

impl<'a, M, O> Context<'a, M, O> {
    /// Assembles a step context over runtime-owned effect buffers.
    ///
    /// Runtimes (not nodes) call this once per atomic step; the handler's
    /// sends, timers and observations accumulate into the borrowed vectors
    /// and are routed after the handler returns.
    #[inline]
    pub fn new(
        me: ProcessId,
        now: Time,
        sends: &'a mut Vec<(ProcessId, M)>,
        timers: &'a mut Vec<(u64, TimerId)>,
        observations: &'a mut Vec<O>,
        rng: &'a mut SplitMix64,
    ) -> Self {
        Context { me, now, sends, timers, observations, rng }
    }

    /// The id of the process taking this step.
    #[inline]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Current global time.
    ///
    /// Exposed for *tracing convenience only* — protocol logic in this
    /// repository never branches on it (the paper's clock is inaccessible to
    /// processes). The debug assertion culture around this lives in code
    /// review, not the type system.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to` over the reliable non-FIFO channel.
    #[inline]
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Schedules a local timer to fire after `delay` ticks (at least 1).
    #[inline]
    pub fn set_timer(&mut self, delay: u64, id: TimerId) {
        self.timers.push((delay.max(1), id));
    }

    /// Records an application-level observation into the run trace.
    #[inline]
    pub fn observe(&mut self, obs: O) {
        self.observations.push(obs);
    }

    /// Node-local deterministic randomness (tie-breaking, workloads).
    #[inline]
    pub fn rng(&mut self) -> &mut SplitMix64 {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_effects() {
        let mut sends: Vec<(ProcessId, &'static str)> = Vec::new();
        let mut timers = Vec::new();
        let mut obs: Vec<u32> = Vec::new();
        let mut rng = SplitMix64::new(1);
        let mut ctx =
            Context::new(ProcessId(0), Time(5), &mut sends, &mut timers, &mut obs, &mut rng);
        ctx.send(ProcessId(1), "hello");
        ctx.set_timer(0, TimerId(9)); // clamped to 1
        ctx.observe(7);
        assert_eq!(ctx.me(), ProcessId(0));
        assert_eq!(ctx.now(), Time(5));
        assert_eq!(sends, vec![(ProcessId(1), "hello")]);
        assert_eq!(timers, vec![(1, TimerId(9))]);
        assert_eq!(obs, vec![7]);
    }
}
