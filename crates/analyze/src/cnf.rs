//! Bit-blasting the guarded-command IR into CNF.
//!
//! This module compiles [`AbsState`]s, the lemma/strengthening clauses of
//! [`crate::induct`], and one IR transition step into propositional logic
//! over the solver of [`crate::sat`], via hash-consed Tseitin AND gates
//! ([`CnfBuilder::and`]) with constant folding. The encoding is the
//! symbolic twin of the explicit enumerator:
//!
//! * **State** ([`SymState`]): each boolean field is one literal; each
//!   dining phase is a 2-bit vector (`Thinking = 00`, `Hungry = 01`,
//!   `Eating = 10`, `11` excluded by a typed-domain clause); each wire
//!   counter is a little-endian bit-vector of `⌈log₂(cap+1)⌉` bits with a
//!   `≤ cap` typed-domain clause. The typed models of one `SymState` are
//!   therefore exactly the states `for_each_typed_state_cap` enumerates.
//! * **Guards and updates**: transcribed from [`Ir::enabled`] /
//!   [`Ir::fire`] shape for shape ([`sym_enabled`], [`sym_fire`]); the
//!   agreement suite checks the two byte-for-byte over the whole cap-2
//!   domain. Saturated-decrement nondeterminism becomes one fresh *choice*
//!   literal per action: `post = (at_cap ∧ χ) ? cap : count − 1`.
//! * **Step relation** ([`encode_step`]): one *selector* literal per IR
//!   action, an exactly-one constraint over the selectors, `sel ⇒ guard`,
//!   and `sel ⇒ (post-field = fired-field)` for every field — so a model
//!   of the step formula decodes to exactly one `(pre, action, post)`
//!   triple of [`Ir::successors_into`].
//!
//! [`wire_sum`], [`busy_count`] and [`deviation_count`] expose the three
//! numeric components of the enumerator's CTI `simplicity_key` as adder
//! circuits, which is how [`crate::kinduct`] enumerates counterexamples in
//! exactly the explicit checker's "simplest first" order.

use crate::induct::Clause;
use crate::ir::{AbsState, ActionId, Ir, IrConfig};
use crate::sat::{Lit, Solver};
use dinefd_core::machines::SubjectMutation;
use dinefd_dining::DinerPhase;
use dinefd_explore::ModelMutation;
use std::collections::HashMap;

/// A propositional value: a constant or a solver literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bit {
    /// A compile-time constant (folded away, never reaches the solver).
    Const(bool),
    /// The value of a solver literal.
    Is(Lit),
}

/// Shorthand for the constant true.
pub const TRUE: Bit = Bit::Const(true);
/// Shorthand for the constant false.
pub const FALSE: Bit = Bit::Const(false);

/// A little-endian bit-vector (used for phases, counters, and sums).
pub type Bv = Vec<Bit>;

/// The Tseitin circuit builder over a [`Solver`].
#[derive(Debug)]
pub struct CnfBuilder {
    /// The underlying solver (exposed so callers can solve/enumerate).
    pub solver: Solver,
    /// Hash-consing cache for AND gates, keyed on normalized inputs.
    and_cache: HashMap<(Lit, Lit), Lit>,
}

impl CnfBuilder {
    /// An empty builder over a fresh solver.
    pub fn new() -> Self {
        CnfBuilder { solver: Solver::new(), and_cache: HashMap::new() }
    }

    /// A fresh unconstrained bit.
    pub fn fresh(&mut self) -> Bit {
        Bit::Is(Lit::pos(self.solver.new_var()))
    }

    /// Negation (free: flips the sign or the constant).
    pub fn not(&mut self, a: Bit) -> Bit {
        match a {
            Bit::Const(c) => Bit::Const(!c),
            Bit::Is(l) => Bit::Is(l.negate()),
        }
    }

    /// Conjunction, with constant folding and hash-consing.
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(false), _) | (_, Bit::Const(false)) => FALSE,
            (Bit::Const(true), x) | (x, Bit::Const(true)) => x,
            (Bit::Is(la), Bit::Is(lb)) => {
                if la == lb {
                    return a;
                }
                if la == lb.negate() {
                    return FALSE;
                }
                let key = (la.min(lb), la.max(lb));
                if let Some(&o) = self.and_cache.get(&key) {
                    return Bit::Is(o);
                }
                let o = Lit::pos(self.solver.new_var());
                self.solver.add_clause(&[o.negate(), key.0]);
                self.solver.add_clause(&[o.negate(), key.1]);
                self.solver.add_clause(&[key.0.negate(), key.1.negate(), o]);
                self.and_cache.insert(key, o);
                Bit::Is(o)
            }
        }
    }

    /// Disjunction (De Morgan over [`CnfBuilder::and`]).
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        let na = self.not(a);
        let nb = self.not(b);
        let c = self.and(na, nb);
        self.not(c)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        let nb = self.not(b);
        let na = self.not(a);
        let t = self.and(a, nb);
        let u = self.and(na, b);
        self.or(t, u)
    }

    /// Equivalence.
    pub fn iff(&mut self, a: Bit, b: Bit) -> Bit {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// Multiplexer: `cond ? then_b : else_b`.
    pub fn mux(&mut self, cond: Bit, then_b: Bit, else_b: Bit) -> Bit {
        match cond {
            Bit::Const(true) => then_b,
            Bit::Const(false) => else_b,
            _ => {
                if then_b == else_b {
                    return then_b;
                }
                let nc = self.not(cond);
                let t = self.and(cond, then_b);
                let e = self.and(nc, else_b);
                self.or(t, e)
            }
        }
    }

    /// Conjunction of many bits.
    pub fn and_many(&mut self, bits: &[Bit]) -> Bit {
        bits.iter().fold(TRUE, |acc, &b| self.and(acc, b))
    }

    /// Disjunction of many bits.
    pub fn or_many(&mut self, bits: &[Bit]) -> Bit {
        bits.iter().fold(FALSE, |acc, &b| self.or(acc, b))
    }

    /// Asserts `b` as a hard unit constraint. Panics on constant false —
    /// that is always an encoding bug, not a solver verdict.
    pub fn assert_true(&mut self, b: Bit) {
        match b {
            Bit::Const(true) => {}
            Bit::Const(false) => panic!("asserting constant false"),
            Bit::Is(l) => {
                self.solver.add_clause(&[l]);
            }
        }
    }

    /// Asserts `guard ⇒ b` as clauses (no gate variable needed).
    pub fn assert_implies(&mut self, guard: Lit, b: Bit) {
        match b {
            Bit::Const(true) => {}
            Bit::Const(false) => {
                self.solver.add_clause(&[guard.negate()]);
            }
            Bit::Is(l) => {
                self.solver.add_clause(&[guard.negate(), l]);
            }
        }
    }

    /// Asserts `guard ⇒ (a = b)`.
    pub fn assert_eq_under(&mut self, guard: Lit, a: Bit, b: Bit) {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => {
                if x != y {
                    self.solver.add_clause(&[guard.negate()]);
                }
            }
            (Bit::Const(c), Bit::Is(l)) | (Bit::Is(l), Bit::Const(c)) => {
                let want = if c { l } else { l.negate() };
                self.solver.add_clause(&[guard.negate(), want]);
            }
            (Bit::Is(la), Bit::Is(lb)) => {
                if la == lb {
                    return;
                }
                self.solver.add_clause(&[guard.negate(), la.negate(), lb]);
                self.solver.add_clause(&[guard.negate(), la, lb.negate()]);
            }
        }
    }

    // ---- bit-vector circuits -------------------------------------------

    /// The constant bit-vector of `value` over `width` bits.
    pub fn bv_const(&self, value: u64, width: usize) -> Bv {
        (0..width).map(|k| Bit::Const(value >> k & 1 == 1)).collect()
    }

    /// A fresh unconstrained bit-vector.
    pub fn bv_fresh(&mut self, width: usize) -> Bv {
        (0..width).map(|_| self.fresh()).collect()
    }

    /// `a = k` as a single bit.
    pub fn bv_eq_const(&mut self, a: &Bv, k: u64) -> Bit {
        let mut acc = TRUE;
        for (i, &bit) in a.iter().enumerate() {
            let want = k >> i & 1 == 1;
            let matched = if want { bit } else { self.not(bit) };
            acc = self.and(acc, matched);
        }
        if k >> a.len() != 0 {
            return FALSE; // k does not fit in the width
        }
        acc
    }

    /// `a = b` (widths must match).
    pub fn bv_eq(&mut self, a: &Bv, b: &Bv) -> Bit {
        assert_eq!(a.len(), b.len());
        let mut acc = TRUE;
        for (&x, &y) in a.iter().zip(b) {
            let e = self.iff(x, y);
            acc = self.and(acc, e);
        }
        acc
    }

    /// `a ≠ 0`.
    pub fn bv_nonzero(&mut self, a: &Bv) -> Bit {
        let bits: Vec<Bit> = a.clone();
        self.or_many(&bits)
    }

    /// `a ≤ k` (small-width disjunction of equalities — counters are ≤ 4
    /// bits wide, so this stays tiny).
    pub fn bv_le_const(&mut self, a: &Bv, k: u64) -> Bit {
        let mut terms = Vec::with_capacity(k as usize + 1);
        for v in 0..=k {
            terms.push(self.bv_eq_const(a, v));
        }
        self.or_many(&terms)
    }

    /// `a + 1` over the same width (wraps; callers guard against it).
    pub fn bv_inc(&mut self, a: &Bv) -> Bv {
        let mut carry = TRUE;
        let mut out = Vec::with_capacity(a.len());
        for &bit in a {
            out.push(self.xor(bit, carry));
            carry = self.and(bit, carry);
        }
        out
    }

    /// `a − 1` over the same width (wraps at 0; callers guard).
    pub fn bv_dec(&mut self, a: &Bv) -> Bv {
        let mut borrow = TRUE;
        let mut out = Vec::with_capacity(a.len());
        for &bit in a {
            out.push(self.xor(bit, borrow));
            let nb = self.not(bit);
            borrow = self.and(nb, borrow);
        }
        out
    }

    /// Ripple-carry addition, widened to hold the exact sum.
    pub fn bv_add(&mut self, a: &Bv, b: &Bv) -> Bv {
        let width = a.len().max(b.len()) + 1;
        let get = |v: &Bv, k: usize| v.get(k).copied().unwrap_or(FALSE);
        let mut carry = FALSE;
        let mut out = Vec::with_capacity(width);
        for k in 0..width {
            let x = get(a, k);
            let y = get(b, k);
            let xy = self.xor(x, y);
            out.push(self.xor(xy, carry));
            let t = self.and(x, y);
            let u = self.and(xy, carry);
            carry = self.or(t, u);
        }
        out
    }

    /// Per-bit multiplexer over equal-width vectors.
    pub fn bv_mux(&mut self, cond: Bit, then_v: &Bv, else_v: &Bv) -> Bv {
        assert_eq!(then_v.len(), else_v.len());
        then_v.iter().zip(else_v).map(|(&t, &e)| self.mux(cond, t, e)).collect()
    }

    /// Population count of `bits` as an exact-width sum.
    pub fn popcount(&mut self, bits: &[Bit]) -> Bv {
        let mut acc = self.bv_const(0, 1);
        for &b in bits {
            acc = self.bv_add(&acc, &vec![b]);
        }
        acc
    }
}

impl Default for CnfBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Bits needed for a counter saturating at `cap` (`⌈log₂(cap+1)⌉`).
pub fn counter_width(cap: u8) -> usize {
    (32 - (cap as u32).leading_zeros()) as usize
}

/// One symbolic [`AbsState`]: every field of the explicit struct as bits.
#[derive(Clone, Debug)]
pub struct SymState {
    /// Phases of `p.w_0`, `p.w_1` (2 bits each).
    pub w_phase: [Bv; 2],
    /// Phases of `q.s_0`, `q.s_1`.
    pub s_phase: [Bv; 2],
    /// Alg. 1 `switch` (one bit; `true` = instance 1).
    pub switch: Bit,
    /// Alg. 1 `haveping_i`.
    pub haveping: [Bit; 2],
    /// Alg. 1 `suspect_q`.
    pub suspect: Bit,
    /// Alg. 2 `trigger` (one bit).
    pub trigger: Bit,
    /// Alg. 2 `ping_i`.
    pub ping_enabled: [Bit; 2],
    /// Whether ◇WX's exclusive suffix has begun.
    pub converged: Bit,
    /// Whether `q` has crashed.
    pub crashed: Bit,
    /// In-flight pings per instance.
    pub pings: [Bv; 2],
    /// In-flight acks per instance.
    pub acks: [Bv; 2],
    /// The saturation cap the counters were sized for.
    pub cap: u8,
}

fn phase_const(b: &CnfBuilder, p: DinerPhase) -> Bv {
    b.bv_const(p as u64, 2)
}

impl SymState {
    /// Allocates a fresh symbolic state and asserts its typed-domain
    /// constraints: phases ∈ {thinking, hungry, eating} (no `11` code, and
    /// `Exiting` is excluded exactly as in `for_each_typed_state_cap`),
    /// counters ≤ `cap`.
    pub fn fresh(b: &mut CnfBuilder, cap: u8) -> SymState {
        let phase = |b: &mut CnfBuilder| -> Bv {
            let v = b.bv_fresh(2);
            let both = b.and(v[0], v[1]);
            let neither = b.not(both);
            b.assert_true(neither);
            v
        };
        let w_phase = [phase(b), phase(b)];
        let s_phase = [phase(b), phase(b)];
        let counter = |b: &mut CnfBuilder| -> Bv {
            let v = b.bv_fresh(counter_width(cap));
            let le = b.bv_le_const(&v, cap as u64);
            b.assert_true(le);
            v
        };
        let pings = [counter(b), counter(b)];
        let acks = [counter(b), counter(b)];
        SymState {
            w_phase,
            s_phase,
            switch: b.fresh(),
            haveping: [b.fresh(), b.fresh()],
            suspect: b.fresh(),
            trigger: b.fresh(),
            ping_enabled: [b.fresh(), b.fresh()],
            converged: b.fresh(),
            crashed: b.fresh(),
            pings,
            acks,
            cap,
        }
    }

    /// `phase = p` as a bit.
    pub fn phase_is(&self, b: &mut CnfBuilder, phase: &Bv, p: DinerPhase) -> Bit {
        b.bv_eq_const(phase, p as u64)
    }

    /// `switch = i` / `trigger = i` helpers.
    fn bin_is(&self, b: &mut CnfBuilder, bit: Bit, i: usize) -> Bit {
        if i == 1 {
            bit
        } else {
            b.not(bit)
        }
    }

    /// Reads the concrete state out of a satisfying assignment.
    pub fn decode(&self, solver: &Solver) -> AbsState {
        let bit = |x: Bit| match x {
            Bit::Const(c) => c,
            Bit::Is(l) => solver.lit_value(l),
        };
        let bv = |v: &Bv| -> u8 {
            v.iter().enumerate().fold(0u8, |acc, (k, &x)| acc | (u8::from(bit(x)) << k))
        };
        let phase = |v: &Bv| match bv(v) {
            0 => DinerPhase::Thinking,
            1 => DinerPhase::Hungry,
            2 => DinerPhase::Eating,
            other => unreachable!("excluded phase code {other}"),
        };
        AbsState {
            w_phase: [phase(&self.w_phase[0]), phase(&self.w_phase[1])],
            s_phase: [phase(&self.s_phase[0]), phase(&self.s_phase[1])],
            switch: u8::from(bit(self.switch)),
            haveping: [bit(self.haveping[0]), bit(self.haveping[1])],
            suspect: bit(self.suspect),
            trigger: u8::from(bit(self.trigger)),
            ping_enabled: [bit(self.ping_enabled[0]), bit(self.ping_enabled[1])],
            converged: bit(self.converged),
            crashed: bit(self.crashed),
            pings: [bv(&self.pings[0]), bv(&self.pings[1])],
            acks: [bv(&self.acks[0]), bv(&self.acks[1])],
        }
    }

    /// Every solver literal of the state (pre/post blocking clauses range
    /// over exactly these).
    pub fn literals(&self) -> Vec<Lit> {
        let mut out = Vec::with_capacity(32);
        let mut push = |b: Bit| {
            if let Bit::Is(l) = b {
                out.push(l);
            }
        };
        for i in 0..2 {
            self.w_phase[i].iter().for_each(|&b| push(b));
            self.s_phase[i].iter().for_each(|&b| push(b));
        }
        push(self.switch);
        push(self.haveping[0]);
        push(self.haveping[1]);
        push(self.suspect);
        push(self.trigger);
        push(self.ping_enabled[0]);
        push(self.ping_enabled[1]);
        push(self.converged);
        push(self.crashed);
        for i in 0..2 {
            self.pings[i].iter().for_each(|&b| push(b));
            self.acks[i].iter().for_each(|&b| push(b));
        }
        out
    }

    /// Assumption literals pinning this symbolic state to the concrete `s`.
    pub fn assumptions_for(&self, s: &AbsState, out: &mut Vec<Lit>) {
        fn pin(out: &mut Vec<Lit>, b: Bit, want: bool) {
            match b {
                Bit::Const(c) => debug_assert_eq!(c, want, "constant bit mismatch"),
                Bit::Is(l) => out.push(if want { l } else { l.negate() }),
            }
        }
        fn pin_bv(out: &mut Vec<Lit>, v: &Bv, want: u64) {
            for (k, &b) in v.iter().enumerate() {
                pin(out, b, want >> k & 1 == 1);
            }
        }
        for i in 0..2 {
            pin_bv(out, &self.w_phase[i], s.w_phase[i] as u64);
            pin_bv(out, &self.s_phase[i], s.s_phase[i] as u64);
        }
        pin(out, self.switch, s.switch == 1);
        pin(out, self.haveping[0], s.haveping[0]);
        pin(out, self.haveping[1], s.haveping[1]);
        pin(out, self.suspect, s.suspect);
        pin(out, self.trigger, s.trigger == 1);
        pin(out, self.ping_enabled[0], s.ping_enabled[0]);
        pin(out, self.ping_enabled[1], s.ping_enabled[1]);
        pin(out, self.converged, s.converged);
        pin(out, self.crashed, s.crashed);
        for i in 0..2 {
            pin_bv(out, &self.pings[i], u64::from(s.pings[i]));
            pin_bv(out, &self.acks[i], u64::from(s.acks[i]));
        }
    }
}

/// The guard of `id` on symbolic state `s` — the bit-level transcription of
/// [`Ir::enabled`], constant-folded against `cfg`.
pub fn sym_enabled(b: &mut CnfBuilder, cfg: &IrConfig, s: &SymState, id: ActionId) -> Bit {
    use DinerPhase::{Eating, Hungry, Thinking};
    let o = |i: usize| 1 - i;
    let not_crashed = b.not(s.crashed);
    match id {
        ActionId::WitnessHungry(i) => {
            let a = s.phase_is(b, &s.w_phase[i].clone(), Thinking);
            let c = s.phase_is(b, &s.w_phase[o(i)].clone(), Thinking);
            let sw = s.bin_is(b, s.switch, i);
            b.and_many(&[a, c, sw])
        }
        ActionId::WitnessExit(i) => s.phase_is(b, &s.w_phase[i].clone(), Eating),
        ActionId::SubjectHungry(i) => {
            let thinking = s.phase_is(b, &s.s_phase[i].clone(), Thinking);
            let trig = if cfg.subject_mutation == SubjectMutation::IgnoreTriggerGuard {
                TRUE
            } else {
                s.bin_is(b, s.trigger, i)
            };
            b.and_many(&[not_crashed, thinking, trig])
        }
        ActionId::SubjectPing(i) => {
            let eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
            let other_eat = s.phase_is(b, &s.s_phase[o(i)].clone(), Eating);
            let other_ok = b.not(other_eat);
            b.and_many(&[not_crashed, eat, other_ok, s.ping_enabled[i]])
        }
        ActionId::SubjectExit(i) => {
            let eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
            let other_eat = s.phase_is(b, &s.s_phase[o(i)].clone(), Eating);
            let trig = s.bin_is(b, s.trigger, o(i));
            b.and_many(&[not_crashed, eat, other_eat, trig])
        }
        ActionId::DeliverPing(i) => b.bv_nonzero(&s.pings[i].clone()),
        ActionId::DeliverAck(i) => {
            let some = b.bv_nonzero(&s.acks[i].clone());
            b.and(not_crashed, some)
        }
        ActionId::DeliverStaleAck(i) => {
            let mode = Bit::Const(cfg.strict_seq);
            let some = b.bv_nonzero(&s.acks[i].clone());
            b.and_many(&[mode, not_crashed, some])
        }
        ActionId::DuplicateAck(i) => {
            let mode = Bit::Const(cfg.model_mutation == ModelMutation::StaleAckReplay);
            let some = b.bv_nonzero(&s.acks[i].clone());
            b.and_many(&[mode, not_crashed, some])
        }
        ActionId::GrantWitness(i) => {
            let hungry = s.phase_is(b, &s.w_phase[i].clone(), Hungry);
            let s_eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
            let s_not_eat = b.not(s_eat);
            let nc = b.not(s.converged);
            let free = b.or_many(&[nc, s.crashed, s_not_eat]);
            b.and(hungry, free)
        }
        ActionId::GrantSubject(i) => {
            let hungry = s.phase_is(b, &s.s_phase[i].clone(), Hungry);
            let w_eat = s.phase_is(b, &s.w_phase[i].clone(), Eating);
            let w_not_eat = b.not(w_eat);
            let nc = b.not(s.converged);
            let free = b.or(nc, w_not_eat);
            b.and_many(&[not_crashed, hungry, free])
        }
        ActionId::Converge => {
            let mut overlap = FALSE;
            for i in 0..2 {
                let w_eat = s.phase_is(b, &s.w_phase[i].clone(), Eating);
                let s_eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
                let both = b.and_many(&[not_crashed, w_eat, s_eat]);
                overlap = b.or(overlap, both);
            }
            let nc = b.not(s.converged);
            let no_overlap = b.not(overlap);
            b.and(nc, no_overlap)
        }
        ActionId::CrashSubject => {
            let mode = Bit::Const(cfg.allow_crash);
            b.and(mode, not_crashed)
        }
    }
}

/// Saturating increment at the state's cap: `a = cap ? cap : a + 1`.
fn sym_sat_inc(b: &mut CnfBuilder, a: &Bv, cap: u8) -> Bv {
    let at_cap = b.bv_eq_const(a, cap as u64);
    let inc = b.bv_inc(a);
    let cap_v = b.bv_const(cap as u64, a.len());
    b.bv_mux(at_cap, &cap_v, &inc)
}

/// Saturating decrement with the abstraction's nondeterministic stay-at-cap
/// branch driven by the `choice` literal: `(a = cap ∧ χ) ? cap : a − 1`.
fn sym_sat_dec(b: &mut CnfBuilder, a: &Bv, cap: u8, choice: Bit) -> Bv {
    let at_cap = b.bv_eq_const(a, cap as u64);
    let stay = b.and(at_cap, choice);
    let dec = b.bv_dec(a);
    let cap_v = b.bv_const(cap as u64, a.len());
    b.bv_mux(stay, &cap_v, &dec)
}

/// The post-state expression of firing `id` from `s` — the bit-level
/// transcription of [`Ir::fire`], with `choice` resolving saturated
/// decrements. Fields an action leaves alone are the pre-state's own bits,
/// which is what makes the frame condition exact.
pub fn sym_fire(
    b: &mut CnfBuilder,
    cfg: &IrConfig,
    s: &SymState,
    id: ActionId,
    choice: Bit,
) -> SymState {
    use DinerPhase::{Eating, Hungry, Thinking};
    let o = |i: usize| 1 - i;
    let cap = s.cap;
    let mut t = s.clone();
    match id {
        ActionId::WitnessHungry(i) => {
            t.w_phase[i] = phase_const(b, Hungry);
        }
        ActionId::WitnessExit(i) => {
            t.suspect = b.not(s.haveping[i]);
            t.haveping[i] = FALSE;
            t.switch = Bit::Const(o(i) == 1);
            t.w_phase[i] = phase_const(b, Thinking);
        }
        ActionId::SubjectHungry(i) => {
            t.s_phase[i] = phase_const(b, Hungry);
        }
        ActionId::SubjectPing(i) => {
            if cfg.subject_mutation != SubjectMutation::SkipPingDisable {
                t.ping_enabled[i] = FALSE;
            }
            if cfg.model_mutation != ModelMutation::DropPingSend {
                t.pings[i] = sym_sat_inc(b, &s.pings[i], cap);
            }
        }
        ActionId::SubjectExit(i) => {
            t.ping_enabled[i] = TRUE;
            t.s_phase[i] = phase_const(b, Thinking);
        }
        ActionId::DeliverPing(i) => {
            t.haveping[i] = TRUE;
            let inc = sym_sat_inc(b, &s.acks[i], cap);
            t.acks[i] = b.bv_mux(s.crashed, &s.acks[i], &inc);
            t.pings[i] = sym_sat_dec(b, &s.pings[i], cap, choice);
        }
        ActionId::DeliverAck(i) => {
            if cfg.subject_mutation != SubjectMutation::SkipTriggerUpdate {
                t.trigger = Bit::Const(o(i) == 1);
            }
            t.acks[i] = sym_sat_dec(b, &s.acks[i], cap, choice);
        }
        ActionId::DeliverStaleAck(i) => {
            t.acks[i] = sym_sat_dec(b, &s.acks[i], cap, choice);
        }
        ActionId::DuplicateAck(i) => {
            t.acks[i] = sym_sat_inc(b, &s.acks[i], cap);
        }
        ActionId::GrantWitness(i) => {
            t.w_phase[i] = phase_const(b, Eating);
        }
        ActionId::GrantSubject(i) => {
            t.s_phase[i] = phase_const(b, Eating);
        }
        ActionId::Converge => {
            t.converged = TRUE;
        }
        ActionId::CrashSubject => {
            t.crashed = TRUE;
            let zero = b.bv_const(0, s.acks[0].len());
            t.acks = [zero.clone(), zero];
        }
    }
    t
}

/// One encoded action of a step: its selector and choice literals.
#[derive(Clone, Copy, Debug)]
pub struct SymAction {
    /// The action.
    pub id: ActionId,
    /// True in a model iff this action is the one fired.
    pub select: Lit,
    /// Resolves the saturated-decrement nondeterminism when fired.
    pub choice: Lit,
}

/// The encoded transition relation between two symbolic states.
#[derive(Clone, Debug)]
pub struct SymStep {
    /// One entry per action of the IR's table, same order.
    pub actions: Vec<SymAction>,
}

impl SymStep {
    /// The action selected in the current model.
    pub fn selected(&self, solver: &Solver) -> ActionId {
        self.actions
            .iter()
            .find(|a| solver.lit_value(a.select))
            .map(|a| a.id)
            .expect("exactly-one selector constraint")
    }
}

/// Encodes `post = fire(pre, a)` for exactly one action `a` of `ir`:
/// per-action selector literals with an exactly-one constraint,
/// `sel ⇒ guard`, and `sel ⇒` field-wise equality of `post` with the fired
/// expression.
pub fn encode_step(b: &mut CnfBuilder, ir: &Ir, pre: &SymState, post: &SymState) -> SymStep {
    let cfg = ir.cfg;
    let mut actions = Vec::with_capacity(ir.actions().len());
    for a in ir.actions() {
        let select = Lit::pos(b.solver.new_var());
        let choice = Lit::pos(b.solver.new_var());
        let guard = sym_enabled(b, &cfg, pre, a.id);
        b.assert_implies(select, guard);
        let fired = sym_fire(b, &cfg, pre, a.id, Bit::Is(choice));
        for i in 0..2 {
            for k in 0..2 {
                b.assert_eq_under(select, post.w_phase[i][k], fired.w_phase[i][k]);
                b.assert_eq_under(select, post.s_phase[i][k], fired.s_phase[i][k]);
            }
            for k in 0..pre.pings[i].len() {
                b.assert_eq_under(select, post.pings[i][k], fired.pings[i][k]);
                b.assert_eq_under(select, post.acks[i][k], fired.acks[i][k]);
            }
        }
        b.assert_eq_under(select, post.switch, fired.switch);
        b.assert_eq_under(select, post.haveping[0], fired.haveping[0]);
        b.assert_eq_under(select, post.haveping[1], fired.haveping[1]);
        b.assert_eq_under(select, post.suspect, fired.suspect);
        b.assert_eq_under(select, post.trigger, fired.trigger);
        b.assert_eq_under(select, post.ping_enabled[0], fired.ping_enabled[0]);
        b.assert_eq_under(select, post.ping_enabled[1], fired.ping_enabled[1]);
        b.assert_eq_under(select, post.converged, fired.converged);
        b.assert_eq_under(select, post.crashed, fired.crashed);
        actions.push(SymAction { id: a.id, select, choice });
    }
    // Exactly one action fires: at-least-one + pairwise at-most-one.
    let alo: Vec<Lit> = actions.iter().map(|a| a.select).collect();
    b.solver.add_clause(&alo);
    for i in 0..actions.len() {
        for j in i + 1..actions.len() {
            b.solver.add_clause(&[actions[i].select.negate(), actions[j].select.negate()]);
        }
    }
    SymStep { actions }
}

/// The symbolic value of one invariant clause on `s` — the bit-level twin
/// of [`Clause::holds`] (which itself delegates to the shared predicates of
/// `dinefd_explore::invariants`).
pub fn sym_clause(b: &mut CnfBuilder, s: &SymState, clause: Clause) -> Bit {
    use DinerPhase::{Eating, Hungry, Thinking};
    let per_instance = |b: &mut CnfBuilder, f: &mut dyn FnMut(&mut CnfBuilder, usize) -> Bit| {
        let x = f(b, 0);
        let y = f(b, 1);
        b.and(x, y)
    };
    let in_flight = |b: &mut CnfBuilder, s: &SymState, i: usize| {
        let p = b.bv_nonzero(&s.pings[i].clone());
        let a = b.bv_nonzero(&s.acks[i].clone());
        b.or(p, a)
    };
    match clause {
        Clause::L2 => per_instance(b, &mut |b, i| {
            let eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
            b.or_many(&[s.crashed, eat, s.ping_enabled[i]])
        }),
        Clause::L3 => per_instance(b, &mut |b, i| {
            let eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
            let npe = b.not(s.ping_enabled[i]);
            let fl = in_flight(b, s, i);
            let nfl = b.not(fl);
            b.or_many(&[s.crashed, eat, npe, nfl])
        }),
        Clause::L4 => per_instance(b, &mut |b, i| {
            let hungry = s.phase_is(b, &s.s_phase[i].clone(), Hungry);
            let nh = b.not(hungry);
            let trig = s.bin_is(b, s.trigger, i);
            b.or_many(&[s.crashed, nh, trig])
        }),
        Clause::L9 => {
            let t0 = s.phase_is(b, &s.w_phase[0].clone(), Thinking);
            let t1 = s.phase_is(b, &s.w_phase[1].clone(), Thinking);
            b.or(t0, t1)
        }
        Clause::Excl => per_instance(b, &mut |b, i| {
            let w_eat = s.phase_is(b, &s.w_phase[i].clone(), Eating);
            let s_eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
            let both = b.and(w_eat, s_eat);
            let nboth = b.not(both);
            let nconv = b.not(s.converged);
            b.or_many(&[nconv, s.crashed, nboth])
        }),
        Clause::WTurn => {
            // w_{1-switch} thinking: switch=0 ⇒ w_1 thinking, switch=1 ⇒ w_0.
            let t0 = s.phase_is(b, &s.w_phase[0].clone(), Thinking);
            let t1 = s.phase_is(b, &s.w_phase[1].clone(), Thinking);
            b.mux(s.switch, t0, t1)
        }
        Clause::R1 => per_instance(b, &mut |b, i| {
            // pings[i] + acks[i] ≤ 1.
            let sum = b.bv_add(&s.pings[i].clone(), &s.acks[i].clone());
            b.bv_le_const(&sum, 1)
        }),
        Clause::R2 => per_instance(b, &mut |b, i| {
            let fl = in_flight(b, s, i);
            let nfl = b.not(fl);
            let npe = b.not(s.ping_enabled[i]);
            b.or(nfl, npe)
        }),
        Clause::RegimeTrig => per_instance(b, &mut |b, i| {
            let fl = in_flight(b, s, i);
            let nfl = b.not(fl);
            let trig = s.bin_is(b, s.trigger, i);
            b.or(nfl, trig)
        }),
        Clause::R6 => per_instance(b, &mut |b, i| {
            let npe = b.not(s.ping_enabled[i]);
            let eat = s.phase_is(b, &s.s_phase[i].clone(), Eating);
            let neat = b.not(eat);
            let trig = s.bin_is(b, s.trigger, i);
            b.or_many(&[s.crashed, npe, neat, trig])
        }),
    }
}

/// Membership in the Theorem-1 completeness closure, symbolically: `q`
/// crashed, no pings in flight, no banked ping.
pub fn sym_in_closure(b: &mut CnfBuilder, s: &SymState) -> Bit {
    let p0 = b.bv_nonzero(&s.pings[0].clone());
    let p1 = b.bv_nonzero(&s.pings[1].clone());
    let np0 = b.not(p0);
    let np1 = b.not(p1);
    let nh0 = b.not(s.haveping[0]);
    let nh1 = b.not(s.haveping[1]);
    b.and_many(&[s.crashed, np0, np1, nh0, nh1])
}

/// Total messages in flight (`pings[0] + pings[1] + acks[0] + acks[1]`) —
/// the first component of the enumerator's CTI simplicity key.
pub fn wire_sum(b: &mut CnfBuilder, s: &SymState) -> Bv {
    let p = b.bv_add(&s.pings[0].clone(), &s.pings[1].clone());
    let a = b.bv_add(&s.acks[0].clone(), &s.acks[1].clone());
    b.bv_add(&p, &a)
}

/// Count of non-thinking threads — the key's second component.
pub fn busy_count(b: &mut CnfBuilder, s: &SymState) -> Bv {
    let mut bits = Vec::with_capacity(4);
    for i in 0..2 {
        let wt = s.phase_is(b, &s.w_phase[i].clone(), DinerPhase::Thinking);
        bits.push(b.not(wt));
    }
    for i in 0..2 {
        let st = s.phase_is(b, &s.s_phase[i].clone(), DinerPhase::Thinking);
        bits.push(b.not(st));
    }
    b.popcount(&bits)
}

/// Count of scalar fields deviating from the initial state (`suspect` and
/// the ping flags start *true*) — the key's third component.
pub fn deviation_count(b: &mut CnfBuilder, s: &SymState) -> Bv {
    let nsusp = b.not(s.suspect);
    let npe0 = b.not(s.ping_enabled[0]);
    let npe1 = b.not(s.ping_enabled[1]);
    let bits = [
        s.haveping[0],
        s.haveping[1],
        nsusp,
        s.converged,
        s.crashed,
        npe0,
        npe1,
        s.trigger,
        s.switch,
    ];
    b.popcount(&bits)
}

/// Assumption literals pinning bit-vector `v` to the constant `value`.
/// Returns `false` when a constant bit contradicts `value` (the stratum is
/// structurally empty).
pub fn pin_bv(v: &Bv, value: u64, out: &mut Vec<Lit>) -> bool {
    for (k, &b) in v.iter().enumerate() {
        let want = value >> k & 1 == 1;
        match b {
            Bit::Const(c) => {
                if c != want {
                    return false;
                }
            }
            Bit::Is(l) => out.push(if want { l } else { l.negate() }),
        }
    }
    value >> v.len() == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induct::{clause_mask, ALL_CLAUSES};
    use crate::sat::SolveOutcome;

    fn faithful() -> IrConfig {
        IrConfig::faithful()
    }

    #[test]
    fn counter_widths_cover_the_cap_range() {
        assert_eq!(counter_width(2), 2);
        assert_eq!(counter_width(3), 2);
        assert_eq!(counter_width(4), 3);
        assert_eq!(counter_width(7), 3);
        assert_eq!(counter_width(8), 4);
    }

    #[test]
    fn fresh_state_round_trips_through_assumptions() {
        let mut b = CnfBuilder::new();
        let sym = SymState::fresh(&mut b, 2);
        let mut s = AbsState::initial();
        s.pings[0] = 2;
        s.s_phase[1] = DinerPhase::Eating;
        s.trigger = 1;
        let mut assumptions = Vec::new();
        sym.assumptions_for(&s, &mut assumptions);
        assert_eq!(b.solver.solve(&assumptions), SolveOutcome::Sat);
        assert_eq!(sym.decode(&b.solver), s);
    }

    #[test]
    fn typed_constraints_exclude_invalid_phase_and_overflow() {
        let mut b = CnfBuilder::new();
        let sym = SymState::fresh(&mut b, 2);
        // Pin w_phase[0] to the excluded code 3.
        let mut bad = Vec::new();
        assert!(pin_bv(&sym.w_phase[0], 3, &mut bad));
        assert_eq!(b.solver.solve(&bad), SolveOutcome::Unsat);
        // Pin pings[0] to 3 > cap.
        let mut bad = Vec::new();
        assert!(pin_bv(&sym.pings[0], 3, &mut bad));
        assert_eq!(b.solver.solve(&bad), SolveOutcome::Unsat);
    }

    #[test]
    fn symbolic_clauses_agree_with_explicit_on_sampled_states() {
        let mut b = CnfBuilder::new();
        let sym = SymState::fresh(&mut b, 2);
        let clause_bits: Vec<(Clause, Bit)> =
            ALL_CLAUSES.iter().map(|&c| (c, sym_clause(&mut b, &sym, c))).collect();
        // A deterministic scatter of states across the typed domain.
        let mut k = 0u64;
        let mut checked = 0u64;
        crate::induct::for_each_typed_state(|s| {
            k = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
            if !k.is_multiple_of(4096) {
                return;
            }
            checked += 1;
            let mut assumptions = Vec::new();
            sym.assumptions_for(s, &mut assumptions);
            assert_eq!(b.solver.solve(&assumptions), SolveOutcome::Sat);
            let mask = clause_mask(s);
            for (j, &(c, bit)) in clause_bits.iter().enumerate() {
                let sym_val = match bit {
                    Bit::Const(v) => v,
                    Bit::Is(l) => b.solver.lit_value(l),
                };
                assert_eq!(sym_val, mask >> j & 1 == 1, "clause {c:?} on {s:?}");
            }
        });
        assert!(checked > 500, "sample too small: {checked}");
    }

    #[test]
    fn encoded_step_agrees_with_successors_on_sampled_states() {
        let cfg = faithful();
        let ir = Ir::new(cfg);
        let mut b = CnfBuilder::new();
        let pre = SymState::fresh(&mut b, cfg.wire_cap);
        let post = SymState::fresh(&mut b, cfg.wire_cap);
        let step = encode_step(&mut b, &ir, &pre, &post);
        let mut k = 0u64;
        let mut checked = 0u64;
        let mut succ = Vec::new();
        crate::induct::for_each_typed_state(|s| {
            k = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
            if !k.is_multiple_of(32768) {
                return;
            }
            checked += 1;
            succ.clear();
            ir.successors_into(s, &mut succ);
            let expected: std::collections::BTreeSet<String> =
                succ.iter().map(|(id, t)| format!("{id:?}|{t:?}")).collect();
            // Enumerate all models of the step with this pre-state pinned.
            let mut assumptions = Vec::new();
            pre.assumptions_for(s, &mut assumptions);
            let mut got = std::collections::BTreeSet::new();
            while b.solver.solve(&assumptions) == SolveOutcome::Sat {
                let id = step.selected(&b.solver);
                let t = post.decode(&b.solver);
                got.insert(format!("{id:?}|{t:?}"));
                // Block this (pre, selector, post) triple. Including the
                // pre-state literals keeps the clause sample-local (it is
                // auto-satisfied under any other pre-state); leaving the
                // choice literals out collapses the don't-care choice
                // assignments into one model per triple.
                let mut block: Vec<Lit> = Vec::new();
                for l in pre.literals().into_iter().chain(post.literals()) {
                    block.push(if b.solver.lit_value(l) { l.negate() } else { l });
                }
                for a in &step.actions {
                    if b.solver.lit_value(a.select) {
                        block.push(a.select.negate());
                    }
                }
                b.solver.add_clause(&block);
                assert!(got.len() <= 64, "runaway enumeration");
            }
            assert_eq!(got, expected, "successor mismatch out of {s:?}");
        });
        assert!(checked > 50, "sample too small: {checked}");
    }
}
