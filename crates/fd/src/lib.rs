//! # `dinefd-fd` — failure detectors: classes, implementations, and checkers
//!
//! A failure detector is a distributed oracle that each process can query for
//! a set of processes currently *suspected* of having crashed (Chandra &
//! Toueg). Classes are defined by a **completeness** property (restricting
//! false negatives) and an **accuracy** property (restricting false
//! positives). The classes relevant to the paper:
//!
//! * **◇P (eventually perfect)** — *strong completeness*: every crashed
//!   process is eventually permanently suspected by every correct process;
//!   *eventual strong accuracy*: there is a time after which no correct
//!   process is suspected by any correct process. ◇P may wrongfully suspect
//!   correct processes finitely many times per run.
//! * **P (perfect)** — strong completeness + *perpetual* strong accuracy.
//! * **S (strong)** — strong completeness + *perpetual weak accuracy*: some
//!   correct process is never suspected by any live process.
//! * **T (trusting)** — strong completeness + *trusting accuracy*: every
//!   correct process is eventually permanently trusted, and at all times, if
//!   T stops trusting a process then that process has crashed.
//!
//! This crate provides three things:
//!
//! 1. [`spec`] — trace-level checkers that decide, for a recorded run, which
//!    of the above properties a suspicion history satisfies. These implement
//!    the paper's *definitions* directly and are the ground truth for every
//!    experiment in `EXPERIMENTS.md`.
//! 2. [`injected`] — an omniscient scripted oracle used as the ◇P (or P, or
//!    T) module *underneath* black-box dining implementations. Its wrongful
//!    suspicions are adversary-controlled, letting experiments probe
//!    worst-case finite prefixes.
//! 3. [`heartbeat`] — a real message-passing ◇P (heartbeats + adaptive
//!    timeouts) that is correct in the partially synchronous delay model of
//!    `dinefd-sim`, demonstrating that the injected module corresponds to an
//!    implementable artifact.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod class;
pub mod heartbeat;
pub mod injected;
pub mod spec;

pub use class::OracleClass;
pub use heartbeat::{HeartbeatConfig, HeartbeatFd};
pub use injected::{FdQuery, InjectedOracle, MistakePlan};
pub use spec::{FdEvent, SuspicionHistory};
