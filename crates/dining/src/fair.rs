//! `FairWfDxDining` — WF-◇WX dining with **eventual 2-fairness** (the
//! paper's Section 8 and its reference \[13\]).
//!
//! Eventual k-fairness: every run has a suffix in which no process enters
//! its critical section more than `k` consecutive times while a correct
//! neighbor remains hungry. The paper's secondary result is that *any*
//! WF-◇WX black box can be upgraded to an eventually 2-fair one by
//! extracting ◇P (this repository's `dinefd-core`) and re-running the
//! \[13\]-style construction; this module is that construction's target
//! algorithm.
//!
//! Mechanism: the ◇P fork algorithm of [`crate::wfdx`], plus hunger
//! bookkeeping. Diners announce `Hungry` on becoming hungry and `Done` when
//! they exit; a diner also infers hunger from an incoming fork request. A
//! diner whose *overtake counter* against some announced-hungry, currently
//! unsuspected neighbor has reached 2 closes its own eating gate until that
//! neighbor eats (its `Done` resets the counter). Suspected neighbors waive
//! the gate, preserving wait-freedom; ◇P's eventual accuracy means the gate
//! is eventually honoured exactly for live neighbors, giving the 2-fair
//! suffix. Announcement latency can let an extra overtake slip through at a
//! spell boundary; experiment E6 measures the achieved suffix bound.

use dinefd_sim::ProcessId;

use crate::participant::{DiningIo, DiningMsg, DiningParticipant};
use crate::state::DinerPhase;
use crate::wfdx::{ForkCore, SuspicionPolicy, Ts, WxMsg};

/// Messages of the fair algorithm: fork traffic plus hunger announcements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FairMsg {
    /// The request token, stamped with the requester's session timestamp.
    Request(Ts),
    /// The fork, carrying the sender's Lamport clock.
    Fork {
        /// Sender's clock at yield time.
        clock: u64,
    },
    /// The bare token sent home (see [`crate::wfdx::WxMsg::TokenReturn`]).
    TokenReturn {
        /// Sender's clock.
        clock: u64,
    },
    /// "I have become hungry."
    Hungry,
    /// "I have eaten and exited."
    Done,
}

fn wrap(m: WxMsg) -> DiningMsg {
    DiningMsg::Fair(match m {
        WxMsg::Request(ts) => FairMsg::Request(ts),
        WxMsg::Fork { clock } => FairMsg::Fork { clock },
        WxMsg::TokenReturn { clock } => FairMsg::TokenReturn { clock },
    })
}

/// How many consecutive overtakes the gate permits.
pub const OVERTAKE_LIMIT: u32 = 2;

#[derive(Clone, Copy, Debug)]
struct PeerFairness {
    peer: ProcessId,
    /// The peer has announced hunger (or requested a fork) and has not
    /// announced `Done` since.
    hungry: bool,
    /// My eating sessions started while `hungry` was set.
    overtakes: u32,
}

/// WF-◇WX dining with an eventual 2-fairness gate.
#[derive(Clone, Debug)]
pub struct FairWfDxDining {
    core: ForkCore,
    peers: Vec<PeerFairness>,
}

impl FairWfDxDining {
    /// Endpoint for `me` with the given instance neighbors.
    pub fn new(me: ProcessId, neighbors: &[ProcessId]) -> Self {
        FairWfDxDining {
            core: ForkCore::new(me, neighbors, SuspicionPolicy::Direct),
            peers: neighbors
                .iter()
                .map(|&peer| PeerFairness { peer, hungry: false, overtakes: 0 })
                .collect(),
        }
    }

    /// Current overtake counter against `peer` (for tests and experiments).
    pub fn overtakes_against(&self, peer: ProcessId) -> u32 {
        self.peers.iter().find(|p| p.peer == peer).map_or(0, |p| p.overtakes)
    }

    fn peer_mut(&mut self, peer: ProcessId) -> &mut PeerFairness {
        self.peers.iter_mut().find(|p| p.peer == peer).expect("message from non-neighbor")
    }

    /// Recomputes the eating gate from the fairness state.
    fn refresh_gate(&mut self, io: &DiningIo<'_>) {
        self.core.gate_open = !self
            .peers
            .iter()
            .any(|p| p.hungry && p.overtakes >= OVERTAKE_LIMIT && !io.suspected(p.peer));
    }

    /// Bumps overtake counters if an eating session just started.
    fn account_eating(&mut self, was: DinerPhase) {
        if was != DinerPhase::Eating && self.core.phase() == DinerPhase::Eating {
            for p in &mut self.peers {
                if p.hungry {
                    p.overtakes += 1;
                }
            }
        }
    }

    fn broadcast(&self, io: &mut DiningIo<'_>, msg: FairMsg) {
        for p in &self.peers {
            io.send(p.peer, DiningMsg::Fair(msg));
        }
    }
}

impl DiningParticipant for FairWfDxDining {
    fn hungry(&mut self, io: &mut DiningIo<'_>) {
        self.broadcast(io, FairMsg::Hungry);
        self.refresh_gate(io);
        let was = self.core.phase();
        self.core.hungry(io, wrap);
        self.account_eating(was);
    }

    fn exit_eating(&mut self, io: &mut DiningIo<'_>) {
        self.broadcast(io, FairMsg::Done);
        self.core.exit_eating(io, wrap);
    }

    fn on_message(&mut self, io: &mut DiningIo<'_>, from: ProcessId, msg: DiningMsg) {
        let DiningMsg::Fair(m) = msg else {
            debug_assert!(false, "foreign message {msg:?}");
            return;
        };
        match m {
            FairMsg::Hungry => {
                let p = self.peer_mut(from);
                p.hungry = true;
            }
            FairMsg::Done => {
                let p = self.peer_mut(from);
                p.hungry = false;
                p.overtakes = 0;
                self.refresh_gate(io);
                let was = self.core.phase();
                // The gate may have just opened; re-evaluate eating.
                self.core.on_tick(io);
                self.account_eating(was);
            }
            FairMsg::Request(ts) => {
                // A fork request is hunger evidence — it beats the separate
                // announcement when channel delays reorder them.
                self.peer_mut(from).hungry = true;
                self.refresh_gate(io);
                let was = self.core.phase();
                self.core.on_message(io, from, WxMsg::Request(ts), wrap);
                self.account_eating(was);
            }
            FairMsg::Fork { clock } => {
                self.refresh_gate(io);
                let was = self.core.phase();
                self.core.on_message(io, from, WxMsg::Fork { clock }, wrap);
                self.account_eating(was);
            }
            FairMsg::TokenReturn { clock } => {
                self.refresh_gate(io);
                let was = self.core.phase();
                self.core.on_message(io, from, WxMsg::TokenReturn { clock }, wrap);
                self.account_eating(was);
            }
        }
    }

    fn on_tick(&mut self, io: &mut DiningIo<'_>) {
        self.refresh_gate(io);
        let was = self.core.phase();
        self.core.on_tick(io);
        self.account_eating(was);
    }

    fn phase(&self) -> DinerPhase {
        self.core.phase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::NoOracle;
    use dinefd_sim::Time;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// Drives p0 (fork holder) through `n` meals while p1 is hungry.
    fn eat_n_meals(d: &mut FairWfDxDining, fd: &NoOracle, n: usize) -> usize {
        let mut meals = 0;
        for i in 0..n {
            let t = Time(10 * (i as u64 + 1));
            let mut io = DiningIo::new(p(0), t, fd);
            d.hungry(&mut io);
            if d.phase() == DinerPhase::Eating {
                meals += 1;
                let mut io = DiningIo::new(p(0), t + 1, fd);
                d.exit_eating(&mut io);
            } else {
                // Blocked by the gate: abort the attempt (stay hungry).
                break;
            }
        }
        meals
    }

    #[test]
    fn gate_closes_after_two_overtakes() {
        let fd = NoOracle(2);
        let mut d0 = FairWfDxDining::new(p(0), &[p(1)]);
        // p1 announces hunger but cannot eat (p0 holds the fork). Note: no
        // fork request reaches p0 in this unit test, so the fork stays put.
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        d0.on_message(&mut io, p(1), DiningMsg::Fair(FairMsg::Hungry));
        let meals = eat_n_meals(&mut d0, &fd, 5);
        assert_eq!(meals, OVERTAKE_LIMIT as usize, "gate must close after {OVERTAKE_LIMIT} meals");
        assert_eq!(d0.overtakes_against(p(1)), OVERTAKE_LIMIT);
        assert_eq!(d0.phase(), DinerPhase::Hungry, "third attempt blocked");
    }

    #[test]
    fn done_reopens_gate_and_resets_counter() {
        let fd = NoOracle(2);
        let mut d0 = FairWfDxDining::new(p(0), &[p(1)]);
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        d0.on_message(&mut io, p(1), DiningMsg::Fair(FairMsg::Hungry));
        let _ = eat_n_meals(&mut d0, &fd, 3); // ends blocked hungry
        assert_eq!(d0.phase(), DinerPhase::Hungry);
        let mut io = DiningIo::new(p(0), Time(100), &fd);
        d0.on_message(&mut io, p(1), DiningMsg::Fair(FairMsg::Done));
        assert_eq!(d0.overtakes_against(p(1)), 0);
        assert_eq!(d0.phase(), DinerPhase::Eating, "gate reopened, pending hunger served");
    }

    #[test]
    fn suspected_neighbor_does_not_block() {
        use dinefd_fd::{InjectedOracle, MistakePlan};
        use dinefd_sim::CrashPlan;
        let mut oracle = InjectedOracle::perfect(2, CrashPlan::none(), 0);
        oracle.set_mistakes(p(0), p(1), MistakePlan::from_intervals(vec![(Time(0), Time(1_000))]));
        let mut d0 = FairWfDxDining::new(p(0), &[p(1)]);
        let mut io = DiningIo::new(p(0), Time(1), &oracle);
        d0.on_message(&mut io, p(1), DiningMsg::Fair(FairMsg::Hungry));
        // Even with a large overtake count, a suspected peer never gates.
        for i in 0..6u64 {
            let mut io = DiningIo::new(p(0), Time(10 + i * 10), &oracle);
            d0.hungry(&mut io);
            assert_eq!(d0.phase(), DinerPhase::Eating, "meal {i} must be granted");
            let mut io = DiningIo::new(p(0), Time(11 + i * 10), &oracle);
            d0.exit_eating(&mut io);
        }
    }

    #[test]
    fn fork_request_counts_as_hunger_evidence() {
        let fd = NoOracle(2);
        let mut d0 = FairWfDxDining::new(p(0), &[p(1)]);
        // No Hungry announcement, just a fork request (it carries the token;
        // p0's fork is dirty+thinking so it is yielded immediately).
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        d0.on_message(&mut io, p(1), DiningMsg::Fair(FairMsg::Request(Ts { clock: 1, id: 1 })));
        let fx = io.finish();
        assert!(matches!(fx.sends[0], (_, DiningMsg::Fair(FairMsg::Fork { .. }))));
        assert!(d0.overtakes_against(p(1)) == 0);
        // The hunger flag is set, so subsequent meals are counted.
        let mut io = DiningIo::new(p(0), Time(2), &fd);
        d0.hungry(&mut io);
        // p0 no longer holds the fork, so it requests and waits.
        assert_eq!(d0.phase(), DinerPhase::Hungry);
    }
}
