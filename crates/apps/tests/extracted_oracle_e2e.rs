//! The full chain: a WF-◇WX dining black box → the paper's reduction →
//! an extracted ◇P → leader election and consensus running on it.
//!
//! This is the strongest executable form of the paper's thesis: the
//! synchronism encapsulated by wait-free eventually-exclusive dining is
//! enough to elect stable leaders and to reach consensus.

use std::rc::Rc;

use dinefd_apps::{check_stable_leader, ConsensusNode, LeaderElection, ReplayOracle};
use dinefd_core::{run_extraction, BlackBox, Scenario};
use dinefd_fd::FdQuery;
use dinefd_sim::{CrashPlan, DelayModel, ProcessId, Time, World, WorldConfig};

/// Runs the reduction over `n` processes (all ordered pairs) and returns the
/// extracted detector as a replayable oracle.
fn extract_oracle(n: usize, seed: u64, crashes: CrashPlan, horizon: Time) -> ReplayOracle {
    let mut sc = Scenario::all_pairs(n, BlackBox::WfDx, seed);
    sc.crashes = crashes;
    sc.horizon = horizon;
    let res = run_extraction(sc);
    ReplayOracle::new(res.history)
}

#[test]
fn leader_election_over_the_extracted_detector() {
    let n = 4;
    let crashes = CrashPlan::one(ProcessId(0), Time(6_000));
    let oracle = extract_oracle(n, 101, crashes.clone(), Time(60_000));
    let fd: Rc<dyn FdQuery> = Rc::new(oracle);
    let nodes: Vec<LeaderElection> =
        (0..n).map(|_| LeaderElection::new(n, Rc::clone(&fd))).collect();
    let cfg = WorldConfig::new(101).crashes(crashes.clone()).delays(DelayModel::Fixed(2));
    let mut world = World::new(nodes, cfg);
    world.run_until(Time(60_000));
    let trace = world.into_trace();
    let (leader, agreed_from) =
        check_stable_leader(n, &trace, &crashes).expect("extracted ◇P must yield a stable leader");
    // p0 crashed, so the stable leader is the smallest survivor.
    assert_eq!(leader, ProcessId(1));
    assert!(agreed_from > Time(6_000), "promotion follows the crash");
}

#[test]
fn consensus_over_the_extracted_detector() {
    let n = 5;
    let crashes = CrashPlan::one(ProcessId(2), Time(4_000));
    let oracle = extract_oracle(n, 103, crashes.clone(), Time(60_000));
    let fd: Rc<dyn FdQuery> = Rc::new(oracle);
    let inputs = [11u64, 22, 33, 44, 55];
    let nodes: Vec<ConsensusNode> = inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| ConsensusNode::new(ProcessId::from_index(i), n, v, Rc::clone(&fd)))
        .collect();
    let cfg = WorldConfig::new(103).crashes(crashes.clone()).delays(DelayModel::default_async());
    let mut world = World::new(nodes, cfg);
    world.run_until(Time(60_000));
    let mut value = None;
    for p in crashes.correct(n) {
        let d = world.node(p).decision().unwrap_or_else(|| panic!("{p} undecided"));
        match value {
            None => value = Some(d),
            Some(v) => assert_eq!(v, d, "disagreement over extracted oracle"),
        }
    }
    assert!(inputs.contains(&value.unwrap()));
}

#[test]
fn extracted_detector_from_pathological_box_still_powers_consensus() {
    // Even the §3 delayed-convergence black box yields a usable ◇P.
    let n = 3;
    let crashes = CrashPlan::none();
    let mut sc = Scenario::all_pairs(n, BlackBox::Delayed { convergence: Time(2_000) }, 107);
    sc.oracle = dinefd_core::OracleSpec::Perfect { lag: 20 };
    sc.horizon = Time(50_000);
    let res = run_extraction(sc);
    let fd: Rc<dyn FdQuery> = Rc::new(ReplayOracle::new(res.history));
    let inputs = [3u64, 1, 2];
    let nodes: Vec<ConsensusNode> = inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| ConsensusNode::new(ProcessId::from_index(i), n, v, Rc::clone(&fd)))
        .collect();
    let cfg = WorldConfig::new(107).crashes(crashes).delays(DelayModel::default_async());
    let mut world = World::new(nodes, cfg);
    world.run_until(Time(50_000));
    let decisions: Vec<u64> =
        (0..n).map(|i| world.node(ProcessId::from_index(i)).decision().expect("decided")).collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
    assert!(inputs.contains(&decisions[0]));
}
