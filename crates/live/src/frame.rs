//! Length-prefixed framing over a byte stream.
//!
//! Every message on the live transport travels as one frame: a `u32`
//! little-endian payload length followed by that many payload bytes (the
//! [`Wire`](dinefd_runtime::Wire) encoding of the message). The first frame
//! on every link is a *hello* carrying the sender's [`ProcessId`], so the
//! accepting side learns who is on the other end of an otherwise anonymous
//! loopback connection.

use std::io::{self, Read, Write};

use dinefd_runtime::{ProcessId, Wire};

/// Frames larger than this are treated as stream corruption. The largest
/// legitimate payload (a reduction `Dx` frame) is a few dozen bytes; a
/// million is comfortably past anything this workspace encodes while still
/// rejecting garbage length prefixes before a doomed allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `None` on clean end-of-stream
/// (the peer closed between frames — its crash or horizon exit).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length out of range"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes the link-opening hello frame identifying `who`.
pub fn write_hello<W: Write>(w: &mut W, who: ProcessId) -> io::Result<()> {
    write_frame(w, &who.to_bytes())
}

/// Reads the link-opening hello frame.
pub fn read_hello<R: Read>(r: &mut R) -> io::Result<ProcessId> {
    let payload = read_frame(r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "eof before hello"))?;
    ProcessId::from_bytes(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"omega").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"omega"[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn hello_identifies_the_peer() {
        let mut buf = Vec::new();
        write_hello(&mut buf, ProcessId(7)).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_hello(&mut r).unwrap(), ProcessId(7));
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut r = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut r).is_err());
    }
}
