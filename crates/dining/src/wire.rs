//! [`Wire`] codecs for the dining message family.
//!
//! The live transport (crate `dinefd-live`) carries messages as
//! length-prefixed byte frames, so every message type that may cross a
//! socket needs a canonical byte form. The vendored serde stub cannot
//! derive fielded enums, hence these hand-written codecs: one tag byte per
//! variant, fixed-width little-endian fields, no padding. Every codec is
//! exact-roundtrip and canonical (one byte string per value) — the
//! differential sim-vs-live harness depends on that.

use dinefd_sim::{Wire, WireError, WireReader, WireWriter};

use crate::abstract_dining::AbMsg;
use crate::delayed::DcMsg;
use crate::fair::FairMsg;
use crate::ftme::FtMsg;
use crate::hygienic::HyMsg;
use crate::participant::DiningMsg;
use crate::unfair::UfMsg;
use crate::wfdx::{Ts, WxMsg};

impl Wire for Ts {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.clock);
        w.u32(self.id);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Ts { clock: r.u64()?, id: r.u32()? })
    }
}

impl Wire for WxMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            WxMsg::Request(ts) => {
                w.u8(0);
                ts.encode(w);
            }
            WxMsg::Fork { clock } => {
                w.u8(1);
                w.u64(*clock);
            }
            WxMsg::TokenReturn { clock } => {
                w.u8(2);
                w.u64(*clock);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WxMsg::Request(Ts::decode(r)?)),
            1 => Ok(WxMsg::Fork { clock: r.u64()? }),
            2 => Ok(WxMsg::TokenReturn { clock: r.u64()? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for HyMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            HyMsg::ForkRequest => 0,
            HyMsg::Fork => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(HyMsg::ForkRequest),
            1 => Ok(HyMsg::Fork),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for DcMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            DcMsg::Request => 0,
            DcMsg::Grant => 1,
            DcMsg::Release => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(DcMsg::Request),
            1 => Ok(DcMsg::Grant),
            2 => Ok(DcMsg::Release),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for AbMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            AbMsg::Request => 0,
            AbMsg::Grant => 1,
            AbMsg::Release => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(AbMsg::Request),
            1 => Ok(AbMsg::Grant),
            2 => Ok(AbMsg::Release),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for UfMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            UfMsg::Request => 0,
            UfMsg::Grant => 1,
            UfMsg::Release => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(UfMsg::Request),
            1 => Ok(UfMsg::Grant),
            2 => Ok(UfMsg::Release),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for FtMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            FtMsg::Request(ts) => {
                w.u8(0);
                ts.encode(w);
            }
            FtMsg::Fork { clock } => {
                w.u8(1);
                w.u64(*clock);
            }
            FtMsg::TokenReturn { clock } => {
                w.u8(2);
                w.u64(*clock);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FtMsg::Request(Ts::decode(r)?)),
            1 => Ok(FtMsg::Fork { clock: r.u64()? }),
            2 => Ok(FtMsg::TokenReturn { clock: r.u64()? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for FairMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            FairMsg::Request(ts) => {
                w.u8(0);
                ts.encode(w);
            }
            FairMsg::Fork { clock } => {
                w.u8(1);
                w.u64(*clock);
            }
            FairMsg::TokenReturn { clock } => {
                w.u8(2);
                w.u64(*clock);
            }
            FairMsg::Hungry => w.u8(3),
            FairMsg::Done => w.u8(4),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FairMsg::Request(Ts::decode(r)?)),
            1 => Ok(FairMsg::Fork { clock: r.u64()? }),
            2 => Ok(FairMsg::TokenReturn { clock: r.u64()? }),
            3 => Ok(FairMsg::Hungry),
            4 => Ok(FairMsg::Done),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for DiningMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DiningMsg::Hygienic(m) => {
                w.u8(0);
                m.encode(w);
            }
            DiningMsg::WfDx(m) => {
                w.u8(1);
                m.encode(w);
            }
            DiningMsg::Delayed(m) => {
                w.u8(2);
                m.encode(w);
            }
            DiningMsg::Abstract(m) => {
                w.u8(3);
                m.encode(w);
            }
            DiningMsg::Ftme(m) => {
                w.u8(4);
                m.encode(w);
            }
            DiningMsg::Fair(m) => {
                w.u8(5);
                m.encode(w);
            }
            DiningMsg::Unfair(m) => {
                w.u8(6);
                m.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(DiningMsg::Hygienic(HyMsg::decode(r)?)),
            1 => Ok(DiningMsg::WfDx(WxMsg::decode(r)?)),
            2 => Ok(DiningMsg::Delayed(DcMsg::decode(r)?)),
            3 => Ok(DiningMsg::Abstract(AbMsg::decode(r)?)),
            4 => Ok(DiningMsg::Ftme(FtMsg::decode(r)?)),
            5 => Ok(DiningMsg::Fair(FairMsg::decode(r)?)),
            6 => Ok(DiningMsg::Unfair(UfMsg::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: DiningMsg) {
        let bytes = msg.to_bytes();
        assert_eq!(DiningMsg::from_bytes(&bytes).unwrap(), msg, "roundtrip of {msg:?}");
    }

    #[test]
    fn every_dining_variant_roundtrips() {
        let ts = Ts { clock: u64::MAX - 1, id: 3 };
        for msg in [
            DiningMsg::Hygienic(HyMsg::ForkRequest),
            DiningMsg::Hygienic(HyMsg::Fork),
            DiningMsg::WfDx(WxMsg::Request(ts)),
            DiningMsg::WfDx(WxMsg::Fork { clock: 0 }),
            DiningMsg::WfDx(WxMsg::TokenReturn { clock: 9 }),
            DiningMsg::Delayed(DcMsg::Request),
            DiningMsg::Delayed(DcMsg::Grant),
            DiningMsg::Delayed(DcMsg::Release),
            DiningMsg::Abstract(AbMsg::Request),
            DiningMsg::Abstract(AbMsg::Grant),
            DiningMsg::Abstract(AbMsg::Release),
            DiningMsg::Ftme(FtMsg::Request(ts)),
            DiningMsg::Ftme(FtMsg::Fork { clock: 77 }),
            DiningMsg::Ftme(FtMsg::TokenReturn { clock: 78 }),
            DiningMsg::Fair(FairMsg::Request(ts)),
            DiningMsg::Fair(FairMsg::Fork { clock: 1 }),
            DiningMsg::Fair(FairMsg::TokenReturn { clock: 2 }),
            DiningMsg::Fair(FairMsg::Hungry),
            DiningMsg::Fair(FairMsg::Done),
            DiningMsg::Unfair(UfMsg::Request),
            DiningMsg::Unfair(UfMsg::Grant),
            DiningMsg::Unfair(UfMsg::Release),
        ] {
            roundtrip(msg);
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(DiningMsg::from_bytes(&[7]).is_err());
        assert!(DiningMsg::from_bytes(&[0, 2]).is_err());
        assert!(DiningMsg::from_bytes(&[]).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = DiningMsg::WfDx(WxMsg::Request(Ts { clock: 5, id: 6 })).to_bytes();
        for cut in 0..bytes.len() {
            assert!(DiningMsg::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
    }
}
