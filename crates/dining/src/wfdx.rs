//! `WfDxDining` — wait-free dining under eventual weak exclusion, driven by a
//! ◇P module, in the style of the paper's reference \[12\] (Pike & Song).
//!
//! The algorithm combines two mechanisms:
//!
//! * **Fork/timestamp priority** for liveness among live diners: one fork and
//!   one request token per edge; a hungry diner stamps its session with a
//!   Lamport timestamp and spends the token to request missing forks. A
//!   holder yields a requested fork unless it is eating or is itself hungry
//!   with an *older* session. Session timestamps `(clock, id)` are totally
//!   ordered and strictly increase per diner, so the waits-for relation
//!   always follows the timestamp order — acyclic by construction — and the
//!   globally oldest hungry diner is never refused: deadlock-free and
//!   starvation-free.
//!
//!   (An earlier revision used Chandy–Misra clean/dirty priority here;
//!   property testing found that suspicion-eats — eating without holding all
//!   forks — break the hygienic acyclicity argument and can deadlock a cycle
//!   of hungry clean-fork holders. Timestamp priority is immune: eating
//!   never reorders outstanding sessions.)
//!
//! * **Suspicion override** for crash tolerance: a hungry diner eats when,
//!   per edge, it holds the fork *or* its local ◇P module suspects the
//!   neighbor. A crashed fork-holder is eventually permanently suspected
//!   (strong completeness), so wait-freedom survives crashes; once ◇P stops
//!   making mistakes, a suspected neighbor is really crashed and two *live*
//!   neighbors can only eat via the single shared fork — eventual weak
//!   exclusion. Wrongful suspicions before convergence cause exactly the
//!   finitely many scheduling mistakes ◇WX permits.
//!
//! Fork state is never fabricated on a suspicion-eat: if the neighbor was
//! wrongly suspected nothing is corrupted; if it really crashed the fork is
//! stranded at the corpse while suspicion satisfies the edge forever. The
//! fork-uniqueness invariant (at most one endpoint holds each edge's fork)
//! holds in all runs.
//!
//! The same `ForkCore` parameterized with a trust-gated suspicion policy
//! yields the perpetual-exclusion service of [`crate::ftme`].

use dinefd_sim::{codec, ProcessId};

use crate::participant::{DiningIo, DiningMsg, DiningParticipant};
use crate::state::DinerPhase;

/// A session timestamp: Lamport clock value plus diner id as tie-breaker.
/// Total order; smaller = older = higher priority.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ts {
    /// Lamport clock at session start.
    pub clock: u64,
    /// The requesting diner (tie-breaker).
    pub id: u32,
}

/// Messages of the ◇P-based algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WxMsg {
    /// The request token, stamped with the requester's session timestamp.
    Request(Ts),
    /// The fork. Carries the sender's Lamport clock.
    Fork {
        /// Sender's clock at yield time (Lamport maintenance).
        clock: u64,
    },
    /// The bare token, returned when fork and token would otherwise rest
    /// idle at the same endpoint. An endpoint holding both (with no pending
    /// request) leaves its peer unable to ever signal hunger — the capture
    /// state behind several starvations found by property testing. Sending
    /// the token home restores the invariant "whoever lacks the fork can
    /// request it".
    TokenReturn {
        /// Sender's clock (Lamport maintenance).
        clock: u64,
    },
}

impl Ts {
    fn pack_into(&self, out: &mut Vec<u8>) {
        codec::put_varint(out, self.clock);
        codec::put_varint(out, u64::from(self.id));
    }

    fn unpack(input: &mut &[u8]) -> Option<Ts> {
        Some(Ts {
            clock: codec::take_varint(input)?,
            id: u32::try_from(codec::take_varint(input)?).ok()?,
        })
    }
}

impl WxMsg {
    /// Packs the message for the explorer state codec: a tag byte followed
    /// by the payload varints.
    pub fn pack_into(&self, out: &mut Vec<u8>) {
        match *self {
            WxMsg::Request(ts) => {
                codec::put_u8(out, 0);
                ts.pack_into(out);
            }
            WxMsg::Fork { clock } => {
                codec::put_u8(out, 1);
                codec::put_varint(out, clock);
            }
            WxMsg::TokenReturn { clock } => {
                codec::put_u8(out, 2);
                codec::put_varint(out, clock);
            }
        }
    }

    /// Inverse of [`WxMsg::pack_into`]; `None` on a malformed buffer.
    pub fn unpack(input: &mut &[u8]) -> Option<WxMsg> {
        match codec::take_u8(input)? {
            0 => Some(WxMsg::Request(Ts::unpack(input)?)),
            1 => Some(WxMsg::Fork { clock: codec::take_varint(input)? }),
            2 => Some(WxMsg::TokenReturn { clock: codec::take_varint(input)? }),
            _ => None,
        }
    }
}

/// Two-bit [`DinerPhase`] codes for the packed encodings below.
fn phase_bits(p: DinerPhase) -> u8 {
    match p {
        DinerPhase::Thinking => 0,
        DinerPhase::Hungry => 1,
        DinerPhase::Eating => 2,
        DinerPhase::Exiting => 3,
    }
}

fn phase_from_bits(b: u8) -> DinerPhase {
    match b & 0b11 {
        0 => DinerPhase::Thinking,
        1 => DinerPhase::Hungry,
        2 => DinerPhase::Eating,
        _ => DinerPhase::Exiting,
    }
}

/// How suspicion satisfies an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum SuspicionPolicy {
    /// `suspected(q)` alone satisfies the edge — correct for ◇P (mistakes
    /// cause only finitely many exclusion violations).
    Direct,
    /// Suspicion counts only after `q` has been trusted at least once —
    /// correct for a trusting oracle T, whose post-trust suspicions imply a
    /// real crash (perpetual exclusion, used by FTME).
    TrustGated,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Edge {
    peer: ProcessId,
    has_fork: bool,
    has_token: bool,
    /// Whether this diner has an unanswered Request out on this edge for its
    /// current session (prevents duplicate same-stamp requests, which can go
    /// stale and mis-credit the peer).
    requested: bool,
    /// Timestamp of the peer's outstanding (deferred) request, if any.
    pending: Option<Ts>,
    ever_trusted: bool,
}

/// Shared fork machinery of [`WfDxDining`] and [`crate::ftme::FtmeDining`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct ForkCore {
    me: ProcessId,
    phase: DinerPhase,
    edges: Vec<Edge>,
    policy: SuspicionPolicy,
    /// Lamport clock (bumped on session start and on message receipt).
    clock: u64,
    /// Timestamp of the current hungry/eating session.
    session: Ts,
    /// Count of eating sessions entered while lacking at least one fork
    /// (i.e. justified by suspicion) — exposed for experiments.
    pub(crate) suspicion_eats: u64,
    /// Fairness gate: when `false`, the diner refrains from starting to eat
    /// even if the resource condition holds (used by [`crate::fair`] to
    /// bound overtaking). Resource state still evolves normally.
    pub(crate) gate_open: bool,
}

impl ForkCore {
    pub(crate) fn new(me: ProcessId, neighbors: &[ProcessId], policy: SuspicionPolicy) -> Self {
        let edges = neighbors
            .iter()
            .map(|&peer| {
                debug_assert_ne!(peer, me);
                let holds_fork = me < peer;
                Edge {
                    peer,
                    has_fork: holds_fork,
                    has_token: !holds_fork,
                    requested: false,
                    pending: None,
                    ever_trusted: false,
                }
            })
            .collect();
        ForkCore {
            me,
            phase: DinerPhase::Thinking,
            edges,
            policy,
            clock: 0,
            session: Ts { clock: 0, id: me.0 },
            suspicion_eats: 0,
            gate_open: true,
        }
    }

    pub(crate) fn phase(&self) -> DinerPhase {
        self.phase
    }

    /// The diner this endpoint belongs to.
    pub(crate) fn id(&self) -> ProcessId {
        self.me
    }

    pub(crate) fn holds_fork(&self, peer: ProcessId) -> bool {
        self.edges.iter().any(|e| e.peer == peer && e.has_fork)
    }

    pub(crate) fn holds_token(&self, peer: ProcessId) -> bool {
        self.edges.iter().any(|e| e.peer == peer && e.has_token)
    }

    /// Current session timestamp (meaningful while hungry/eating).
    pub(crate) fn session(&self) -> Ts {
        self.session
    }

    fn observe_clock(&mut self, c: u64) {
        self.clock = self.clock.max(c) + 1;
    }

    fn suspicion_satisfies(policy: SuspicionPolicy, e: &Edge, io: &DiningIo<'_>) -> bool {
        let suspected = io.suspected(e.peer);
        match policy {
            SuspicionPolicy::Direct => suspected,
            SuspicionPolicy::TrustGated => suspected && e.ever_trusted,
        }
    }

    fn refresh_trust(&mut self, io: &DiningIo<'_>) {
        for e in &mut self.edges {
            if !io.suspected(e.peer) {
                e.ever_trusted = true;
            }
        }
    }

    /// Whether this diner currently outranks a request stamped `ts`.
    fn outranks(&self, ts: Ts) -> bool {
        self.phase == DinerPhase::Hungry && self.session < ts
    }

    /// Yields the fork of `edges[k]` to its pending requester if the yield
    /// rules allow it right now; re-requests immediately when hungry.
    fn maybe_yield(&mut self, k: usize, io: &mut DiningIo<'_>, wrap: &impl Fn(WxMsg) -> DiningMsg) {
        let e = &self.edges[k];
        let Some(ts) = e.pending else { return };
        if !e.has_fork || self.phase == DinerPhase::Eating || self.outranks(ts) {
            return;
        }
        // Note: we may no longer hold the token here — `hungry()` is allowed
        // to re-spend a parked token for its own request while the parked
        // request stays pending. The fork settles the debt either way.
        let peer = e.peer;
        let clock = self.clock;
        let e = &mut self.edges[k];
        e.has_fork = false;
        e.pending = None;
        io.send(peer, wrap(WxMsg::Fork { clock }));
        if self.phase == DinerPhase::Hungry && self.edges[k].has_token && !self.edges[k].requested {
            let session = self.session;
            let e = &mut self.edges[k];
            e.has_token = false;
            e.requested = true;
            io.send(peer, wrap(WxMsg::Request(session)));
        }
    }

    fn maybe_yield_all(&mut self, io: &mut DiningIo<'_>, wrap: &impl Fn(WxMsg) -> DiningMsg) {
        for k in 0..self.edges.len() {
            self.maybe_yield(k, io, wrap);
        }
    }

    /// Restores the "fork here ⇒ token there" resting invariant: a
    /// non-competing endpoint holding both fork and token with nothing
    /// pending sends the token home so the peer can request again.
    fn settle(&mut self, k: usize, io: &mut DiningIo<'_>, wrap: &impl Fn(WxMsg) -> DiningMsg) {
        let e = &self.edges[k];
        if (self.phase == DinerPhase::Thinking || self.phase == DinerPhase::Exiting)
            && e.has_fork
            && e.has_token
            && e.pending.is_none()
        {
            let peer = e.peer;
            let clock = self.clock;
            self.edges[k].has_token = false;
            io.send(peer, wrap(WxMsg::TokenReturn { clock }));
        }
    }

    fn settle_all(&mut self, io: &mut DiningIo<'_>, wrap: &impl Fn(WxMsg) -> DiningMsg) {
        for k in 0..self.edges.len() {
            self.settle(k, io, wrap);
        }
    }

    fn try_eat(&mut self, io: &mut DiningIo<'_>) {
        if self.phase != DinerPhase::Hungry || !self.gate_open {
            return;
        }
        let policy = self.policy;
        if self.edges.iter().all(|e| e.has_fork || Self::suspicion_satisfies(policy, e, io)) {
            if self.edges.iter().any(|e| !e.has_fork) {
                self.suspicion_eats += 1;
            }
            self.phase = DinerPhase::Eating;
        }
    }

    pub(crate) fn hungry(&mut self, io: &mut DiningIo<'_>, wrap: impl Fn(WxMsg) -> DiningMsg) {
        assert_eq!(self.phase, DinerPhase::Thinking, "hungry() while {}", self.phase);
        self.refresh_trust(io);
        self.phase = DinerPhase::Hungry;
        self.clock += 1;
        self.session = Ts { clock: self.clock, id: self.me.0 };
        let session = self.session;
        for e in &mut self.edges {
            e.requested = false;
            if !e.has_fork && e.has_token {
                e.has_token = false;
                e.requested = true;
                io.send(e.peer, wrap(WxMsg::Request(session)));
            }
        }
        self.try_eat(io);
    }

    pub(crate) fn exit_eating(&mut self, io: &mut DiningIo<'_>, wrap: impl Fn(WxMsg) -> DiningMsg) {
        assert_eq!(self.phase, DinerPhase::Eating, "exit_eating() while {}", self.phase);
        self.phase = DinerPhase::Exiting;
        self.phase = DinerPhase::Thinking;
        // Serve the requests deferred during the session, then send home any
        // token resting idly next to a fork.
        self.maybe_yield_all(io, &wrap);
        self.settle_all(io, &wrap);
    }

    pub(crate) fn on_message(
        &mut self,
        io: &mut DiningIo<'_>,
        from: ProcessId,
        msg: WxMsg,
        wrap: impl Fn(WxMsg) -> DiningMsg,
    ) {
        self.refresh_trust(io);
        match msg {
            WxMsg::Request(ts) => {
                self.observe_clock(ts.clock);
                let phase = self.phase;
                let session = self.session;
                let k = self
                    .edges
                    .iter()
                    .position(|e| e.peer == from)
                    .expect("message from non-neighbor");
                let _ = (phase, session);
                let e = &mut self.edges[k];
                debug_assert!(!e.has_token, "duplicate request token on one edge");
                // A leftover pending can exist if the peer's previous session
                // ended by suspicion-eating before we served it (the newer
                // stamp supersedes it), and an equal stamp can legitimately
                // arrive twice when a stale service let the peer yield and
                // re-request within one session.
                debug_assert!(
                    e.pending.is_none_or(|old| old <= ts),
                    "request stamps regress: pending={:?} incoming={:?} me={:?} from={from:?}",
                    e.pending,
                    ts,
                    self.me
                );
                e.has_token = true;
                // Record the request and serve it when the rules allow —
                // immediately if we hold the fork and are not entitled to
                // keep it, or later (fork arrival / our exit) otherwise.
                e.pending = Some(ts);
                if !e.has_fork && phase == DinerPhase::Hungry && !e.requested {
                    // Hungry and fork-less with no request of our own in
                    // flight (our session began while the token was away):
                    // spend the token now or we would wait forever. The
                    // `requested` flag caps this at one Request per session —
                    // unconditional re-spending duplicates the same stamp,
                    // and a stale duplicate can hand the peer both fork and
                    // token permanently (found by property testing).
                    e.has_token = false;
                    e.requested = true;
                    io.send(from, wrap(WxMsg::Request(session)));
                }
                self.maybe_yield(k, io, &wrap);
            }
            WxMsg::TokenReturn { clock } => {
                self.observe_clock(clock);
                let k = self
                    .edges
                    .iter()
                    .position(|e| e.peer == from)
                    .expect("message from non-neighbor");
                debug_assert!(!self.edges[k].has_token, "duplicate token on one edge");
                self.edges[k].has_token = true;
                let e = &mut self.edges[k];
                if !e.has_fork && self.phase == DinerPhase::Hungry && !e.requested {
                    // The returned token lets our stranded hunger signal.
                    e.has_token = false;
                    e.requested = true;
                    let session = self.session;
                    io.send(from, wrap(WxMsg::Request(session)));
                } else {
                    self.settle(k, io, &wrap);
                }
            }
            WxMsg::Fork { clock } => {
                self.observe_clock(clock);
                let k = self
                    .edges
                    .iter()
                    .position(|e| e.peer == from)
                    .expect("message from non-neighbor");
                debug_assert!(!self.edges[k].has_fork, "duplicate fork on one edge");
                self.edges[k].has_fork = true;
                self.edges[k].requested = false;
                // An outranking (or any, if we are not hungry) parked request
                // is served before we consider eating: oldest session first.
                self.maybe_yield(k, io, &wrap);
                self.try_eat(io);
                self.settle(k, io, &wrap);
            }
        }
    }

    pub(crate) fn on_tick(&mut self, io: &mut DiningIo<'_>) {
        self.refresh_trust(io);
        self.try_eat(io);
    }
}

/// ◇P-based wait-free ◇WX dining (the paper's reference \[12\], in spirit).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WfDxDining {
    core: ForkCore,
}

impl WfDxDining {
    /// Endpoint for `me` with the given instance neighbors.
    pub fn new(me: ProcessId, neighbors: &[ProcessId]) -> Self {
        WfDxDining { core: ForkCore::new(me, neighbors, SuspicionPolicy::Direct) }
    }

    /// Whether this endpoint holds the fork shared with `peer`.
    pub fn holds_fork(&self, peer: ProcessId) -> bool {
        self.core.holds_fork(peer)
    }

    /// Whether this endpoint holds the request token shared with `peer`.
    pub fn holds_token(&self, peer: ProcessId) -> bool {
        self.core.holds_token(peer)
    }

    /// The diner this endpoint belongs to.
    pub fn id(&self) -> ProcessId {
        self.core.id()
    }

    /// How many eating sessions were justified by suspicion rather than a
    /// full fork set.
    pub fn suspicion_eats(&self) -> u64 {
        self.core.suspicion_eats
    }

    /// The timestamp of the current hungry/eating session.
    pub fn session(&self) -> Ts {
        self.core.session()
    }

    /// Packs the full endpoint state (phase, per-edge fork/token/request
    /// bits, clocks) into a compact byte string for the explorer state
    /// codec. [`WfDxDining::unpack`] is the exact inverse.
    pub fn pack_into(&self, out: &mut Vec<u8>) {
        let c = &self.core;
        codec::put_varint(out, u64::from(c.me.0));
        let policy = matches!(c.policy, SuspicionPolicy::TrustGated) as u8;
        codec::put_u8(out, phase_bits(c.phase) | policy << 2 | (c.gate_open as u8) << 3);
        codec::put_varint(out, c.clock);
        c.session.pack_into(out);
        codec::put_varint(out, c.suspicion_eats);
        codec::put_varint(out, c.edges.len() as u64);
        for e in &c.edges {
            codec::put_varint(out, u64::from(e.peer.0));
            codec::put_u8(
                out,
                e.has_fork as u8
                    | (e.has_token as u8) << 1
                    | (e.requested as u8) << 2
                    | (e.ever_trusted as u8) << 3
                    | (e.pending.is_some() as u8) << 4,
            );
            if let Some(ts) = e.pending {
                ts.pack_into(out);
            }
        }
    }

    /// Inverse of [`WfDxDining::pack_into`]; `None` on a malformed buffer.
    pub fn unpack(input: &mut &[u8]) -> Option<Self> {
        let me = ProcessId(u32::try_from(codec::take_varint(input)?).ok()?);
        let b = codec::take_u8(input)?;
        let policy =
            if b & 0b100 != 0 { SuspicionPolicy::TrustGated } else { SuspicionPolicy::Direct };
        let clock = codec::take_varint(input)?;
        let session = Ts::unpack(input)?;
        let suspicion_eats = codec::take_varint(input)?;
        let n = usize::try_from(codec::take_varint(input)?).ok()?;
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            let peer = ProcessId(u32::try_from(codec::take_varint(input)?).ok()?);
            let f = codec::take_u8(input)?;
            let pending = if f & 0b1_0000 != 0 { Some(Ts::unpack(input)?) } else { None };
            edges.push(Edge {
                peer,
                has_fork: f & 1 != 0,
                has_token: f & 0b10 != 0,
                requested: f & 0b100 != 0,
                pending,
                ever_trusted: f & 0b1000 != 0,
            });
        }
        Some(WfDxDining {
            core: ForkCore {
                me,
                phase: phase_from_bits(b),
                edges,
                policy,
                clock,
                session,
                suspicion_eats,
                gate_open: b & 0b1000 != 0,
            },
        })
    }
}

fn wrap(m: WxMsg) -> DiningMsg {
    DiningMsg::WfDx(m)
}

impl DiningParticipant for WfDxDining {
    fn hungry(&mut self, io: &mut DiningIo<'_>) {
        self.core.hungry(io, wrap);
    }

    fn exit_eating(&mut self, io: &mut DiningIo<'_>) {
        self.core.exit_eating(io, wrap);
    }

    fn on_message(&mut self, io: &mut DiningIo<'_>, from: ProcessId, msg: DiningMsg) {
        let DiningMsg::WfDx(m) = msg else {
            debug_assert!(false, "foreign message {msg:?}");
            return;
        };
        self.core.on_message(io, from, m, wrap);
    }

    fn on_tick(&mut self, io: &mut DiningIo<'_>) {
        self.core.on_tick(io);
    }

    fn phase(&self) -> DinerPhase {
        self.core.phase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::NoOracle;
    use dinefd_fd::{FdQuery, InjectedOracle};
    use dinefd_sim::{CrashPlan, Time};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn request(clock: u64, id: u32) -> DiningMsg {
        DiningMsg::WfDx(WxMsg::Request(Ts { clock, id }))
    }

    fn fork(clock: u64) -> DiningMsg {
        DiningMsg::WfDx(WxMsg::Fork { clock })
    }

    #[test]
    fn endpoint_pack_round_trips_through_a_session() {
        let fd = NoOracle(2);
        let mut d = WfDxDining::new(p(1), &[p(0)]);
        let assert_rt = |d: &WfDxDining| {
            let mut buf = Vec::new();
            d.pack_into(&mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(WfDxDining::unpack(&mut cursor).as_ref(), Some(d));
            assert!(cursor.is_empty(), "trailing bytes after decode");
        };
        assert_rt(&d);
        let mut io = DiningIo::new(p(1), Time(0), &fd);
        d.hungry(&mut io); // requested = true, session stamped
        let _ = io.finish();
        assert_rt(&d);
        let mut io = DiningIo::new(p(1), Time(1), &fd);
        d.on_message(&mut io, p(0), fork(3)); // eating, clocks advanced
        let _ = io.finish();
        assert_rt(&d);
        // A deferred peer request exercises the `pending` branch.
        let mut io = DiningIo::new(p(1), Time(2), &fd);
        d.on_message(&mut io, p(0), request(9, 0));
        let _ = io.finish();
        assert_rt(&d);
    }

    #[test]
    fn wx_msg_pack_round_trips() {
        for m in [
            WxMsg::Request(Ts { clock: 300, id: 7 }),
            WxMsg::Fork { clock: 0 },
            WxMsg::TokenReturn { clock: 129 },
        ] {
            let mut buf = Vec::new();
            m.pack_into(&mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(WxMsg::unpack(&mut cursor), Some(m));
            assert!(cursor.is_empty());
        }
        let mut bad: &[u8] = &[9];
        assert_eq!(WxMsg::unpack(&mut bad), None, "unknown tag must fail loudly");
    }

    #[test]
    fn token_holder_requests_then_eats_on_fork() {
        let fd = NoOracle(2);
        let mut d = WfDxDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(0), &fd);
        d.hungry(&mut io);
        assert_eq!(d.phase(), DinerPhase::Hungry);
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1);
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Request(_)))));
        let mut io = DiningIo::new(p(1), Time(1), &fd);
        d.on_message(&mut io, p(0), fork(3));
        assert_eq!(d.phase(), DinerPhase::Eating);
        assert_eq!(d.suspicion_eats(), 0);
    }

    #[test]
    fn thinking_holder_yields_immediately() {
        let fd = NoOracle(2);
        let mut d = WfDxDining::new(p(0), &[p(1)]); // thinking, holds fork
        let mut io = DiningIo::new(p(0), Time(0), &fd);
        d.on_message(&mut io, p(1), request(1, 1));
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1);
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Fork { .. }))));
        assert!(!d.holds_fork(p(1)));
    }

    #[test]
    fn eating_holder_defers_until_exit() {
        let fd = NoOracle(2);
        let mut d = WfDxDining::new(p(0), &[p(1)]);
        let mut io = DiningIo::new(p(0), Time(0), &fd);
        d.hungry(&mut io); // holds the fork → eats immediately
        assert_eq!(d.phase(), DinerPhase::Eating);
        let mut io = DiningIo::new(p(0), Time(1), &fd);
        d.on_message(&mut io, p(1), request(5, 1));
        assert!(io.finish().sends.is_empty(), "no yield while eating");
        let mut io = DiningIo::new(p(0), Time(2), &fd);
        d.exit_eating(&mut io);
        assert_eq!(d.phase(), DinerPhase::Thinking);
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1);
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Fork { .. }))));
    }

    #[test]
    fn older_hungry_holder_keeps_fork_younger_request_defers() {
        let fd = NoOracle(3);
        // Middle diner p1 (neighbors p0, p2): holds fork(1,2), requests
        // fork(0,1) — it stays hungry with session (1, 1).
        let mut d = WfDxDining::new(p(1), &[p(0), p(2)]);
        let mut io = DiningIo::new(p(1), Time(0), &fd);
        d.hungry(&mut io);
        assert_eq!(d.phase(), DinerPhase::Hungry);
        let _ = io.finish();
        // A YOUNGER request (larger ts) for the held fork is deferred.
        let mut io = DiningIo::new(p(1), Time(1), &fd);
        d.on_message(&mut io, p(2), request(9, 2));
        assert!(io.finish().sends.is_empty(), "older hungry holder must keep the fork");
        assert!(d.holds_fork(p(2)));
    }

    #[test]
    fn older_request_pries_fork_from_hungry_holder() {
        let fd = NoOracle(3);
        let mut d = WfDxDining::new(p(1), &[p(0), p(2)]);
        let mut io = DiningIo::new(p(1), Time(0), &fd);
        d.hungry(&mut io); // session clock 1, id 1
        let _ = io.finish();
        // Request stamped (1, 0) < (1, 1): the requester is older.
        let mut io = DiningIo::new(p(1), Time(1), &fd);
        d.on_message(&mut io, p(2), request(1, 0));
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 2, "yield + re-request, got {fx:?}");
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Fork { .. }))));
        assert!(matches!(fx.sends[1], (_, DiningMsg::WfDx(WxMsg::Request(_)))));
        assert!(!d.holds_fork(p(2)));
    }

    #[test]
    fn suspicion_substitutes_for_missing_fork() {
        let fd = InjectedOracle::perfect(2, CrashPlan::one(p(0), Time(0)), 5);
        let mut d = WfDxDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(2), &fd);
        d.hungry(&mut io); // not yet suspected (lag 5)
        assert_eq!(d.phase(), DinerPhase::Hungry);
        let _ = io.finish();
        let mut io = DiningIo::new(p(1), Time(10), &fd);
        d.on_tick(&mut io);
        assert_eq!(d.phase(), DinerPhase::Eating);
        assert_eq!(d.suspicion_eats(), 1);
        let mut io = DiningIo::new(p(1), Time(12), &fd);
        d.exit_eating(&mut io);
        assert_eq!(d.phase(), DinerPhase::Thinking);
        assert!(!d.holds_fork(p(0)), "the stranded fork is never fabricated");
    }

    #[test]
    fn wrongful_suspicion_can_cause_concurrent_eating() {
        let mut oracle = InjectedOracle::perfect(2, CrashPlan::none(), 5);
        oracle.set_mistakes(
            p(1),
            p(0),
            dinefd_fd::MistakePlan::from_intervals(vec![(Time(0), Time(100))]),
        );
        let mut d0 = WfDxDining::new(p(0), &[p(1)]);
        let mut d1 = WfDxDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(0), Time(1), &oracle);
        d0.hungry(&mut io);
        assert_eq!(d0.phase(), DinerPhase::Eating);
        let mut io = DiningIo::new(p(1), Time(1), &oracle);
        d1.hungry(&mut io);
        assert_eq!(d1.phase(), DinerPhase::Eating);
        assert_eq!(d1.suspicion_eats(), 1);
    }

    #[test]
    fn trust_gated_policy_ignores_pre_trust_suspicion() {
        let mut oracle = InjectedOracle::perfect(2, CrashPlan::none(), 5);
        oracle.set_mistakes(
            p(1),
            p(0),
            dinefd_fd::MistakePlan::from_intervals(vec![(Time(0), Time(100))]),
        );
        let mut core = ForkCore::new(p(1), &[p(0)], SuspicionPolicy::TrustGated);
        let mut io = DiningIo::new(p(1), Time(1), &oracle);
        core.hungry(&mut io, wrap);
        assert_eq!(core.phase(), DinerPhase::Hungry, "pre-trust suspicion must not grant");
        let mut io = DiningIo::new(p(1), Time(150), &oracle);
        core.on_tick(&mut io);
        assert_eq!(core.phase(), DinerPhase::Hungry);
        assert!(!oracle.suspected(p(1), p(0), Time(150)));
        let oracle2 = InjectedOracle::perfect(2, CrashPlan::one(p(0), Time(200)), 5);
        let mut io = DiningIo::new(p(1), Time(300), &oracle2);
        core.on_tick(&mut io);
        assert_eq!(core.phase(), DinerPhase::Eating);
    }

    #[test]
    fn fork_arriving_after_suspicion_eat_is_yielded_on_request() {
        let mut oracle = InjectedOracle::perfect(2, CrashPlan::none(), 0);
        oracle.set_mistakes(
            p(1),
            p(0),
            dinefd_fd::MistakePlan::from_intervals(vec![(Time(0), Time(10))]),
        );
        // p1 requests, eats via suspicion, exits; then the fork arrives
        // while thinking; a request must pry it loose.
        let mut d1 = WfDxDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(1), &oracle);
        d1.hungry(&mut io);
        assert_eq!(d1.phase(), DinerPhase::Eating);
        let _ = io.finish();
        let mut io = DiningIo::new(p(1), Time(2), &oracle);
        d1.exit_eating(&mut io);
        let _ = io.finish();
        let fd = NoOracle(2);
        let mut io = DiningIo::new(p(1), Time(20), &fd);
        d1.on_message(&mut io, p(0), fork(7));
        assert!(d1.holds_fork(p(0)));
        let mut io = DiningIo::new(p(1), Time(21), &fd);
        d1.on_message(&mut io, p(0), request(9, 0));
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1);
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Fork { .. }))));
    }

    #[test]
    fn pending_request_served_when_fork_arrives_while_thinking() {
        // p1 requests (token spent), eats via suspicion, exits. p0 yields
        // the fork and re-requests; the Request overtakes the Fork on the
        // non-FIFO channel and lands while p1 is thinking and fork-less.
        // When the fork finally arrives, it must be forwarded to p0.
        let mut oracle = InjectedOracle::perfect(2, CrashPlan::none(), 0);
        oracle.set_mistakes(
            p(1),
            p(0),
            dinefd_fd::MistakePlan::from_intervals(vec![(Time(0), Time(10))]),
        );
        let mut d = WfDxDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(0), &oracle);
        d.hungry(&mut io); // spends token, eats via suspicion
        assert_eq!(d.phase(), DinerPhase::Eating);
        let _ = io.finish();
        let mut io = DiningIo::new(p(1), Time(1), &oracle);
        d.exit_eating(&mut io);
        let _ = io.finish();
        // p0's re-request overtakes the yielded fork.
        let fd = NoOracle(2);
        let mut io = DiningIo::new(p(1), Time(2), &fd);
        d.on_message(&mut io, p(0), request(4, 0));
        assert!(io.finish().sends.is_empty(), "nothing to yield yet");
        let mut io = DiningIo::new(p(1), Time(3), &fd);
        d.on_message(&mut io, p(0), fork(5));
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1, "fork forwarded to the pending requester");
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Fork { .. }))));
        assert!(!d.holds_fork(p(0)));
    }

    #[test]
    fn hungry_forkless_token_is_parked_and_served_at_fork_arrival() {
        let fd = NoOracle(2);
        let mut d = WfDxDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(0), &fd);
        d.hungry(&mut io); // session (1,1); spends token
        let _ = io.finish();
        // The peer's OLDER request arrives while we are hungry and
        // fork-less: the token is parked (no bounce — a duplicate of our
        // own request could go stale and starve us).
        let mut io = DiningIo::new(p(1), Time(1), &fd);
        d.on_message(&mut io, p(0), request(1, 0)); // (1,0) < (1,1): older
        assert!(io.finish().sends.is_empty(), "token parked, nothing sent");
        // When the fork arrives, the older parked request is served at once
        // (with our re-request, since we are still hungry).
        let mut io = DiningIo::new(p(1), Time(2), &fd);
        d.on_message(&mut io, p(0), fork(3));
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 2, "yield to older + re-request: {fx:?}");
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Fork { .. }))));
        assert!(matches!(fx.sends[1], (_, DiningMsg::WfDx(WxMsg::Request(_)))));
    }

    #[test]
    fn hungry_forkless_parked_token_younger_request_waits_until_exit() {
        let fd = NoOracle(2);
        let mut d = WfDxDining::new(p(1), &[p(0)]);
        let mut io = DiningIo::new(p(1), Time(0), &fd);
        d.hungry(&mut io); // session (1,1)
        let _ = io.finish();
        // A YOUNGER request parks; the fork arrives; we outrank → we eat.
        let mut io = DiningIo::new(p(1), Time(1), &fd);
        d.on_message(&mut io, p(0), request(9, 0));
        assert!(io.finish().sends.is_empty());
        let mut io = DiningIo::new(p(1), Time(2), &fd);
        d.on_message(&mut io, p(0), fork(3));
        assert_eq!(d.phase(), DinerPhase::Eating);
        // At exit the parked request is finally honoured.
        let mut io = DiningIo::new(p(1), Time(3), &fd);
        d.exit_eating(&mut io);
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 1);
        assert!(matches!(fx.sends[0], (_, DiningMsg::WfDx(WxMsg::Fork { .. }))));
    }

    #[test]
    fn session_timestamps_strictly_increase() {
        let fd = NoOracle(2);
        let mut d = WfDxDining::new(p(0), &[p(1)]);
        let mut last = Ts { clock: 0, id: 0 };
        for t in 0..5u64 {
            let mut io = DiningIo::new(p(0), Time(t * 10), &fd);
            d.hungry(&mut io);
            assert_eq!(d.phase(), DinerPhase::Eating);
            let s = d.core.session();
            assert!(s > last, "session ts must increase: {last:?} → {s:?}");
            last = s;
            let mut io = DiningIo::new(p(0), Time(t * 10 + 1), &fd);
            d.exit_eating(&mut io);
        }
    }
}
