//! The experiment suite (E1–E13). Each module's `run` produces the report for
//! one EXPERIMENTS.md entry.

pub mod e10_substrates;
pub mod e11_induct;
pub mod e12_fuzz;
pub mod e13_symbolic;
pub mod e1_completeness;
pub mod e2_accuracy;
pub mod e3_handoff;
pub mod e4_flawed;
pub mod e5_trusting;
pub mod e6_fairness;
pub mod e7_explore;
pub mod e8_scale;
pub mod e9_ablation;

use crate::table::Report;
use crate::ExperimentConfig;

/// Runs the experiment with the given id ("e1".."e8").
pub fn run_by_id(id: &str, cfg: &ExperimentConfig) -> Option<Report> {
    match id {
        "e1" => Some(e1_completeness::run(cfg)),
        "e2" => Some(e2_accuracy::run(cfg)),
        "e3" => Some(e3_handoff::run(cfg)),
        "e4" => Some(e4_flawed::run(cfg)),
        "e5" => Some(e5_trusting::run(cfg)),
        "e6" => Some(e6_fairness::run(cfg)),
        "e7" => Some(e7_explore::run(cfg)),
        "e8" => Some(e8_scale::run(cfg)),
        "e9" => Some(e9_ablation::run(cfg)),
        "e10" => Some(e10_substrates::run(cfg)),
        "e11" => Some(e11_induct::run(cfg)),
        "e12" => Some(e12_fuzz::run(cfg)),
        "e13" => Some(e13_symbolic::run(cfg)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL: &[&str] =
    &["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"];
