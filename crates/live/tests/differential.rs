//! The crash × delay × GST differential matrix: the identical heartbeat-◇P
//! logic core must reach the same timing-free verdict on the deterministic
//! simulator and on the live loopback-TCP runtime, in every cell.

use dinefd_live::{run_differential, run_soak, DiffScenario, SoakConfig};
use dinefd_runtime::ProcessId;

/// Delay profiles (the "delay × GST" axes): each is
/// `(gst, delay, ramping, drop‰, reorder‰)`.
const DELAY_CELLS: [(u64, u64, bool, u16, u16); 4] = [
    // Well-behaved from the start.
    (0, 0, false, 0, 0),
    // Fixed 40 ms per frame until GST = 150.
    (150, 40, false, 0, 0),
    // Ramping 40 → 0 ms until GST = 150.
    (150, 40, true, 0, 0),
    // Mild delay plus pre-GST loss and reordering (live side only — the
    // sim's channels are reliable and already non-FIFO).
    (150, 10, false, 150, 150),
];

fn matrix() -> Vec<DiffScenario> {
    let mut cells = Vec::new();
    for (i, &(gst, delay, ramping, drop, reorder)) in DELAY_CELLS.iter().enumerate() {
        for crash in [None, Some((ProcessId(2), 250))] {
            cells.push(DiffScenario {
                crash,
                gst,
                delay,
                ramping,
                drop_per_mille: drop,
                reorder_per_mille: reorder,
                seed: 0xD1FF + i as u64,
                horizon: 700,
                ..DiffScenario::new(3, 0)
            });
        }
    }
    cells
}

#[test]
fn sim_and_live_converge_across_the_whole_matrix() {
    for scenario in matrix() {
        let report = run_differential(&scenario);
        report.assert_converged();
        // The verdict itself must be the interesting one: ◇P extracted.
        assert!(report.live.verdict.eventually_perfect, "live not ◇P on {scenario:?}");
        assert!(report.sim.verdict.eventually_perfect, "sim not ◇P on {scenario:?}");
    }
}

#[test]
fn crashed_cells_agree_on_exactly_who_is_suspected() {
    let scenario = DiffScenario {
        crash: Some((ProcessId(2), 250)),
        gst: 150,
        delay: 40,
        horizon: 700,
        ..DiffScenario::new(3, 7)
    };
    let report = run_differential(&scenario);
    report.assert_converged();
    for (watcher, suspected) in &report.live.verdict.final_suspicions {
        assert_eq!(
            suspected,
            &vec![ProcessId(2)],
            "{watcher} must suspect exactly the crashed process"
        );
    }
}

#[test]
fn quick_soak_gate_holds() {
    let cfg = SoakConfig { trials: 3, horizon_ms: 400, ..SoakConfig::quick() };
    let report = run_soak(&cfg);
    assert!(report.gate_ok(), "soak gate failed: {report:?}");
    assert!(report.msgs_per_sec > 0.0);
    assert_eq!(report.detection_samples, cfg.trials * (cfg.n - 1));
    assert!(report.p99_detection_ms <= report.max_detection_ms);
}

/// The tentpole's "one logic core" claim, applied to the paper's reduction:
/// the identical `ReductionNode` (witness/subject banks over the WF-◇WX
/// black box) runs on the live runtime via its `Wire` codec and extracts
/// the same verdict the simulator extracts — every correct process
/// eventually trusts every correct process.
#[test]
fn reduction_host_extracts_the_same_verdict_on_both_runtimes() {
    use dinefd_core::scenario::{factory_for, BlackBox};
    use dinefd_core::{all_ordered_pairs, suspicion_history, RedObs, ReductionNode};
    use dinefd_dining::participant::NoOracle;
    use dinefd_fd::SuspicionHistory;
    use dinefd_live::{LiveCluster, LiveConfig};
    use dinefd_runtime::{Runtime, Time};
    use dinefd_sim::{CrashPlan, DelayModel, World, WorldConfig};
    use std::sync::Arc;

    let n = 3usize;
    let horizon = 800u64;
    let pairs = all_ordered_pairs(n);
    let factory = factory_for(BlackBox::WfDx);
    let nodes = |seed_shift: u32| -> Vec<ReductionNode> {
        (0..n)
            .map(|i| {
                let _ = seed_shift;
                ReductionNode::new(
                    ProcessId(i as u32),
                    &pairs,
                    &factory,
                    Arc::new(NoOracle(8)),
                    false,
                )
            })
            .collect()
    };
    let plan = CrashPlan::none();

    // Simulator side: 1-tick links.
    let mut world = World::new(nodes(0), WorldConfig::new(1).delays(DelayModel::Fixed(1)));
    world.run_until(Time(horizon));
    let sim_hist = suspicion_history(n, world.trace(), &pairs);
    let sim_ok = sim_hist.eventual_strong_accuracy(&plan).is_ok();

    // Live side: the same nodes over loopback TCP, RedMsg on the wire.
    let mut cluster = LiveCluster::new(nodes(1), LiveConfig::new(1));
    let obs = cluster.run_to_horizon(Time(horizon));
    let mut live_hist = SuspicionHistory::new(n, true);
    live_hist.restrict_to(&pairs);
    for rec in &obs {
        if let RedObs::Suspicion { subject, suspected } = rec.obs {
            live_hist.record(rec.at, rec.who, subject, suspected);
        }
    }
    let live_ok = live_hist.eventual_strong_accuracy(&plan).is_ok();

    assert!(sim_ok, "sim reduction failed accuracy: {:?}", sim_hist.classify(&plan));
    assert!(live_ok, "live reduction failed accuracy: {:?}", live_hist.classify(&plan));
    assert!(
        cluster.stats().frames_delivered > 0,
        "reduction traffic must actually cross the sockets"
    );
}
