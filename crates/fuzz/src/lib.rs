//! # `dinefd-fuzz` — coverage-guided schedule fuzzing of the pair model
//!
//! Between the bounded explorer (exhaustive, but only to a depth frontier)
//! and the inductive checker (depth-unbounded, but abstract) sits a gap:
//! long adversarial schedules — late crashes, pathological delivery
//! orders, far-out convergence points — that neither engine visits. This
//! crate closes it with a coverage-guided fuzzer in the AFL tradition,
//! specialized to the closed pair model of `dinefd-explore`:
//!
//! * a **schedule** ([`schedule::Schedule`]) is a word of `u64` decisions;
//!   each word selects one enabled transition (`word % out_degree`), so
//!   every word sequence is a valid schedule and mutation is closed over
//!   the schedule space;
//! * **coverage** is the set of bit-packed [`dinefd_explore::StateCodec`]
//!   state fingerprints a run visits — a schedule earns a place in the
//!   [`corpus::Corpus`] exactly when it reaches a state no earlier
//!   schedule reached;
//! * the **oracle** is the paper's safety lemmas: every visited state runs
//!   through `PairState::check_invariants`, every transition through the
//!   completeness-closure check, so a finding carries the same
//!   `"Lemma N violated: …"` message the explorer would report;
//! * every lemma-violating schedule is shrunk by the delta-debugging
//!   [`minimize`] pass to a locally-minimal **replayable label prefix**
//!   that the `trace_replay` harness (and `PairState::successors` walking
//!   in general) reproduces.
//!
//! Determinism is load-bearing: all randomness flows from one
//! [`dinefd_sim::SplitMix64`] seed, the coverage set is only ever probed
//! (never iterated), and the corpus preserves insertion order — identical
//! seeds produce byte-identical corpora (checked via
//! [`corpus::Corpus::digest`]) and identical `fuzz.*` metrics.
//!
//! The fuzzer, the simulator, and the explorer all read the same
//! [`dinefd_sim::scenario_dsl::Scenario`] document; see
//! [`engine::FuzzConfig::from_scenario`].

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod corpus;
pub mod engine;
pub mod minimize;
pub mod schedule;

pub use corpus::{Corpus, CorpusEntry};
pub use engine::{fuzz_scenario, Finding, FuzzConfig, FuzzReport, Fuzzer};
pub use minimize::{lemma_key, minimize, replay, MinimizeResult, ReplayOutcome};
pub use schedule::{execute, ExecOutcome, Schedule};
