//! A minimal binary codec for messages that cross a real socket.
//!
//! The simulated runtime moves messages by `Clone`; the live runtime moves
//! them as length-prefixed frames over loopback TCP, so message types need a
//! byte representation. The vendored serde stub only derives plain structs
//! and unit enums, which rules it out for the fielded protocol enums — so
//! the codec is a small hand-rolled trait instead: fixed-width little-endian
//! integers, no self-description, no versioning. Both ends of a link are
//! always the same build, which is all a loopback cluster needs.
//!
//! Encoding must be **canonical** (one byte string per value) so the
//! differential harness can compare histories without worrying about codec
//! nondeterminism.

use std::fmt;

/// Decode failure: the byte stream did not contain a valid value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes mid-value.
    Truncated,
    /// An enum discriminant byte had no corresponding variant.
    BadTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire value truncated"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one raw byte (enum tags).
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` little-endian.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a byte slice for decoding.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
}

/// Types with a canonical byte representation for the live transport.
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes one value from `r`, consuming exactly its bytes.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a value that must fill `bytes` exactly.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Truncated);
        }
        Ok(v)
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for crate::id::ProcessId {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(crate::id::ProcessId(r.u32()?))
    }
}

impl Wire for crate::time::Time {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(crate::time::Time(r.u64()?))
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ProcessId;
    use crate::time::Time;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(ProcessId(7));
        roundtrip(Time(123_456_789));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = 0xDEAD_BEEFu32.to_bytes();
        assert_eq!(u32::from_bytes(&bytes[..3]), Err(WireError::Truncated));
        assert_eq!(u64::from_bytes(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert_eq!(u32::from_bytes(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn bad_bool_tag_is_an_error() {
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::BadTag(2)));
    }

    #[test]
    fn encoding_is_canonical() {
        // Same value, same bytes — the differential harness depends on it.
        assert_eq!(Time(9).to_bytes(), Time(9).to_bytes());
        assert_eq!(ProcessId(3).to_bytes(), vec![3, 0, 0, 0]);
    }
}
