//! Regenerates every experiment table in `EXPERIMENTS.md`.
//!
//! Usage: `tables [--quick] [--json] [--bench-json] [e1 e2 …]` — no ids =
//! run everything; `--json` emits one JSON document with every report
//! instead of markdown; `--bench-json` additionally writes the
//! machine-readable perf reports `BENCH_sim.json`, `BENCH_explore.json`,
//! and `BENCH_experiments.json` to the current directory (schema in
//! `EXPERIMENTS.md`).

use dinefd_bench::experiments::{run_by_id, ALL};
use dinefd_bench::{perfdump, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let bench_json = args.iter().any(|a| a == "--bench-json");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let ids: Vec<&str> = if ids.is_empty() { ALL.to_vec() } else { ids };
    if !json {
        println!(
            "# dinefd experiment tables ({} profile, {} seeds/config)\n",
            if quick { "quick" } else { "full" },
            cfg.seeds
        );
    }
    let mut reports = Vec::new();
    let mut bench_entries = Vec::new();
    for id in ids {
        let started = std::time::Instant::now();
        match run_by_id(id, &cfg) {
            Some(report) => {
                let secs = started.elapsed().as_secs_f64();
                if bench_json {
                    bench_entries.push((id.to_string(), report.metrics.clone(), secs));
                }
                if json {
                    reports.push((id, report));
                } else {
                    println!("{report}");
                }
                eprintln!("[{id} done in {:.1?}]", started.elapsed());
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    if json {
        let doc: std::collections::BTreeMap<&str, _> = reports.into_iter().collect();
        println!("{}", serde_json::to_string_pretty(&doc).expect("serializable"));
    }
    if bench_json {
        let dir = std::env::current_dir().expect("cwd");
        let docs = [
            ("experiments", perfdump::experiments_bench(quick, &bench_entries)),
            ("sim", perfdump::sim_bench(quick)),
            ("explore", perfdump::explore_bench(quick)),
        ];
        for (stem, doc) in &docs {
            match perfdump::write_bench(&dir, stem, doc) {
                Ok(path) => eprintln!("[wrote {}]", path.display()),
                Err(e) => {
                    eprintln!("failed to write BENCH_{stem}.json: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
