//! End-to-end: the headline equivalence. The reduction extracts ◇P from
//! every black-box WF-◇WX implementation in the repository, under crashes,
//! harsh schedules, and with both the paper's and the hardened ping/ack.

use dinefd::prelude::*;

fn classify_pair(
    black_box: BlackBox,
    seed: u64,
    crash: Option<Time>,
    strict_seq: bool,
    delays: DelayModel,
) -> (Vec<OracleClass>, usize) {
    let mut sc = Scenario::pair(black_box, seed);
    sc.strict_seq = strict_seq;
    sc.delays = delays;
    if let Some(t) = crash {
        sc.crashes = CrashPlan::one(ProcessId(1), t);
    }
    sc.horizon = Time(50_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    let mistakes = res.history.mistake_intervals(ProcessId(0), ProcessId(1));
    (res.history.classify(&crashes), mistakes)
}

#[test]
fn every_black_box_yields_diamond_p_with_crash() {
    for (name, bb) in [
        ("wfdx", BlackBox::WfDx),
        ("abstract", BlackBox::Abstract { convergence: Time(2_500) }),
        ("delayed", BlackBox::Delayed { convergence: Time(2_500) }),
        ("ftme", BlackBox::Ftme),
    ] {
        for seed in [1, 2, 3] {
            let (classes, _) =
                classify_pair(bb, seed, Some(Time(9_000)), false, DelayModel::default_async());
            assert!(
                classes.contains(&OracleClass::EventuallyPerfect),
                "{name} seed {seed}: classes {classes:?}"
            );
        }
    }
}

#[test]
fn every_black_box_yields_diamond_p_failure_free() {
    for (name, bb) in [
        ("wfdx", BlackBox::WfDx),
        ("abstract", BlackBox::Abstract { convergence: Time(2_500) }),
        ("delayed", BlackBox::Delayed { convergence: Time(2_500) }),
        ("ftme", BlackBox::Ftme),
    ] {
        let (classes, mistakes) = classify_pair(bb, 7, None, false, DelayModel::default_async());
        assert!(classes.contains(&OracleClass::EventuallyPerfect), "{name}: classes {classes:?}");
        // The reduction starts suspecting, so there is at least the initial
        // mistake — and only finitely many in total (implied by convergence).
        assert!(mistakes >= 1, "{name}: initial suspicion should count");
    }
}

#[test]
fn hardened_variant_is_also_diamond_p() {
    for crash in [None, Some(Time(9_000))] {
        let (classes, _) =
            classify_pair(BlackBox::WfDx, 11, crash, true, DelayModel::default_async());
        assert!(classes.contains(&OracleClass::EventuallyPerfect), "classes {classes:?}");
    }
}

#[test]
fn harsh_delays_do_not_break_the_reduction() {
    let (classes, _) =
        classify_pair(BlackBox::WfDx, 13, Some(Time(9_000)), false, DelayModel::harsh());
    assert!(classes.contains(&OracleClass::EventuallyPerfect), "classes {classes:?}");
}

#[test]
fn all_pairs_extraction_with_two_crashes() {
    let n = 4;
    let mut sc = Scenario::all_pairs(n, BlackBox::WfDx, 17);
    sc.crashes = CrashPlan::one(ProcessId(1), Time(6_000)).and(ProcessId(3), Time(12_000));
    sc.horizon = Time(60_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    // Both crashes detected by both correct watchers.
    let det = res.history.strong_completeness(&crashes).unwrap();
    assert_eq!(det.len(), 2 * 2, "2 correct watchers × 2 faulty subjects");
    // Correct pairs converge to mutual trust.
    let acc = res.history.eventual_strong_accuracy(&crashes).unwrap();
    assert_eq!(acc.len(), 2, "(p0,p2) and (p2,p0)");
    assert!(res.history.classify(&crashes).contains(&OracleClass::EventuallyPerfect));
}

#[test]
fn detection_latency_scales_with_nothing_suspicious() {
    // Detection latency should be modest (the witness only needs one more
    // eating cycle after the crash) and roughly independent of WHEN the
    // crash happens.
    let mut latencies = Vec::new();
    for (seed, crash_at) in [(21u64, 3_000u64), (22, 9_000), (23, 18_000)] {
        let mut sc = Scenario::pair(BlackBox::WfDx, seed);
        sc.crashes = CrashPlan::one(ProcessId(1), Time(crash_at));
        sc.horizon = Time(50_000);
        let crashes = sc.crashes.clone();
        let res = run_extraction(sc);
        let det = res.history.strong_completeness(&crashes).unwrap();
        latencies.push(det[0].detected_from - det[0].crashed_at);
    }
    for &l in &latencies {
        assert!(l < 5_000, "latency {l} too large: {latencies:?}");
    }
}

#[test]
fn fifo_channels_do_not_change_the_result() {
    // The paper's model is non-FIFO; the reduction must not depend on
    // ordering in either direction. Same scenario under both disciplines.
    for seed in [33u64, 34] {
        for fifo in [false, true] {
            let mut sc = Scenario::pair(BlackBox::WfDx, seed);
            sc.delays =
                if fifo { DelayModel::fifo(DelayModel::harsh()) } else { DelayModel::harsh() };
            sc.crashes = CrashPlan::one(ProcessId(1), Time(9_000));
            sc.horizon = Time(50_000);
            let crashes = sc.crashes.clone();
            let res = run_extraction(sc);
            let classes = res.history.classify(&crashes);
            assert!(
                classes.contains(&OracleClass::EventuallyPerfect),
                "seed {seed} fifo {fifo}: {classes:?}"
            );
        }
    }
}

#[test]
fn monitored_subset_leaves_other_pairs_out_of_scope() {
    // Monitoring only (p0 → p1) in a 3-process system must not make claims
    // about (p0, p2) or (p2, *) pairs.
    let mut sc = Scenario::pair(BlackBox::WfDx, 29);
    sc.n = 3;
    sc.pairs = vec![(ProcessId(0), ProcessId(1))];
    sc.horizon = Time(30_000);
    let crashes = sc.crashes.clone();
    let res = run_extraction(sc);
    assert!(res.history.is_monitored(ProcessId(0), ProcessId(1)));
    assert!(!res.history.is_monitored(ProcessId(0), ProcessId(2)));
    assert!(res.history.eventual_strong_accuracy(&crashes).is_ok());
}
