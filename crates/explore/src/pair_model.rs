//! The closed nondeterministic model of one monitoring pair.

use dinefd_core::machines::{
    SubjectAction, SubjectCmd, SubjectMachine, SubjectMutation, WitnessAction, WitnessCmd,
    WitnessMachine,
};
use dinefd_dining::DinerPhase;

/// Seeded bugs injected at the *model* level — the wire between the
/// machines — complementing the machine-level [`SubjectMutation`]s. Used by
/// the seeded-bug test suite to prove the checkers can see.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ModelMutation {
    /// The faithful wire.
    #[default]
    None,
    /// `S_p`'s ping is silently lost in transit (the machine still believes
    /// it sent one). Safety lemmas survive; the hand-off starves — only
    /// liveness checking ([`crate::fair_run`]) catches it.
    DropPingSend,
    /// The wire may duplicate an in-flight ack, so a stale ack can survive
    /// into a later epoch and flip the trigger out of turn (breaks Lemma 4;
    /// the in-flight duplicate also breaks Lemma 3).
    StaleAckReplay,
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum interleaving depth.
    pub max_depth: u32,
    /// State-count budget (exploration reports truncation beyond it).
    pub max_states: usize,
    /// Harden the subject with sequence-checked acks.
    pub strict_seq: bool,
    /// Allow the subject process `q` to crash at any point.
    pub allow_crash: bool,
    /// Start in the exclusive regime (convergence already reached).
    pub start_converged: bool,
    /// Worker threads for [`crate::explore`]: `1` (the default) runs the
    /// serial search; `≥ 2` runs the work-stealing parallel engine.
    pub threads: usize,
    /// Enable sleep-set partial-order reduction over commuting ping/ack
    /// deliveries ([`crate::por`]). Off by default. Sound: every reported
    /// figure (`states_visited`, `transitions`, `deadlocks`, violations) is
    /// identical with POR on or off; only redundant probe work is skipped.
    pub por: bool,
    /// Seeded machine-level bug (mutation testing; `None` = faithful).
    pub subject_mutation: SubjectMutation,
    /// Seeded wire-level bug (mutation testing; `None` = faithful).
    pub model_mutation: ModelMutation,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 14,
            max_states: 2_000_000,
            strict_seq: false,
            allow_crash: true,
            start_converged: false,
            threads: 1,
            por: false,
            subject_mutation: SubjectMutation::None,
            model_mutation: ModelMutation::None,
        }
    }
}

impl ExploreConfig {
    /// Builds an exploration config from the `[model]` section of a
    /// [`dinefd_sim::scenario_dsl::Scenario`], mapping the DSL's
    /// engine-neutral mutation names onto the explorer's enums. The
    /// execution-strategy knobs (`threads`, `por`) are not scenario data —
    /// they describe *how* to search, not *what* to search — and keep
    /// their defaults.
    pub fn from_scenario(sc: &dinefd_sim::scenario_dsl::Scenario) -> Self {
        use dinefd_sim::scenario_dsl::{ModelMutationSpec, SubjectMutationSpec};
        ExploreConfig {
            max_depth: sc.model.max_depth,
            max_states: usize::try_from(sc.model.max_states).unwrap_or(usize::MAX),
            strict_seq: sc.model.strict_seq,
            allow_crash: sc.model.allow_crash,
            start_converged: sc.model.start_converged,
            threads: 1,
            por: false,
            subject_mutation: match sc.model.subject_mutation {
                SubjectMutationSpec::None => SubjectMutation::None,
                SubjectMutationSpec::SkipPingDisable => SubjectMutation::SkipPingDisable,
                SubjectMutationSpec::IgnoreTriggerGuard => SubjectMutation::IgnoreTriggerGuard,
                SubjectMutationSpec::SkipTriggerUpdate => SubjectMutation::SkipTriggerUpdate,
            },
            model_mutation: match sc.model.model_mutation {
                ModelMutationSpec::None => ModelMutation::None,
                ModelMutationSpec::DropPingSend => ModelMutation::DropPingSend,
                ModelMutationSpec::StaleAckReplay => ModelMutation::StaleAckReplay,
            },
        }
    }
}

/// One transition choice of the explorer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionLabel {
    /// Fire a witness guarded action.
    Witness(WitnessAction),
    /// Fire a subject guarded action.
    Subject(SubjectAction),
    /// Deliver the in-flight ping at the given pool index.
    DeliverPing(usize),
    /// Deliver the in-flight ack at the given pool index.
    DeliverAck(usize),
    /// Duplicate the in-flight ack at the given pool index (only enabled
    /// under [`ModelMutation::StaleAckReplay`]).
    DuplicateAck(usize),
    /// The dining service grants the witness endpoint of `DX_i`.
    GrantWitness(usize),
    /// The dining service grants the subject endpoint of `DX_i`.
    GrantSubject(usize),
    /// ◇WX convergence occurs now.
    Converge,
    /// `q` crashes now.
    CrashSubject,
}

/// A complete model state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PairState {
    /// Alg. 1 state at `p`.
    pub witness: WitnessMachine,
    /// Alg. 2 state at `q`.
    pub subject: SubjectMachine,
    /// Phases of `p.w_0`, `p.w_1` in their instances.
    pub w_phase: [DinerPhase; 2],
    /// Phases of `q.s_0`, `q.s_1`.
    pub s_phase: [DinerPhase; 2],
    /// In-flight pings `(instance, seq)`, ordered by send time (delivery may
    /// pick any — non-FIFO).
    pub pings: Vec<(u8, u64)>,
    /// In-flight acks `(instance, seq)`.
    pub acks: Vec<(u8, u64)>,
    /// Whether ◇WX has converged (grants now exclusive per instance).
    pub converged: bool,
    /// Whether `q` has crashed.
    pub crashed: bool,
}

impl PairState {
    /// The initial state.
    pub fn initial(cfg: &ExploreConfig) -> Self {
        PairState {
            witness: WitnessMachine::new(),
            subject: SubjectMachine::with_mutation(cfg.strict_seq, cfg.subject_mutation),
            w_phase: [DinerPhase::Thinking; 2],
            s_phase: [DinerPhase::Thinking; 2],
            pings: Vec::new(),
            acks: Vec::new(),
            converged: cfg.start_converged,
            crashed: false,
        }
    }

    fn both_endpoints_eating(&self, i: usize) -> bool {
        self.w_phase[i] == DinerPhase::Eating && self.s_phase[i] == DinerPhase::Eating
    }

    /// Applies one labelled transition, returning the successor.
    /// The label must come from [`PairState::successors`].
    fn apply(&self, label: TransitionLabel, cfg: &ExploreConfig) -> PairState {
        let mut s = self.clone();
        match label {
            TransitionLabel::Witness(a) => {
                let cmd = s.witness.fire(a, s.w_phase);
                match cmd {
                    WitnessCmd::BecomeHungry(i) => s.w_phase[i] = DinerPhase::Hungry,
                    WitnessCmd::Exit(i) => s.w_phase[i] = DinerPhase::Thinking,
                    WitnessCmd::SendAck(..) => unreachable!("ack is message-triggered"),
                }
            }
            TransitionLabel::Subject(a) => {
                let cmd = s.subject.fire(a, s.s_phase);
                match cmd {
                    SubjectCmd::BecomeHungry(i) => s.s_phase[i] = DinerPhase::Hungry,
                    SubjectCmd::Exit(i) => s.s_phase[i] = DinerPhase::Thinking,
                    SubjectCmd::SendPing(i, seq) => {
                        // Seeded wire bug: the send is silently lost (the
                        // machine still believes it pinged).
                        if cfg.model_mutation != ModelMutation::DropPingSend {
                            s.pings.push((i as u8, seq));
                        }
                    }
                }
            }
            TransitionLabel::DeliverPing(k) => {
                let (i, seq) = s.pings.remove(k);
                // Witness handles the ping: bank it and emit an ack.
                let WitnessCmd::SendAck(i2, seq2) = s.witness.on_ping(i as usize, seq) else {
                    unreachable!()
                };
                if s.crashed {
                    // The ack would be delivered to a corpse: drop it.
                } else {
                    s.acks.push((i2 as u8, seq2));
                }
            }
            TransitionLabel::DeliverAck(k) => {
                let (i, seq) = s.acks.remove(k);
                debug_assert!(!s.crashed, "acks to a crashed q are not delivered");
                s.subject.on_ack(i as usize, seq);
            }
            TransitionLabel::DuplicateAck(k) => {
                debug_assert_eq!(cfg.model_mutation, ModelMutation::StaleAckReplay);
                let dup = s.acks[k];
                s.acks.push(dup);
            }
            TransitionLabel::GrantWitness(i) => {
                debug_assert_eq!(s.w_phase[i], DinerPhase::Hungry);
                s.w_phase[i] = DinerPhase::Eating;
            }
            TransitionLabel::GrantSubject(i) => {
                debug_assert_eq!(s.s_phase[i], DinerPhase::Hungry);
                s.s_phase[i] = DinerPhase::Eating;
            }
            TransitionLabel::Converge => s.converged = true,
            TransitionLabel::CrashSubject => {
                s.crashed = true;
                // In-flight pings were already sent; they still arrive at the
                // live witness. Acks in flight to q vanish.
                s.acks.clear();
            }
        }
        s
    }

    /// All enabled transitions with their successors, appended to `out` —
    /// the allocation-free form the search engines drive with a reused
    /// scratch buffer.
    pub fn successors_into(
        &self,
        cfg: &ExploreConfig,
        out: &mut Vec<(TransitionLabel, PairState)>,
    ) {
        let mut push = |l: TransitionLabel| out.push((l, self.apply(l, cfg)));
        // Witness actions (p is always correct in this model).
        self.witness.for_each_enabled(self.w_phase, |a| push(TransitionLabel::Witness(a)));
        // Subject actions, if q lives.
        if !self.crashed {
            self.subject.for_each_enabled(self.s_phase, |a| push(TransitionLabel::Subject(a)));
        }
        // Non-FIFO delivery: any in-flight message.
        for k in 0..self.pings.len() {
            push(TransitionLabel::DeliverPing(k));
        }
        if !self.crashed {
            for k in 0..self.acks.len() {
                push(TransitionLabel::DeliverAck(k));
            }
            // Seeded wire bug: an adversarial wire may duplicate an
            // in-flight ack (bounded so the mutated state space stays
            // finite).
            if cfg.model_mutation == ModelMutation::StaleAckReplay && self.acks.len() < 3 {
                for k in 0..self.acks.len() {
                    push(TransitionLabel::DuplicateAck(k));
                }
            }
        }
        // Dining grants: unconstrained before convergence; exclusive within
        // each instance afterwards. Exclusion binds *live* neighbors only —
        // a subject that crashed mid-meal must not block the witness
        // (wait-freedom).
        for i in 0..2 {
            if self.w_phase[i] == DinerPhase::Hungry
                && (!self.converged || self.crashed || self.s_phase[i] != DinerPhase::Eating)
            {
                push(TransitionLabel::GrantWitness(i));
            }
            if !self.crashed
                && self.s_phase[i] == DinerPhase::Hungry
                && (!self.converged || self.w_phase[i] != DinerPhase::Eating)
            {
                push(TransitionLabel::GrantSubject(i));
            }
        }
        // Convergence may strike at any moment — but ◇WX's exclusive suffix
        // cannot begin while two live neighbors are mid-overlap.
        if !self.converged && !(0..2).any(|i| !self.crashed && self.both_endpoints_eating(i)) {
            push(TransitionLabel::Converge);
        }
        // q may crash at any moment.
        if cfg.allow_crash && !self.crashed {
            push(TransitionLabel::CrashSubject);
        }
    }

    /// All enabled transitions with their successors, as a fresh vector
    /// (trace replay and property tests; the engines use
    /// [`PairState::successors_into`]).
    pub fn successors(&self, cfg: &ExploreConfig) -> Vec<(TransitionLabel, PairState)> {
        let mut out = Vec::new();
        self.successors_into(cfg, &mut out);
        out
    }

    /// State-level invariant checks (the paper's safety lemmas). Returns
    /// human-readable violation descriptions. The predicates themselves live
    /// in [`crate::invariants`], shared with the inductive checker in
    /// `dinefd-analyze`.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut v = Vec::new();
        crate::invariants::check_state(self, &mut v);
        v
    }

    /// Membership in the Theorem-1 closure set: `q` crashed, no pings in
    /// flight, no banked ping.
    pub fn in_completeness_closure(&self) -> bool {
        crate::invariants::in_completeness_closure(self)
    }

    /// Transition-level check for the Theorem-1 closure: from a closure
    /// state, every successor stays in the closure and suspicion is monotone.
    pub fn check_closure_step(&self, succ: &PairState) -> Option<String> {
        crate::invariants::check_closure_step(self, succ)
    }
}

impl crate::invariants::InvariantView for PairState {
    fn w_phase(&self, i: usize) -> DinerPhase {
        self.w_phase[i]
    }
    fn s_phase(&self, i: usize) -> DinerPhase {
        self.s_phase[i]
    }
    fn ping_enabled(&self, i: usize) -> bool {
        self.subject.ping_enabled(i)
    }
    fn trigger(&self) -> usize {
        self.subject.trigger()
    }
    fn crashed(&self) -> bool {
        self.crashed
    }
    fn converged(&self) -> bool {
        self.converged
    }
    fn dx_in_transit(&self, i: usize) -> bool {
        self.pings.iter().any(|&(j, _)| j as usize == i)
            || self.acks.iter().any(|&(j, _)| j as usize == i)
    }
    fn pings_in_transit(&self) -> bool {
        !self.pings.is_empty()
    }
    fn haveping(&self, i: usize) -> bool {
        self.witness.haveping(i)
    }
    fn suspects(&self) -> bool {
        self.witness.suspects()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_clean() {
        let cfg = ExploreConfig::default();
        let s = PairState::initial(&cfg);
        assert!(s.check_invariants().is_empty());
        assert!(!s.in_completeness_closure());
    }

    #[test]
    fn initial_transitions_include_expected_choices() {
        let cfg = ExploreConfig::default();
        let s = PairState::initial(&cfg);
        let succ = s.successors(&cfg);
        let labels: Vec<TransitionLabel> = succ.iter().map(|&(l, _)| l).collect();
        assert!(labels.contains(&TransitionLabel::Witness(WitnessAction::Hungry(0))));
        assert!(labels.contains(&TransitionLabel::Subject(SubjectAction::Hungry(0))));
        assert!(labels.contains(&TransitionLabel::Converge));
        assert!(labels.contains(&TransitionLabel::CrashSubject));
        // Nothing is hungry yet: no grants; no messages: no deliveries.
        assert!(!labels.iter().any(|l| matches!(l, TransitionLabel::GrantWitness(_))));
        assert!(!labels.iter().any(|l| matches!(l, TransitionLabel::DeliverPing(_))));
    }

    #[test]
    fn grant_respects_exclusive_regime() {
        let cfg = ExploreConfig { start_converged: true, ..Default::default() };
        let mut s = PairState::initial(&cfg);
        s.w_phase[0] = DinerPhase::Hungry;
        s.s_phase[0] = DinerPhase::Eating;
        let labels: Vec<TransitionLabel> = s.successors(&cfg).iter().map(|&(l, _)| l).collect();
        assert!(
            !labels.contains(&TransitionLabel::GrantWitness(0)),
            "exclusive regime must not double-grant DX_0"
        );
    }

    #[test]
    fn convergence_waits_for_overlap_to_clear() {
        let cfg = ExploreConfig::default();
        let mut s = PairState::initial(&cfg);
        s.w_phase[1] = DinerPhase::Eating;
        s.s_phase[1] = DinerPhase::Eating;
        let labels: Vec<TransitionLabel> = s.successors(&cfg).iter().map(|&(l, _)| l).collect();
        assert!(!labels.contains(&TransitionLabel::Converge));
    }

    #[test]
    fn crash_drops_acks_but_not_pings() {
        let cfg = ExploreConfig::default();
        let mut s = PairState::initial(&cfg);
        s.pings.push((0, 1));
        s.acks.push((1, 1));
        let (_, after) = s
            .successors(&cfg)
            .into_iter()
            .find(|(l, _)| *l == TransitionLabel::CrashSubject)
            .unwrap();
        assert_eq!(after.pings.len(), 1, "pings to the live witness survive");
        assert!(after.acks.is_empty(), "acks to the corpse vanish");
    }

    #[test]
    fn closure_is_detected() {
        let cfg = ExploreConfig::default();
        let mut s = PairState::initial(&cfg);
        s.crashed = true;
        assert!(s.in_completeness_closure());
        s.pings.push((0, 1));
        assert!(!s.in_completeness_closure());
    }
}
