//! E1 — Theorem 1 (strong completeness): a crashed subject is eventually
//! permanently suspected, over every black box and delay regime.

use dinefd_core::{run_extraction, BlackBox, OracleSpec, Scenario};
use dinefd_sim::{CrashPlan, DelayModel, MetricMap, ProcessId, Summary, Time};

use crate::table::{Report, Table};
use crate::{parallel_map, ExperimentConfig};

fn delays(name: &str) -> DelayModel {
    match name {
        "uniform" => DelayModel::default_async(),
        "harsh" => DelayModel::harsh(),
        other => panic!("unknown delay model {other}"),
    }
}

/// Runs E1 and returns the report.
pub fn run(cfg: &ExperimentConfig) -> Report {
    let boxes = [
        ("wfdx", BlackBox::WfDx),
        ("abstract", BlackBox::Abstract { convergence: Time(3_000) }),
        ("delayed", BlackBox::Delayed { convergence: Time(3_000) }),
    ];
    let delay_names = ["uniform", "harsh"];
    let crash_times = [Time(2_000), Time(10_000)];
    let mut table = Table::new(
        "Detection latency of the extracted ◇P (ticks after crash)",
        &["black box", "delays", "crash at", "runs", "detected", "latency (min/mean/p95/max)"],
    );
    let mut runs_total = 0u64;
    let mut detected_total = 0u64;
    let mut steps_total = 0u64;
    let mut msgs_total = 0u64;
    for (bname, bb) in boxes {
        for dname in delay_names {
            for crash_at in crash_times {
                let results = parallel_map(0..cfg.seeds, |seed| {
                    let mut sc = Scenario::pair(bb, 1000 + seed);
                    sc.oracle = OracleSpec::DiamondP {
                        lag: 20,
                        convergence: Time(2_000),
                        max_mistakes: 3,
                        max_len: 150,
                    };
                    sc.delays = delays(dname);
                    sc.crashes = CrashPlan::one(ProcessId(1), crash_at);
                    sc.horizon = Time(40_000);
                    let crashes = sc.crashes.clone();
                    let res = run_extraction(sc);
                    let latency = match res.history.strong_completeness(&crashes) {
                        Ok(det) => Some(det[0].detected_from - det[0].crashed_at),
                        Err(_) => None,
                    };
                    (latency, res.steps, res.messages_sent)
                });
                let detected: Vec<u64> = results.iter().filter_map(|r| r.0).collect();
                runs_total += results.len() as u64;
                detected_total += detected.len() as u64;
                steps_total += results.iter().map(|r| r.1).sum::<u64>();
                msgs_total += results.iter().map(|r| r.2).sum::<u64>();
                let summary = Summary::of_u64(&detected);
                table.row(vec![
                    bname.to_string(),
                    dname.to_string(),
                    crash_at.ticks().to_string(),
                    results.len().to_string(),
                    format!("{}/{}", detected.len(), results.len()),
                    summary.map_or("-".into(), |s| {
                        format!("{:.0}/{:.0}/{:.0}/{:.0}", s.min, s.mean, s.p95, s.max)
                    }),
                ]);
            }
        }
    }
    let mut metrics = MetricMap::new();
    metrics.insert("runs".into(), runs_total);
    metrics.insert("runs_detected".into(), detected_total);
    metrics.insert("sim_steps_total".into(), steps_total);
    metrics.insert("messages_sent_total".into(), msgs_total);
    Report {
        title: "E1 — strong completeness (Theorem 1)".into(),
        preamble: "Paper claim: every crashed process is eventually and permanently \
                   suspected by every correct process, for ANY black-box WF-◇WX \
                   solution. Measured: fraction of runs in which the crashed subject \
                   is permanently suspected by the end of the recording, and the \
                   latency from the crash to permanent suspicion."
            .into(),
        tables: vec![table],
        notes: vec![],
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::parse_frac;

    #[test]
    fn e1_every_run_detects() {
        let cfg = ExperimentConfig { seeds: 3 };
        let report = run(&cfg);
        for row in &report.tables[0].rows {
            let (got, total) = parse_frac(&row[4]);
            assert_eq!(got, total, "undetected crash in config {row:?}");
        }
        assert_eq!(report.metrics["runs"], report.metrics["runs_detected"]);
        assert!(report.metrics["sim_steps_total"] > 0);
        assert!(report.metrics["messages_sent_total"] > 0);
    }
}
