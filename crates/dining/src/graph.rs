//! Conflict graphs: which diners share resources.

use dinefd_sim::{ProcessId, SplitMix64};

/// An undirected conflict graph over processes `0..n`.
///
/// Vertices are diners; an edge `(p, q)` means `p` and `q` share a set of
/// mutually exclusive resources and therefore may never (or, under ◇WX,
/// eventually never) eat simultaneously.
///
/// ```
/// use dinefd_dining::ConflictGraph;
/// use dinefd_sim::ProcessId;
///
/// let ring = ConflictGraph::ring(5);
/// assert_eq!(ring.edge_count(), 5);
/// assert!(ring.are_neighbors(ProcessId(0), ProcessId(4)));
/// assert_eq!(ring.neighbors(ProcessId(2)), &[ProcessId(1), ProcessId(3)]);
/// ```
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    n: usize,
    /// Sorted adjacency lists.
    adj: Vec<Vec<ProcessId>>,
}

impl ConflictGraph {
    /// Builds a graph from an edge list. Self-loops are rejected; duplicate
    /// edges are coalesced.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop ({a},{a})");
            let (pa, pb) = (ProcessId::from_index(a), ProcessId::from_index(b));
            if !adj[a].contains(&pb) {
                adj[a].push(pb);
                adj[b].push(pa);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        ConflictGraph { n, adj }
    }

    /// The 2-diner graph used by each dining instance of the reduction:
    /// a single edge between the two given processes, embedded in a system
    /// of size `n`.
    pub fn single_edge(n: usize, a: ProcessId, b: ProcessId) -> Self {
        ConflictGraph::from_edges(n, &[(a.index(), b.index())])
    }

    /// A path `0 – 1 – … – (n-1)`.
    pub fn path(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        ConflictGraph::from_edges(n, &edges)
    }

    /// Dijkstra's ring of `n ≥ 3` diners.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 diners");
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        ConflictGraph::from_edges(n, &edges)
    }

    /// The complete graph — dining degenerates to mutual exclusion.
    pub fn clique(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        ConflictGraph::from_edges(n, &edges)
    }

    /// A `rows × cols` grid (torus-free), modelling e.g. sensor coverage
    /// cells where adjacent cells overlap.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols));
                }
            }
        }
        ConflictGraph::from_edges(n, &edges)
    }

    /// Erdős–Rényi random graph: each pair is an edge with probability
    /// `num/den`.
    pub fn random(n: usize, num: u64, den: u64, rng: &mut SplitMix64) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.chance(num, den) {
                    edges.push((a, b));
                }
            }
        }
        ConflictGraph::from_edges(n, &edges)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbors of `p`, sorted.
    pub fn neighbors(&self, p: ProcessId) -> &[ProcessId] {
        &self.adj[p.index()]
    }

    /// Whether `p` and `q` are neighbors.
    pub fn are_neighbors(&self, p: ProcessId, q: ProcessId) -> bool {
        self.adj[p.index()].binary_search(&q).is_ok()
    }

    /// All edges, each once, as ordered pairs `(low, high)`.
    pub fn edges(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut out = Vec::new();
        for a in ProcessId::all(self.n) {
            for &b in self.neighbors(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// BFS hop distance between two diners (`None` if disconnected).
    pub fn distance(&self, from: ProcessId, to: ProcessId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.n];
        dist[from.index()] = 0;
        let mut frontier = vec![from];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for p in frontier {
                for &q in self.neighbors(p) {
                    if dist[q.index()] == usize::MAX {
                        if q == to {
                            return Some(d);
                        }
                        dist[q.index()] = d;
                        next.push(q);
                    }
                }
            }
            frontier = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn ring_structure() {
        let g = ConflictGraph::ring(5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.neighbors(p(0)), &[p(1), p(4)]);
        assert!(g.are_neighbors(p(4), p(0)));
        assert!(!g.are_neighbors(p(0), p(2)));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn clique_structure() {
        let g = ConflictGraph::clique(4);
        assert_eq!(g.edge_count(), 6);
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(g.are_neighbors(p(a), p(b)), a != b);
            }
        }
    }

    #[test]
    fn path_and_grid() {
        let g = ConflictGraph::path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(p(1)), &[p(0), p(2)]);
        let g = ConflictGraph::grid(2, 3);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.neighbors(p(0)), &[p(1), p(3)]);
        assert_eq!(g.neighbors(p(4)), &[p(1), p(3), p(5)]);
    }

    #[test]
    fn single_edge_embeds_in_larger_system() {
        let g = ConflictGraph::single_edge(6, p(2), p(5));
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(p(2)), &[p(5)]);
        assert!(g.neighbors(p(0)).is_empty());
    }

    #[test]
    fn duplicate_edges_coalesce() {
        let g = ConflictGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = ConflictGraph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    fn random_graph_respects_probability_extremes() {
        let mut rng = SplitMix64::new(3);
        let g = ConflictGraph::random(6, 0, 1, &mut rng);
        assert_eq!(g.edge_count(), 0);
        let g = ConflictGraph::random(6, 1, 1, &mut rng);
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn distances_on_path_and_ring() {
        let g = ConflictGraph::path(5);
        assert_eq!(g.distance(p(0), p(0)), Some(0));
        assert_eq!(g.distance(p(0), p(4)), Some(4));
        assert_eq!(g.distance(p(1), p(3)), Some(2));
        let g = ConflictGraph::ring(6);
        assert_eq!(g.distance(p(0), p(3)), Some(3));
        assert_eq!(g.distance(p(0), p(5)), Some(1));
        // Disconnected vertices.
        let g = ConflictGraph::from_edges(4, &[(0, 1)]);
        assert_eq!(g.distance(p(0), p(3)), None);
    }

    #[test]
    fn edges_lists_each_edge_once() {
        let g = ConflictGraph::ring(4);
        let es = g.edges();
        assert_eq!(es.len(), 4);
        assert!(es.iter().all(|&(a, b)| a < b));
    }
}
