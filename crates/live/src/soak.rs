//! Sustained-load soak on the live runtime.
//!
//! Repeated short live trials, each crashing one process (rotating through
//! the ring), under clean links: the soak measures what the transport and
//! detector actually deliver on this machine — throughput in messages per
//! second and the tail of crash-detection latency — and gates on the ◇P
//! contract: **no false suspicion survives to the end of any trial**.
//! Transient wrongful suspicions are allowed (a loaded CI box can stall a
//! thread past any finite timeout — that is precisely the asynchrony ◇P
//! tolerates and the measured timeout absorbs); a *surviving* one is a
//! detector bug.
//!
//! The numbers land in `BENCH_live.json` under nondeterministic keys: they
//! describe a wall-clock run and are excluded from determinism diffs.

use dinefd_runtime::{ProcessId, Time};

use crate::harness::{run_live, DiffScenario};

/// Parameters of one soak.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// System size per trial.
    pub n: usize,
    /// Number of trials (each crashes one process).
    pub trials: usize,
    /// Heartbeat period in ms.
    pub period_ms: u64,
    /// Crash instant within each trial, ms.
    pub crash_at_ms: u64,
    /// Trial length, ms.
    pub horizon_ms: u64,
    /// Base seed; trial `t` runs with `seed + t`.
    pub seed: u64,
}

impl SoakConfig {
    /// A soak sized for CI: well under the 60-second box.
    pub fn quick() -> Self {
        SoakConfig {
            n: 4,
            trials: 6,
            period_ms: 8,
            crash_at_ms: 150,
            horizon_ms: 500,
            seed: 0x50AB,
        }
    }
}

/// What the soak measured.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Trials executed.
    pub trials: usize,
    /// Messages decoded and delivered per wall-clock second, across trials.
    pub msgs_per_sec: f64,
    /// 99th percentile of crash-detection latency (ms): time from the crash
    /// instant to the watcher's *permanent* suspicion of the crashed peer.
    pub p99_detection_ms: u64,
    /// Worst observed detection latency (ms).
    pub max_detection_ms: u64,
    /// Detection-latency samples (one per correct watcher per trial).
    pub detection_samples: usize,
    /// Correct-watcher→correct-peer suspicions still standing at the end of
    /// any trial. The soak gate requires this to be zero.
    pub surviving_false_suspicions: usize,
    /// Trials in which some correct watcher never permanently suspected the
    /// crashed process. The soak gate requires this to be zero.
    pub missed_detections: usize,
    /// Transient wrongful-suspicion intervals (informational, not gated).
    pub transient_mistakes: usize,
    /// Frames delivered across all trials.
    pub frames_delivered: u64,
    /// Total wall-clock time spent inside trials, ms.
    pub wall_ms: u64,
}

impl SoakReport {
    /// The CI gate: every crash detected, and zero false suspicions
    /// surviving past (the trivially-zero) GST.
    pub fn gate_ok(&self) -> bool {
        self.surviving_false_suspicions == 0 && self.missed_detections == 0
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the soak.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    assert!(cfg.n >= 2, "a soak needs at least one watcher per crash");
    assert!(cfg.crash_at_ms < cfg.horizon_ms, "crash must fall inside the trial");
    let mut latencies: Vec<u64> = Vec::new();
    let mut surviving_false = 0usize;
    let mut missed = 0usize;
    let mut transient = 0usize;
    let mut frames = 0u64;
    let mut wall_ms = 0u64;

    for t in 0..cfg.trials {
        let crashed = ProcessId::from_index(t % cfg.n);
        let scenario = DiffScenario {
            n: cfg.n,
            seed: cfg.seed.wrapping_add(t as u64),
            period: cfg.period_ms,
            crash: Some((crashed, cfg.crash_at_ms)),
            gst: 0,
            delay: 0,
            ramping: false,
            drop_per_mille: 0,
            reorder_per_mille: 0,
            horizon: cfg.horizon_ms,
        };
        let (outcome, stats) = run_live(&scenario);
        frames += stats.frames_delivered;
        wall_ms += stats.wall.as_millis() as u64;
        transient += outcome.mistakes;
        let plan = scenario.crash_plan();
        for (watcher, suspected) in &outcome.verdict.final_suspicions {
            surviving_false += suspected.iter().filter(|q| !plan.is_faulty(**q)).count();
            match outcome.history.timeline(*watcher, crashed).true_from() {
                Some(Time(at)) => latencies.push(at.saturating_sub(cfg.crash_at_ms)),
                None => missed += 1,
            }
        }
    }

    latencies.sort_unstable();
    let secs = (wall_ms as f64 / 1_000.0).max(1e-9);
    SoakReport {
        trials: cfg.trials,
        msgs_per_sec: frames as f64 / secs,
        p99_detection_ms: percentile(&latencies, 0.99),
        max_detection_ms: latencies.last().copied().unwrap_or(0),
        detection_samples: latencies.len(),
        surviving_false_suspicions: surviving_false,
        missed_detections: missed,
        transient_mistakes: transient,
        frames_delivered: frames,
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_the_ceiling_rank() {
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile(&v, 0.5), 20);
        assert_eq!(percentile(&v, 0.99), 40);
        assert_eq!(percentile(&v, 1.0), 40);
        assert_eq!(percentile(&[], 0.99), 0);
    }
}
