//! Mutation tests for the lemma checker: seed known bugs into the subject
//! machine and the wire, then assert the exhaustive search actually flags
//! them with lemma-attributed violations. A checker that stays green on a
//! broken subject is worthless — these are the tests of the tests.
//!
//! Two mutations are deliberately safety-silent (`DropPingSend`,
//! `SkipTriggerUpdate`): they starve the hand-off without ever entering a
//! lemma-violating state, so the exhaustive search *must* stay clean on
//! them and only the fair-run liveness harness may complain. Mutation
//! testing needs those negative controls as much as the positive ones.

use dinefd_explore::{
    explore, fair_run_mutated, ExploreConfig, ModelMutation, SubjectMutation, ViolationKind,
};

fn mutated(subject: SubjectMutation, model: ModelMutation, depth: u32) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        subject_mutation: subject,
        model_mutation: model,
        ..Default::default()
    }
}

/// Violations attributed to the given lemma, for both search modes.
fn lemma_hits(cfg: &ExploreConfig, lemma: &str) -> (usize, usize) {
    let count = |threads: usize| {
        explore(&ExploreConfig { threads, ..*cfg })
            .violations
            .iter()
            .filter(|v| v.contains(lemma))
            .count()
    };
    (count(1), count(4))
}

#[test]
fn skip_ping_disable_breaks_lemma_3() {
    // The mutant forgets to disable ping after sending one, so a session can
    // put two pings in flight; the second one is still in transit after the
    // session ends, exactly what Lemma 3 forbids.
    let cfg = mutated(SubjectMutation::SkipPingDisable, ModelMutation::None, 12);
    let (serial, parallel) = lemma_hits(&cfg, "Lemma 3 violated");
    assert!(serial > 0, "serial search missed the seeded Lemma 3 bug");
    assert!(parallel > 0, "parallel search missed the seeded Lemma 3 bug");
}

#[test]
fn ignore_trigger_guard_breaks_lemma_4() {
    // The mutant lets s_1 go hungry out of turn (trigger still 0): the
    // literal negation of Lemma 4, reachable in one step.
    let cfg = mutated(SubjectMutation::IgnoreTriggerGuard, ModelMutation::None, 6);
    let (serial, parallel) = lemma_hits(&cfg, "Lemma 4 violated");
    assert!(serial > 0, "serial search missed the seeded Lemma 4 bug");
    assert!(parallel > 0, "parallel search missed the seeded Lemma 4 bug");
}

#[test]
fn stale_ack_replay_breaks_lemma_4_even_in_strict_mode() {
    // A duplicated in-flight ack survives into the next epoch and flips the
    // trigger while the wrong thread is hungry. The duplicate carries the
    // *current* sequence number, so strict sequence checking cannot save the
    // subject — this models an epoch bug, not a stale-seq bug.
    for strict in [false, true] {
        let cfg = ExploreConfig {
            strict_seq: strict,
            ..mutated(SubjectMutation::None, ModelMutation::StaleAckReplay, 16)
        };
        let (serial, parallel) = lemma_hits(&cfg, "Lemma 4 violated");
        assert!(serial > 0, "serial search missed the stale-ack bug (strict={strict})");
        assert!(parallel > 0, "parallel search missed the stale-ack bug (strict={strict})");
    }
}

#[test]
fn seeded_bug_violations_carry_replayable_paths() {
    let cfg = mutated(SubjectMutation::IgnoreTriggerGuard, ModelMutation::None, 8);
    let report = explore(&cfg);
    assert!(!report.records.is_empty());
    for r in &report.records {
        assert_eq!(r.kind, ViolationKind::StateInvariant);
        assert!(!r.path.is_empty(), "a non-initial violation must carry a path: {r:?}");
    }
}

#[test]
fn drop_ping_send_is_safety_silent_but_starves_the_handoff() {
    // Negative control: losing the ping on the wire never produces a
    // lemma-violating *state* (the subject just wedges mid-session), so the
    // exhaustive search must stay clean...
    let cfg = mutated(SubjectMutation::None, ModelMutation::DropPingSend, 14);
    let report = explore(&cfg);
    assert!(report.clean(), "unexpected safety violations: {:#?}", report.violations);

    // ...while the fair-run harness sees the liveness failure: the witness
    // never hears a ping, so it suspects a perfectly correct subject
    // forever, and the subject's second thread never eats.
    let r =
        fair_run_mutated(400, 50, None, false, SubjectMutation::None, ModelMutation::DropPingSend);
    assert!(r.violations.is_empty(), "mutant should be safety-silent: {:?}", r.violations);
    assert!(r.final_suspects, "dropped pings must leave the witness suspecting");
    assert_eq!(r.subject_eats[1], 0, "the hand-off must starve without acks");
}

#[test]
fn skip_trigger_update_is_safety_silent_but_starves_the_handoff() {
    // Negative control: never moving the trigger freezes the hand-off in a
    // lemma-consistent state (s_0 may eat forever; s_1 never goes hungry).
    let cfg = mutated(SubjectMutation::SkipTriggerUpdate, ModelMutation::None, 14);
    let report = explore(&cfg);
    assert!(report.clean(), "unexpected safety violations: {:#?}", report.violations);

    let r = fair_run_mutated(
        400,
        50,
        None,
        false,
        SubjectMutation::SkipTriggerUpdate,
        ModelMutation::None,
    );
    assert!(r.violations.is_empty(), "mutant should be safety-silent: {:?}", r.violations);
    assert!(r.final_suspects, "a wedged hand-off must leave the witness suspecting");
    assert_eq!(r.subject_eats[1], 0, "s_1 must starve when the trigger never moves");
}

#[test]
fn clean_model_stays_violation_free_at_the_same_depths() {
    // The positive tests above are only meaningful if the same searches on
    // the unmutated model are quiet.
    for threads in [1, 4] {
        let report = explore(&ExploreConfig { max_depth: 16, threads, ..Default::default() });
        assert!(
            report.clean(),
            "clean model flagged ({threads} threads): {:#?}",
            report.violations
        );
    }
}

/// The crate-level counterpart of the wire mutations: the paper's Section-3
/// flawed contention-manager extraction, run end-to-end. A benign black box
/// hides the flaw; the delayed-convergence box exposes unbounded wrongful
/// suspicion. (The simulation-level "seeded bug" predates the mutation
/// knobs and lives in `dinefd-core`; asserting it here keeps the whole
/// bug-detection story in one suite.)
#[test]
fn flawed_cm_construction_flaps_on_delayed_convergence_box() {
    use dinefd_core::flawed_cm::run_flawed_pair;
    use dinefd_core::scenario::BlackBox;
    use dinefd_sim::{CrashPlan, ProcessId, Time};

    let benign = run_flawed_pair(
        BlackBox::Abstract { convergence: Time(1_500) },
        11,
        CrashPlan::none(),
        Time(30_000),
    );
    assert!(benign.eventual_strong_accuracy(&CrashPlan::none()).is_ok());

    let flawed = run_flawed_pair(
        BlackBox::Delayed { convergence: Time(1_500) },
        11,
        CrashPlan::none(),
        Time(30_000),
    );
    let mistakes = flawed.mistake_intervals(ProcessId(0), ProcessId(1));
    assert!(mistakes > 20, "expected unbounded flapping, saw {mistakes} mistake intervals");
}
