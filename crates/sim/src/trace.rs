//! Run traces: the raw material for every property checker and experiment.

use crate::id::ProcessId;
use crate::time::Time;

/// One recorded occurrence in a run.
#[derive(Clone, Debug)]
pub enum TraceEvent<M, O> {
    /// A message left `from` bound for `to`.
    Send {
        /// Instant of the send.
        at: Time,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payload.
        msg: M,
    },
    /// A message was delivered (the receiver's step consumed it).
    Deliver {
        /// Instant of the delivery.
        at: Time,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payload.
        msg: M,
    },
    /// A process crashed.
    Crash {
        /// Instant of the crash.
        at: Time,
        /// The crashed process.
        pid: ProcessId,
    },
    /// An application-level observation emitted via
    /// [`crate::node::Context::observe`].
    Obs {
        /// Instant of the observation.
        at: Time,
        /// The observing process.
        pid: ProcessId,
        /// The observation payload.
        obs: O,
    },
}

impl<M, O> TraceEvent<M, O> {
    /// The instant of the event.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Crash { at, .. }
            | TraceEvent::Obs { at, .. } => *at,
        }
    }
}

/// The full recorded history of one run, in chronological order.
#[derive(Clone, Debug)]
pub struct Trace<M, O> {
    events: Vec<TraceEvent<M, O>>,
    /// Whether `Send`/`Deliver` events were recorded (they can be voluminous;
    /// observation-only tracing is the default for long experiment sweeps).
    pub records_messages: bool,
}

impl<M, O> Trace<M, O> {
    /// Empty trace.
    pub fn new(records_messages: bool) -> Self {
        Trace { events: Vec::new(), records_messages }
    }

    pub(crate) fn push(&mut self, e: TraceEvent<M, O>) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at() <= e.at()),
            "trace must be chronological"
        );
        self.events.push(e);
    }

    /// All events, chronological.
    pub fn events(&self) -> &[TraceEvent<M, O>] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterator over `(time, pid, observation)` triples.
    pub fn observations(&self) -> impl Iterator<Item = (Time, ProcessId, &O)> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Obs { at, pid, obs } => Some((*at, *pid, obs)),
            _ => None,
        })
    }

    /// Crash instants recorded in this run.
    pub fn crashes(&self) -> impl Iterator<Item = (Time, ProcessId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Crash { at, pid } => Some((*at, *pid)),
            _ => None,
        })
    }

    /// Count of messages delivered (0 unless message recording is on).
    pub fn delivered_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Deliver { .. })).count()
    }

    /// Count of messages sent (0 unless message recording is on).
    pub fn sent_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Send { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type T = Trace<&'static str, u32>;

    #[test]
    fn push_and_filter() {
        let mut t: T = Trace::new(true);
        t.push(TraceEvent::Send { at: Time(1), from: ProcessId(0), to: ProcessId(1), msg: "m" });
        t.push(TraceEvent::Deliver { at: Time(3), from: ProcessId(0), to: ProcessId(1), msg: "m" });
        t.push(TraceEvent::Obs { at: Time(4), pid: ProcessId(1), obs: 42 });
        t.push(TraceEvent::Crash { at: Time(9), pid: ProcessId(0) });
        assert_eq!(t.len(), 4);
        assert_eq!(t.sent_count(), 1);
        assert_eq!(t.delivered_count(), 1);
        let obs: Vec<_> = t.observations().collect();
        assert_eq!(obs, vec![(Time(4), ProcessId(1), &42)]);
        let crashes: Vec<_> = t.crashes().collect();
        assert_eq!(crashes, vec![(Time(9), ProcessId(0))]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn non_chronological_push_is_rejected() {
        let mut t: T = Trace::new(false);
        t.push(TraceEvent::Crash { at: Time(5), pid: ProcessId(0) });
        t.push(TraceEvent::Crash { at: Time(4), pid: ProcessId(1) });
    }
}
