//! The unified scenario DSL — one description, three execution engines.
//!
//! Historically every engine grew its own adversary knobs: the simulator
//! took a [`DelayModel`] + [`CrashPlan`] pair, the explorer an
//! `ExploreConfig`, and ad-hoc test code wired seeds and mutation names by
//! hand. A [`Scenario`] folds all of them into one serializable, diffable
//! text document so a *single file* can drive
//!
//! * a simulator run ([`SimSection::delay_model`] / [`SimSection::crash_plan`]
//!   feed [`crate::world::World`]),
//! * the bounded explorer (`dinefd_explore::ExploreConfig::from_scenario`),
//! * the coverage-guided schedule fuzzer (`dinefd-fuzz`).
//!
//! The format is deliberately small: `#` comments, `[section]` headers, and
//! `key = value` lines. [`Scenario::parse`] validates everything it reads
//! and reports failures as [`ScenarioError`]s carrying the **1-based line
//! number**; [`Scenario::render`] writes the canonical form (every key,
//! fixed order), so `parse(render(s)) == s` holds exactly for every valid
//! scenario (property-tested in `crates/fuzz/tests/proptest_dsl.rs`).
//!
//! ```
//! use dinefd_sim::scenario_dsl::Scenario;
//!
//! let s = Scenario::default();
//! let text = s.render();
//! assert_eq!(Scenario::parse(&text).unwrap(), s);
//! assert!(Scenario::parse("[model]\nmax_depth = zero\n").is_err());
//! ```

use std::fmt;

use crate::fault::CrashPlan;
use crate::id::ProcessId;
use crate::net::DelayModel;
use crate::time::Time;

/// A parse/validation failure, anchored to its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// What went wrong there.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScenarioError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError { line, message: message.into() })
}

/// Seeded subject-machine bugs, named exactly as the `dinefd` CLI names
/// them. The DSL layer cannot reference `dinefd_core::machines` (the
/// dependency points the other way), so engines map these onto their own
/// mutation enums.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SubjectMutationSpec {
    /// The faithful subject.
    #[default]
    None,
    /// Forget to disable `ping_i` after sending (breaks Lemma 3).
    SkipPingDisable,
    /// Go hungry out of turn (breaks Lemma 4).
    IgnoreTriggerGuard,
    /// Never advance the trigger (safety-silent; starves the hand-off).
    SkipTriggerUpdate,
}

impl SubjectMutationSpec {
    /// The CLI/DSL spelling.
    pub fn name(self) -> &'static str {
        match self {
            SubjectMutationSpec::None => "none",
            SubjectMutationSpec::SkipPingDisable => "skip-ping-disable",
            SubjectMutationSpec::IgnoreTriggerGuard => "ignore-trigger-guard",
            SubjectMutationSpec::SkipTriggerUpdate => "skip-trigger-update",
        }
    }

    fn from_name(name: &str, line: usize) -> Result<Self, ScenarioError> {
        match name {
            "none" => Ok(SubjectMutationSpec::None),
            "skip-ping-disable" => Ok(SubjectMutationSpec::SkipPingDisable),
            "ignore-trigger-guard" => Ok(SubjectMutationSpec::IgnoreTriggerGuard),
            "skip-trigger-update" => Ok(SubjectMutationSpec::SkipTriggerUpdate),
            other => err(line, format!("unknown subject mutation `{other}`")),
        }
    }
}

/// Seeded wire-level bugs (see `dinefd_explore::ModelMutation`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ModelMutationSpec {
    /// The faithful wire.
    #[default]
    None,
    /// Silently lose sent pings (safety-silent; starves the hand-off).
    DropPingSend,
    /// Duplicate an in-flight ack (breaks Lemmas 3/4).
    StaleAckReplay,
}

impl ModelMutationSpec {
    /// The CLI/DSL spelling.
    pub fn name(self) -> &'static str {
        match self {
            ModelMutationSpec::None => "none",
            ModelMutationSpec::DropPingSend => "drop-ping-send",
            ModelMutationSpec::StaleAckReplay => "stale-ack-replay",
        }
    }

    fn from_name(name: &str, line: usize) -> Result<Self, ScenarioError> {
        match name {
            "none" => Ok(ModelMutationSpec::None),
            "drop-ping-send" => Ok(ModelMutationSpec::DropPingSend),
            "stale-ack-replay" => Ok(ModelMutationSpec::StaleAckReplay),
            other => err(line, format!("unknown model mutation `{other}`")),
        }
    }
}

/// A serializable [`DelayModel`] description (everything except fully
/// scripted adversaries, which are code, not data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelaySpec {
    /// `fixed D` — every message takes exactly `D` ticks.
    Fixed(u64),
    /// `uniform LO HI` — uniform over the inclusive range.
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay.
        hi: u64,
    },
    /// `heavy_tail LO HI NUM/DEN SPIKE_HI` — mostly uniform with spikes.
    HeavyTail {
        /// Common-case minimum.
        lo: u64,
        /// Common-case maximum.
        hi: u64,
        /// Spike probability numerator.
        spike_num: u64,
        /// Spike probability denominator.
        spike_den: u64,
        /// Spiked maximum.
        spike_hi: u64,
    },
    /// `partial_sync GST BOUND` — harsh until GST, bounded after. This is
    /// where a scenario places the global stabilization time.
    PartialSync {
        /// The global stabilization time, in ticks.
        gst: u64,
        /// Post-GST delay bound.
        bound: u64,
    },
    /// `fifo <inner…>` — per-channel FIFO discipline over any inner spec.
    Fifo(Box<DelaySpec>),
}

impl DelaySpec {
    /// Renders the canonical token form (`uniform 1 16`, `fifo fixed 3`…).
    pub fn render(&self) -> String {
        match self {
            DelaySpec::Fixed(d) => format!("fixed {d}"),
            DelaySpec::Uniform { lo, hi } => format!("uniform {lo} {hi}"),
            DelaySpec::HeavyTail { lo, hi, spike_num, spike_den, spike_hi } => {
                format!("heavy_tail {lo} {hi} {spike_num}/{spike_den} {spike_hi}")
            }
            DelaySpec::PartialSync { gst, bound } => format!("partial_sync {gst} {bound}"),
            DelaySpec::Fifo(inner) => format!("fifo {}", inner.render()),
        }
    }

    fn parse_tokens(tokens: &[&str], line: usize) -> Result<Self, ScenarioError> {
        let int = |tok: &str, what: &str| -> Result<u64, ScenarioError> {
            tok.parse::<u64>().map_err(|_| ScenarioError {
                line,
                message: format!("{what}: expected an integer, got `{tok}`"),
            })
        };
        let expect_arity = |n: usize, shape: &str| -> Result<(), ScenarioError> {
            if tokens.len() == n + 1 {
                Ok(())
            } else {
                err(line, format!("`{}` takes the form `{shape}`", tokens[0]))
            }
        };
        match tokens.first().copied() {
            Some("fixed") => {
                expect_arity(1, "fixed D")?;
                Ok(DelaySpec::Fixed(int(tokens[1], "fixed delay")?))
            }
            Some("uniform") => {
                expect_arity(2, "uniform LO HI")?;
                let (lo, hi) = (int(tokens[1], "lo")?, int(tokens[2], "hi")?);
                if lo > hi {
                    return err(line, format!("uniform range is empty: lo {lo} > hi {hi}"));
                }
                Ok(DelaySpec::Uniform { lo, hi })
            }
            Some("heavy_tail") => {
                expect_arity(4, "heavy_tail LO HI NUM/DEN SPIKE_HI")?;
                let (lo, hi) = (int(tokens[1], "lo")?, int(tokens[2], "hi")?);
                let Some((num, den)) = tokens[3].split_once('/') else {
                    return err(line, format!("spike probability `{}` is not NUM/DEN", tokens[3]));
                };
                let (spike_num, spike_den) =
                    (int(num, "spike numerator")?, int(den, "spike denominator")?);
                let spike_hi = int(tokens[4], "spike_hi")?;
                if lo > hi {
                    return err(line, format!("heavy_tail range is empty: lo {lo} > hi {hi}"));
                }
                if spike_den == 0 || spike_num > spike_den {
                    return err(
                        line,
                        format!("spike probability {spike_num}/{spike_den} is not in [0, 1]"),
                    );
                }
                if spike_hi < hi {
                    return err(line, format!("spike_hi {spike_hi} below common-case hi {hi}"));
                }
                Ok(DelaySpec::HeavyTail { lo, hi, spike_num, spike_den, spike_hi })
            }
            Some("partial_sync") => {
                expect_arity(2, "partial_sync GST BOUND")?;
                let (gst, bound) = (int(tokens[1], "gst")?, int(tokens[2], "bound")?);
                if bound == 0 {
                    return err(line, "partial_sync bound must be at least 1");
                }
                Ok(DelaySpec::PartialSync { gst, bound })
            }
            Some("fifo") => {
                if tokens.len() < 2 {
                    return err(line, "`fifo` wraps an inner delay spec: `fifo uniform 1 16`");
                }
                if tokens[1] == "fifo" {
                    return err(line, "`fifo fifo …` is redundant; wrap once");
                }
                Ok(DelaySpec::Fifo(Box::new(DelaySpec::parse_tokens(&tokens[1..], line)?)))
            }
            Some(other) => err(line, format!("unknown delay model `{other}`")),
            None => err(line, "empty delay spec"),
        }
    }

    /// Materializes the [`DelayModel`] this spec describes. `PartialSync`
    /// uses [`DelayModel::harsh`] as its pre-GST regime (the canonical
    /// worst case; a scenario that needs a different prefix can nest specs).
    pub fn build(&self) -> DelayModel {
        match self {
            DelaySpec::Fixed(d) => DelayModel::Fixed(*d),
            DelaySpec::Uniform { lo, hi } => DelayModel::Uniform { lo: *lo, hi: *hi },
            DelaySpec::HeavyTail { lo, hi, spike_num, spike_den, spike_hi } => {
                DelayModel::HeavyTail {
                    lo: *lo,
                    hi: *hi,
                    spike_num: *spike_num,
                    spike_den: *spike_den,
                    spike_hi: *spike_hi,
                }
            }
            DelaySpec::PartialSync { gst, bound } => {
                DelayModel::partially_synchronous(Time(*gst), *bound)
            }
            DelaySpec::Fifo(inner) => DelayModel::fifo(inner.build()),
        }
    }
}

/// `[model]` — the closed pair model the explorer and the fuzzer share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSection {
    /// Explorer interleaving depth bound.
    pub max_depth: u32,
    /// Explorer state budget.
    pub max_states: u64,
    /// Harden the subject with sequence-checked acks.
    pub strict_seq: bool,
    /// Allow the subject process to crash.
    pub allow_crash: bool,
    /// Start inside ◇WX's exclusive suffix.
    pub start_converged: bool,
    /// Seeded subject-machine bug.
    pub subject_mutation: SubjectMutationSpec,
    /// Seeded wire bug.
    pub model_mutation: ModelMutationSpec,
}

impl Default for ModelSection {
    fn default() -> Self {
        ModelSection {
            max_depth: 14,
            max_states: 2_000_000,
            strict_seq: false,
            allow_crash: true,
            start_converged: false,
            subject_mutation: SubjectMutationSpec::None,
            model_mutation: ModelMutationSpec::None,
        }
    }
}

/// `[sim]` — the discrete-event simulator's environment knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimSection {
    /// System size.
    pub n: u32,
    /// Root seed.
    pub seed: u64,
    /// Run length in ticks.
    pub horizon: u64,
    /// Channel delay behaviour (GST placement lives here).
    pub delay: DelaySpec,
    /// Crash schedule: `(process, tick)` pairs, one `crash =` line each.
    pub crashes: Vec<(u32, u64)>,
    /// Worker threads for sharded runs (`1` = sequential; results are
    /// byte-identical for every value thanks to the barrier merge).
    pub threads: u32,
}

impl Default for SimSection {
    fn default() -> Self {
        SimSection {
            n: 4,
            seed: 42,
            horizon: 20_000,
            delay: DelaySpec::Uniform { lo: 1, hi: 16 },
            crashes: Vec::new(),
            threads: 1,
        }
    }
}

impl SimSection {
    /// The [`DelayModel`] this section describes (fresh internal state).
    pub fn delay_model(&self) -> DelayModel {
        self.delay.build()
    }

    /// The [`CrashPlan`] this section describes.
    pub fn crash_plan(&self) -> CrashPlan {
        let mut plan = CrashPlan::none();
        for &(pid, at) in &self.crashes {
            plan.add(ProcessId(pid), Time(at));
        }
        plan
    }
}

/// `[fuzz]` — budgets for the coverage-guided schedule fuzzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzSection {
    /// Fuzzer seed (independent of the sim seed: the two engines draw from
    /// different streams by construction).
    pub seed: u64,
    /// Mutation iterations to run.
    pub iterations: u64,
    /// Schedule length cap = longest concrete walk per execution.
    pub max_steps: u32,
    /// Random schedules seeding the initial corpus.
    pub corpus_seeds: u32,
}

impl Default for FuzzSection {
    fn default() -> Self {
        FuzzSection { seed: 1, iterations: 2_000, max_steps: 40, corpus_seeds: 16 }
    }
}

/// One complete scenario: the unified adversary description.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scenario {
    /// Pair-model knobs (explorer + fuzzer).
    pub model: ModelSection,
    /// Simulator environment.
    pub sim: SimSection,
    /// Fuzzer budgets.
    pub fuzz: FuzzSection,
}

impl Scenario {
    /// Parses the DSL text. Sections and keys may appear in any order and
    /// may be omitted (defaults apply); unknown sections, unknown keys,
    /// malformed values, and inconsistent combinations are rejected with
    /// the offending line number.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Section {
            Preamble,
            Model,
            Sim,
            Fuzz,
        }
        let mut sc = Scenario::default();
        sc.sim.crashes.clear();
        let mut section = Section::Preamble;
        let mut crash_lines: Vec<usize> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            if let Some(name) = content.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return err(line, format!("unterminated section header `{content}`"));
                };
                section = match name.trim() {
                    "model" => Section::Model,
                    "sim" => Section::Sim,
                    "fuzz" => Section::Fuzz,
                    other => return err(line, format!("unknown section `[{other}]`")),
                };
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return err(line, format!("expected `key = value`, got `{content}`"));
            };
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return err(line, format!("`{key}` has no value"));
            }
            let int = |what: &str| -> Result<u64, ScenarioError> {
                value.parse::<u64>().map_err(|_| ScenarioError {
                    line,
                    message: format!("{what}: expected an integer, got `{value}`"),
                })
            };
            let boolean = |what: &str| -> Result<bool, ScenarioError> {
                match value {
                    "true" => Ok(true),
                    "false" => Ok(false),
                    other => err(line, format!("{what}: expected true/false, got `{other}`")),
                }
            };
            match (section, key) {
                (Section::Preamble, _) => {
                    return err(line, format!("`{key}` appears before any [section] header"));
                }
                (Section::Model, "max_depth") => {
                    sc.model.max_depth =
                        u32::try_from(int("max_depth")?).map_err(|_| ScenarioError {
                            line,
                            message: format!("max_depth {value} does not fit in 32 bits"),
                        })?;
                    if sc.model.max_depth == 0 {
                        return err(line, "max_depth must be at least 1");
                    }
                }
                (Section::Model, "max_states") => {
                    sc.model.max_states = int("max_states")?;
                    if sc.model.max_states == 0 {
                        return err(line, "max_states must be at least 1");
                    }
                }
                (Section::Model, "strict_seq") => sc.model.strict_seq = boolean("strict_seq")?,
                (Section::Model, "allow_crash") => sc.model.allow_crash = boolean("allow_crash")?,
                (Section::Model, "start_converged") => {
                    sc.model.start_converged = boolean("start_converged")?;
                }
                (Section::Model, "subject_mutation") => {
                    sc.model.subject_mutation = SubjectMutationSpec::from_name(value, line)?;
                }
                (Section::Model, "model_mutation") => {
                    sc.model.model_mutation = ModelMutationSpec::from_name(value, line)?;
                }
                (Section::Sim, "n") => {
                    sc.sim.n = u32::try_from(int("n")?).map_err(|_| ScenarioError {
                        line,
                        message: format!("n {value} does not fit in 32 bits"),
                    })?;
                    if sc.sim.n < 2 {
                        return err(line, "n must be at least 2 (a witness and a subject)");
                    }
                }
                (Section::Sim, "seed") => sc.sim.seed = int("seed")?,
                (Section::Sim, "horizon") => {
                    sc.sim.horizon = int("horizon")?;
                    if sc.sim.horizon == 0 {
                        return err(line, "horizon must be at least 1 tick");
                    }
                }
                (Section::Sim, "delay") => {
                    let tokens: Vec<&str> = value.split_whitespace().collect();
                    sc.sim.delay = DelaySpec::parse_tokens(&tokens, line)?;
                }
                (Section::Sim, "crash") => {
                    let Some((pid, at)) = value.split_once('@') else {
                        return err(line, format!("crash `{value}` is not PID@TICK"));
                    };
                    let pid = pid.trim().parse::<u32>().map_err(|_| ScenarioError {
                        line,
                        message: format!("crash pid: expected an integer, got `{pid}`"),
                    })?;
                    let at = at.trim().parse::<u64>().map_err(|_| ScenarioError {
                        line,
                        message: format!("crash tick: expected an integer, got `{at}`"),
                    })?;
                    if sc.sim.crashes.iter().any(|&(p, _)| p == pid) {
                        return err(line, format!("process {pid} already has a crash scheduled"));
                    }
                    sc.sim.crashes.push((pid, at));
                    crash_lines.push(line);
                }
                (Section::Fuzz, "seed") => sc.fuzz.seed = int("seed")?,
                (Section::Fuzz, "iterations") => {
                    sc.fuzz.iterations = int("iterations")?;
                    if sc.fuzz.iterations == 0 {
                        return err(line, "iterations must be at least 1");
                    }
                }
                (Section::Fuzz, "max_steps") => {
                    sc.fuzz.max_steps =
                        u32::try_from(int("max_steps")?).map_err(|_| ScenarioError {
                            line,
                            message: format!("max_steps {value} does not fit in 32 bits"),
                        })?;
                    if sc.fuzz.max_steps == 0 {
                        return err(line, "max_steps must be at least 1");
                    }
                }
                (Section::Fuzz, "corpus_seeds") => {
                    sc.fuzz.corpus_seeds =
                        u32::try_from(int("corpus_seeds")?).map_err(|_| ScenarioError {
                            line,
                            message: format!("corpus_seeds {value} does not fit in 32 bits"),
                        })?;
                }
                (Section::Model, other) => {
                    return err(line, format!("unknown [model] key `{other}`"));
                }
                (Section::Sim, "threads") => {
                    sc.sim.threads = u32::try_from(int("threads")?).map_err(|_| ScenarioError {
                        line,
                        message: format!("threads {value} does not fit in 32 bits"),
                    })?;
                    if sc.sim.threads == 0 {
                        return err(line, "threads must be at least 1");
                    }
                }
                (Section::Sim, other) => return err(line, format!("unknown [sim] key `{other}`")),
                (Section::Fuzz, other) => {
                    return err(line, format!("unknown [fuzz] key `{other}`"));
                }
            }
        }
        // Cross-field validation: crashes must name real processes.
        for (i, &(pid, _)) in sc.sim.crashes.iter().enumerate() {
            if pid >= sc.sim.n {
                return err(
                    crash_lines[i],
                    format!("crash names process {pid}, but n = {}", sc.sim.n),
                );
            }
        }
        Ok(sc)
    }

    /// Renders the canonical text form: every key, fixed order, so that
    /// `parse(render(s)) == s` and equal scenarios render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("# dinefd scenario (see crates/sim/src/scenario_dsl.rs)\n");
        out.push_str("[model]\n");
        out.push_str(&format!("max_depth = {}\n", self.model.max_depth));
        out.push_str(&format!("max_states = {}\n", self.model.max_states));
        out.push_str(&format!("strict_seq = {}\n", self.model.strict_seq));
        out.push_str(&format!("allow_crash = {}\n", self.model.allow_crash));
        out.push_str(&format!("start_converged = {}\n", self.model.start_converged));
        out.push_str(&format!("subject_mutation = {}\n", self.model.subject_mutation.name()));
        out.push_str(&format!("model_mutation = {}\n", self.model.model_mutation.name()));
        out.push_str("\n[sim]\n");
        out.push_str(&format!("n = {}\n", self.sim.n));
        out.push_str(&format!("seed = {}\n", self.sim.seed));
        out.push_str(&format!("horizon = {}\n", self.sim.horizon));
        out.push_str(&format!("threads = {}\n", self.sim.threads));
        out.push_str(&format!("delay = {}\n", self.sim.delay.render()));
        for &(pid, at) in &self.sim.crashes {
            out.push_str(&format!("crash = {pid}@{at}\n"));
        }
        out.push_str("\n[fuzz]\n");
        out.push_str(&format!("seed = {}\n", self.fuzz.seed));
        out.push_str(&format!("iterations = {}\n", self.fuzz.iterations));
        out.push_str(&format!("max_steps = {}\n", self.fuzz.max_steps));
        out.push_str(&format!("corpus_seeds = {}\n", self.fuzz.corpus_seeds));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let s = Scenario::default();
        let text = s.render();
        assert_eq!(Scenario::parse(&text).expect("canonical form parses"), s);
    }

    #[test]
    fn kitchen_sink_round_trips() {
        let s = Scenario {
            model: ModelSection {
                max_depth: 22,
                max_states: 77,
                strict_seq: true,
                allow_crash: false,
                start_converged: true,
                subject_mutation: SubjectMutationSpec::SkipPingDisable,
                model_mutation: ModelMutationSpec::StaleAckReplay,
            },
            sim: SimSection {
                n: 6,
                seed: 9,
                horizon: 1_234,
                delay: DelaySpec::Fifo(Box::new(DelaySpec::HeavyTail {
                    lo: 1,
                    hi: 8,
                    spike_num: 1,
                    spike_den: 10,
                    spike_hi: 200,
                })),
                crashes: vec![(5, 600), (0, 100)],
                threads: 4,
            },
            fuzz: FuzzSection { seed: 3, iterations: 10, max_steps: 7, corpus_seeds: 0 },
        };
        assert_eq!(Scenario::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn comments_blank_lines_and_reordering_parse() {
        let text = "\n# leading comment\n[fuzz]\nseed = 5\n\n[model]\n\
                    max_depth = 9 # trailing comment\n[sim]\ndelay = fixed 3\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.fuzz.seed, 5);
        assert_eq!(s.model.max_depth, 9);
        assert_eq!(s.sim.delay, DelaySpec::Fixed(3));
        // Unset keys keep their defaults.
        assert_eq!(s.model.max_states, ModelSection::default().max_states);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("[model]\nmax_depth = zero\n", 2, "expected an integer"),
            ("[model]\nstrict_seq = yes\n", 2, "true/false"),
            ("[nope]\n", 1, "unknown section"),
            ("[model]\nwat = 1\n", 2, "unknown [model] key"),
            ("max_depth = 1\n", 1, "before any [section]"),
            ("[sim]\ndelay = warp 9\n", 2, "unknown delay model"),
            ("[sim]\ndelay = uniform 9 3\n", 2, "range is empty"),
            ("[sim]\ndelay = heavy_tail 1 4 2 100\n", 2, "not NUM/DEN"),
            ("[sim]\ndelay = partial_sync 100 0\n", 2, "at least 1"),
            ("[sim]\ndelay = fifo\n", 2, "wraps an inner"),
            ("[sim]\ndelay = fifo fifo fixed 1\n", 2, "redundant"),
            ("[sim]\ncrash = 1-200\n", 2, "not PID@TICK"),
            ("[sim]\ncrash = 1@5\ncrash = 1@9\n", 3, "already has a crash"),
            ("[sim]\nn = 4\n\ncrash = 7@5\n", 4, "but n = 4"),
            ("[sim]\nn = 1\n", 2, "at least 2"),
            ("[model]\nmax_depth =\n", 2, "no value"),
            ("[model\n", 1, "unterminated section"),
            ("[fuzz]\niterations = 0\n", 2, "at least 1"),
        ];
        for (text, want_line, want_msg) in cases {
            let e = Scenario::parse(text).expect_err(text);
            assert_eq!(e.line, *want_line, "wrong line for {text:?}: {e}");
            assert!(e.message.contains(want_msg), "missing `{want_msg}` in `{e}` for {text:?}");
        }
    }

    #[test]
    fn sim_section_builds_world_inputs() {
        let s = Scenario::parse(
            "[sim]\nn = 3\ndelay = partial_sync 500 4\ncrash = 2@900\ncrash = 0@100\n",
        )
        .unwrap();
        let plan = s.sim.crash_plan();
        assert_eq!(plan.crash_time(ProcessId(2)), Some(Time(900)));
        assert_eq!(plan.crash_time(ProcessId(0)), Some(Time(100)));
        assert_eq!(plan.correct(3), vec![ProcessId(1)]);
        let model = s.sim.delay_model();
        assert_eq!(model.kind(), "partial_sync");
        assert_eq!(model.post_gst_bound(Time(500)), Some(4));
        assert_eq!(s.sim.delay_model().kind(), "partial_sync", "builder is reusable");
    }

    #[test]
    fn mutation_names_match_the_cli_spellings() {
        for m in [
            SubjectMutationSpec::None,
            SubjectMutationSpec::SkipPingDisable,
            SubjectMutationSpec::IgnoreTriggerGuard,
            SubjectMutationSpec::SkipTriggerUpdate,
        ] {
            assert_eq!(SubjectMutationSpec::from_name(m.name(), 1), Ok(m));
        }
        for m in [
            ModelMutationSpec::None,
            ModelMutationSpec::DropPingSend,
            ModelMutationSpec::StaleAckReplay,
        ] {
            assert_eq!(ModelMutationSpec::from_name(m.name(), 1), Ok(m));
        }
    }
}
