//! Sharded worlds: pair partitions with a deterministic cross-shard merge,
//! runnable sequentially or on a pool of shard-worker threads.
//!
//! A [`ShardedWorld`] runs the same discrete-event semantics as
//! [`crate::world::World`] over `k` shards, each owning the processes with
//! `pid.index() % k == shard` and a private [`TimerWheel`] of their pending
//! events. Shards exchange only cross-shard messages; everything else
//! (timers, same-shard sends) stays local. The extraction host partitions
//! pairs by the `witness_by_subject` index key — the witness pid — so
//! `pid % k` is exactly a pair partition there.
//!
//! ## The cross-shard `seq` merge rule
//!
//! A single `World` tie-breaks same-instant events by its global scheduling
//! counter `seq` — meaningless across shards, where each queue counts
//! alone. Instead every event carries a **canonical key**
//! `(time, class, source pid, source seq)`:
//!
//! * `class 0` — crash-plan events; `source seq` is the plan index;
//! * `class 1` — node effects (sends, envelopes, timers); `source seq` is a
//!   per-source-pid monotone effect counter.
//!
//! Keys are unique (per-source counters never repeat), so ordering by key
//! is a total order — and because it never mentions shards, the schedule is
//! **independent of the shard count**: the same seed produces a
//! byte-identical trace and metric set for any `k`. The per-instant barrier
//! is sound because every delay and timer is at least one tick
//! ([`crate::net::DelayModel::sample`] and
//! [`crate::node::Context::set_timer`] both clamp), so executing an instant
//! can only create strictly-later events.
//!
//! Shard-count independence also requires the *randomness* to be
//! per-process rather than global: each process gets its own delay-model
//! clone ([`crate::net::DelayModel::try_clone`]) and its own forked
//! delay-RNG, so the draws a sender makes never depend on how senders are
//! interleaved across shards.
//!
//! ## One engine, two drivers
//!
//! Every event's *state effects* are confined to the shard that executes it
//! (a delivery steps the destination, a timer or crash its owner, and all
//! of a step's metrics, RNG draws, and effect counters belong to that same
//! pid), so a shard can execute its slice of an instant **locally, in local
//! key order**, without observing any other shard. The only globally
//! ordered artifacts — trace events and streamed observations — are not
//! emitted inline but appended to a per-shard **emission log** tagged with
//! the executing event's canonical key. After every instant the coordinator
//! concatenates the shard logs (in shard order), stably sorts by key, and
//! replays: because keys are unique per event and one event's emissions are
//! contiguous in a single shard's log, the replay reproduces exactly the
//! order a single global key-sorted execution would have produced.
//!
//! Both the sequential [`ShardedWorld::step_instant`] and the parallel
//! runner drive this *same* engine, so parallel determinism is structural
//! rather than a discipline over duplicated code.
//!
//! ## The instant-barrier protocol
//!
//! With [`crate::world::WorldConfig::threads`] ≥ 2 (and ≥ 2 shards),
//! [`ShardedWorld::run_until`] moves the shard states onto a pool of
//! scoped worker threads ([`crate::pool`]); worker `w` owns shards
//! `s % workers == w`. Per simulated instant the coordinator:
//!
//! 1. computes the global minimum pending time over every shard's reported
//!    wheel minimum *and* the not-yet-delivered cross-shard inbox entries;
//! 2. sends each worker a step message carrying that instant plus all
//!    pending inbox entries for its shards (whatever their delivery time —
//!    the worker folds them into its wheels);
//! 3. workers execute due shards concurrently — cross-shard effects go to
//!    per-destination outboxes, emissions to the per-shard log — and reply
//!    with logs, outboxes, and new queue minima;
//! 4. the coordinator routes outboxes into inboxes, merges and replays the
//!    logs exactly as in the sequential path, and updates the depth gauges.
//!
//! Dropping the step channels shuts the workers down; each returns its
//! shard states (reinstalled in the world) and a [`WorkerStats`] of
//! busy/barrier-wait wall-clock. Those stats are *deliberately not* part of
//! [`ShardedWorld::metrics_map`], which stays byte-identical across thread
//! counts; read them via [`ShardedWorld::worker_stats`].
//!
//! ## Queue-depth accounting
//!
//! Per-shard `queue_depth` gauges meter each shard's own backlog, but the
//! *sum of their high-water marks* is not shard-count invariant (the peaks
//! need not coincide in time). The coordinator therefore also tracks a
//! global gauge of the instantaneous total backlog across shards, updated
//! every instant; its high water is what [`ShardedWorld::metrics_map`]
//! exports as `queue_depth_high_water`, and it is byte-identical across
//! shard counts. It never exceeds the summed per-shard marks — a pinned
//! test invariant. In parallel runs the coordinator maintains shadow
//! gauges (a shard's depth is its wheel length plus its undelivered inbox
//! entries — exactly its sequential wheel length) and writes them back on
//! shutdown.

use std::sync::mpsc;
use std::sync::Arc;

use crate::clock::{Clock, MonotonicClock};
use crate::event::EventKind;
use crate::id::ProcessId;
use crate::metrics::{Gauge, MetricMap, SimMetrics, WorkerStats};
use crate::net::DelayModel;
use crate::node::{Context, Node, TimerId};
use crate::pool;
use crate::rng::SplitMix64;
use crate::time::Time;
use crate::trace::{Trace, TraceEvent};
use crate::wheel::TimerWheel;
use crate::world::{ObsSink, WorldConfig};

/// Crash-plan events sort before node effects at the same instant.
const CLASS_CRASH: u8 = 0;
/// Node effects (sends, envelopes, timers).
const CLASS_EFFECT: u8 = 1;

/// The canonical merge key minus the time (which the wheels key).
type MergeKey = (u8, u32, u64);

/// One pending event with its canonical merge key (minus the time).
type Pending<M> = (u8, u32, u64, EventKind<M>);

/// A globally ordered emission produced while executing one event: a trace
/// record, or an observation bound for the coordinator-side sink.
#[derive(Debug)]
enum Emit<M, O> {
    Trace(TraceEvent<M, O>),
    Obs(ProcessId, O),
}

/// One emission-log entry: the executing event's key plus the emission.
type LogEntry<M, O> = (MergeKey, Emit<M, O>);

/// A cross-shard effect: destination shard, delivery instant, event.
type OutboxEntry<M> = (usize, Time, Pending<M>);

/// Cross-shard effects the coordinator holds for one destination shard.
type Inbox<M> = Vec<(Time, Pending<M>)>;

/// Why a [`ShardedWorld`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBuildError {
    /// `shards == 0` was requested.
    NoShards,
    /// The configured delay model has no per-process clone
    /// ([`DelayModel::try_clone`] returned `None` — it is
    /// [`DelayModel::Scripted`]).
    UncloneableDelayModel,
}

impl std::fmt::Display for ShardBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardBuildError::NoShards => f.write_str("a sharded world needs at least one shard"),
            ShardBuildError::UncloneableDelayModel => f.write_str(
                "sharded worlds need a cloneable delay model (Scripted is not; \
                 use a World or a deterministic model instead)",
            ),
        }
    }
}

impl std::error::Error for ShardBuildError {}

/// One shard's complete execution state: its slice of the processes (local
/// index `pid.index() / k`), their RNGs, delay models, and effect
/// counters, the shard's event wheel, metrics, optional streaming sink,
/// and scratch buffers. This is the unit a worker thread owns.
struct ShardState<N: Node> {
    idx: usize,
    k: usize,
    n_total: usize,
    now: Time,
    nodes: Vec<N>,
    crashed: Vec<bool>,
    node_rngs: Vec<SplitMix64>,
    send_rngs: Vec<SplitMix64>,
    send_delays: Vec<DelayModel>,
    /// Per-process monotone effect counters (the canonical-key `seq`).
    effect_seq: Vec<u64>,
    queue: TimerWheel<Pending<N::Msg>>,
    metrics: SimMetrics,
    /// Per-shard streaming sink; sees this shard's observations in local
    /// execution order (the sequential stream's projection onto the shard).
    sink: Option<Box<dyn ObsSink<N::Obs> + Send>>,
    record_messages: bool,
    /// Whether observations must be logged for coordinator replay (trace
    /// recording or a global sink is active).
    log_obs: bool,
    batch_envelopes: bool,
    /// Canonical key of the event currently executing; tags log entries.
    cur_key: MergeKey,
    // Reusable buffers, as in `World`.
    sends_buf: Vec<(ProcessId, N::Msg)>,
    timers_buf: Vec<(u64, TimerId)>,
    obs_buf: Vec<N::Obs>,
    envelope_pool: Vec<Vec<N::Msg>>,
    groups_buf: Vec<(ProcessId, Vec<N::Msg>)>,
    batch_buf: Vec<Pending<N::Msg>>,
}

impl<N: Node> ShardState<N> {
    /// Local index of an owned pid.
    #[inline]
    fn local(&self, pid: ProcessId) -> usize {
        debug_assert_eq!(
            pid.index() % self.k,
            self.idx,
            "{pid} does not live on shard {}",
            self.idx
        );
        pid.index() / self.k
    }

    /// Executes every owned event due at instant `t`, in canonical-key
    /// order, appending emissions to `log` and cross-shard effects to
    /// `outbox`. The caller guarantees `t` is this shard's wheel minimum.
    fn run_instant(
        &mut self,
        t: Time,
        log: &mut Vec<LogEntry<N::Msg, N::Obs>>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        self.now = t;
        let mut batch = std::mem::take(&mut self.batch_buf);
        debug_assert!(batch.is_empty());
        while self.queue.peek_time() == Some(t) {
            batch.push(self.queue.pop().expect("peeked event exists").1);
        }
        // Local slice of the deterministic merge: keys are unique, so
        // shard-by-shard key order composes to the global key order.
        batch.sort_by_key(|a| (a.0, a.1, a.2));
        for (class, source, seq, kind) in batch.drain(..) {
            self.cur_key = (class, source, seq);
            self.execute(kind, log, outbox);
        }
        self.batch_buf = batch;
    }

    fn execute(
        &mut self,
        kind: EventKind<N::Msg>,
        log: &mut Vec<LogEntry<N::Msg, N::Obs>>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        match kind {
            EventKind::Crash { pid } => {
                let l = self.local(pid);
                if !self.crashed[l] {
                    self.crashed[l] = true;
                    self.metrics.crash_events.inc();
                    log.push((self.cur_key, Emit::Trace(TraceEvent::Crash { at: self.now, pid })));
                }
            }
            EventKind::Timer { pid, id } => {
                if !self.crashed[self.local(pid)] {
                    self.metrics.timer_fires.inc();
                    self.dispatch_timer(pid, id, log, outbox);
                }
            }
            EventKind::Deliver { from, to, msg } => {
                if !self.crashed[self.local(to)] {
                    self.metrics.messages_delivered.inc();
                    if self.record_messages {
                        let at = self.now;
                        log.push((
                            self.cur_key,
                            Emit::Trace(TraceEvent::Deliver { at, from, to, msg: msg.clone() }),
                        ));
                    }
                    self.dispatch_message(to, from, msg, log, outbox);
                } else {
                    self.metrics.messages_dropped.inc();
                }
            }
            EventKind::Envelope { from, to, mut msgs } => {
                if !self.crashed[self.local(to)] {
                    for msg in msgs.drain(..) {
                        self.metrics.messages_delivered.inc();
                        if self.record_messages {
                            let at = self.now;
                            log.push((
                                self.cur_key,
                                Emit::Trace(TraceEvent::Deliver { at, from, to, msg: msg.clone() }),
                            ));
                        }
                        self.dispatch_message(to, from, msg, log, outbox);
                    }
                } else {
                    self.metrics.messages_dropped.add(msgs.len() as u64);
                    msgs.clear();
                }
                self.envelope_pool.push(msgs);
            }
        }
    }

    fn dispatch_start(
        &mut self,
        pid: ProcessId,
        log: &mut Vec<LogEntry<N::Msg, N::Obs>>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        let l = self.local(pid);
        let (sends, timers, obs) = {
            let mut ctx = Context::new(
                pid,
                self.now,
                &mut self.sends_buf,
                &mut self.timers_buf,
                &mut self.obs_buf,
                &mut self.node_rngs[l],
            );
            self.nodes[l].on_start(&mut ctx);
            (
                std::mem::take(&mut self.sends_buf),
                std::mem::take(&mut self.timers_buf),
                std::mem::take(&mut self.obs_buf),
            )
        };
        self.route_effects(pid, sends, timers, obs, log, outbox);
    }

    fn dispatch_message(
        &mut self,
        pid: ProcessId,
        from: ProcessId,
        msg: N::Msg,
        log: &mut Vec<LogEntry<N::Msg, N::Obs>>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        let l = self.local(pid);
        let (sends, timers, obs) = {
            let mut ctx = Context::new(
                pid,
                self.now,
                &mut self.sends_buf,
                &mut self.timers_buf,
                &mut self.obs_buf,
                &mut self.node_rngs[l],
            );
            self.nodes[l].on_message(&mut ctx, from, msg);
            (
                std::mem::take(&mut self.sends_buf),
                std::mem::take(&mut self.timers_buf),
                std::mem::take(&mut self.obs_buf),
            )
        };
        self.route_effects(pid, sends, timers, obs, log, outbox);
    }

    fn dispatch_timer(
        &mut self,
        pid: ProcessId,
        id: TimerId,
        log: &mut Vec<LogEntry<N::Msg, N::Obs>>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        let l = self.local(pid);
        let (sends, timers, obs) = {
            let mut ctx = Context::new(
                pid,
                self.now,
                &mut self.sends_buf,
                &mut self.timers_buf,
                &mut self.obs_buf,
                &mut self.node_rngs[l],
            );
            self.nodes[l].on_timer(&mut ctx, id);
            (
                std::mem::take(&mut self.sends_buf),
                std::mem::take(&mut self.timers_buf),
                std::mem::take(&mut self.obs_buf),
            )
        };
        self.route_effects(pid, sends, timers, obs, log, outbox);
    }

    /// Next canonical-key sequence number for effects of local process `l`.
    #[inline]
    fn next_effect_seq(&mut self, l: usize) -> u64 {
        let seq = self.effect_seq[l];
        self.effect_seq[l] = seq + 1;
        seq
    }

    /// Resolves an effect's absolute instant; overflow past the clock
    /// horizon is a hard error (see `World::schedule_at`).
    #[inline]
    fn schedule_at(now: Time, delay: u64, what: &str) -> Time {
        match now.checked_add(delay) {
            Some(at) => at,
            None => panic!("{what} scheduled past the clock horizon (t{now} + {delay} ticks)"),
        }
    }

    /// Routes a stamped effect to its destination: the own wheel when the
    /// destination pid lives here, the outbox otherwise.
    #[inline]
    fn push_effect(
        &mut self,
        to: ProcessId,
        at: Time,
        pending: Pending<N::Msg>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        let dest = to.index() % self.k;
        if dest == self.idx {
            self.queue.push(at, pending);
        } else {
            outbox.push((dest, at, pending));
        }
    }

    fn route_effects(
        &mut self,
        pid: ProcessId,
        mut sends: Vec<(ProcessId, N::Msg)>,
        mut timers: Vec<(u64, TimerId)>,
        mut obs: Vec<N::Obs>,
        log: &mut Vec<LogEntry<N::Msg, N::Obs>>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        let l = self.local(pid);
        self.metrics.steps.inc();
        for o in obs.drain(..) {
            self.metrics.observations.inc();
            if let Some(sink) = self.sink.as_mut() {
                sink.on_obs(self.now, pid, &o);
            }
            if self.log_obs {
                log.push((self.cur_key, Emit::Obs(pid, o)));
            }
        }
        if self.batch_envelopes {
            self.route_sends_batched(pid, &mut sends, log, outbox);
        } else {
            for (to, msg) in sends.drain(..) {
                assert!(to.index() < self.n_total, "send to unknown process {to}");
                if self.record_messages {
                    let at = self.now;
                    log.push((
                        self.cur_key,
                        Emit::Trace(TraceEvent::Send { at, from: pid, to, msg: msg.clone() }),
                    ));
                }
                let d = self.send_delays[l].sample(pid, to, self.now, &mut self.send_rngs[l]);
                self.metrics.messages_sent.inc();
                self.metrics.envelopes_sent.inc();
                self.metrics.delay_ticks.record(d);
                let at = Self::schedule_at(self.now, d, "delivery");
                let seq = self.next_effect_seq(l);
                self.push_effect(
                    to,
                    at,
                    (CLASS_EFFECT, pid.0, seq, EventKind::Deliver { from: pid, to, msg }),
                    outbox,
                );
            }
        }
        for (delay, id) in timers.drain(..) {
            self.metrics.timers_set.inc();
            let at = Self::schedule_at(self.now, delay, "timer");
            let seq = self.next_effect_seq(l);
            // Timers always land on the owner shard.
            self.queue.push(at, (CLASS_EFFECT, pid.0, seq, EventKind::Timer { pid, id }));
        }
        self.sends_buf = sends;
        self.timers_buf = timers;
        self.obs_buf = obs;
    }

    /// Envelope batching, as in `World::route_sends_batched`, with pooled
    /// payload vectors and canonical-key stamping.
    fn route_sends_batched(
        &mut self,
        pid: ProcessId,
        sends: &mut Vec<(ProcessId, N::Msg)>,
        log: &mut Vec<LogEntry<N::Msg, N::Obs>>,
        outbox: &mut Vec<OutboxEntry<N::Msg>>,
    ) {
        let l = self.local(pid);
        let mut groups = std::mem::take(&mut self.groups_buf);
        for (to, msg) in sends.drain(..) {
            assert!(to.index() < self.n_total, "send to unknown process {to}");
            self.metrics.messages_sent.inc();
            if self.record_messages {
                let at = self.now;
                log.push((
                    self.cur_key,
                    Emit::Trace(TraceEvent::Send { at, from: pid, to, msg: msg.clone() }),
                ));
            }
            match groups.iter_mut().find(|(t, _)| *t == to) {
                Some((_, msgs)) => msgs.push(msg),
                None => {
                    let mut msgs = self.envelope_pool.pop().unwrap_or_default();
                    msgs.push(msg);
                    groups.push((to, msgs));
                }
            }
        }
        for (to, msgs) in groups.drain(..) {
            let d = self.send_delays[l].sample(pid, to, self.now, &mut self.send_rngs[l]);
            self.metrics.envelopes_sent.inc();
            self.metrics.envelope_occupancy.record(msgs.len() as u64);
            self.metrics.delay_ticks.record(d);
            let at = Self::schedule_at(self.now, d, "envelope");
            let seq = self.next_effect_seq(l);
            self.push_effect(
                to,
                at,
                (CLASS_EFFECT, pid.0, seq, EventKind::Envelope { from: pid, to, msgs }),
                outbox,
            );
        }
        self.groups_buf = groups;
    }
}

/// Replays one merged emission on the coordinator: trace events verbatim,
/// observations through the global sink first and then (if recorded) into
/// the trace — the exact order the sequential inline path used.
fn replay_entry<M, O>(
    trace: &mut Trace<M, O>,
    obs_sink: &mut Option<Box<dyn ObsSink<O>>>,
    record_observations: bool,
    at: Time,
    e: Emit<M, O>,
) {
    match e {
        Emit::Trace(ev) => trace.push(ev),
        Emit::Obs(pid, obs) => {
            if let Some(sink) = obs_sink.as_mut() {
                sink.on_obs(at, pid, &obs);
            }
            if record_observations {
                trace.push(TraceEvent::Obs { at, pid, obs });
            }
        }
    }
}

/// One instant's marching orders for a worker: the instant to execute and
/// every pending cross-shard delivery for its shards (any delivery time).
struct StepMsg<M> {
    t: Time,
    inboxes: Vec<(usize, Inbox<M>)>,
}

/// One shard's report back to the coordinator after an instant.
struct ShardReport<M, O> {
    shard: usize,
    qlen: usize,
    qmin: Option<Time>,
    log: Vec<LogEntry<M, O>>,
    outbox: Vec<OutboxEntry<M>>,
}

/// What a worker hands back on shutdown: the shard states it owned
/// (slot-tagged) and its wall-clock accounting.
type WorkerReturn<N> = (Vec<(usize, ShardState<N>)>, WorkerStats);

/// The worker side of the instant barrier: fold handed-over inbox entries
/// into the owned wheels, execute due shards, report. Exits when the step
/// channel closes (coordinator shutdown) and returns its shard states.
fn worker_loop<N: Node>(
    mut owned: Vec<(usize, ShardState<N>)>,
    step_rx: mpsc::Receiver<StepMsg<N::Msg>>,
    done_tx: mpsc::Sender<Vec<ShardReport<N::Msg, N::Obs>>>,
    clock: Arc<dyn Clock>,
) -> WorkerReturn<N> {
    let mut stats = WorkerStats::new();
    loop {
        let waiting = clock.elapsed_micros();
        let Ok(StepMsg { t, inboxes }) = step_rx.recv() else { break };
        stats.barrier_wait_micros.record(clock.elapsed_micros().saturating_sub(waiting));
        let busy = clock.elapsed_micros();
        for (s, entries) in inboxes {
            let st =
                &mut owned.iter_mut().find(|(i, _)| *i == s).expect("inbox for an owned shard").1;
            for (at, p) in entries {
                st.queue.push(at, p);
            }
        }
        let mut reports = Vec::with_capacity(owned.len());
        for (s, st) in owned.iter_mut() {
            let mut log = Vec::new();
            let mut outbox = Vec::new();
            if st.queue.peek_time() == Some(t) {
                st.run_instant(t, &mut log, &mut outbox);
            }
            reports.push(ShardReport {
                shard: *s,
                qlen: st.queue.len(),
                qmin: st.queue.peek_time(),
                log,
                outbox,
            });
        }
        stats.instants.inc();
        stats.busy_micros.record(clock.elapsed_micros().saturating_sub(busy));
        if done_tx.send(reports).is_err() {
            break;
        }
    }
    (owned, stats)
}

/// A sharded simulated world. Construction, stepping, and observation
/// mirror [`crate::world::World`]; see the module docs for what sharding
/// changes (and what it provably doesn't: the schedule).
pub struct ShardedWorld<N: Node> {
    shards: Vec<ShardState<N>>,
    n: usize,
    now: Time,
    /// Worker threads `run_until` may use (from [`WorldConfig::threads`]).
    threads: usize,
    /// Variant label of the configured delay model, for metric export.
    delay_kind: &'static str,
    trace: Trace<N::Msg, N::Obs>,
    record_observations: bool,
    obs_sink: Option<Box<dyn ObsSink<N::Obs>>>,
    /// Instantaneous total backlog across all shards (the shard-count
    /// invariant depth gauge; see the module docs).
    global_depth: Gauge,
    /// Per-worker wall-clock stats from parallel runs (empty otherwise).
    worker_stats: Vec<WorkerStats>,
    /// Wall-clock source for worker accounting; injectable for tests so the
    /// simulator itself contains no ad-hoc `Instant::now()` reads.
    clock: Arc<dyn Clock>,
    // Reusable merge buffers for the sequential path.
    log_buf: Vec<LogEntry<N::Msg, N::Obs>>,
    outbox_buf: Vec<OutboxEntry<N::Msg>>,
}

impl<N: Node> std::fmt::Debug for ShardedWorld<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("nodes", &self.n)
            .field("shards", &self.shards.len())
            .field("threads", &self.threads)
            .field("now", &self.now)
            .field("pending", &self.pending_events())
            .finish_non_exhaustive()
    }
}

impl<N: Node> ShardedWorld<N> {
    /// Builds a `k`-shard world over `nodes` and delivers every node's
    /// `on_start` step at time zero.
    ///
    /// # Panics
    ///
    /// On any [`ShardBuildError`]; use [`ShardedWorld::try_new`] to handle
    /// those as values.
    pub fn new(nodes: Vec<N>, cfg: WorldConfig, shards: usize) -> Self {
        Self::try_new(nodes, cfg, shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ShardedWorld::new`]: rejects `shards == 0` and delay
    /// models without a per-process clone instead of panicking.
    pub fn try_new(
        nodes: Vec<N>,
        cfg: WorldConfig,
        shards: usize,
    ) -> Result<Self, ShardBuildError> {
        Self::build(nodes, cfg, shards, None, None)
    }

    /// Builds a sharded world with a streaming [`ObsSink`] attached (the
    /// `on_start` observations stream through it, as in
    /// [`crate::world::World::new_with_sink`]).
    ///
    /// # Panics
    ///
    /// On any [`ShardBuildError`]; see [`ShardedWorld::try_new_with_sink`].
    pub fn new_with_sink(
        nodes: Vec<N>,
        cfg: WorldConfig,
        shards: usize,
        sink: Box<dyn ObsSink<N::Obs>>,
    ) -> Self {
        Self::try_new_with_sink(nodes, cfg, shards, sink).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ShardedWorld::new_with_sink`].
    pub fn try_new_with_sink(
        nodes: Vec<N>,
        cfg: WorldConfig,
        shards: usize,
        sink: Box<dyn ObsSink<N::Obs>>,
    ) -> Result<Self, ShardBuildError> {
        Self::build(nodes, cfg, shards, Some(sink), None)
    }

    /// Builds a sharded world with one `Send` streaming sink *per shard*:
    /// `sinks[s]` travels with shard `s` onto its worker thread and
    /// receives exactly the observations of processes `pid % shards == s`,
    /// in that shard's execution order — which is the sequential stream's
    /// projection onto those processes. This is the parallel-extraction
    /// hook: per-shard folds merged deterministically afterwards.
    pub fn try_new_with_shard_sinks(
        nodes: Vec<N>,
        cfg: WorldConfig,
        shards: usize,
        sinks: Vec<Box<dyn ObsSink<N::Obs> + Send>>,
    ) -> Result<Self, ShardBuildError> {
        assert_eq!(sinks.len(), shards, "one shard sink per shard");
        Self::build(nodes, cfg, shards, None, Some(sinks))
    }

    fn build(
        nodes: Vec<N>,
        cfg: WorldConfig,
        shards: usize,
        obs_sink: Option<Box<dyn ObsSink<N::Obs>>>,
        shard_sinks: Option<Vec<Box<dyn ObsSink<N::Obs> + Send>>>,
    ) -> Result<Self, ShardBuildError> {
        if shards == 0 {
            return Err(ShardBuildError::NoShards);
        }
        if cfg.delays.try_clone().is_none() {
            return Err(ShardBuildError::UncloneableDelayModel);
        }
        let n = nodes.len();
        let k = shards;
        let mut rng = SplitMix64::new(cfg.seed);
        // Fork order is load-bearing: node RNGs first (matching `World`),
        // then one delay RNG per process, all in pid order — then
        // distributed round-robin so the streams are shard-count invariant.
        let node_rngs: Vec<SplitMix64> = (0..n).map(|_| rng.fork()).collect();
        let send_rngs: Vec<SplitMix64> = (0..n).map(|_| rng.fork()).collect();
        let log_obs = cfg.record_observations || obs_sink.is_some();
        let mut states: Vec<ShardState<N>> = (0..k)
            .map(|idx| ShardState {
                idx,
                k,
                n_total: n,
                now: Time::ZERO,
                nodes: Vec::new(),
                crashed: Vec::new(),
                node_rngs: Vec::new(),
                send_rngs: Vec::new(),
                send_delays: Vec::new(),
                effect_seq: Vec::new(),
                queue: TimerWheel::new(),
                metrics: SimMetrics::new(),
                sink: None,
                record_messages: cfg.record_messages,
                log_obs,
                batch_envelopes: cfg.batch_envelopes,
                cur_key: (CLASS_EFFECT, 0, 0),
                sends_buf: Vec::new(),
                timers_buf: Vec::new(),
                obs_buf: Vec::new(),
                envelope_pool: Vec::new(),
                groups_buf: Vec::new(),
                batch_buf: Vec::new(),
            })
            .collect();
        if let Some(sinks) = shard_sinks {
            for (st, sink) in states.iter_mut().zip(sinks) {
                st.sink = Some(sink);
            }
        }
        for (i, (node, (nr, sr))) in
            nodes.into_iter().zip(node_rngs.into_iter().zip(send_rngs)).enumerate()
        {
            let st = &mut states[i % k];
            st.nodes.push(node);
            st.crashed.push(false);
            st.node_rngs.push(nr);
            st.send_rngs.push(sr);
            st.send_delays.push(cfg.delays.try_clone().expect("cloneability checked above"));
            st.effect_seq.push(0);
        }
        let mut world = ShardedWorld {
            shards: states,
            n,
            now: Time::ZERO,
            threads: cfg.threads.max(1),
            delay_kind: cfg.delays.kind(),
            trace: Trace::new(cfg.record_messages),
            record_observations: cfg.record_observations,
            obs_sink,
            global_depth: Gauge::new(),
            worker_stats: Vec::new(),
            clock: Arc::new(MonotonicClock::new()),
            log_buf: Vec::new(),
            outbox_buf: Vec::new(),
        };
        for (plan_idx, &(pid, at)) in cfg.crashes.crashes().iter().enumerate() {
            assert!(pid.index() < n, "crash plan names unknown process {pid}");
            let s = pid.index() % k;
            if at == Time::ZERO {
                // Dead from birth, exactly as in `World` (see its module
                // docs): effective before start dispatch.
                let l = pid.index() / k;
                let st = &mut world.shards[s];
                if !st.crashed[l] {
                    st.crashed[l] = true;
                    st.metrics.crash_events.inc();
                    world.trace.push(TraceEvent::Crash { at: Time::ZERO, pid });
                }
            } else {
                world.shards[s]
                    .queue
                    .push(at, (CLASS_CRASH, pid.0, plan_idx as u64, EventKind::Crash { pid }));
            }
        }
        world.update_depth_gauges();
        // Start steps in pid order with immediate replay and outbox
        // routing, reproducing exactly the sequential inline emissions.
        let mut log = Vec::new();
        let mut outbox = Vec::new();
        for i in 0..n {
            let (s, l) = (i % k, i / k);
            if world.shards[s].crashed[l] {
                continue;
            }
            let pid = ProcessId::from_index(i);
            world.shards[s].cur_key = (CLASS_EFFECT, pid.0, 0);
            world.shards[s].dispatch_start(pid, &mut log, &mut outbox);
            for (dest, at, p) in outbox.drain(..) {
                world.shards[dest].queue.push(at, p);
            }
            for (_, e) in log.drain(..) {
                replay_entry(
                    &mut world.trace,
                    &mut world.obs_sink,
                    world.record_observations,
                    Time::ZERO,
                    e,
                );
            }
        }
        world.log_buf = log;
        world.outbox_buf = outbox;
        Ok(world)
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker-thread budget for [`ShardedWorld::run_until`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current global time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total atomic steps dispatched, across all shards.
    pub fn steps(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.steps.get()).sum()
    }

    /// Total messages sent, across all shards.
    pub fn messages_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.messages_sent.get()).sum()
    }

    /// Read access to a node's state.
    pub fn node(&self, pid: ProcessId) -> &N {
        let k = self.shards.len();
        &self.shards[pid.index() % k].nodes[pid.index() / k]
    }

    /// Whether `pid` has crashed already.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        let k = self.shards.len();
        self.shards[pid.index() % k].crashed[pid.index() / k]
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace<N::Msg, N::Obs> {
        &self.trace
    }

    /// Consumes the world, returning the trace.
    pub fn into_trace(self) -> Trace<N::Msg, N::Obs> {
        self.trace
    }

    /// Detaches and returns the streaming sink, if one was attached.
    pub fn take_obs_sink(&mut self) -> Option<Box<dyn ObsSink<N::Obs>>> {
        self.obs_sink.take()
    }

    /// Events still pending, summed across shards.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// One shard's metric set (per-shard backlog, sender- and
    /// executor-side counters).
    pub fn shard_metrics(&self, shard: usize) -> &SimMetrics {
        &self.shards[shard].metrics
    }

    /// The shard-count-invariant global backlog gauge (see module docs).
    pub fn global_queue_depth(&self) -> &Gauge {
        &self.global_depth
    }

    /// Per-worker busy/barrier-wait wall-clock from parallel runs; empty
    /// when every run so far was sequential. Wall-clock is inherently
    /// nondeterministic, which is why these never enter
    /// [`ShardedWorld::metrics_map`].
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.worker_stats
    }

    /// Replaces the wall-clock source used for worker accounting.
    ///
    /// Tests inject a [`crate::ManualClock`] here to make the recorded
    /// [`WorkerStats`] durations exact; production code keeps the default
    /// [`MonotonicClock`].
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Merged metric export. Counters and histograms are exact sums over
    /// shards; `queue_depth_high_water` / `queue_depth_final` come from
    /// the global gauge, so the whole map is byte-identical across shard
    /// counts — and thread counts — for a fixed seed.
    pub fn metrics_map(&self) -> MetricMap {
        let mut merged = SimMetrics::new();
        for s in &self.shards {
            merged.absorb(&s.metrics);
        }
        merged.queue_depth = self.global_depth;
        merged.export(self.delay_kind)
    }

    fn update_depth_gauges(&mut self) {
        let mut total = 0u64;
        for s in &mut self.shards {
            let depth = s.queue.len() as u64;
            s.metrics.queue_depth.set(depth);
            total += depth;
        }
        self.global_depth.set(total);
    }

    /// Executes every event due at the earliest pending instant, in
    /// canonical-key order. Returns `false` when all queues are empty.
    pub fn step_instant(&mut self) -> bool {
        let Some(t) = self.peek_time() else {
            return false;
        };
        debug_assert!(t >= self.now, "time must not run backwards");
        self.now = t;
        let mut log = std::mem::take(&mut self.log_buf);
        let mut outbox = std::mem::take(&mut self.outbox_buf);
        debug_assert!(log.is_empty() && outbox.is_empty());
        for s in &mut self.shards {
            if s.queue.peek_time() == Some(t) {
                s.run_instant(t, &mut log, &mut outbox);
            }
        }
        for (dest, at, p) in outbox.drain(..) {
            self.shards[dest].queue.push(at, p);
        }
        // The deterministic merge: stable-sorting the shard-ordered log
        // concatenation by the unique canonical keys reproduces the order
        // a single global key-sorted execution would emit.
        log.sort_by_key(|e| e.0);
        for (_, e) in log.drain(..) {
            replay_entry(&mut self.trace, &mut self.obs_sink, self.record_observations, t, e);
        }
        self.log_buf = log;
        self.outbox_buf = outbox;
        self.update_depth_gauges();
        true
    }

    /// Earliest pending instant across all shards.
    pub fn peek_time(&self) -> Option<Time> {
        self.shards.iter().filter_map(|s| s.queue.peek_time()).min()
    }

    /// Runs until all queues are empty or global time exceeds `deadline`.
    ///
    /// With [`WorldConfig::threads`] ≥ 2 and at least two shards the
    /// instants execute on the shard-worker pool (byte-identical results;
    /// see the module docs), which is why this — unlike
    /// [`ShardedWorld::step_instant`] — asks the node type to be `Send`.
    pub fn run_until(&mut self, deadline: Time)
    where
        N: Send,
        N::Msg: Send,
        N::Obs: Send,
    {
        if self.threads >= 2 && self.shards.len() >= 2 {
            self.run_parallel(deadline);
        } else {
            while let Some(t) = self.peek_time() {
                if t > deadline {
                    break;
                }
                self.step_instant();
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` more ticks of virtual time (see [`ShardedWorld::run_until`]).
    pub fn run_for(&mut self, d: u64)
    where
        N: Send,
        N::Msg: Send,
        N::Obs: Send,
    {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// The parallel driver: moves the shard states onto pool workers and
    /// runs the instant-barrier protocol from the module docs until the
    /// deadline passes or the system drains, then reinstalls the states.
    fn run_parallel(&mut self, deadline: Time)
    where
        N: Send,
        N::Msg: Send,
        N::Obs: Send,
    {
        match self.peek_time() {
            Some(t) if t <= deadline => {}
            _ => return,
        }
        let k = self.shards.len();
        let workers = self.threads.min(k);
        let mut qmin: Vec<Option<Time>> = Vec::with_capacity(k);
        let mut qlen: Vec<usize> = Vec::with_capacity(k);
        let mut depth_shadow: Vec<Gauge> = Vec::with_capacity(k);
        let mut states: Vec<Option<ShardState<N>>> = Vec::with_capacity(k);
        for s in self.shards.drain(..) {
            qmin.push(s.queue.peek_time());
            qlen.push(s.queue.len());
            depth_shadow.push(s.metrics.queue_depth);
            states.push(Some(s));
        }
        let mut step_txs = Vec::with_capacity(workers);
        let mut done_rxs = Vec::with_capacity(workers);
        let mut tasks: Vec<pool::WorkerFn<'_, WorkerReturn<N>>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (step_tx, step_rx) = mpsc::channel::<StepMsg<N::Msg>>();
            let (done_tx, done_rx) = mpsc::channel::<Vec<ShardReport<N::Msg, N::Obs>>>();
            step_txs.push(step_tx);
            done_rxs.push(done_rx);
            let owned: Vec<(usize, ShardState<N>)> = (w..k)
                .step_by(workers)
                .map(|s| (s, states[s].take().expect("each shard assigned to one worker")))
                .collect();
            let clock = Arc::clone(&self.clock);
            tasks.push(Box::new(move || worker_loop(owned, step_rx, done_tx, clock)));
        }
        let mut inbox: Vec<Inbox<N::Msg>> = (0..k).map(|_| Vec::new()).collect();
        let mut global_shadow = self.global_depth;
        let now = &mut self.now;
        let trace = &mut self.trace;
        let obs_sink = &mut self.obs_sink;
        let record_observations = self.record_observations;
        let (results, (inbox, depth_shadow, global_shadow)) =
            pool::run_with_coordinator(tasks, move || {
                let mut logs_by_shard: Vec<Vec<LogEntry<N::Msg, N::Obs>>> =
                    (0..k).map(|_| Vec::new()).collect();
                let mut merged: Vec<LogEntry<N::Msg, N::Obs>> = Vec::new();
                'run: loop {
                    // The effective shard minimum counts undelivered inbox
                    // entries — they are wheel entries the worker just has
                    // not folded in yet.
                    let t = (0..k)
                        .filter_map(|s| {
                            let inbox_min = inbox[s].iter().map(|&(at, _)| at).min();
                            match (qmin[s], inbox_min) {
                                (Some(a), Some(b)) => Some(a.min(b)),
                                (a, b) => a.or(b),
                            }
                        })
                        .min();
                    let Some(t) = t else { break };
                    if t > deadline {
                        break;
                    }
                    *now = t;
                    for (w, tx) in step_txs.iter().enumerate() {
                        let mut inboxes = Vec::new();
                        for s in (w..k).step_by(workers) {
                            if !inbox[s].is_empty() {
                                inboxes.push((s, std::mem::take(&mut inbox[s])));
                            }
                        }
                        if tx.send(StepMsg { t, inboxes }).is_err() {
                            break 'run;
                        }
                    }
                    for rx in &done_rxs {
                        let Ok(reports) = rx.recv() else { break 'run };
                        for rep in reports {
                            qmin[rep.shard] = rep.qmin;
                            qlen[rep.shard] = rep.qlen;
                            logs_by_shard[rep.shard] = rep.log;
                            for (dest, at, p) in rep.outbox {
                                inbox[dest].push((at, p));
                            }
                        }
                    }
                    for shard_log in &mut logs_by_shard {
                        merged.append(shard_log);
                    }
                    merged.sort_by_key(|e| e.0);
                    for (_, e) in merged.drain(..) {
                        replay_entry(trace, obs_sink, record_observations, t, e);
                    }
                    // Depth accounting identical to the sequential path: a
                    // shard's undelivered inbox entries are part of its
                    // backlog.
                    let mut total = 0u64;
                    for s in 0..k {
                        let depth = (qlen[s] + inbox[s].len()) as u64;
                        depth_shadow[s].set(depth);
                        total += depth;
                    }
                    global_shadow.set(total);
                }
                drop(step_txs);
                (inbox, depth_shadow, global_shadow)
            });
        let mut slots: Vec<Option<ShardState<N>>> = (0..k).map(|_| None).collect();
        for (w, (owned, stats)) in results.into_iter().enumerate() {
            if self.worker_stats.len() <= w {
                self.worker_stats.resize_with(w + 1, WorkerStats::new);
            }
            self.worker_stats[w].absorb(&stats);
            for (s, st) in owned {
                slots[s] = Some(st);
            }
        }
        self.shards = slots.into_iter().map(|s| s.expect("workers returned every shard")).collect();
        for (s, entries) in inbox.into_iter().enumerate() {
            for (at, p) in entries {
                self.shards[s].queue.push(at, p);
            }
        }
        for (s, g) in depth_shadow.into_iter().enumerate() {
            self.shards[s].metrics.queue_depth = g;
        }
        self.global_depth = global_shadow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashPlan;

    /// Ring-token nodes (the `World` test workload, reused verbatim).
    #[derive(Debug)]
    struct RingNode {
        n: usize,
        hops_left: u32,
        received: u32,
    }

    impl Node for RingNode {
        type Msg = u32;
        type Obs = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
            if ctx.me() == ProcessId(0) {
                let next = ProcessId::from_index((ctx.me().index() + 1) % self.n);
                ctx.send(next, self.hops_left);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, u32, u32>, _from: ProcessId, msg: u32) {
            self.received += 1;
            ctx.observe(msg);
            if msg > 0 {
                let next = ProcessId::from_index((ctx.me().index() + 1) % self.n);
                ctx.send(next, msg - 1);
            }
        }
    }

    fn ring(n: usize, hops: u32) -> Vec<RingNode> {
        (0..n).map(|_| RingNode { n, hops_left: hops, received: 0 }).collect()
    }

    fn cfg(seed: u64, n: usize, batch: bool) -> WorldConfig {
        let cfg = WorldConfig::new(seed)
            .delays(DelayModel::harsh())
            .crashes(CrashPlan::one(ProcessId((n - 1) as u32), Time(150)))
            .record_messages();
        if batch {
            cfg.batch_envelopes()
        } else {
            cfg
        }
    }

    fn run(seed: u64, shards: usize, batch: bool) -> (Time, String, MetricMap) {
        let n = 6;
        let mut w = ShardedWorld::new(ring(n, 300), cfg(seed, n, batch), shards);
        while w.step_instant() {}
        (w.now(), format!("{:?}", w.trace().events()), w.metrics_map())
    }

    /// The ISSUE 7 determinism matrix: same seed ⇒ byte-identical trace
    /// and metrics for shards ∈ {1, 2, 4, 8}, including the exported
    /// `queue_depth_high_water`.
    #[test]
    fn shard_count_never_changes_the_run() {
        for batch in [false, true] {
            let reference = run(90, 1, batch);
            for shards in [2, 4, 8] {
                let got = run(90, shards, batch);
                assert_eq!(got, reference, "shards={shards} batch={batch} diverged");
            }
        }
    }

    #[test]
    fn different_seeds_still_diverge() {
        assert_ne!(run(90, 4, false).1, run(91, 4, false).1);
    }

    /// Drives the run through `run_until` with a thread budget; the
    /// deadline drains the ring workload completely, so the artifacts are
    /// comparable across shard *and* thread counts.
    fn run_threaded(
        seed: u64,
        shards: usize,
        threads: usize,
        batch: bool,
    ) -> (Time, String, MetricMap) {
        let n = 6;
        let mut w = ShardedWorld::new(ring(n, 300), cfg(seed, n, batch).threads(threads), shards);
        w.run_until(Time(1_000_000));
        (w.now(), format!("{:?}", w.trace().events()), w.metrics_map())
    }

    /// The ISSUE 8 determinism matrix: the parallel instant-barrier run is
    /// byte-identical to the sequential one — trace, metrics, and the
    /// exported depth gauges — for every thread × shard combination,
    /// including a mid-run crash (t=150) and envelope batching.
    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        for batch in [false, true] {
            let reference = run_threaded(90, 4, 1, batch);
            for threads in [2, 4, 8] {
                for shards in [2, 4, 8] {
                    let got = run_threaded(90, shards, threads, batch);
                    assert_eq!(got, reference, "threads={threads} shards={shards} batch={batch}");
                }
            }
        }
    }

    /// Deadline-bounded parallel runs resume exactly like sequential ones:
    /// pending cross-shard inbox entries are flushed back into the wheels
    /// at shutdown, so a later `run_for` continues the same schedule.
    #[test]
    fn parallel_resume_matches_sequential() {
        let drive = |threads: usize| {
            let mut w = ShardedWorld::new(ring(6, 300), cfg(11, 6, false).threads(threads), 4);
            w.run_until(Time(120));
            w.run_for(600);
            (w.now(), format!("{:?}", w.trace().events()), w.metrics_map())
        };
        assert_eq!(drive(4), drive(1));
    }

    #[test]
    fn parallel_runs_record_worker_stats() {
        let mut w = ShardedWorld::new(ring(6, 300), cfg(90, 6, false).threads(4), 4);
        w.run_until(Time(1_000_000));
        assert_eq!(w.worker_stats().len(), 4);
        let instants: u64 = w.worker_stats().iter().map(|s| s.instants.get()).sum();
        assert!(instants > 0, "workers must have stepped instants");
        // Sequential runs leave no worker stats.
        let mut seq = ShardedWorld::new(ring(6, 300), cfg(90, 6, false), 4);
        seq.run_until(Time(1_000_000));
        assert!(seq.worker_stats().is_empty());
    }

    /// More threads than shards: `run_until` clamps the worker pool to the
    /// shard count (a shard is never split across workers), the run still
    /// drains, and the artifacts stay byte-identical to sequential.
    #[test]
    fn more_threads_than_shards_clamps_to_shard_count() {
        let mut w = ShardedWorld::new(ring(6, 300), cfg(90, 6, false).threads(16), 2);
        w.run_until(Time(1_000_000));
        assert_eq!(w.worker_stats().len(), 2, "worker pool must clamp to shard count");
        let got = (w.now(), format!("{:?}", w.trace().events()), w.metrics_map());
        assert_eq!(got, run_threaded(90, 2, 1, false));
    }

    /// The worker wall-clock accounting reads the injected [`Clock`]: with
    /// a frozen [`crate::ManualClock`] every recorded duration is exactly
    /// zero while the sample counts still advance.
    #[test]
    fn worker_stats_read_the_injected_clock() {
        let mut w = ShardedWorld::new(ring(6, 300), cfg(90, 6, false).threads(2), 2);
        w.set_clock(Arc::new(crate::ManualClock::new()));
        w.run_until(Time(1_000_000));
        assert_eq!(w.worker_stats().len(), 2);
        for s in w.worker_stats() {
            assert!(s.instants.get() > 0, "workers must have stepped instants");
            assert!(s.busy_micros.count() > 0);
            assert_eq!(s.busy_micros.sum(), 0, "frozen clock ⇒ zero busy time");
            assert_eq!(s.barrier_wait_micros.sum(), 0, "frozen clock ⇒ zero wait time");
        }
    }

    #[test]
    fn global_high_water_is_bounded_by_summed_shard_marks() {
        let n = 6;
        let mut w = ShardedWorld::new(ring(n, 300), cfg(5, n, false), 4);
        while w.step_instant() {}
        let summed: u64 =
            (0..w.shards()).map(|s| w.shard_metrics(s).queue_depth.high_water()).sum();
        let global = w.global_queue_depth().high_water();
        assert!(global >= 1);
        assert!(
            global <= summed,
            "global high water {global} must not exceed summed shard marks {summed}"
        );
        // And the export carries the global mark, not the sum.
        assert_eq!(w.metrics_map()["queue_depth_high_water"], global);
    }

    #[test]
    fn counters_sum_exactly_across_shards() {
        let n = 6;
        let mut w = ShardedWorld::new(ring(n, 200), cfg(7, n, false), 4);
        while w.step_instant() {}
        let m = w.metrics_map();
        assert_eq!(m["messages_sent"], w.messages_sent());
        assert_eq!(m["steps"], w.steps());
        assert_eq!(
            m["messages_delivered"] + m["messages_dropped"],
            m["messages_sent"],
            "every sent message is delivered or dropped once the run drains"
        );
    }

    #[test]
    fn crash_at_time_zero_suppresses_start_step() {
        let cfg =
            WorldConfig::new(3).crashes(CrashPlan::one(ProcessId(0), Time::ZERO)).record_messages();
        let mut w = ShardedWorld::new(ring(3, 10), cfg, 2);
        assert!(w.is_crashed(ProcessId(0)));
        while w.step_instant() {}
        assert_eq!(w.trace().sent_count(), 0, "a dead-from-birth process must not send");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut w = ShardedWorld::new(ring(4, 1000), WorldConfig::new(9), 2);
        w.run_until(Time(50));
        assert!(w.now() >= Time(50));
        let before = w.trace().observations().count();
        w.run_for(400);
        assert!(w.trace().observations().count() > before);
    }

    #[test]
    #[should_panic(expected = "cloneable delay model")]
    fn scripted_delays_are_rejected() {
        use crate::net::ChannelStaller;
        let staller = ChannelStaller { stalled: vec![], release_at: Time(1), benign_hi: 1 };
        let cfg = WorldConfig::new(1).delays(DelayModel::Scripted(Box::new(staller)));
        ShardedWorld::new(ring(2, 1), cfg, 2);
    }

    /// The fallible constructors surface the same conditions as values.
    #[test]
    fn try_new_reports_build_errors() {
        use crate::net::ChannelStaller;
        assert_eq!(
            ShardedWorld::try_new(ring(2, 1), WorldConfig::new(1), 0).err(),
            Some(ShardBuildError::NoShards)
        );
        let staller = ChannelStaller { stalled: vec![], release_at: Time(1), benign_hi: 1 };
        let cfg = WorldConfig::new(1).delays(DelayModel::Scripted(Box::new(staller)));
        assert_eq!(
            ShardedWorld::try_new(ring(2, 1), cfg, 2).err(),
            Some(ShardBuildError::UncloneableDelayModel)
        );
    }

    /// A sink observing through the sharded coordinator sees the exact
    /// trace stream, as with `World`.
    #[derive(Debug, Default)]
    struct FoldSink {
        seen: Vec<(Time, ProcessId, u32)>,
    }

    impl ObsSink<u32> for FoldSink {
        fn on_obs(&mut self, at: Time, pid: ProcessId, obs: &u32) {
            self.seen.push((at, pid, *obs));
        }
    }

    #[test]
    fn obs_sink_streams_exactly_the_trace_observations() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let sink = Rc::new(RefCell::new(FoldSink::default()));
        let mut w = ShardedWorld::new_with_sink(
            ring(4, 23),
            WorldConfig::new(9),
            3,
            Box::new(Rc::clone(&sink)),
        );
        while w.step_instant() {}
        let from_trace: Vec<(Time, ProcessId, u32)> =
            w.trace().observations().map(|(t, p, &o)| (t, p, o)).collect();
        assert!(!from_trace.is_empty());
        assert_eq!(sink.borrow().seen, from_trace);
    }

    /// Per-shard sinks riding worker threads each see exactly the
    /// sequential observation stream's projection onto their shard's pids.
    #[test]
    fn shard_sinks_see_their_pids_in_trace_order() {
        use std::sync::{Arc, Mutex};
        let shards = 3;
        let handles: Vec<Arc<Mutex<FoldSink>>> =
            (0..shards).map(|_| Arc::new(Mutex::new(FoldSink::default()))).collect();
        let sinks: Vec<Box<dyn ObsSink<u32> + Send>> = handles
            .iter()
            .map(|h| Box::new(Arc::clone(h)) as Box<dyn ObsSink<u32> + Send>)
            .collect();
        let mut w = ShardedWorld::try_new_with_shard_sinks(
            ring(4, 23),
            WorldConfig::new(9).threads(2),
            shards,
            sinks,
        )
        .expect("buildable");
        w.run_until(Time(1_000_000));
        let mut total = 0;
        for (s, handle) in handles.iter().enumerate() {
            let expect: Vec<(Time, ProcessId, u32)> = w
                .trace()
                .observations()
                .filter(|(_, p, _)| p.index() % shards == s)
                .map(|(t, p, &o)| (t, p, o))
                .collect();
            let seen = &handle.lock().expect("sink").seen;
            assert_eq!(seen, &expect, "shard {s} projection diverged");
            total += seen.len();
        }
        assert!(total > 0, "the workload must observe something");
    }
}
