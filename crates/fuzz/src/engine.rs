//! The fuzzing loop: seed, mutate, execute, keep what's novel.
//!
//! The engine is deliberately boring — every interesting decision lives
//! in [`crate::schedule`] (what a schedule is), [`crate::corpus`] (what
//! to keep), and [`crate::minimize`] (what to report). What the engine
//! guarantees is **determinism**: the entire run is a pure function of
//! the [`FuzzConfig`], so CI can assert equality of corpus digests and
//! `fuzz.*` metrics across reruns, and any finding can be re-derived
//! from the scenario file alone. The optional wall-clock budget (used by
//! `dinefd fuzz` and the CI job) only ever *truncates* the iteration
//! space — a run that completes its iteration budget inside the time
//! budget is unaffected by it.

use std::sync::Arc;
use std::time::Duration;

use dinefd_explore::{ExploreConfig, TransitionLabel};
use dinefd_sim::scenario_dsl::Scenario;
use dinefd_sim::{Clock, MetricMap, MonotonicClock, SplitMix64};

use crate::corpus::Corpus;
use crate::minimize::{lemma_key, minimize};
use crate::schedule::{execute, Schedule};

/// Everything one fuzzing run depends on.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// The pair-model configuration (mutations, depth knobs…).
    pub explore: ExploreConfig,
    /// Root seed; the run is a pure function of this config.
    pub seed: u64,
    /// Mutation iterations (after initial corpus seeding).
    pub iterations: u64,
    /// Maximum schedule length in decision words.
    pub max_steps: u32,
    /// Random schedules used to seed the corpus.
    pub corpus_seeds: u32,
}

impl FuzzConfig {
    /// Builds the fuzzing run a [`Scenario`] document describes: the
    /// `[model]` section becomes the [`ExploreConfig`], the `[fuzz]`
    /// section the budgets.
    pub fn from_scenario(sc: &Scenario) -> Self {
        FuzzConfig {
            explore: ExploreConfig::from_scenario(sc),
            seed: sc.fuzz.seed,
            iterations: sc.fuzz.iterations,
            max_steps: sc.fuzz.max_steps,
            corpus_seeds: sc.fuzz.corpus_seeds,
        }
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        let sc = Scenario::default();
        FuzzConfig {
            explore: ExploreConfig::default(),
            seed: sc.fuzz.seed,
            iterations: sc.fuzz.iterations,
            max_steps: sc.fuzz.max_steps,
            corpus_seeds: sc.fuzz.corpus_seeds,
        }
    }
}

/// One distinct lemma violation the fuzzer found, with its minimized
/// replayable counterexample.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Lemma key shared by the raw and minimized violations.
    pub lemma: String,
    /// The violation message at the end of the minimized replay.
    pub message: String,
    /// Iteration that first hit this lemma (0 = during corpus seeding).
    pub iteration: u64,
    /// The raw violating label path, as executed.
    pub path: Vec<TransitionLabel>,
    /// The ddmin-minimized replayable prefix.
    pub minimized: Vec<TransitionLabel>,
}

/// The outcome of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Schedule executions performed (seeding + mutation iterations).
    pub executions: u64,
    /// Iterations actually run (< `iterations` iff the time budget cut in).
    pub iterations_run: u64,
    /// Distinct state fingerprints covered.
    pub coverage_states: u64,
    /// Corpus size at exit.
    pub corpus_entries: u64,
    /// Order-sensitive digest of the corpus (rerun-identity gate).
    pub corpus_digest: u64,
    /// Iteration of the first violation, if any.
    pub first_find_iter: Option<u64>,
    /// One finding per distinct lemma key, in discovery order.
    pub findings: Vec<Finding>,
    /// Candidate replays spent inside the minimizer.
    pub minimize_tests: u64,
    /// Whether the wall-clock budget expired before the iteration budget.
    pub timed_out: bool,
}

impl FuzzReport {
    /// Exports the run's counters as `fuzz.*` keys in a [`MetricMap`] —
    /// the same shape every other subsystem feeds into perfdump. All
    /// values are deterministic for a fixed [`FuzzConfig`] when no time
    /// budget interferes (`timed_out == false`).
    pub fn metrics(&self) -> MetricMap {
        let mut m = MetricMap::new();
        m.insert("fuzz.executions".into(), self.executions);
        m.insert("fuzz.iterations_run".into(), self.iterations_run);
        m.insert("fuzz.coverage_states".into(), self.coverage_states);
        m.insert("fuzz.corpus_entries".into(), self.corpus_entries);
        m.insert("fuzz.corpus_digest".into(), self.corpus_digest);
        m.insert("fuzz.findings".into(), self.findings.len() as u64);
        m.insert("fuzz.first_find_iter".into(), self.first_find_iter.unwrap_or(0));
        m.insert("fuzz.found".into(), u64::from(!self.findings.is_empty()));
        m.insert("fuzz.minimize_tests".into(), self.minimize_tests);
        m.insert(
            "fuzz.minimized_len_total".into(),
            self.findings.iter().map(|f| f.minimized.len() as u64).sum(),
        );
        m
    }
}

/// The coverage-guided fuzzer. Construct with [`Fuzzer::new`], run with
/// [`Fuzzer::run`]; or use the [`fuzz_scenario`] one-shot.
#[derive(Debug)]
pub struct Fuzzer {
    cfg: FuzzConfig,
    budget: Option<Duration>,
    clock: Arc<dyn Clock>,
}

impl Fuzzer {
    /// A fuzzer with no wall-clock budget (fully deterministic output).
    pub fn new(cfg: FuzzConfig) -> Self {
        Fuzzer { cfg, budget: None, clock: Arc::new(MonotonicClock::new()) }
    }

    /// Caps the run's wall clock, measured from the moment [`Fuzzer::run`]
    /// starts. The budget is checked between schedule executions, so a run
    /// is over budget by at most one execution. With a budget set, *which
    /// prefix* of the iteration space runs depends on the host — use
    /// iteration budgets alone where determinism matters.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Replaces the wall-clock source the time budget reads. Production
    /// uses the default [`MonotonicClock`]; tests hand-crank a
    /// [`dinefd_sim::ManualClock`] so the timeout path is exercised
    /// without sleeping.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    fn out_of_time(&self, deadline: Option<Duration>) -> bool {
        deadline.is_some_and(|d| self.clock.elapsed() >= d)
    }

    /// Runs the configured fuzzing campaign.
    pub fn run(&self) -> FuzzReport {
        let cfg = &self.cfg;
        let deadline = self.budget.map(|b| self.clock.elapsed().saturating_add(b));
        let mut rng = SplitMix64::new(cfg.seed);
        let mut corpus = Corpus::new();
        let mut report = FuzzReport::default();

        let handle_execution =
            |schedule: Schedule, iteration: u64, corpus: &mut Corpus, report: &mut FuzzReport| {
                let out = execute(&cfg.explore, &schedule);
                report.executions += 1;
                let novelty = corpus.absorb_coverage(&out.fingerprints);
                let violating = out.violation.is_some();
                // Novelty is the sole admission ticket: under a busted model
                // almost *every* schedule violates, and admitting them all
                // would drown the corpus in redundant counterexamples.
                if novelty > 0 {
                    corpus.admit(schedule, novelty, iteration, violating);
                }
                if let Some(msg) = out.violation {
                    report.first_find_iter.get_or_insert(iteration);
                    let lemma = lemma_key(&msg).to_string();
                    if !report.findings.iter().any(|f| f.lemma == lemma) {
                        let min = minimize(&cfg.explore, &out.path)
                            .expect("violating execution paths always minimize");
                        report.minimize_tests += min.tests_run;
                        report.findings.push(Finding {
                            lemma,
                            message: min.message,
                            iteration,
                            path: out.path,
                            minimized: min.path,
                        });
                    }
                }
            };

        // Phase 1: seed the corpus with purely random schedules.
        for _ in 0..cfg.corpus_seeds {
            if self.out_of_time(deadline) {
                report.timed_out = true;
                break;
            }
            let s = Schedule::random(&mut rng, cfg.max_steps);
            handle_execution(s, 0, &mut corpus, &mut report);
        }

        // Phase 2: coverage-guided mutation.
        for iter in 1..=cfg.iterations {
            if self.out_of_time(deadline) {
                report.timed_out = true;
                break;
            }
            let child = match corpus.pick(rng.next_u64()) {
                Some(parent) => {
                    let donor = corpus
                        .pick(rng.next_u64())
                        .map(|e| e.schedule.words.clone())
                        .unwrap_or_default();
                    parent.schedule.mutate(&mut rng, &donor, cfg.max_steps)
                }
                // Corpus can be empty only with `corpus_seeds = 0`.
                None => Schedule::random(&mut rng, cfg.max_steps),
            };
            handle_execution(child, iter, &mut corpus, &mut report);
            report.iterations_run = iter;
        }

        report.coverage_states = corpus.coverage_states();
        report.corpus_entries = corpus.len() as u64;
        report.corpus_digest = corpus.digest();
        report
    }
}

/// One-shot: run the fuzzing campaign a [`Scenario`] describes.
pub fn fuzz_scenario(sc: &Scenario) -> FuzzReport {
    Fuzzer::new(FuzzConfig::from_scenario(sc)).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinefd_explore::SubjectMutation;

    #[test]
    fn same_seed_same_everything() {
        let cfg =
            FuzzConfig { iterations: 300, max_steps: 25, corpus_seeds: 8, ..Default::default() };
        let a = Fuzzer::new(cfg.clone()).run();
        let b = Fuzzer::new(cfg).run();
        assert_eq!(a.corpus_digest, b.corpus_digest);
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn different_seeds_diverge() {
        let base = FuzzConfig { iterations: 200, corpus_seeds: 8, ..Default::default() };
        let a = Fuzzer::new(FuzzConfig { seed: 1, ..base.clone() }).run();
        let b = Fuzzer::new(FuzzConfig { seed: 2, ..base }).run();
        assert_ne!(a.corpus_digest, b.corpus_digest);
    }

    #[test]
    fn faithful_model_yields_no_findings_but_real_coverage() {
        let r = Fuzzer::new(FuzzConfig { iterations: 300, corpus_seeds: 8, ..Default::default() })
            .run();
        assert!(r.findings.is_empty());
        assert_eq!(r.first_find_iter, None);
        assert!(r.coverage_states > 100, "coverage barely moved: {}", r.coverage_states);
        assert!(r.corpus_entries > 0);
        assert_eq!(r.metrics()["fuzz.found"], 0);
    }

    #[test]
    fn seeded_bug_is_found_and_minimized() {
        let r = Fuzzer::new(FuzzConfig {
            explore: ExploreConfig {
                subject_mutation: SubjectMutation::IgnoreTriggerGuard,
                ..Default::default()
            },
            iterations: 500,
            ..Default::default()
        })
        .run();
        assert_eq!(r.findings.len(), 1, "exactly one lemma key expected");
        let f = &r.findings[0];
        assert_eq!(f.lemma, "Lemma 4 violated");
        assert!(f.minimized.len() <= f.path.len());
        assert!(r.metrics()["fuzz.found"] == 1);
    }

    #[test]
    fn stale_ack_replay_is_attributed_to_its_first_tripped_check() {
        // First-tripped-check semantics (see the crate docs): the explorer
        // headlines StaleAckReplay as a Lemma-4 bug, but along any fuzzed
        // execution the duplicate ack violates Lemma 3 (a DX message in
        // transit while the subject is not eating with its ping raised)
        // strictly before the stale ack can flip the trigger, so the
        // fuzzer's one-finding-per-key report must carry Lemma 3.
        // Budget mirrors the `seeded_bug_gate` suite: under seed 1 the
        // slowest stale-ack find lands around iteration 525.
        let r = Fuzzer::new(FuzzConfig {
            explore: ExploreConfig {
                model_mutation: dinefd_explore::ModelMutation::StaleAckReplay,
                ..Default::default()
            },
            seed: 1,
            iterations: 2_000,
            max_steps: 40,
            corpus_seeds: 16,
        })
        .run();
        assert!(!r.findings.is_empty(), "seeded StaleAckReplay bug never found");
        assert_eq!(r.findings[0].lemma, "Lemma 3 violated", "first-tripped check must win");
        // The minimized prefix replays to the same key — attribution is a
        // property of the trajectory, not of which schedule found it.
        for f in &r.findings {
            assert_eq!(
                crate::minimize::lemma_key(&f.message),
                f.lemma,
                "finding message and key disagree"
            );
        }
    }

    #[test]
    fn time_budget_truncates_but_never_extends() {
        let cfg = FuzzConfig { iterations: 50, corpus_seeds: 4, ..Default::default() };
        let untimed = Fuzzer::new(cfg.clone()).run();
        // A generous budget must not change the outcome.
        let timed = Fuzzer::new(cfg.clone()).with_time_budget(Duration::from_secs(600)).run();
        assert_eq!(untimed.corpus_digest, timed.corpus_digest);
        assert!(!timed.timed_out);
        // A zero budget stops almost immediately.
        let starved = Fuzzer::new(cfg).with_time_budget(Duration::ZERO).run();
        assert!(starved.timed_out);
        assert!(starved.executions <= 1);
    }

    #[test]
    fn frozen_fake_clock_never_times_out() {
        // With an injected clock that never advances, even a 1 ns budget
        // leaves infinite room: the full iteration budget runs and the
        // output matches the untimed run exactly.
        let cfg = FuzzConfig { iterations: 50, corpus_seeds: 4, ..Default::default() };
        let untimed = Fuzzer::new(cfg.clone()).run();
        let frozen = Fuzzer::new(cfg)
            .with_clock(Arc::new(dinefd_sim::ManualClock::new()))
            .with_time_budget(Duration::from_nanos(1))
            .run();
        assert!(!frozen.timed_out);
        assert_eq!(frozen.iterations_run, 50);
        assert_eq!(frozen.corpus_digest, untimed.corpus_digest);
    }

    #[test]
    fn budget_is_anchored_at_run_start_not_construction() {
        // Time spent between constructing the fuzzer and calling `run`
        // must not eat into the budget.
        let cfg = FuzzConfig { iterations: 50, corpus_seeds: 4, ..Default::default() };
        let clock = dinefd_sim::ManualClock::new();
        let fuzzer = Fuzzer::new(cfg)
            .with_clock(Arc::new(clock.clone()))
            .with_time_budget(Duration::from_secs(30));
        clock.advance(Duration::from_secs(3_600));
        let report = fuzzer.run();
        assert!(!report.timed_out);
        assert_eq!(report.iterations_run, 50);
    }

    #[test]
    fn fake_clock_timeout_fires_without_sleeping() {
        // A self-ticking clock advances one second per read: the deadline
        // anchors at t=0s+2s, the first budget check reads 1s (under), the
        // second reads 2s (expired) — the CI timeout path, exercised
        // deterministically and instantly.
        #[derive(Debug, Default)]
        struct TickingClock(std::sync::atomic::AtomicU64);
        impl dinefd_sim::Clock for TickingClock {
            fn elapsed(&self) -> Duration {
                Duration::from_secs(self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
            }
        }
        let cfg = FuzzConfig { iterations: 50, corpus_seeds: 4, ..Default::default() };
        let report = Fuzzer::new(cfg)
            .with_clock(Arc::new(TickingClock::default()))
            .with_time_budget(Duration::from_secs(2))
            .run();
        assert!(report.timed_out);
        assert_eq!(report.executions, 1, "exactly one execution fits a 2-tick budget");
    }
}
