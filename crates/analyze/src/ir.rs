//! The guarded-command intermediate representation of one monitoring pair.
//!
//! Every behavior of the closed pair model — the witness machine (Alg. 1),
//! the subject machine (Alg. 2, any [`SubjectMutation`]), the dining
//! service, convergence, crash, and the wire — is expressed as a **named
//! action**: a guard predicate plus an update function over [`AbsState`].
//! The IR is written *from the paper's pseudocode*, independently of the
//! executable machines in `dinefd_core::machines`; the conformance suite
//! (`tests/ir_conformance.rs`) then proves the two agree bit-for-bit on the
//! machines' packed state bytes. That independence is the point: an IR that
//! merely called the machines could never catch a transcription bug in
//! either.
//!
//! ## The abstract wire
//!
//! The concrete explorer carries explicit in-flight message multisets with
//! unbounded sequence numbers, so its state space is infinite and it can
//! only check lemmas up to a depth bound. The IR abstracts the wire to one
//! **saturating counter per message class** (`pings[i]`, `acks[i]`, values
//! `0, 1, …, WIRE_CAP` where `WIRE_CAP` means "`≥ WIRE_CAP`"), and drops
//! sequence numbers entirely. Deliveries out of a saturated counter are
//! *nondeterministic* (the true count may or may not still exceed the cap),
//! and in `strict_seq` mode an ack delivery nondeterministically matches or
//! misses the outstanding sequence number. Both nondeterminisms
//! over-approximate the concrete system, so:
//!
//! * every concrete transition is simulated by some IR action
//!   (property-tested in the conformance suite), hence
//! * an invariant proved inductive over the **finite** abstract domain
//!   holds in every reachable concrete state, at *any* depth.
//!
//! The price of over-approximation is spurious counterexamples-to-induction
//! — see [`crate::induct`] for how those are classified and eliminated by
//! invariant strengthening.

use dinefd_core::machines::SubjectMutation;
use dinefd_dining::DinerPhase;
use dinefd_explore::{ExploreConfig, InvariantView, ModelMutation, PairState};

/// Default saturation cap of the abstract wire counters: the value
/// `WIRE_CAP` denotes "at least `WIRE_CAP` messages in flight". `2`
/// distinguishes exactly the counts the lemma invariants and the
/// duplicate-suppression regime talk about: none, exactly one, more than
/// one. [`IrConfig::wire_cap`] lifts the cap to a per-run parameter
/// (validated range [`MIN_WIRE_CAP`]..=[`MAX_WIRE_CAP`]); this constant is
/// its default and the cap the explicit enumerator is tuned for.
pub const WIRE_CAP: u8 = 2;

/// Smallest admissible [`IrConfig::wire_cap`]: below 2 the abstraction
/// cannot distinguish "exactly one" from "more than one" in flight, which
/// the strengthening clauses rely on.
pub const MIN_WIRE_CAP: u8 = 2;

/// Largest admissible [`IrConfig::wire_cap`]: keeps counters within 4 bits
/// for the bit-blasted encoding ([`crate::cnf`]) and the packed
/// [`AbsState::pack_key`].
pub const MAX_WIRE_CAP: u8 = 8;

/// Configuration of the IR: which machine variant and which seeded bugs the
/// action system models. Mirrors the knobs of
/// [`dinefd_explore::ExploreConfig`], plus the abstract wire depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrConfig {
    /// Harden the subject with sequence-checked acks (ack deliveries gain a
    /// nondeterministic "stale, ignored" branch).
    pub strict_seq: bool,
    /// Allow the subject process `q` to crash.
    pub allow_crash: bool,
    /// Seeded machine-level bug (`None` = the faithful Alg. 2).
    pub subject_mutation: SubjectMutation,
    /// Seeded wire-level bug (`None` = the faithful wire).
    pub model_mutation: ModelMutation,
    /// Saturation cap of the abstract wire counters
    /// ([`MIN_WIRE_CAP`]..=[`MAX_WIRE_CAP`]). The typed domain grows as
    /// `(cap + 1)⁴`, so caps above [`WIRE_CAP`] are practical only through
    /// the symbolic engine ([`crate::kinduct`]).
    pub wire_cap: u8,
}

impl Default for IrConfig {
    fn default() -> Self {
        IrConfig {
            strict_seq: false,
            allow_crash: false,
            subject_mutation: SubjectMutation::default(),
            model_mutation: ModelMutation::default(),
            wire_cap: WIRE_CAP,
        }
    }
}

impl IrConfig {
    /// The faithful paper configuration (crash allowed, lenient acks).
    pub fn faithful() -> Self {
        IrConfig { allow_crash: true, ..Default::default() }
    }

    /// The corresponding bounded-explorer configuration (for classifying
    /// counterexamples-to-induction via reachability).
    pub fn explore_config(&self, max_depth: u32, max_states: usize) -> ExploreConfig {
        ExploreConfig {
            max_depth,
            max_states,
            strict_seq: self.strict_seq,
            allow_crash: self.allow_crash,
            subject_mutation: self.subject_mutation,
            model_mutation: self.model_mutation,
            ..Default::default()
        }
    }
}

/// One abstract pair state: the two machines' packed-domain bits, the four
/// dining phases, the model flags, and the abstract wire. `Copy` and small
/// (the whole typed domain is enumerated by value in [`crate::induct`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AbsState {
    /// Phases of `p.w_0`, `p.w_1` (never `Exiting` in the typed domain).
    pub w_phase: [DinerPhase; 2],
    /// Phases of `q.s_0`, `q.s_1`.
    pub s_phase: [DinerPhase; 2],
    /// Alg. 1 `switch` (whose turn it is).
    pub switch: u8,
    /// Alg. 1 `haveping_i`.
    pub haveping: [bool; 2],
    /// Alg. 1 `suspect_q` — the witness's output.
    pub suspect: bool,
    /// Alg. 2 `trigger`.
    pub trigger: u8,
    /// Alg. 2 `ping_i`.
    pub ping_enabled: [bool; 2],
    /// Whether ◇WX's exclusive suffix has begun.
    pub converged: bool,
    /// Whether `q` has crashed.
    pub crashed: bool,
    /// In-flight `DX_i` pings, saturating at [`WIRE_CAP`].
    pub pings: [u8; 2],
    /// In-flight `DX_i` acks, saturating at [`WIRE_CAP`].
    pub acks: [u8; 2],
}

impl AbsState {
    /// The abstract image of the model's initial state.
    pub fn initial() -> Self {
        AbsState {
            w_phase: [DinerPhase::Thinking; 2],
            s_phase: [DinerPhase::Thinking; 2],
            switch: 0,
            haveping: [false, false],
            suspect: true,
            trigger: 0,
            ping_enabled: [true, true],
            converged: false,
            crashed: false,
            pings: [0, 0],
            acks: [0, 0],
        }
    }

    /// The abstraction function at the default cap: forgets message
    /// identities/sequence numbers, keeps per-class counts (saturated at
    /// [`WIRE_CAP`]).
    pub fn abstract_of(s: &PairState) -> Self {
        Self::abstract_of_with_cap(s, WIRE_CAP)
    }

    /// The abstraction function at an explicit saturation cap.
    pub fn abstract_of_with_cap(s: &PairState, cap: u8) -> Self {
        let count = |queue: &[(u8, u64)], i: u8| {
            (queue.iter().filter(|&&(j, _)| j == i).count() as u64).min(cap as u64) as u8
        };
        AbsState {
            w_phase: s.w_phase,
            s_phase: s.s_phase,
            switch: s.witness.switch() as u8,
            haveping: [s.witness.haveping(0), s.witness.haveping(1)],
            suspect: s.witness.suspects(),
            trigger: s.subject.trigger() as u8,
            ping_enabled: [s.subject.ping_enabled(0), s.subject.ping_enabled(1)],
            converged: s.converged,
            crashed: s.crashed,
            pings: [count(&s.pings, 0), count(&s.pings, 1)],
            acks: [count(&s.acks, 0), count(&s.acks, 1)],
        }
    }

    /// One concrete representative of this abstract state (sequence numbers
    /// synthesized), suitable for seeding the bounded explorer
    /// ([`dinefd_explore::explore_seeded`]) — the state-level lemma checks
    /// ignore sequence numbers, so any representative reproduces a
    /// state-invariant violation.
    pub fn concretize(&self, cfg: &IrConfig) -> PairState {
        use dinefd_core::machines::{SubjectMachine, WitnessMachine};
        let mut pings = Vec::new();
        let mut acks = Vec::new();
        for i in 0..2u8 {
            for k in 0..self.pings[i as usize] {
                pings.push((i, 1 + k as u64));
            }
            for k in 0..self.acks[i as usize] {
                acks.push((i, 1 + k as u64));
            }
        }
        PairState {
            witness: WitnessMachine::from_parts(self.switch as usize, self.haveping, self.suspect),
            subject: SubjectMachine::from_parts(
                self.trigger as usize,
                self.ping_enabled,
                [self.pings[0].max(self.acks[0]) as u64, self.pings[1].max(self.acks[1]) as u64],
                cfg.strict_seq,
                cfg.subject_mutation,
            ),
            w_phase: self.w_phase,
            s_phase: self.s_phase,
            pings,
            acks,
            converged: self.converged,
            crashed: self.crashed,
        }
    }

    /// Packs the state into one `u64` key, injective for wire caps up to
    /// [`MAX_WIRE_CAP`] (counters occupy 4 bits each). Used as the exact
    /// fingerprint for deduplicating CTI replay classification — in the
    /// spirit of the explorer's `StateCodec`, but lossless by construction
    /// so cache hits can never conflate two distinct pre-states.
    pub fn pack_key(&self) -> u64 {
        let phase = |p: DinerPhase| p as u64 & 0x3;
        let mut k = 0u64;
        for i in 0..2 {
            k = k << 2 | phase(self.w_phase[i]);
            k = k << 2 | phase(self.s_phase[i]);
        }
        k = k << 1 | u64::from(self.switch & 1);
        k = k << 1 | u64::from(self.haveping[0]);
        k = k << 1 | u64::from(self.haveping[1]);
        k = k << 1 | u64::from(self.suspect);
        k = k << 1 | u64::from(self.trigger & 1);
        k = k << 1 | u64::from(self.ping_enabled[0]);
        k = k << 1 | u64::from(self.ping_enabled[1]);
        k = k << 1 | u64::from(self.converged);
        k = k << 1 | u64::from(self.crashed);
        for i in 0..2 {
            k = k << 4 | u64::from(self.pings[i] & 0xf);
            k = k << 4 | u64::from(self.acks[i] & 0xf);
        }
        k
    }
}

impl InvariantView for AbsState {
    fn w_phase(&self, i: usize) -> DinerPhase {
        self.w_phase[i]
    }
    fn s_phase(&self, i: usize) -> DinerPhase {
        self.s_phase[i]
    }
    fn ping_enabled(&self, i: usize) -> bool {
        self.ping_enabled[i]
    }
    fn trigger(&self) -> usize {
        self.trigger as usize
    }
    fn crashed(&self) -> bool {
        self.crashed
    }
    fn converged(&self) -> bool {
        self.converged
    }
    fn dx_in_transit(&self, i: usize) -> bool {
        self.pings[i] > 0 || self.acks[i] > 0
    }
    fn pings_in_transit(&self) -> bool {
        self.pings[0] > 0 || self.pings[1] > 0
    }
    fn haveping(&self, i: usize) -> bool {
        self.haveping[i]
    }
    fn suspects(&self) -> bool {
        self.suspect
    }
}

/// Identifier of one guarded action. `usize` operands are instance indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActionId {
    /// `W_h(i)` — Alg. 1 line 2.
    WitnessHungry(usize),
    /// `W_x(i)` — Alg. 1 lines 3–7 (the exit check, the output step).
    WitnessExit(usize),
    /// `S_h(i)` — Alg. 2 line 2.
    SubjectHungry(usize),
    /// `S_p(i)` — Alg. 2 lines 3–5.
    SubjectPing(usize),
    /// `S_x(i)` — Alg. 2 lines 8–10.
    SubjectExit(usize),
    /// Deliver one in-flight `DX_i` ping: the witness's `W_p(i)` handler
    /// (bank it, emit an ack unless the sender has crashed).
    DeliverPing(usize),
    /// Deliver one in-flight `DX_i` ack that the subject accepts: `S_a(i)`.
    DeliverAck(usize),
    /// Deliver one in-flight `DX_i` ack that a **strict** subject rejects
    /// (sequence mismatch): the ack is consumed, nothing else changes.
    DeliverStaleAck(usize),
    /// Seeded wire bug [`ModelMutation::StaleAckReplay`]: duplicate an
    /// in-flight `DX_i` ack.
    DuplicateAck(usize),
    /// The dining service grants the witness endpoint of `DX_i`.
    GrantWitness(usize),
    /// The dining service grants the subject endpoint of `DX_i`.
    GrantSubject(usize),
    /// ◇WX convergence occurs now.
    Converge,
    /// `q` crashes now.
    CrashSubject,
}

/// Static metadata of one action (for lints, CTIs, and docs).
#[derive(Clone, Copy, Debug)]
pub struct Action {
    /// The action's identifier.
    pub id: ActionId,
    /// Stable display name, e.g. `"S_p(0)"`.
    pub name: &'static str,
    /// Which algorithm line / model rule it transcribes.
    pub doc: &'static str,
}

/// Whether `id` is a *machine-local* subject action (used by the guard
/// overlap lint to group actions into families).
pub fn family(id: ActionId) -> &'static str {
    match id {
        ActionId::WitnessHungry(_) => "W_h",
        ActionId::WitnessExit(_) => "W_x",
        ActionId::SubjectHungry(_) => "S_h",
        ActionId::SubjectPing(_) => "S_p",
        ActionId::SubjectExit(_) => "S_x",
        ActionId::DeliverPing(_) => "deliver-ping",
        ActionId::DeliverAck(_) => "deliver-ack",
        ActionId::DeliverStaleAck(_) => "deliver-stale-ack",
        ActionId::DuplicateAck(_) => "duplicate-ack",
        ActionId::GrantWitness(_) => "grant-witness",
        ActionId::GrantSubject(_) => "grant-subject",
        ActionId::Converge => "converge",
        ActionId::CrashSubject => "crash",
    }
}

/// The guarded-command action system for one [`IrConfig`].
#[derive(Clone, Debug)]
pub struct Ir {
    /// The configuration the guards/updates are specialized to.
    pub cfg: IrConfig,
    actions: Vec<Action>,
}

impl Ir {
    /// Builds the action table for `cfg`. Mutation-only actions
    /// ([`ActionId::DuplicateAck`]) and mode-only actions
    /// ([`ActionId::DeliverStaleAck`]) appear only when the configuration
    /// enables them, so "every listed action is somewhere enabled" is a
    /// meaningful lint.
    ///
    /// Panics if `cfg.wire_cap` is outside
    /// [`MIN_WIRE_CAP`]..=[`MAX_WIRE_CAP`] (CLI callers validate first and
    /// exit 64 instead).
    pub fn new(cfg: IrConfig) -> Self {
        assert!(
            (MIN_WIRE_CAP..=MAX_WIRE_CAP).contains(&cfg.wire_cap),
            "wire_cap {} outside {MIN_WIRE_CAP}..={MAX_WIRE_CAP}",
            cfg.wire_cap
        );
        let mut actions = vec![
            Action { id: ActionId::WitnessHungry(0), name: "W_h(0)", doc: "Alg.1 l.2" },
            Action { id: ActionId::WitnessHungry(1), name: "W_h(1)", doc: "Alg.1 l.2" },
            Action { id: ActionId::WitnessExit(0), name: "W_x(0)", doc: "Alg.1 l.3-7" },
            Action { id: ActionId::WitnessExit(1), name: "W_x(1)", doc: "Alg.1 l.3-7" },
            Action { id: ActionId::SubjectHungry(0), name: "S_h(0)", doc: "Alg.2 l.2" },
            Action { id: ActionId::SubjectHungry(1), name: "S_h(1)", doc: "Alg.2 l.2" },
            Action { id: ActionId::SubjectPing(0), name: "S_p(0)", doc: "Alg.2 l.3-5" },
            Action { id: ActionId::SubjectPing(1), name: "S_p(1)", doc: "Alg.2 l.3-5" },
            Action { id: ActionId::SubjectExit(0), name: "S_x(0)", doc: "Alg.2 l.8-10" },
            Action { id: ActionId::SubjectExit(1), name: "S_x(1)", doc: "Alg.2 l.8-10" },
            Action { id: ActionId::DeliverPing(0), name: "deliver ping(0)", doc: "W_p(0)" },
            Action { id: ActionId::DeliverPing(1), name: "deliver ping(1)", doc: "W_p(1)" },
            Action { id: ActionId::DeliverAck(0), name: "deliver ack(0)", doc: "S_a(0)" },
            Action { id: ActionId::DeliverAck(1), name: "deliver ack(1)", doc: "S_a(1)" },
            Action { id: ActionId::GrantWitness(0), name: "grant w(0)", doc: "dining service" },
            Action { id: ActionId::GrantWitness(1), name: "grant w(1)", doc: "dining service" },
            Action { id: ActionId::GrantSubject(0), name: "grant s(0)", doc: "dining service" },
            Action { id: ActionId::GrantSubject(1), name: "grant s(1)", doc: "dining service" },
            Action { id: ActionId::Converge, name: "converge", doc: "◇WX suffix begins" },
        ];
        if cfg.strict_seq {
            actions.push(Action {
                id: ActionId::DeliverStaleAck(0),
                name: "deliver stale ack(0)",
                doc: "S_a(0), hardened: sequence mismatch",
            });
            actions.push(Action {
                id: ActionId::DeliverStaleAck(1),
                name: "deliver stale ack(1)",
                doc: "S_a(1), hardened: sequence mismatch",
            });
        }
        if cfg.model_mutation == ModelMutation::StaleAckReplay {
            actions.push(Action {
                id: ActionId::DuplicateAck(0),
                name: "duplicate ack(0)",
                doc: "seeded wire bug: StaleAckReplay",
            });
            actions.push(Action {
                id: ActionId::DuplicateAck(1),
                name: "duplicate ack(1)",
                doc: "seeded wire bug: StaleAckReplay",
            });
        }
        if cfg.allow_crash {
            actions.push(Action {
                id: ActionId::CrashSubject,
                name: "crash q",
                doc: "fault model: q may crash at any point",
            });
        }
        Ir { cfg, actions }
    }

    /// The action table (stable order).
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The display name of `id` in this IR's table.
    pub fn name_of(&self, id: ActionId) -> &'static str {
        self.actions.iter().find(|a| a.id == id).map_or("<unlisted>", |a| a.name)
    }

    /// The guard predicate of `id` on `s`. Transcribed from the pseudocode
    /// in the module docs of `dinefd_core::machines` and the model rules of
    /// `dinefd_explore::pair_model` — **not** by calling them.
    pub fn enabled(&self, s: &AbsState, id: ActionId) -> bool {
        use DinerPhase::{Eating, Hungry, Thinking};
        let o = |i: usize| 1 - i;
        match id {
            // { w_i thinking ∧ w_{1-i} thinking ∧ switch = i }
            ActionId::WitnessHungry(i) => {
                s.w_phase[i] == Thinking && s.w_phase[o(i)] == Thinking && s.switch as usize == i
            }
            // { w_i eating }
            ActionId::WitnessExit(i) => s.w_phase[i] == Eating,
            // { s_i thinking ∧ trigger = i } — IgnoreTriggerGuard drops the
            // second conjunct.
            ActionId::SubjectHungry(i) => {
                !s.crashed
                    && s.s_phase[i] == Thinking
                    && (s.trigger as usize == i
                        || self.cfg.subject_mutation == SubjectMutation::IgnoreTriggerGuard)
            }
            // { s_i eating ∧ s_{1-i} not eating ∧ ping_i }
            ActionId::SubjectPing(i) => {
                !s.crashed
                    && s.s_phase[i] == Eating
                    && s.s_phase[o(i)] != Eating
                    && s.ping_enabled[i]
            }
            // { s_i eating ∧ s_{1-i} eating ∧ trigger = 1-i }
            ActionId::SubjectExit(i) => {
                !s.crashed
                    && s.s_phase[i] == Eating
                    && s.s_phase[o(i)] == Eating
                    && s.trigger as usize == o(i)
            }
            // a DX_i ping is in flight (the witness is always live).
            ActionId::DeliverPing(i) => s.pings[i] > 0,
            // a DX_i ack is in flight and q is live to receive it.
            ActionId::DeliverAck(i) => !s.crashed && s.acks[i] > 0,
            // hardened mode only: same delivery, rejected by the receiver.
            ActionId::DeliverStaleAck(i) => self.cfg.strict_seq && !s.crashed && s.acks[i] > 0,
            // seeded wire bug only.
            ActionId::DuplicateAck(i) => {
                self.cfg.model_mutation == ModelMutation::StaleAckReplay
                    && !s.crashed
                    && s.acks[i] > 0
            }
            // grants: unconstrained before convergence; exclusive per
            // instance afterwards; exclusion binds live neighbors only.
            ActionId::GrantWitness(i) => {
                s.w_phase[i] == Hungry && (!s.converged || s.crashed || s.s_phase[i] != Eating)
            }
            ActionId::GrantSubject(i) => {
                !s.crashed && s.s_phase[i] == Hungry && (!s.converged || s.w_phase[i] != Eating)
            }
            // ◇WX's exclusive suffix cannot begin mid-overlap of live
            // neighbors.
            ActionId::Converge => {
                !s.converged
                    && !(0..2)
                        .any(|i| !s.crashed && s.w_phase[i] == Eating && s.s_phase[i] == Eating)
            }
            ActionId::CrashSubject => self.cfg.allow_crash && !s.crashed,
        }
    }

    /// The update function of `id`: appends every abstract successor of
    /// firing `id` in `s` to `out`. Most actions are deterministic (one
    /// successor); deliveries out of a saturated counter and hardened ack
    /// deliveries are the two sources of abstraction nondeterminism.
    ///
    /// Must only be called when [`Ir::enabled`] holds (checked in debug).
    pub fn fire(&self, s: &AbsState, id: ActionId, out: &mut Vec<AbsState>) {
        use DinerPhase::{Eating, Hungry, Thinking};
        debug_assert!(self.enabled(s, id), "firing disabled {id:?}");
        let o = |i: usize| 1 - i;
        let mut t = *s;
        match id {
            ActionId::WitnessHungry(i) => {
                // w_i hungry in DX_i (the host applies BecomeHungry).
                t.w_phase[i] = Hungry;
                out.push(t);
            }
            ActionId::WitnessExit(i) => {
                // suspect_q ← ¬haveping_i; haveping_i ← false;
                // switch ← 1-i; w_i exits DX_i.
                t.suspect = !t.haveping[i];
                t.haveping[i] = false;
                t.switch = o(i) as u8;
                t.w_phase[i] = Thinking;
                out.push(t);
            }
            ActionId::SubjectHungry(i) => {
                t.s_phase[i] = Hungry;
                out.push(t);
            }
            ActionId::SubjectPing(i) => {
                // ping to p.w_i; ping_i ← false — SkipPingDisable forgets
                // the disable, DropPingSend loses the send on the wire.
                if self.cfg.subject_mutation != SubjectMutation::SkipPingDisable {
                    t.ping_enabled[i] = false;
                }
                if self.cfg.model_mutation != ModelMutation::DropPingSend {
                    t.pings[i] = sat_inc(t.pings[i], self.cfg.wire_cap);
                }
                out.push(t);
            }
            ActionId::SubjectExit(i) => {
                // ping_i ← true; s_i exits DX_i.
                t.ping_enabled[i] = true;
                t.s_phase[i] = Thinking;
                out.push(t);
            }
            ActionId::DeliverPing(i) => {
                // W_p(i): haveping_i ← true; ack to q.s_i — unless q is a
                // corpse, in which case the ack is dropped on the floor.
                t.haveping[i] = true;
                if !t.crashed {
                    t.acks[i] = sat_inc(t.acks[i], self.cfg.wire_cap);
                }
                for dec in sat_dec(s.pings[i], self.cfg.wire_cap) {
                    let mut u = t;
                    u.pings[i] = dec;
                    out.push(u);
                }
            }
            ActionId::DeliverAck(i) => {
                // S_a(i): trigger ← 1-i — SkipTriggerUpdate forgets it.
                if self.cfg.subject_mutation != SubjectMutation::SkipTriggerUpdate {
                    t.trigger = o(i) as u8;
                }
                for dec in sat_dec(s.acks[i], self.cfg.wire_cap) {
                    let mut u = t;
                    u.acks[i] = dec;
                    out.push(u);
                }
            }
            ActionId::DeliverStaleAck(i) => {
                // Hardened S_a(i), sequence mismatch: consumed, ignored.
                for dec in sat_dec(s.acks[i], self.cfg.wire_cap) {
                    let mut u = t;
                    u.acks[i] = dec;
                    out.push(u);
                }
            }
            ActionId::DuplicateAck(i) => {
                t.acks[i] = sat_inc(t.acks[i], self.cfg.wire_cap);
                out.push(t);
            }
            ActionId::GrantWitness(i) => {
                t.w_phase[i] = Eating;
                out.push(t);
            }
            ActionId::GrantSubject(i) => {
                t.s_phase[i] = Eating;
                out.push(t);
            }
            ActionId::Converge => {
                t.converged = true;
                out.push(t);
            }
            ActionId::CrashSubject => {
                // In-flight pings still arrive at the live witness; acks in
                // flight to q vanish.
                t.crashed = true;
                t.acks = [0, 0];
                out.push(t);
            }
        }
    }

    /// Invokes `f` for every enabled action (table order).
    pub fn for_each_enabled(&self, s: &AbsState, mut f: impl FnMut(ActionId)) {
        for a in &self.actions {
            if self.enabled(s, a.id) {
                f(a.id);
            }
        }
    }

    /// All `(action, successor)` pairs out of `s`, appended to `out`.
    pub fn successors_into(&self, s: &AbsState, out: &mut Vec<(ActionId, AbsState)>) {
        let mut succ = Vec::with_capacity(2);
        for a in &self.actions {
            if self.enabled(s, a.id) {
                succ.clear();
                self.fire(s, a.id, &mut succ);
                out.extend(succ.iter().map(|&t| (a.id, t)));
            }
        }
    }
}

/// Saturating increment on the abstract wire domain.
#[inline]
fn sat_inc(c: u8, cap: u8) -> u8 {
    (c + 1).min(cap)
}

/// Abstract decrement: exact below the cap; at the cap the true count is
/// only known to be `≥ cap`, so the post-count is `cap - 1` *or* still
/// `cap`.
#[inline]
fn sat_dec(c: u8, cap: u8) -> impl Iterator<Item = u8> {
    debug_assert!(c > 0, "delivering from an empty pool");
    let second = if c == cap { Some(cap) } else { None };
    std::iter::once(c - 1).chain(second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_abstract_state_matches_concrete_initial() {
        let cfg = IrConfig::faithful();
        let concrete = PairState::initial(&cfg.explore_config(10, 1000));
        assert_eq!(AbsState::abstract_of(&concrete), AbsState::initial());
    }

    #[test]
    fn initial_enabled_set_matches_model_shape() {
        let ir = Ir::new(IrConfig::faithful());
        let mut ids = Vec::new();
        ir.for_each_enabled(&AbsState::initial(), |a| ids.push(a));
        assert!(ids.contains(&ActionId::WitnessHungry(0)));
        assert!(ids.contains(&ActionId::SubjectHungry(0)));
        assert!(ids.contains(&ActionId::Converge));
        assert!(ids.contains(&ActionId::CrashSubject));
        assert!(!ids.contains(&ActionId::WitnessHungry(1)), "switch = 0");
        assert!(!ids.contains(&ActionId::SubjectHungry(1)), "trigger = 0");
        assert!(!ids.iter().any(|a| matches!(a, ActionId::DeliverPing(_))), "empty wire");
    }

    #[test]
    fn saturated_delivery_is_nondeterministic() {
        let ir = Ir::new(IrConfig::faithful());
        let mut s = AbsState::initial();
        s.pings[0] = WIRE_CAP;
        let mut succ = Vec::new();
        ir.fire(&s, ActionId::DeliverPing(0), &mut succ);
        let counts: Vec<u8> = succ.iter().map(|t| t.pings[0]).collect();
        assert_eq!(counts, vec![WIRE_CAP - 1, WIRE_CAP]);
        assert!(succ.iter().all(|t| t.haveping[0] && t.acks[0] == 1));
    }

    #[test]
    fn concretize_inverts_abstract_of_on_small_counts() {
        let cfg = IrConfig::faithful();
        let mut s = AbsState::initial();
        s.s_phase[0] = DinerPhase::Eating;
        s.ping_enabled[0] = false;
        s.pings[0] = 1;
        let concrete = s.concretize(&cfg);
        assert_eq!(AbsState::abstract_of(&concrete), s);
    }

    #[test]
    fn crash_clears_acks_but_not_pings() {
        let ir = Ir::new(IrConfig::faithful());
        let mut s = AbsState::initial();
        s.pings[0] = 1;
        s.acks[1] = 1;
        let mut succ = Vec::new();
        ir.fire(&s, ActionId::CrashSubject, &mut succ);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].pings, [1, 0]);
        assert_eq!(succ[0].acks, [0, 0]);
    }

    #[test]
    fn stale_ack_branch_exists_only_in_strict_mode() {
        let mut s = AbsState::initial();
        s.acks[0] = 1;
        let lenient = Ir::new(IrConfig::faithful());
        assert!(!lenient.enabled(&s, ActionId::DeliverStaleAck(0)));
        let strict = Ir::new(IrConfig { strict_seq: true, ..IrConfig::faithful() });
        assert!(strict.enabled(&s, ActionId::DeliverStaleAck(0)));
        let mut succ = Vec::new();
        strict.fire(&s, ActionId::DeliverStaleAck(0), &mut succ);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].trigger, s.trigger, "a rejected ack must not flip the trigger");
        assert_eq!(succ[0].acks[0], 0);
    }
}
