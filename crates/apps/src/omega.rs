//! Stable leader election (the Ω abstraction) from any ◇P-class module.
//!
//! Each process's current leader is the smallest id its local module
//! currently trusts (itself included). With a ◇P module, there is a time
//! after which every correct process's suspect set equals the crashed set,
//! so all correct processes permanently agree on the smallest correct id —
//! the classical "◇P is sufficient for stable leader election" argument the
//! paper cites as its reference \[1\].

use std::rc::Rc;

use dinefd_fd::FdQuery;
use dinefd_sim::{Context, CrashPlan, Node, ProcessId, Time, TimerId, Trace};

/// Observation: this process's leader changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderObs {
    /// The newly elected leader.
    pub leader: ProcessId,
}

const POLL: TimerId = TimerId(0);

/// One process's leader-election module: polls its failure detector and
/// demotes/promotes leaders as suspicions change.
pub struct LeaderElection {
    n: usize,
    fd: Rc<dyn FdQuery>,
    poll_every: u64,
    current: Option<ProcessId>,
}

impl std::fmt::Debug for LeaderElection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderElection").field("current", &self.current).finish()
    }
}

impl LeaderElection {
    /// New module over `n` processes with the given detector handle.
    pub fn new(n: usize, fd: Rc<dyn FdQuery>) -> Self {
        LeaderElection { n, fd, poll_every: 4, current: None }
    }

    /// The currently elected leader (after the first poll).
    pub fn leader(&self) -> Option<ProcessId> {
        self.current
    }

    fn elect(&mut self, ctx: &mut Context<'_, (), LeaderObs>) {
        let me = ctx.me();
        let now = ctx.now();
        let leader = ProcessId::all(self.n)
            .find(|&q| q == me || !self.fd.suspected(me, q, now))
            // A module that suspects everyone else still trusts itself.
            .unwrap_or(me);
        if self.current != Some(leader) {
            self.current = Some(leader);
            ctx.observe(LeaderObs { leader });
        }
    }
}

impl Node for LeaderElection {
    type Msg = ();
    type Obs = LeaderObs;

    fn on_start(&mut self, ctx: &mut Context<'_, (), LeaderObs>) {
        self.elect(ctx);
        ctx.set_timer(self.poll_every, POLL);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, (), LeaderObs>, _from: ProcessId, _msg: ()) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, (), LeaderObs>, timer: TimerId) {
        debug_assert_eq!(timer, POLL);
        self.elect(ctx);
        ctx.set_timer(self.poll_every, POLL);
    }
}

/// Checks the Ω property on a recorded run: every correct process's last
/// elected leader is the same **correct** process, and reports the instant
/// from which all of them agreed for good. Errors describe the violation.
pub fn check_stable_leader(
    n: usize,
    trace: &Trace<(), LeaderObs>,
    plan: &CrashPlan,
) -> Result<(ProcessId, Time), String> {
    let mut last: Vec<Option<(Time, ProcessId)>> = vec![None; n];
    let mut settled: Vec<Time> = vec![Time::ZERO; n];
    for (at, pid, obs) in trace.observations() {
        last[pid.index()] = Some((at, obs.leader));
        settled[pid.index()] = at;
    }
    let correct = plan.correct(n);
    let mut final_leader: Option<ProcessId> = None;
    let mut agreed_from = Time::ZERO;
    for &p in &correct {
        let Some((at, leader)) = last[p.index()] else {
            return Err(format!("{p} never elected a leader"));
        };
        match final_leader {
            None => final_leader = Some(leader),
            Some(l) if l != leader => {
                return Err(format!("{p} ends with {leader}, others with {l}"));
            }
            _ => {}
        }
        agreed_from = agreed_from.max(at);
    }
    let leader = final_leader.ok_or("no correct processes")?;
    if plan.is_faulty(leader) {
        return Err(format!("final leader {leader} is faulty"));
    }
    Ok((leader, agreed_from))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinefd_fd::InjectedOracle;
    use dinefd_sim::{DelayModel, SplitMix64, World, WorldConfig};

    fn run(
        n: usize,
        seed: u64,
        crashes: CrashPlan,
        horizon: Time,
    ) -> (Trace<(), LeaderObs>, CrashPlan) {
        let mut rng = SplitMix64::new(seed);
        let oracle =
            InjectedOracle::diamond_p(n, crashes.clone(), 40, Time(2_000), 3, 200, &mut rng);
        let fd: Rc<dyn FdQuery> = Rc::new(oracle);
        let nodes: Vec<LeaderElection> =
            (0..n).map(|_| LeaderElection::new(n, Rc::clone(&fd))).collect();
        let cfg = WorldConfig::new(seed).crashes(crashes.clone()).delays(DelayModel::Fixed(2));
        let mut world = World::new(nodes, cfg);
        world.run_until(horizon);
        (world.into_trace(), crashes)
    }

    #[test]
    fn failure_free_elects_p0_forever() {
        let (trace, plan) = run(4, 1, CrashPlan::none(), Time(10_000));
        let (leader, _) = check_stable_leader(4, &trace, &plan).unwrap();
        assert_eq!(leader, ProcessId(0));
    }

    #[test]
    fn leader_crash_promotes_next_smallest() {
        let plan = CrashPlan::one(ProcessId(0), Time(3_000));
        let (trace, plan) = run(4, 2, plan, Time(20_000));
        let (leader, from) = check_stable_leader(4, &trace, &plan).unwrap();
        assert_eq!(leader, ProcessId(1));
        assert!(from >= Time(3_000), "promotion cannot precede the crash permanently");
    }

    #[test]
    fn double_crash_cascades() {
        let plan = CrashPlan::one(ProcessId(0), Time(2_000)).and(ProcessId(1), Time(5_000));
        let (trace, plan) = run(5, 3, plan, Time(30_000));
        let (leader, _) = check_stable_leader(5, &trace, &plan).unwrap();
        assert_eq!(leader, ProcessId(2));
    }

    #[test]
    fn wrongful_suspicions_only_destabilize_finitely() {
        // Count leader changes: they must be finite and stop after the
        // oracle converges (+ detection of any crash).
        let plan = CrashPlan::one(ProcessId(0), Time(4_000));
        let (trace, plan) = run(4, 4, plan, Time(40_000));
        let changes: Vec<(Time, ProcessId)> = trace
            .observations()
            .filter(|&(_, pid, _)| pid == ProcessId(1))
            .map(|(t, _, o)| (t, o.leader))
            .collect();
        assert!(!changes.is_empty());
        let last_change = changes.last().unwrap().0;
        assert!(last_change < Time(10_000), "leader still flapping at {last_change:?}");
        let _ = check_stable_leader(4, &trace, &plan).unwrap();
    }
}
