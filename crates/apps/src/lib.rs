//! # `dinefd-apps` — applications of (extracted) failure detectors
//!
//! The paper's introduction motivates ◇P by what it enables: "consensus \[3\],
//! stable leader election \[1\], and crash-locality-1 dining \[11\]". This crate
//! builds the first two on top of the same `FdQuery` interface the rest of
//! the repository uses — which means they run equally well over an injected
//! oracle, over the real heartbeat detector, or over the **output of the
//! paper's reduction** (via [`replay::ReplayOracle`], which turns a recorded
//! extracted suspicion history back into a queryable module).
//!
//! * [`omega`] — stable leader election: each process's leader is the
//!   smallest currently-trusted id; with ◇P every correct process eventually
//!   permanently elects the same correct leader.
//! * [`consensus`] — Chandra–Toueg rotating-coordinator consensus (majority
//!   quorums): ◇P's eventual accuracy guarantees termination, majorities
//!   guarantee agreement under any minority of crashes.
//! * [`replay`] — an `FdQuery` backed by a recorded `SuspicionHistory`,
//!   closing the loop: dining black box → extracted ◇P → leader election /
//!   consensus.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod consensus;
pub mod omega;
pub mod replay;

pub use consensus::{ConsensusNode, ConsensusObs};
pub use omega::{check_stable_leader, LeaderElection, LeaderObs};
pub use replay::ReplayOracle;
