//! The paper's Section 2/3 contention-manager scenario: boosting an
//! obstruction-free software transactional memory from obstruction-freedom
//! to wait-freedom with a WF-◇WX scheduler.
//!
//! Obstruction freedom: a transaction commits only if it runs in isolation
//! long enough. Under contention, nothing commits. A contention manager that
//! is wait-free and *eventually* exclusive funnels the system into isolation:
//! for a finite prefix it may admit concurrent transactions (they abort),
//! but eventually it admits one client at a time and every pending
//! transaction commits.
//!
//! ```sh
//! cargo run --example contention_manager
//! ```

use std::rc::Rc;

use dinefd::dining::driver::{collect_history, DiningDriverNode, Workload};
use dinefd::dining::wfdx::WfDxDining;
use dinefd::prelude::*;
use dinefd::sim::SplitMix64;

fn main() {
    // 5 STM clients contending for the same data: a clique conflict graph.
    let n = 5;
    let graph = ConflictGraph::clique(n);

    let mut rng = SplitMix64::new(11);
    let oracle = InjectedOracle::diamond_p(n, CrashPlan::none(), 40, Time(3_000), 4, 250, &mut rng);
    let fd: Rc<dyn FdQuery> = Rc::new(oracle);

    // Eating = holding the CM's permission while executing a transaction.
    let tx = Workload { think_lo: 5, think_hi: 30, eat_lo: 10, eat_hi: 40, meals: None };
    let nodes: Vec<DiningDriverNode> = ProcessId::all(n)
        .map(|p| {
            DiningDriverNode::new(
                Box::new(WfDxDining::new(p, graph.neighbors(p))),
                Rc::clone(&fd),
                tx,
            )
        })
        .collect();
    let horizon = Time(40_000);
    let mut world = World::new(nodes, WorldConfig::new(11));
    world.run_until(horizon);
    let mut history = collect_history(n, world.trace(), 0);
    history.set_horizon(horizon);

    // An STM transaction commits iff its permission window overlapped no
    // other client's window (obstruction-freedom).
    let plan = CrashPlan::none();
    let overlaps = history.exclusion_violations(&graph, &plan);
    let converged = history.wx_converged_from(&graph, &plan);
    let mut committed = 0usize;
    let mut aborted = 0usize;
    let mut committed_after = 0usize;
    let mut sessions_after = 0usize;
    for p in ProcessId::all(n) {
        for &(s, e) in &history.eating_sessions(p, &plan) {
            let contended =
                overlaps.iter().any(|v| (v.a == p || v.b == p) && v.from < e && s < v.to);
            if contended {
                aborted += 1;
            } else {
                committed += 1;
                if s >= converged {
                    committed_after += 1;
                }
            }
            if s >= converged {
                sessions_after += 1;
            }
        }
    }
    println!("transactions attempted: {}", committed + aborted);
    println!("aborted by contention (finite prefix only): {aborted}");
    println!("committed: {committed}");
    println!("contention ends at t={converged} — after that, {committed_after}/{sessions_after} attempts commit");
    assert_eq!(
        committed_after, sessions_after,
        "after convergence every admitted transaction must run in isolation"
    );
    // Wait-freedom boost: every client keeps committing transactions.
    for p in ProcessId::all(n) {
        assert!(history.session_count(p) > 50, "{p} starved");
    }
    println!("⇒ the CM boosted obstruction-freedom to wait-freedom: every client commits forever.");
}
