//! E7 — mechanical checking of the paper's lemmas: exhaustive bounded
//! exploration (safety lemmas 2, 3, 4, 9 + the Theorem-1 closure) and
//! weakly-fair runs (liveness lemmas 7, 11, 12 + both theorems' limits).

use dinefd_explore::{explore, explore_composed, fair_run, ComposedConfig, ExploreConfig};
use dinefd_sim::MetricMap;

use crate::table::{Report, Table};
use crate::ExperimentConfig;

/// Thread count the cross-check column runs the parallel engine with.
const PAR_THREADS: usize = 4;

/// Runs E7 and returns the report.
pub fn run(cfg: &ExperimentConfig) -> Report {
    // The deepest rows are the depth frontier the fingerprinted store
    // opened up; see also E8's frontier sweep.
    let depths: &[u32] = if cfg.seeds <= 3 { &[20, 48, 60] } else { &[20, 60, 120, 200] };
    let mut safety = Table::new(
        "Exhaustive safety exploration of the pair model",
        &[
            "variant",
            "crashes",
            "depth",
            "states",
            "transitions",
            "violations",
            "deadlocks",
            "kstates/s",
            "par agree",
            "por agree",
        ],
    );
    let mut metrics = MetricMap::new();
    let mut states_total = 0u64;
    let mut transitions_total = 0u64;
    let mut rows_total = 0u64;
    let mut agree_total = 0u64;
    let mut por_agree_total = 0u64;
    for &strict in &[false, true] {
        for &allow_crash in &[true, false] {
            for &depth in depths {
                let base = ExploreConfig {
                    max_depth: depth,
                    max_states: 5_000_000,
                    strict_seq: strict,
                    allow_crash,
                    ..Default::default()
                };
                let report = explore(&base);
                // Cross-checks: the work-stealing engine and the POR run
                // must reach the same verdict on the same configuration.
                let par = explore(&ExploreConfig { threads: PAR_THREADS, ..base });
                let por = explore(&ExploreConfig { por: true, ..base });
                let agree = par.states_visited == report.states_visited
                    && par.transitions == report.transitions
                    && par.clean() == report.clean()
                    && par.deadlocks == report.deadlocks;
                let por_agree = por.states_visited == report.states_visited
                    && por.transitions == report.transitions
                    && por.clean() == report.clean()
                    && por.deadlocks == report.deadlocks;
                states_total += report.states_visited as u64;
                transitions_total += report.transitions;
                rows_total += 1;
                agree_total += agree as u64;
                por_agree_total += por_agree as u64;
                safety.row(vec![
                    if strict { "hardened".into() } else { "paper".to_string() },
                    if allow_crash { "yes".into() } else { "no".to_string() },
                    depth.to_string(),
                    report.states_visited.to_string(),
                    report.transitions.to_string(),
                    report.violations.len().to_string(),
                    report.deadlocks.to_string(),
                    format!("{:.0}", report.stats.states_per_sec / 1_000.0),
                    if agree { "yes".into() } else { "NO".to_string() },
                    if por_agree { "yes".into() } else { "NO".to_string() },
                ]);
            }
        }
    }

    let composed_depths: &[u32] = if cfg.seeds <= 3 { &[10, 12] } else { &[10, 14, 16] };
    let mut composed = Table::new(
        "Exhaustive exploration of the reduction COMPOSED with the real fork algorithm",
        &[
            "crashes",
            "mistakes",
            "depth",
            "states",
            "transitions",
            "violations",
            "deadlocks",
            "kstates/s",
            "par agree",
            "por agree",
            "por skips",
        ],
    );
    for &(allow_crash, allow_mistakes) in &[(false, false), (true, false), (true, true)] {
        for &depth in composed_depths {
            let base = ComposedConfig {
                max_depth: depth,
                max_states: 3_000_000,
                allow_crash,
                allow_mistakes,
                strict_seq: false,
                ..Default::default()
            };
            let r = explore_composed(&base);
            let par = explore_composed(&ComposedConfig { threads: PAR_THREADS, ..base });
            let por = explore_composed(&ComposedConfig { por: true, ..base });
            let agree = par.states_visited == r.states_visited
                && par.transitions == r.transitions
                && par.clean() == r.clean()
                && par.deadlocks == r.deadlocks;
            let por_agree = por.states_visited == r.states_visited
                && por.transitions == r.transitions
                && por.clean() == r.clean()
                && por.deadlocks == r.deadlocks;
            states_total += r.states_visited as u64;
            transitions_total += r.transitions;
            rows_total += 1;
            agree_total += agree as u64;
            por_agree_total += por_agree as u64;
            composed.row(vec![
                if allow_crash { "yes".into() } else { "no".to_string() },
                if allow_mistakes { "yes".into() } else { "no".to_string() },
                depth.to_string(),
                r.states_visited.to_string(),
                r.transitions.to_string(),
                r.violations.len().to_string(),
                r.deadlocks.to_string(),
                format!("{:.0}", r.stats.states_per_sec / 1_000.0),
                if agree { "yes".into() } else { "NO".to_string() },
                if por_agree { "yes".into() } else { "NO".to_string() },
                por.stats.sleep_skips.get().to_string(),
            ]);
        }
    }

    let mut liveness = Table::new(
        "Weakly-fair runs of the pair model (liveness lemmas)",
        &[
            "variant",
            "scenario",
            "rounds",
            "w eats (0/1)",
            "s eats (0/1)",
            "alternating",
            "final output",
            "stabilized by",
        ],
    );
    for &strict in &[false, true] {
        let variant = if strict { "hardened" } else { "paper" };
        for (scenario, converge, crash) in [
            ("correct q, converge@50", 50u32, None),
            ("q crashes @120", 50, Some(120u32)),
            ("late convergence @500", 500, None),
        ] {
            let r = fair_run(800, converge, crash, strict);
            assert!(r.violations.is_empty(), "fair-run violations: {:?}", r.violations);
            liveness.row(vec![
                variant.to_string(),
                scenario.to_string(),
                r.rounds.to_string(),
                format!("{}/{}", r.witness_eats[0], r.witness_eats[1]),
                format!("{}/{}", r.subject_eats[0], r.subject_eats[1]),
                r.witnesses_alternate().to_string(),
                if r.final_suspects { "suspect".into() } else { "trust".to_string() },
                format!("round {}", r.stabilized_at()),
            ]);
        }
    }

    metrics.insert("states_total".into(), states_total);
    metrics.insert("transitions_total".into(), transitions_total);
    metrics.insert("exhaustive_rows".into(), rows_total);
    metrics.insert("par_agree_rows".into(), agree_total);
    metrics.insert("por_agree_rows".into(), por_agree_total);
    Report {
        title: "E7 — mechanical lemma checking (exhaustive + fair runs)".into(),
        preamble: "The corrigendum to this paper exists because message-regime proofs \
                   are delicate; here the safety lemmas (2, 3, 4, 9), the exclusive- \
                   regime soundness, and the Theorem-1 closure are checked over EVERY \
                   interleaving of the pair model up to the depth bound, for both the \
                   paper's algorithm and the hardened (sequence-tagged) variant. The \
                   liveness lemmas (7, 11, 12) and both theorems' limit behaviours \
                   are checked on weakly-fair schedules."
            .into(),
        tables: vec![safety, composed, liveness],
        notes: vec![format!(
            "\"par agree\" re-runs each exhaustive row on the work-stealing \
             engine ({PAR_THREADS} threads, sharded visited table) and \"por \
             agree\" with sleep-set POR, comparing states/transitions/clean/\
             deadlocks; \"kstates/s\" is the serial engine's throughput. The \
             faithful pair wire is strictly sequential, so POR only finds \
             skippable interleavings on the composed model's fork traffic \
             (\"por skips\"). See E8 for the thread-scaling sweep and the \
             depth frontier."
        )],
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_everything_clean() {
        let cfg = ExperimentConfig { seeds: 2 };
        let report = run(&cfg);
        for row in &report.tables[0].rows {
            assert_eq!(row[5], "0", "safety violations: {row:?}");
            assert_eq!(row[6], "0", "deadlocks: {row:?}");
            assert_eq!(row[8], "yes", "parallel disagreed with serial: {row:?}");
            assert_eq!(row[9], "yes", "POR disagreed with full exploration: {row:?}");
        }
        for row in &report.tables[1].rows {
            assert_eq!(row[5], "0", "composed violations: {row:?}");
            assert_eq!(row[6], "0", "composed deadlocks: {row:?}");
            assert_eq!(row[8], "yes", "parallel disagreed with serial: {row:?}");
            assert_eq!(row[9], "yes", "POR disagreed with full exploration: {row:?}");
        }
        for row in &report.tables[2].rows {
            assert_eq!(row[5], "true", "witnesses must alternate: {row:?}");
        }
        assert_eq!(report.metrics["par_agree_rows"], report.metrics["exhaustive_rows"]);
        assert_eq!(report.metrics["por_agree_rows"], report.metrics["exhaustive_rows"]);
        assert!(report.metrics["states_total"] > 0);
        // POR must actually fire somewhere in the composed sweep.
        assert!(
            report.tables[1].rows.iter().any(|r| r[10] != "0"),
            "composed POR never skipped anything"
        );
    }
}
