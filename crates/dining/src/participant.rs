//! The black-box interface over which the necessity reduction quantifies.
//!
//! The paper's reduction works with *any* solution to WF-◇WX; this module
//! pins down the corresponding Rust interface. A [`DiningParticipant`] is one
//! diner's endpoint of one dining instance. The host (a workload driver, or
//! the witness/subject machinery of `dinefd-core`) invokes it with a
//! [`DiningIo`] capability and routes the messages it emits to the peer
//! participants of the same instance.
//!
//! ## Host contract
//!
//! * `hungry` may only be called when [`DiningParticipant::phase`] is
//!   `Thinking`; afterwards the phase is `Hungry` (or already `Eating` if the
//!   protocol granted immediately).
//! * `exit_eating` may only be called when the phase is `Eating`; afterwards
//!   the phase is `Exiting` or already `Thinking`.
//! * Every message emitted must be delivered to the addressed peer of the
//!   *same instance* (the host wraps messages with an instance tag).
//! * `on_tick` must be invoked infinitely often for live processes (it is
//!   where suspicion-driven protocols re-evaluate their failure detector).
//!
//! Phase changes are the protocol's own doing; hosts detect them by
//! comparing `phase()` before and after each call.

use std::fmt;

use dinefd_fd::FdQuery;
use dinefd_sim::{ProcessId, Time};

use crate::abstract_dining::AbMsg;
use crate::delayed::DcMsg;
use crate::fair::FairMsg;
use crate::ftme::FtMsg;
use crate::hygienic::HyMsg;
use crate::state::DinerPhase;
use crate::unfair::UfMsg;
use crate::wfdx::WxMsg;

/// Union of the message types of every dining implementation in this crate.
///
/// Using one concrete message enum (rather than an associated type) keeps
/// participants object-safe, so hosts and the experiment harness can treat a
/// `Box<dyn DiningParticipant>` as the literal black box of the paper.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum DiningMsg {
    /// Chandy–Misra hygienic algorithm traffic.
    Hygienic(HyMsg),
    /// ◇P-based wait-free ◇WX algorithm traffic.
    WfDx(WxMsg),
    /// Delayed-convergence (§3 pathological) service traffic.
    Delayed(DcMsg),
    /// Abstract spec-constrained service traffic.
    Abstract(AbMsg),
    /// T-based perpetual-WX (FTME) traffic.
    Ftme(FtMsg),
    /// Eventually-2-fair algorithm traffic.
    Fair(FairMsg),
    /// Escalating-unfairness service traffic.
    Unfair(UfMsg),
}

/// Effects collected from one participant invocation.
#[derive(Debug, Default)]
pub struct DiningEffects {
    /// Messages to deliver to peer participants of the same instance.
    pub sends: Vec<(ProcessId, DiningMsg)>,
}

/// The capability a participant has during one invocation: send messages to
/// instance peers and query the local failure-detector module.
pub struct DiningIo<'a> {
    me: ProcessId,
    now: Time,
    fd: &'a dyn FdQuery,
    sends: Vec<(ProcessId, DiningMsg)>,
}

impl<'a> DiningIo<'a> {
    /// Builds the capability for one invocation.
    pub fn new(me: ProcessId, now: Time, fd: &'a dyn FdQuery) -> Self {
        DiningIo { me, now, fd, sends: Vec::new() }
    }

    /// Builds the capability reusing a caller-owned send buffer (cleared
    /// here), so hosts invoking participants in a hot loop allocate nothing
    /// per invocation: drain [`DiningEffects::sends`] after
    /// [`DiningIo::finish`] and hand the vector back next time.
    pub fn with_scratch(
        me: ProcessId,
        now: Time,
        fd: &'a dyn FdQuery,
        mut scratch: Vec<(ProcessId, DiningMsg)>,
    ) -> Self {
        scratch.clear();
        DiningIo { me, now, fd, sends: scratch }
    }

    /// The hosting process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Current global time.
    ///
    /// For *model artifacts only*: the coordinator-based services compare it
    /// against their scripted convergence parameter (which stands for "the
    /// instant this box's internal ◇P happens to converge in this run").
    /// Genuine protocol logic never branches on it.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Queries the local failure-detector module about `q`.
    pub fn suspected(&self, q: ProcessId) -> bool {
        self.fd.suspected(self.me, q, self.now)
    }

    /// Sends `msg` to the participant of the same instance at `to`.
    pub fn send(&mut self, to: ProcessId, msg: DiningMsg) {
        self.sends.push((to, msg));
    }

    /// Finishes the invocation, yielding the buffered effects.
    pub fn finish(self) -> DiningEffects {
        DiningEffects { sends: self.sends }
    }
}

impl fmt::Debug for DiningIo<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiningIo")
            .field("me", &self.me)
            .field("pending_sends", &self.sends.len())
            .finish()
    }
}

/// One diner's endpoint of one dining instance — the paper's black box.
///
/// `Send` is a supertrait so that reduction hosts holding boxed
/// participants can ride the parallel shard workers of
/// `dinefd_sim::ShardedWorld`; participants are self-contained state
/// machines, so the bound costs implementations nothing.
pub trait DiningParticipant: fmt::Debug + Send {
    /// The local client became hungry.
    fn hungry(&mut self, io: &mut DiningIo<'_>);

    /// The local client finished its critical section.
    fn exit_eating(&mut self, io: &mut DiningIo<'_>);

    /// A message from the peer participant `from` of the same instance.
    fn on_message(&mut self, io: &mut DiningIo<'_>, from: ProcessId, msg: DiningMsg);

    /// Periodic re-evaluation hook (failure-detector polling).
    fn on_tick(&mut self, _io: &mut DiningIo<'_>) {}

    /// Current phase of this diner in this instance.
    fn phase(&self) -> DinerPhase;
}

/// A failure detector that never suspects anyone — for protocols that do not
/// consult an oracle (the crash-oblivious baseline) and for tests.
#[derive(Clone, Copy, Debug)]
pub struct NoOracle(
    /// System size.
    pub usize,
);

impl FdQuery for NoOracle {
    fn suspected(&self, _watcher: ProcessId, _subject: ProcessId, _now: Time) -> bool {
        false
    }

    fn len(&self) -> usize {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_buffers_sends_and_queries_fd() {
        let fd = NoOracle(3);
        let mut io = DiningIo::new(ProcessId(0), Time(5), &fd);
        assert_eq!(io.me(), ProcessId(0));
        assert!(!io.suspected(ProcessId(1)));
        io.send(ProcessId(1), DiningMsg::Hygienic(HyMsg::ForkRequest));
        io.send(ProcessId(2), DiningMsg::Hygienic(HyMsg::Fork));
        let fx = io.finish();
        assert_eq!(fx.sends.len(), 2);
        assert_eq!(fx.sends[0].0, ProcessId(1));
    }

    #[test]
    fn no_oracle_reports_size() {
        let fd = NoOracle(7);
        assert_eq!(fd.len(), 7);
        assert!(!fd.is_empty());
    }
}
