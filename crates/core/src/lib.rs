//! # `dinefd-core` — the paper's contribution: extracting ◇P from wait-free
//! dining under eventual weak exclusion
//!
//! This crate implements the necessity reduction of *"The Weakest Failure
//! Detector for Wait-Free Dining under Eventual Weak Exclusion"* (Sastry,
//! Pike, Welch; SPAA'09, corrigendum SPAA'10): an asynchronous, oracle-free
//! transformation that, given any black-box solution to WF-◇WX, implements
//! the eventually perfect failure detector ◇P. Together with the sufficiency
//! results of the paper's references \[12, 13\], this makes ◇P the *weakest*
//! oracle for the problem.
//!
//! The key idea (the paper's Section 5): wait-freedom plus eventual weak
//! exclusion can be converted into an eventually reliable timeout. For each
//! ordered pair `(p, q)` where `p` monitors `q`, the two processes compete in
//! **two** dining instances `DX_0`, `DX_1`. `p`'s two *witness* threads take
//! turns eating; `q`'s two *subject* threads coordinate a hand-off so that
//! the start and end of each subject's eating session overlaps the other's —
//! in the exclusive suffix, a witness therefore cannot eat twice in `DX_i`
//! without the subject eating in between, which throttles the witness and
//! converts "`p` ate without banking a ping from `q`" into reliable evidence.
//!
//! * [`machines`] — Alg. 1 (witness) and Alg. 2 (subject) as pure
//!   guarded-command machines, plus the hardened sequence-tagged variant.
//! * [`host`] — event-driven components and the [`host::ReductionNode`]
//!   hosting all pairs a process participates in.
//! * [`detector`] — trace → [`dinefd_fd::SuspicionHistory`] extraction,
//!   Fig. 1 pair timelines, and the shared cell that feeds the extracted ◇P
//!   to other protocols online.
//! * [`scenario`] — one-call assembly of extraction runs over any black box.
//! * [`flawed_cm`] — the earlier contention-manager reduction of the paper's
//!   reference \[8\], reproduced faithfully so experiment E4 can demonstrate
//!   the vulnerability the paper identifies (a single dining instance plus
//!   heartbeats is *not* black-box portable).
//! * [`single_dx`] — the single-instance ablation (subject exits properly,
//!   unlike \[8\]) which still fails on a legal-but-unfair black box — the
//!   experiment that shows why the paper needs TWO instances (E9).
//! * [`fairness`] — the Section 8 corollary: dining + extracted ◇P ⇒
//!   eventually 2-fair dining.
//!
//! Applied to a *perpetual* weak-exclusion box (FTME), the same reduction
//! extracts the trusting oracle T — the Section 9 corollary; experiment E5
//! checks the extracted history against T's specification.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod detector;
pub mod fairness;
pub mod flawed_cm;
pub mod host;
pub mod machines;
pub mod scenario;
pub mod single_dx;
pub mod wire;

pub use detector::{suspicion_history, HistorySink, PairTimelines, SharedSuspicion};
pub use fairness::{run_fair_over_extraction, FairOverExtractionNode, FairnessResult};
pub use flawed_cm::{run_flawed_pair, FlawedCmNode};
pub use host::{DxEndpoint, RedMsg, RedObs, ReductionNode, Role};
pub use machines::{SubjectMachine, WitnessMachine};
pub use scenario::{
    all_ordered_pairs, run_extraction, BlackBox, ExtractionResult, OracleSpec, Scenario,
};
pub use single_dx::{run_single_pair, SingleDxNode};
