//! # `dinefd-dining` — the dining-philosophers substrate
//!
//! Dining philosophers (Dijkstra; generalized by Lynch to arbitrary conflict
//! graphs) is local mutual exclusion: a [`graph::ConflictGraph`] has one
//! vertex per diner and one edge per set of shared resources; each diner
//! cycles through *thinking → hungry → eating → exiting* and a dining
//! solution schedules the hungry→eating transitions.
//!
//! The paper's problem, **WF-◇WX**, combines:
//!
//! * **Wait-freedom** — if correct processes eat for finite time, every
//!   correct hungry process eventually eats, regardless of crashes;
//! * **Eventual weak exclusion (◇WX)** — in every run there is a time after
//!   which no two *live* neighbors eat simultaneously (finitely many
//!   scheduling mistakes are allowed).
//!
//! This crate provides:
//!
//! * the black-box interface [`participant::DiningParticipant`] that the
//!   necessity reduction in `dinefd-core` quantifies over;
//! * several interchangeable implementations — a crash-oblivious baseline
//!   ([`hygienic`]), the ◇P-based wait-free algorithm in the style of the
//!   paper's reference \[12\] ([`wfdx`]), the §3 pathological-but-legal
//!   variant ([`delayed`]), a spec-constrained adversarial service
//!   ([`abstract_dining`]), a legal service with escalating unfairness for
//!   the §5.1 remark ([`unfair`]), a T-based *perpetual*-exclusion service
//!   for §9 ([`ftme`]), and an eventually-2-fair upgrade for §8 ([`fair`]);
//! * trace checkers for ◇WX / WX / wait-freedom / eventual k-fairness
//!   ([`spec`]) and a workload driver ([`driver`]) for standalone dining
//!   experiments.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod abstract_dining;
pub mod delayed;
pub mod driver;
pub mod fair;
pub mod ftme;
pub mod graph;
pub mod hygienic;
pub mod participant;
pub mod spec;
pub mod state;
pub mod unfair;
pub mod wfdx;
pub mod wire;

pub use graph::ConflictGraph;
pub use participant::{DiningEffects, DiningIo, DiningMsg, DiningParticipant};
pub use spec::{DiningHistory, DiningViolation};
pub use state::{DinerPhase, DiningObs};
